//! # relstore
//!
//! A small, exact, in-memory relational database engine: relations over
//! symbolic and integer constants, a relational algebra, and a first-order
//! (relational calculus) query evaluator with active-domain semantics.
//!
//! In the reproduction of *"Topological Queries in Spatial Databases"* this
//! crate plays the role of the **classical database system** on the other
//! side of the paper's thematic bridge (Section 3, Corollary 3.7): the
//! topological invariant `T_I` of a spatial instance is stored as a
//! relational instance over the fixed schema `Th`, and topological queries
//! are answered by ordinary first-order queries against it.
//!
//! ## Example
//!
//! ```
//! use relstore::{Database, tuple};
//! use relstore::fo::{eval_sentence, Formula, Term};
//!
//! let mut db = Database::new();
//! db.insert("edge", tuple!["a", "b"]);
//! db.insert("edge", tuple!["b", "a"]);
//!
//! // ∃x ∃y. edge(x, y) ∧ edge(y, x)
//! let f = Formula::exists("x", Formula::exists("y", Formula::and(vec![
//!     Formula::atom("edge", vec![Term::var("x"), Term::var("y")]),
//!     Formula::atom("edge", vec![Term::var("y"), Term::var("x")]),
//! ])));
//! assert!(eval_sentence(&db, &f));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod fo;
pub mod value;

pub use database::{Database, Relation};
pub use value::{Tuple, Value};
