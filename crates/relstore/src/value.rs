//! Values and tuples of the in-memory relational store.

use std::fmt;

/// A constant appearing in a relational database: a symbol (string) or an
/// integer. The thematic mapping of the paper only needs symbols for cell and
//  region identifiers, but integers are handy for derived data.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// A symbolic constant (e.g. a region name or a cell identifier).
    Sym(String),
    /// An integer constant.
    Int(i64),
}

impl Value {
    /// Construct a symbolic constant.
    pub fn sym<S: Into<String>>(s: S) -> Value {
        Value::Sym(s.into())
    }

    /// Construct an integer constant.
    pub fn int(v: i64) -> Value {
        Value::Int(v)
    }

    /// The symbol, if this is a symbolic constant.
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Value::Sym(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// The integer, if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Sym(_) => None,
            Value::Int(v) => Some(*v),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Sym(s) => write!(f, "{s}"),
            Value::Int(v) => write!(f, "{v}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Sym(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Sym(s)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

/// A tuple of values.
pub type Tuple = Vec<Value>;

/// Build a tuple from anything convertible to values.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        vec![$($crate::value::Value::from($v)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from("a"), Value::Sym("a".into()));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::sym("x").as_sym(), Some("x"));
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::sym("x").as_int(), None);
        assert_eq!(Value::int(7).as_sym(), None);
    }

    #[test]
    fn display_and_order() {
        assert_eq!(format!("{}", Value::sym("v1")), "v1");
        assert_eq!(format!("{}", Value::int(-4)), "-4");
        assert!(Value::Int(1) < Value::Sym("a".into()) || Value::Sym("a".into()) < Value::Int(1));
    }

    #[test]
    fn tuple_macro() {
        let t: Tuple = tuple!["a", 1i64, "b"];
        assert_eq!(t, vec![Value::sym("a"), Value::int(1), Value::sym("b")]);
    }
}
