//! In-memory relational databases and a small relational algebra.
//!
//! This is the "classical database" side of the paper's thematic bridge
//! (Section 3, Corollary 3.7): the topological invariant of a spatial
//! instance is stored as an ordinary relational instance over the fixed
//! schema `Th`, and topological queries become ordinary relational queries.

use crate::value::{Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A named relation: a set of tuples of a fixed arity.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation { arity, tuples: BTreeSet::new() }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple. Panics if the arity is wrong.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.len(), self.arity, "tuple arity mismatch");
        self.tuples.insert(t)
    }

    /// Does the relation contain the tuple?
    pub fn contains(&self, t: &[Value]) -> bool {
        self.tuples.contains(t)
    }

    /// Iterate over tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Selection: keep tuples satisfying a predicate.
    pub fn select<F: Fn(&Tuple) -> bool>(&self, pred: F) -> Relation {
        Relation {
            arity: self.arity,
            tuples: self.tuples.iter().filter(|t| pred(t)).cloned().collect(),
        }
    }

    /// Projection onto the given column indices.
    pub fn project(&self, columns: &[usize]) -> Relation {
        let tuples = self
            .tuples
            .iter()
            .map(|t| columns.iter().map(|&c| t[c].clone()).collect::<Tuple>())
            .collect();
        Relation { arity: columns.len(), tuples }
    }

    /// Natural-style join on explicit column pairs `(left_col, right_col)`.
    /// The result has all columns of `self` followed by all columns of
    /// `other`.
    pub fn join(&self, other: &Relation, on: &[(usize, usize)]) -> Relation {
        let mut out = Relation::new(self.arity + other.arity);
        for a in &self.tuples {
            for b in &other.tuples {
                if on.iter().all(|&(i, j)| a[i] == b[j]) {
                    let mut t = a.clone();
                    t.extend(b.iter().cloned());
                    out.tuples.insert(t);
                }
            }
        }
        out
    }

    /// Set union (same arity required).
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity);
        Relation { arity: self.arity, tuples: self.tuples.union(&other.tuples).cloned().collect() }
    }

    /// Set difference (same arity required).
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity);
        Relation {
            arity: self.arity,
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        }
    }

    /// All values appearing anywhere in the relation.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.tuples.iter().flatten().cloned().collect()
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let tuples: BTreeSet<Tuple> = iter.into_iter().collect();
        let arity = tuples.iter().next().map_or(0, |t| t.len());
        assert!(tuples.iter().all(|t| t.len() == arity), "mixed arities");
        Relation { arity, tuples }
    }
}

/// A relational database: a map from relation names to relations.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// The empty database.
    pub fn new() -> Self {
        Database { relations: BTreeMap::new() }
    }

    /// Create (or replace) an empty relation of the given arity.
    pub fn create_relation(&mut self, name: &str, arity: usize) {
        self.relations.insert(name.to_string(), Relation::new(arity));
    }

    /// Insert a tuple into a relation, creating the relation if needed.
    pub fn insert(&mut self, name: &str, tuple: Tuple) {
        let arity = tuple.len();
        self.relations
            .entry(name.to_string())
            .or_insert_with(|| Relation::new(arity))
            .insert(tuple);
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// The names of all relations.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Does a fact hold?
    pub fn holds(&self, name: &str, tuple: &[Value]) -> bool {
        self.relations.get(name).is_some_and(|r| r.contains(tuple))
    }

    /// The active domain: every value appearing in any relation.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.relations.values().flat_map(|r| r.active_domain()).collect()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Are two databases isomorphic via a bijection of their active domains
    /// that is the identity on the given set of fixed constants?
    ///
    /// This is the notion used in Corollary 3.7(ii): `thematic(I)` and
    /// `thematic(J)` are compared up to renaming of cell identifiers while
    /// keeping the region names fixed. The implementation is a backtracking
    /// search with degree-profile pruning, adequate for the sizes produced by
    /// the thematic mapping in tests and benchmarks.
    pub fn isomorphic_fixing(&self, other: &Database, fixed: &BTreeSet<Value>) -> bool {
        if self.relation_names() != other.relation_names() {
            return false;
        }
        for name in self.relation_names() {
            let (a, b) = (self.relation(name).unwrap(), other.relation(name).unwrap());
            if a.arity() != b.arity() || a.len() != b.len() {
                return false;
            }
        }
        let dom_a: Vec<Value> = self.active_domain().into_iter().collect();
        let dom_b: BTreeSet<Value> = other.active_domain();
        if dom_a.len() != dom_b.len() {
            return false;
        }
        // Fixed constants must map to themselves.
        for v in fixed {
            if dom_a.contains(v) != dom_b.contains(v) {
                return false;
            }
        }
        let profile = |db: &Database, v: &Value| -> Vec<(String, usize, usize)> {
            let mut p = Vec::new();
            for name in db.relation_names() {
                let r = db.relation(name).unwrap();
                for col in 0..r.arity() {
                    let count = r.iter().filter(|t| &t[col] == v).count();
                    p.push((name.to_string(), col, count));
                }
            }
            p
        };
        let mut candidates: Vec<(Value, Vec<Value>)> = Vec::new();
        for v in &dom_a {
            if fixed.contains(v) {
                candidates.push((v.clone(), vec![v.clone()]));
                continue;
            }
            let pa = profile(self, v);
            let cs: Vec<Value> = dom_b
                .iter()
                .filter(|w| !fixed.contains(*w) && profile(other, w) == pa)
                .cloned()
                .collect();
            if cs.is_empty() {
                return false;
            }
            candidates.push((v.clone(), cs));
        }
        // Order by fewest candidates first.
        candidates.sort_by_key(|(_, cs)| cs.len());
        let mut mapping: BTreeMap<Value, Value> = BTreeMap::new();
        let mut used: BTreeSet<Value> = BTreeSet::new();
        self.iso_search(other, &candidates, 0, &mut mapping, &mut used)
    }

    fn iso_search(
        &self,
        other: &Database,
        candidates: &[(Value, Vec<Value>)],
        idx: usize,
        mapping: &mut BTreeMap<Value, Value>,
        used: &mut BTreeSet<Value>,
    ) -> bool {
        if idx == candidates.len() {
            return self.check_mapping(other, mapping);
        }
        let (v, options) = &candidates[idx];
        for w in options {
            if used.contains(w) {
                continue;
            }
            mapping.insert(v.clone(), w.clone());
            used.insert(w.clone());
            // Partial check: every fully-mapped tuple of self must exist in other.
            if self.partial_ok(other, mapping) && self.iso_search(other, candidates, idx + 1, mapping, used)
            {
                return true;
            }
            mapping.remove(v);
            used.remove(w);
        }
        false
    }

    fn partial_ok(&self, other: &Database, mapping: &BTreeMap<Value, Value>) -> bool {
        for name in self.relation_names() {
            let a = self.relation(name).unwrap();
            let b = other.relation(name).unwrap();
            for t in a.iter() {
                if t.iter().all(|v| mapping.contains_key(v)) {
                    let img: Tuple = t.iter().map(|v| mapping[v].clone()).collect();
                    if !b.contains(&img) {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn check_mapping(&self, other: &Database, mapping: &BTreeMap<Value, Value>) -> bool {
        // Bijective by construction (used set); verify both directions on all
        // tuples.
        for name in self.relation_names() {
            let a = self.relation(name).unwrap();
            let b = other.relation(name).unwrap();
            let mapped: BTreeSet<Tuple> = a
                .iter()
                .map(|t| t.iter().map(|v| mapping[v].clone()).collect::<Tuple>())
                .collect();
            let bs: BTreeSet<Tuple> = b.iter().cloned().collect();
            if mapped != bs {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            writeln!(f, "{name}/{} ({} tuples):", rel.arity(), rel.len())?;
            for t in rel.iter() {
                let cells: Vec<String> = t.iter().map(|v| v.to_string()).collect();
                writeln!(f, "  ({})", cells.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
// `tuple!` expands to `vec![..]`; passing its result to the `&[Value]`
// methods is the intended test idiom even where an array literal would do.
#[allow(clippy::useless_vec)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sample() -> Database {
        let mut db = Database::new();
        db.insert("edge", tuple!["a", "b"]);
        db.insert("edge", tuple!["b", "c"]);
        db.insert("edge", tuple!["c", "a"]);
        db.insert("color", tuple!["a", "red"]);
        db
    }

    #[test]
    fn relation_basics() {
        let mut r = Relation::new(2);
        assert!(r.insert(tuple!["a", "b"]));
        assert!(!r.insert(tuple!["a", "b"]));
        assert!(r.contains(&tuple!["a", "b"]));
        assert!(!r.contains(&tuple!["b", "a"]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.arity(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(tuple!["a"]);
    }

    #[test]
    fn algebra_operations() {
        let db = sample();
        let edge = db.relation("edge").unwrap();
        // Selection.
        let from_a = edge.select(|t| t[0] == Value::sym("a"));
        assert_eq!(from_a.len(), 1);
        // Projection.
        let sources = edge.project(&[0]);
        assert_eq!(sources.len(), 3);
        // Join edge(x,y), edge(y,z).
        let paths = edge.join(edge, &[(1, 0)]);
        assert_eq!(paths.len(), 3);
        assert!(paths.contains(&tuple!["a", "b", "b", "c"]));
        // Union / difference.
        let u = from_a.union(&from_a);
        assert_eq!(u.len(), 1);
        let d = edge.difference(&from_a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn database_queries() {
        let db = sample();
        assert!(db.holds("edge", &tuple!["a", "b"]));
        assert!(!db.holds("edge", &tuple!["b", "a"]));
        assert!(!db.holds("missing", &tuple!["a"]));
        assert_eq!(db.total_tuples(), 4);
        assert_eq!(db.active_domain().len(), 4);
        assert_eq!(db.relation_names(), vec!["color", "edge"]);
    }

    #[test]
    fn isomorphism_with_fixed_constants() {
        let a = sample();
        // Rename the cycle a->x, b->y, c->z but keep "red" fixed.
        let mut b = Database::new();
        b.insert("edge", tuple!["x", "y"]);
        b.insert("edge", tuple!["y", "z"]);
        b.insert("edge", tuple!["z", "x"]);
        b.insert("color", tuple!["x", "red"]);
        let fixed: BTreeSet<Value> = [Value::sym("red")].into_iter().collect();
        assert!(a.isomorphic_fixing(&b, &fixed));

        // Breaking the colored vertex's position breaks the isomorphism when
        // the direction of the cycle matters... here color is on the cycle so
        // any rotation works; instead break by changing the color constant.
        let mut c = Database::new();
        c.insert("edge", tuple!["x", "y"]);
        c.insert("edge", tuple!["y", "z"]);
        c.insert("edge", tuple!["z", "x"]);
        c.insert("color", tuple!["x", "blue"]);
        assert!(!a.isomorphic_fixing(&c, &fixed));

        // A path is not isomorphic to a cycle.
        let mut d = Database::new();
        d.insert("edge", tuple!["x", "y"]);
        d.insert("edge", tuple!["y", "z"]);
        d.insert("edge", tuple!["x", "z"]);
        d.insert("color", tuple!["x", "red"]);
        assert!(!a.isomorphic_fixing(&d, &fixed));
    }

    #[test]
    fn from_iterator() {
        let r: Relation = vec![tuple!["a", 1i64], tuple!["b", 2i64]].into_iter().collect();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
    }
}
