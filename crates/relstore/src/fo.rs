//! First-order (relational calculus) queries over finite relational
//! structures, with active-domain semantics.
//!
//! Corollary 3.7 of the paper reduces every topological query on a spatial
//! instance `I` to a classical query on the relational instance
//! `thematic(I)`. This module provides the classical query language for that
//! reduction: first-order logic with equality over the database relations,
//! quantifiers ranging over the active domain.

use crate::database::Database;
use crate::value::Value;
use std::collections::BTreeMap;

/// A term: a variable or a constant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Term {
    /// A variable, identified by name.
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// A variable term.
    pub fn var<S: Into<String>>(name: S) -> Term {
        Term::Var(name.into())
    }

    /// A constant term.
    pub fn val<V: Into<Value>>(v: V) -> Term {
        Term::Const(v.into())
    }
}

/// A first-order formula over the database schema.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// `R(t1, ..., tk)` — relation membership.
    Atom(String, Vec<Term>),
    /// `t1 = t2`.
    Equals(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction of any number of formulas (empty conjunction is true).
    And(Vec<Formula>),
    /// Disjunction of any number of formulas (empty disjunction is false).
    Or(Vec<Formula>),
    /// Existential quantification over the active domain.
    Exists(String, Box<Formula>),
    /// Universal quantification over the active domain.
    Forall(String, Box<Formula>),
}

impl Formula {
    /// `R(t1, ..., tk)`.
    pub fn atom<S: Into<String>>(rel: S, terms: Vec<Term>) -> Formula {
        Formula::Atom(rel.into(), terms)
    }

    /// `t1 = t2`.
    pub fn equals(a: Term, b: Term) -> Formula {
        Formula::Equals(a, b)
    }

    /// Negation. (A by-value constructor, intentionally not the `Not`
    /// operator trait.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Conjunction.
    pub fn and(fs: Vec<Formula>) -> Formula {
        Formula::And(fs)
    }

    /// Disjunction.
    pub fn or(fs: Vec<Formula>) -> Formula {
        Formula::Or(fs)
    }

    /// Implication `a -> b`, as `¬a ∨ b`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Or(vec![Formula::not(a), b])
    }

    /// Existential quantifier.
    pub fn exists<S: Into<String>>(var: S, f: Formula) -> Formula {
        Formula::Exists(var.into(), Box::new(f))
    }

    /// Universal quantifier.
    pub fn forall<S: Into<String>>(var: S, f: Formula) -> Formula {
        Formula::Forall(var.into(), Box::new(f))
    }

    /// The free variables of the formula, in first-occurrence order.
    pub fn free_variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut bound = Vec::new();
        self.collect_free(&mut bound, &mut out);
        out
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        let add = |name: &String, bound: &Vec<String>, out: &mut Vec<String>| {
            if !bound.contains(name) && !out.contains(name) {
                out.push(name.clone());
            }
        };
        match self {
            Formula::Atom(_, terms) => {
                for t in terms {
                    if let Term::Var(v) = t {
                        add(v, bound, out);
                    }
                }
            }
            Formula::Equals(a, b) => {
                for t in [a, b] {
                    if let Term::Var(v) = t {
                        add(v, bound, out);
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                bound.push(v.clone());
                f.collect_free(bound, out);
                bound.pop();
            }
        }
    }

    /// Count quantifiers (a crude measure of query complexity, used by the
    /// query-complexity benchmarks).
    pub fn quantifier_depth(&self) -> usize {
        match self {
            Formula::Atom(_, _) | Formula::Equals(_, _) => 0,
            Formula::Not(f) => f.quantifier_depth(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(|f| f.quantifier_depth()).max().unwrap_or(0)
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.quantifier_depth(),
        }
    }
}

/// A variable assignment.
pub type Assignment = BTreeMap<String, Value>;

/// Evaluate a formula on a database under an assignment of its free
/// variables. Quantifiers range over the active domain of the database.
pub fn eval(db: &Database, formula: &Formula, assignment: &Assignment) -> bool {
    let domain: Vec<Value> = db.active_domain().into_iter().collect();
    eval_inner(db, &domain, formula, &mut assignment.clone())
}

/// Evaluate a sentence (no free variables).
pub fn eval_sentence(db: &Database, formula: &Formula) -> bool {
    eval(db, formula, &Assignment::new())
}

/// Evaluate a formula with free variables and return all satisfying
/// assignments, as tuples ordered by the formula's free-variable order.
pub fn query(db: &Database, formula: &Formula) -> Vec<Vec<Value>> {
    let free = formula.free_variables();
    let domain: Vec<Value> = db.active_domain().into_iter().collect();
    let mut results = Vec::new();
    let mut assignment = Assignment::new();
    enumerate(db, &domain, formula, &free, 0, &mut assignment, &mut results);
    results
}

fn enumerate(
    db: &Database,
    domain: &[Value],
    formula: &Formula,
    free: &[String],
    idx: usize,
    assignment: &mut Assignment,
    results: &mut Vec<Vec<Value>>,
) {
    if idx == free.len() {
        if eval_inner(db, domain, formula, &mut assignment.clone()) {
            results.push(free.iter().map(|v| assignment[v].clone()).collect());
        }
        return;
    }
    for value in domain {
        assignment.insert(free[idx].clone(), value.clone());
        enumerate(db, domain, formula, free, idx + 1, assignment, results);
    }
    assignment.remove(&free[idx]);
}

fn resolve(term: &Term, assignment: &Assignment) -> Value {
    match term {
        Term::Const(v) => v.clone(),
        Term::Var(name) => assignment
            .get(name)
            .cloned()
            .unwrap_or_else(|| panic!("unbound variable `{name}`")),
    }
}

fn eval_inner(db: &Database, domain: &[Value], formula: &Formula, assignment: &mut Assignment) -> bool {
    match formula {
        Formula::Atom(rel, terms) => {
            let tuple: Vec<Value> = terms.iter().map(|t| resolve(t, assignment)).collect();
            db.holds(rel, &tuple)
        }
        Formula::Equals(a, b) => resolve(a, assignment) == resolve(b, assignment),
        Formula::Not(f) => !eval_inner(db, domain, f, assignment),
        Formula::And(fs) => fs.iter().all(|f| eval_inner(db, domain, f, assignment)),
        Formula::Or(fs) => fs.iter().any(|f| eval_inner(db, domain, f, assignment)),
        Formula::Exists(v, f) => {
            let saved = assignment.get(v).cloned();
            let mut found = false;
            for value in domain {
                assignment.insert(v.clone(), value.clone());
                if eval_inner(db, domain, f, assignment) {
                    found = true;
                    break;
                }
            }
            restore(assignment, v, saved);
            found
        }
        Formula::Forall(v, f) => {
            let saved = assignment.get(v).cloned();
            let mut holds = true;
            for value in domain {
                assignment.insert(v.clone(), value.clone());
                if !eval_inner(db, domain, f, assignment) {
                    holds = false;
                    break;
                }
            }
            restore(assignment, v, saved);
            holds
        }
    }
}

fn restore(assignment: &mut Assignment, var: &str, saved: Option<Value>) {
    match saved {
        Some(v) => {
            assignment.insert(var.to_string(), v);
        }
        None => {
            assignment.remove(var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn graph() -> Database {
        // A directed path a -> b -> c -> d.
        let mut db = Database::new();
        db.insert("edge", tuple!["a", "b"]);
        db.insert("edge", tuple!["b", "c"]);
        db.insert("edge", tuple!["c", "d"]);
        db
    }

    fn edge(x: &str, y: &str) -> Formula {
        Formula::atom("edge", vec![Term::var(x), Term::var(y)])
    }

    #[test]
    fn sentences() {
        let db = graph();
        // There is an edge.
        let f = Formula::exists("x", Formula::exists("y", edge("x", "y")));
        assert!(eval_sentence(&db, &f));
        // Every node with an outgoing edge... trivial test: all edges start at "a"? false.
        let all_from_a = Formula::forall(
            "x",
            Formula::forall(
                "y",
                Formula::implies(edge("x", "y"), Formula::equals(Term::var("x"), Term::val("a"))),
            ),
        );
        assert!(!eval_sentence(&db, &all_from_a));
        // There is a path of length 2.
        let path2 = Formula::exists(
            "x",
            Formula::exists(
                "y",
                Formula::exists("z", Formula::and(vec![edge("x", "y"), edge("y", "z")])),
            ),
        );
        assert!(eval_sentence(&db, &path2));
        // There is a path of length 4 (false on a 3-edge path).
        let path4 = Formula::exists(
            "a",
            Formula::exists(
                "b",
                Formula::exists(
                    "c",
                    Formula::exists(
                        "d",
                        Formula::exists(
                            "e",
                            Formula::and(vec![
                                edge("a", "b"),
                                edge("b", "c"),
                                edge("c", "d"),
                                edge("d", "e"),
                            ]),
                        ),
                    ),
                ),
            ),
        );
        assert!(!eval_sentence(&db, &path4));
    }

    #[test]
    fn queries_with_free_variables() {
        let db = graph();
        // Nodes with both an incoming and an outgoing edge: b and c.
        let f = Formula::and(vec![
            Formula::exists("p", edge("p", "x")),
            Formula::exists("q", edge("x", "q")),
        ]);
        let rows = query(&db, &f);
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&vec![Value::sym("b")]));
        assert!(rows.contains(&vec![Value::sym("c")]));
    }

    #[test]
    fn free_variable_collection_and_depth() {
        let f = Formula::exists("x", Formula::and(vec![edge("x", "y"), edge("y", "z")]));
        assert_eq!(f.free_variables(), vec!["y".to_string(), "z".to_string()]);
        assert_eq!(f.quantifier_depth(), 1);
        let g = Formula::forall("a", Formula::exists("b", edge("a", "b")));
        assert_eq!(g.quantifier_depth(), 2);
        assert!(g.free_variables().is_empty());
    }

    #[test]
    fn negation_and_equality() {
        let db = graph();
        // "a" has no incoming edges.
        let no_incoming = Formula::not(Formula::exists(
            "x",
            Formula::atom("edge", vec![Term::var("x"), Term::val("a")]),
        ));
        assert!(eval_sentence(&db, &no_incoming));
        // Constants vs variables in equality.
        let f = Formula::exists(
            "x",
            Formula::and(vec![
                Formula::equals(Term::var("x"), Term::val("b")),
                Formula::exists("y", edge("x", "y")),
            ]),
        );
        assert!(eval_sentence(&db, &f));
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn unbound_variable_panics() {
        let db = graph();
        let f = edge("x", "y");
        eval_sentence(&db, &f);
    }
}
