//! Directory-level recovery: locate the newest checkpoint, replay every
//! segment after it, and tolerate exactly the states a crash of our own
//! writer can produce.
//!
//! The writer's invariants make recovery simple:
//!
//! * checkpoints appear atomically (temp + rename), so the newest
//!   checkpoint file is always complete and verifiable;
//! * every checkpoint rotates to a fresh segment named for the next epoch,
//!   so all records newer than the checkpoint live in segments whose
//!   file-name epoch exceeds the checkpoint epoch — older segments (which
//!   a crash between rename and deletion can leave behind) are skipped
//!   wholesale, never replayed;
//! * epochs are exactly sequential across the replayed segments (enforced
//!   by [`scan_segment`]), so a missing or reordered segment is detected
//!   as corruption instead of silently diverging;
//! * only the final segment's final record may be incomplete or
//!   checksum-failing (the torn tail an interrupted append leaves); it is
//!   dropped, and the recovered state is the last *durably complete*
//!   batch.

use crate::checkpoint::{parse_checkpoint_name, read_checkpoint};
use crate::error::WalError;
use crate::record::BatchRecord;
use crate::segment::{parse_segment_name, scan_segment};
use crate::vfs::Vfs;
use spatial_core::instance::SpatialInstance;
use std::path::{Path, PathBuf};

/// Everything recovery learned from the directory: the base state and the
/// committed batches after it, in replay order.
#[derive(Debug)]
pub struct Recovery {
    /// Epoch of the newest checkpoint (the oldest recoverable epoch).
    pub checkpoint_epoch: u64,
    /// The full instance as of [`checkpoint_epoch`].
    ///
    /// [`checkpoint_epoch`]: Recovery::checkpoint_epoch
    pub checkpoint_instance: SpatialInstance,
    /// Committed batches after the checkpoint, exactly sequential from
    /// `checkpoint_epoch + 1`.
    pub records: Vec<BatchRecord>,
    /// Whether a torn tail was found (and, on a writable open, truncated).
    pub torn_tail: bool,
    pub(crate) tail: Option<TailSegment>,
}

/// Where the final segment's valid prefix ends — the appender resumes here.
#[derive(Debug)]
pub(crate) struct TailSegment {
    pub(crate) path: PathBuf,
    pub(crate) first_epoch: u64,
    pub(crate) valid_len: u64,
}

impl Recovery {
    /// The newest recovered epoch: checkpoint plus one per replayed batch.
    pub fn head_epoch(&self) -> u64 {
        self.checkpoint_epoch + self.records.len() as u64
    }

    /// The record prefix reaching exactly `epoch`, for point-in-time
    /// reopen. Errors with the recoverable range if `epoch` predates the
    /// checkpoint (truncated away) or postdates the head (never logged).
    pub fn records_up_to(&self, epoch: u64) -> Result<&[BatchRecord], WalError> {
        if epoch < self.checkpoint_epoch || epoch > self.head_epoch() {
            return Err(WalError::UnknownEpoch {
                requested: epoch,
                oldest: self.checkpoint_epoch,
                newest: self.head_epoch(),
            });
        }
        Ok(&self.records[..(epoch - self.checkpoint_epoch) as usize])
    }
}

fn list_dir(vfs: &dyn Vfs, dir: &Path) -> Result<Vec<(String, PathBuf)>, WalError> {
    let names = vfs
        .list_dir(dir)
        .map_err(|e| WalError::io(format!("read dir {}", dir.display()), &e))?;
    Ok(names.into_iter().map(|name| (name.clone(), dir.join(name))).collect())
}

/// Scan `dir` on `vfs` and reconstruct the committed history. Read-only:
/// torn tails are noted but not truncated (the writable open does that).
pub fn scan_dir(vfs: &dyn Vfs, dir: &Path) -> Result<Recovery, WalError> {
    let files = list_dir(vfs, dir)?;

    let newest_checkpoint = files
        .iter()
        .filter_map(|(name, path)| parse_checkpoint_name(name).map(|e| (e, path)))
        .max_by_key(|(e, _)| *e);
    let Some((_, ckpt_path)) = newest_checkpoint else {
        return Err(WalError::NotADatabase {
            path: dir.display().to_string(),
            detail: "no checkpoint file found".to_string(),
        });
    };
    let (checkpoint_epoch, checkpoint_instance) = read_checkpoint(vfs, ckpt_path)?;

    let mut segments: Vec<(u64, String, PathBuf)> = files
        .iter()
        .filter_map(|(name, path)| {
            parse_segment_name(name).map(|e| (e, name.clone(), path.clone()))
        })
        .filter(|(first_epoch, _, _)| *first_epoch > checkpoint_epoch)
        .collect();
    segments.sort_by_key(|(e, _, _)| *e);

    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut tail = None;
    let mut prev_epoch = checkpoint_epoch;
    let last_idx = segments.len().wrapping_sub(1);
    for (idx, (_, name, path)) in segments.iter().enumerate() {
        let bytes = vfs
            .read(path)
            .map_err(|e| WalError::io(format!("read segment {}", path.display()), &e))?;
        let scan = scan_segment(&bytes, name, idx == last_idx, prev_epoch)?;
        prev_epoch += scan.records.len() as u64;
        records.extend(scan.records);
        if idx == last_idx {
            torn_tail = scan.torn;
            tail = Some(TailSegment {
                path: path.clone(),
                first_epoch: scan.first_epoch,
                valid_len: scan.valid_len,
            });
        }
    }

    Ok(Recovery { checkpoint_epoch, checkpoint_instance, records, torn_tail, tail })
}

/// Best-effort removal of files a checkpoint made obsolete: temp leftovers,
/// checkpoints older than `keep_epoch`, and segments entirely at or below
/// it. Failures are ignored — recovery skips these files anyway.
pub(crate) fn remove_stale(vfs: &dyn Vfs, dir: &Path, keep_epoch: u64) {
    let Ok(names) = vfs.list_dir(dir) else { return };
    for name in names {
        let stale = name.ends_with(".tmp")
            || parse_checkpoint_name(&name).is_some_and(|e| e < keep_epoch)
            || parse_segment_name(&name).is_some_and(|e| e <= keep_epoch);
        if stale {
            let _ = vfs.remove_file(&dir.join(name));
        }
    }
}
