//! Write-ahead logging, checkpoints, and crash recovery for the
//! topological database.
//!
//! The facade (`topodb`) publishes every commit as an immutable epoch —
//! instance plus changed-name set — which is exactly the shape of a
//! replayable log record. This crate persists that sequence:
//!
//! * **Records** ([`record`]): one length-prefixed, CRC-32-checksummed
//!   record per committed batch, carrying the epoch number, the
//!   insert/remove ops with *exact* rational coordinates
//!   (numerator/denominator pairs via [`spatial_core::wire`]), and the
//!   changed-name set. Hand-rolled framing — the workspace builds offline,
//!   so there is no serde.
//! * **Segments** ([`segment`]): records append to
//!   `seg-{first_epoch:016x}.log` files that rotate at a size threshold;
//!   file-name order is epoch order.
//! * **Sync policy** ([`SyncPolicy`]): `PerCommit` fsync for full
//!   durability, `Interval` group-commit bounding loss to a time window,
//!   or `None` for page-cache-only durability.
//! * **Checkpoints** ([`checkpoint`]): periodically the full
//!   [`spatial_core::instance::SpatialInstance`] is snapshotted
//!   (temp-file + atomic rename), the log rotates, and everything older is
//!   truncated away — bounding both replay time and disk usage.
//! * **Recovery** ([`recovery`]): reopening scans newest checkpoint + the
//!   segments after it. A *torn tail* — an incomplete final record, or a
//!   checksum-failing record with nothing after it — is silently dropped
//!   (that is the state an interrupted append legitimately leaves);
//!   any other anomaly, including a CRC mismatch mid-log, is a loud
//!   [`WalError::Corrupt`] naming the file and byte offset.
//!
//! The crate knows nothing about arrangements, invariants, or queries: it
//! stores and replays batches of named-region mutations. `topodb` owns the
//! protocol above it (log-before-publish ordering, replay through its own
//! rebuild path, point-in-time reopen).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod crc;
pub mod error;
pub mod record;
pub mod recovery;
pub mod segment;
pub mod testing;
pub mod writer;

pub use error::WalError;
pub use record::{BatchRecord, WalOp};
pub use recovery::Recovery;
pub use writer::{SyncPolicy, Wal, WalConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::instance::SpatialInstance;
    use spatial_core::region::Region;
    use std::path::{Path, PathBuf};

    /// Fresh scratch directory, cleaned up on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir = std::env::temp_dir()
                .join(format!("wal-lib-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            Scratch(dir)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn region(i: u64) -> Region {
        Region::rect_from_ints(i as i64, 0, i as i64 + 2, 2)
    }

    /// Run `n` insert batches through a fresh wal, returning the final
    /// instance.
    fn commit_n(wal: &Wal, n: u64) -> SpatialInstance {
        let mut inst = SpatialInstance::new();
        for epoch in 1..=n {
            let name = format!("r{epoch}");
            inst.insert(name.clone(), region(epoch));
            wal.append_batch(
                &BatchRecord {
                    epoch,
                    ops: vec![WalOp::Insert(name.clone(), region(epoch))],
                    changed: vec![name],
                },
                &inst,
            )
            .unwrap();
        }
        inst
    }

    #[test]
    fn create_then_reopen_replays_everything() {
        let scratch = Scratch::new("reopen");
        let wal = Wal::create(scratch.path(), 0, &SpatialInstance::new(), WalConfig::default())
            .unwrap();
        let inst = commit_n(&wal, 5);
        drop(wal);

        let (wal, recovery) = Wal::open(scratch.path(), WalConfig::default()).unwrap();
        assert_eq!(recovery.checkpoint_epoch, 0);
        assert_eq!(recovery.head_epoch(), 5);
        assert_eq!(recovery.records.len(), 5);
        assert!(!recovery.torn_tail);
        // Replaying the records over the checkpoint reproduces the final
        // instance exactly.
        let mut replayed = recovery.checkpoint_instance.clone();
        for rec in &recovery.records {
            for op in &rec.ops {
                match op {
                    WalOp::Insert(name, r) => {
                        replayed.insert(name.clone(), r.clone());
                    }
                    WalOp::Remove(name) => {
                        replayed.remove(name);
                    }
                }
            }
        }
        assert_eq!(replayed, inst);
        assert_eq!(wal.head_epoch(), 5);
    }

    #[test]
    fn appends_resume_after_reopen() {
        let scratch = Scratch::new("resume");
        let wal = Wal::create(scratch.path(), 0, &SpatialInstance::new(), WalConfig::default())
            .unwrap();
        let mut inst = commit_n(&wal, 3);
        drop(wal);

        let (wal, _) = Wal::open(scratch.path(), WalConfig::default()).unwrap();
        inst.insert("x", region(50));
        wal.append_batch(
            &BatchRecord {
                epoch: 4,
                ops: vec![WalOp::Insert("x".into(), region(50))],
                changed: vec!["x".into()],
            },
            &inst,
        )
        .unwrap();
        drop(wal);

        let (_, recovery) = Wal::open(scratch.path(), WalConfig::default()).unwrap();
        assert_eq!(recovery.head_epoch(), 4);
    }

    #[test]
    fn out_of_order_append_is_refused() {
        let scratch = Scratch::new("order");
        let wal = Wal::create(scratch.path(), 0, &SpatialInstance::new(), WalConfig::default())
            .unwrap();
        let inst = commit_n(&wal, 2);
        let err = wal
            .append_batch(&BatchRecord { epoch: 2, ops: vec![], changed: vec![] }, &inst)
            .unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn create_refuses_existing_database() {
        let scratch = Scratch::new("exists");
        let wal = Wal::create(scratch.path(), 0, &SpatialInstance::new(), WalConfig::default())
            .unwrap();
        drop(wal);
        let err =
            Wal::create(scratch.path(), 0, &SpatialInstance::new(), WalConfig::default())
                .unwrap_err();
        assert!(matches!(err, WalError::AlreadyExists { .. }), "{err:?}");
    }

    #[test]
    fn open_of_nondatabase_is_refused() {
        let scratch = Scratch::new("nondb");
        std::fs::create_dir_all(scratch.path()).unwrap();
        let err = Wal::open(scratch.path(), WalConfig::default()).unwrap_err();
        assert!(matches!(err, WalError::NotADatabase { .. }), "{err:?}");
    }

    #[test]
    fn segment_rotation_preserves_replay() {
        let scratch = Scratch::new("rotate");
        // Tiny segments force a rotation roughly every record.
        let cfg = WalConfig::default().with_segment_max_bytes(96);
        let wal = Wal::create(scratch.path(), 0, &SpatialInstance::new(), cfg).unwrap();
        commit_n(&wal, 12);
        drop(wal);

        assert!(
            testing::segment_files(scratch.path()).len() > 3,
            "expected several segments, found {:?}",
            testing::segment_files(scratch.path())
        );
        let (_, recovery) = Wal::open(scratch.path(), cfg).unwrap();
        assert_eq!(recovery.head_epoch(), 12);
        assert_eq!(recovery.records.len(), 12);
    }

    #[test]
    fn checkpoint_truncates_and_bounds_replay() {
        let scratch = Scratch::new("ckpt");
        let cfg = WalConfig::default().with_checkpoint_every(4);
        let wal = Wal::create(scratch.path(), 0, &SpatialInstance::new(), cfg).unwrap();
        commit_n(&wal, 10);
        assert_eq!(wal.checkpoint_epoch(), 8, "periodic checkpoint at the 8th record");
        drop(wal);

        let (_, recovery) = Wal::open(scratch.path(), cfg).unwrap();
        assert_eq!(recovery.checkpoint_epoch, 8);
        assert_eq!(recovery.records.len(), 2, "only post-checkpoint records replay");
        assert_eq!(recovery.head_epoch(), 10);
        // Epochs below the checkpoint are no longer recoverable.
        let err = recovery.records_up_to(3).unwrap_err();
        assert_eq!(err, WalError::UnknownEpoch { requested: 3, oldest: 8, newest: 10 });
        assert_eq!(recovery.records_up_to(9).unwrap().len(), 1);
    }

    #[test]
    fn explicit_checkpoint_and_sync() {
        let scratch = Scratch::new("explicit");
        let cfg = WalConfig::default().with_sync(SyncPolicy::None);
        let wal = Wal::create(scratch.path(), 0, &SpatialInstance::new(), cfg).unwrap();
        let inst = commit_n(&wal, 3);
        wal.sync().unwrap();
        wal.checkpoint(&inst).unwrap();
        assert_eq!(wal.checkpoint_epoch(), 3);
        drop(wal);

        let (_, recovery) = Wal::open(scratch.path(), cfg).unwrap();
        assert_eq!(recovery.checkpoint_epoch, 3);
        assert_eq!(recovery.checkpoint_instance.len(), 3);
        assert!(recovery.records.is_empty());
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let scratch = Scratch::new("torn");
        let wal = Wal::create(scratch.path(), 0, &SpatialInstance::new(), WalConfig::default())
            .unwrap();
        let mut inst = commit_n(&wal, 4);
        drop(wal);

        // Crash mid-append: chop the last record in half.
        let segments = testing::segment_files(scratch.path());
        let seg = segments.last().unwrap();
        let bounds = testing::record_boundaries(seg);
        let torn_at = (bounds[3] + bounds[4]) / 2;
        testing::truncate_at(seg, torn_at);

        let (wal, recovery) = Wal::open(scratch.path(), WalConfig::default()).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.head_epoch(), 3, "the half-written epoch 4 is gone");
        // The torn bytes are physically gone and epoch 4 can be re-logged.
        assert_eq!(std::fs::metadata(seg).unwrap().len(), bounds[3]);
        inst.insert("again", region(9));
        wal.append_batch(
            &BatchRecord {
                epoch: 4,
                ops: vec![WalOp::Insert("again".into(), region(9))],
                changed: vec!["again".into()],
            },
            &inst,
        )
        .unwrap();
        drop(wal);
        let (_, recovery) = Wal::open(scratch.path(), WalConfig::default()).unwrap();
        assert_eq!(recovery.head_epoch(), 4);
        assert!(!recovery.torn_tail);
    }

    #[test]
    fn mid_log_corruption_fails_with_offset() {
        let scratch = Scratch::new("midlog");
        let wal = Wal::create(scratch.path(), 0, &SpatialInstance::new(), WalConfig::default())
            .unwrap();
        commit_n(&wal, 4);
        drop(wal);

        let segments = testing::segment_files(scratch.path());
        let seg = segments.last().unwrap();
        let bounds = testing::record_boundaries(seg);
        // Flip a byte inside the *second* record's payload: records follow
        // it, so this must be loud, and the error must point at the
        // record's own offset.
        let flip_at = bounds[1] + 12;
        testing::flip_byte(seg, flip_at);
        let err = Wal::open(scratch.path(), WalConfig::default()).unwrap_err();
        match err {
            WalError::Corrupt { offset, detail, .. } => {
                assert_eq!(offset, bounds[1], "error points at the corrupted record");
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn read_is_nondestructive() {
        let scratch = Scratch::new("readonly");
        let wal = Wal::create(scratch.path(), 0, &SpatialInstance::new(), WalConfig::default())
            .unwrap();
        commit_n(&wal, 3);
        drop(wal);
        let segments = testing::segment_files(scratch.path());
        let seg = segments.last().unwrap();
        let bounds = testing::record_boundaries(seg);
        testing::truncate_at(seg, bounds[3] - 1);

        let before = std::fs::read(seg).unwrap();
        let recovery = Wal::read(scratch.path()).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.head_epoch(), 2);
        assert_eq!(std::fs::read(seg).unwrap(), before, "read-only scan must not truncate");
    }
}
