//! Write-ahead logging, checkpoints, and crash recovery for the
//! topological database.
//!
//! The facade (`topodb`) publishes every commit as an immutable epoch —
//! instance plus changed-name set — which is exactly the shape of a
//! replayable log record. This crate persists that sequence:
//!
//! * **Records** ([`record`]): one length-prefixed, CRC-32-checksummed
//!   record per committed batch, carrying the epoch number, the
//!   insert/remove ops with *exact* rational coordinates
//!   (numerator/denominator pairs via [`spatial_core::wire`]), and the
//!   changed-name set. Hand-rolled framing — the workspace builds offline,
//!   so there is no serde.
//! * **Segments** ([`segment`]): records append to
//!   `seg-{first_epoch:016x}.log` files that rotate at a size threshold;
//!   file-name order is epoch order.
//! * **Sync policy** ([`SyncPolicy`]): `PerCommit` fsync for full
//!   durability, `Interval` group-commit bounding loss to a time window,
//!   or `None` for page-cache-only durability.
//! * **Checkpoints** ([`checkpoint`]): periodically the full
//!   [`spatial_core::instance::SpatialInstance`] is snapshotted
//!   (temp-file + atomic rename), the log rotates, and everything older is
//!   truncated away — bounding both replay time and disk usage.
//! * **Recovery** ([`recovery`]): reopening scans newest checkpoint + the
//!   segments after it. A *torn tail* — an incomplete final record, or a
//!   checksum-failing record with nothing after it — is silently dropped
//!   (that is the state an interrupted append legitimately leaves);
//!   any other anomaly, including a CRC mismatch mid-log, is a loud
//!   [`WalError::Corrupt`] naming the file and byte offset.
//! * **Storage backends** ([`vfs`]): every I/O site goes through the
//!   [`Vfs`] trait — [`RealFs`] (the OS filesystem) by default, or the
//!   deterministic in-memory [`SimFs`] whose seeded [`FaultPlan`] injects
//!   torn writes, failed fsyncs, `EINTR`, `ENOSPC`, and power loss at
//!   numbered I/O points ([`simfs`]).
//!
//! # Failure model
//!
//! Storage fails in qualitatively different ways, and the log reports
//! them so callers can react correctly:
//!
//! * **Transient** ([`WalError::is_transient`], `EINTR`-style
//!   [`Io`](WalError::Io) errors): the operation did not take effect and
//!   may be retried as-is. A *failed append* is always retry-safe even if
//!   bytes were torn onto the file: the appender records the damage and
//!   truncates back to the last record boundary before the next write, so
//!   a retried record can never land after garbage.
//! * **Fatal** (every other [`Io`](WalError::Io) error — `ENOSPC`,
//!   permission loss, device failure, and **any failed fsync**): the
//!   operation cannot succeed by repetition. Failed fsyncs are the sharp
//!   edge (the "fsync-gate" semantics of real kernels): the failed call
//!   may have *dropped* the dirty pages, so the durable tail is unknown
//!   and the appender [breaks](Wal::broken) — it refuses all further
//!   appends rather than build history on an unknowable base. Reopening
//!   the directory re-scans actual disk state and resumes from the last
//!   durable record.
//! * **Corrupting** ([`WalError::Corrupt`]): bytes on disk (or an
//!   attempted out-of-order append) that no crash of our own writer can
//!   produce. Never retried, never repaired silently.
//!
//! Failures *after* a record is durably appended (a periodic checkpoint
//! or segment rotation that fails) do not retract the append: they are
//! reported out-of-band in [`AppendOutcome::maintenance`], and the rare
//! case that would make future appends unrecoverable (a rotation failing
//! after its checkpoint renamed into place) breaks the appender instead
//! of losing records. Directory-fsync failures during checkpointing are
//! retried while transient, then downgraded to best-effort and counted in
//! [`WalStats::dir_sync_downgrades`] — they narrow one rename's
//! durability window, never consistency.
//!
//! The crate knows nothing about arrangements, invariants, or queries: it
//! stores and replays batches of named-region mutations. `topodb` owns the
//! protocol above it (log-before-publish ordering, replay through its own
//! rebuild path, retry/degradation policy, point-in-time reopen).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod crc;
pub mod error;
pub mod record;
pub mod recovery;
pub mod segment;
pub mod simfs;
pub mod testing;
pub mod vfs;
pub mod writer;

pub use error::WalError;
pub use record::{BatchRecord, WalOp};
pub use recovery::Recovery;
pub use simfs::{Fault, FaultPlan, SimFs};
pub use vfs::{RealFs, Vfs, VfsError, VfsErrorKind, VfsFile};
pub use writer::{AppendOutcome, SyncPolicy, Wal, WalConfig, WalStats};

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::instance::SpatialInstance;
    use spatial_core::region::Region;
    use std::path::Path;
    use std::sync::Arc;

    const DIR: &str = "/db";

    fn dir() -> &'static Path {
        Path::new(DIR)
    }

    fn sim() -> (SimFs, Arc<dyn Vfs>) {
        let sim = SimFs::new();
        let shared: Arc<dyn Vfs> = Arc::new(sim.clone());
        (sim, shared)
    }

    fn create_on(vfs: &Arc<dyn Vfs>, cfg: WalConfig) -> Wal {
        Wal::create_with_vfs(Arc::clone(vfs), dir(), 0, &SpatialInstance::new(), cfg).unwrap()
    }

    fn open_on(vfs: &Arc<dyn Vfs>, cfg: WalConfig) -> (Wal, Recovery) {
        Wal::open_with_vfs(Arc::clone(vfs), dir(), cfg).unwrap()
    }

    fn region(i: u64) -> Region {
        Region::rect_from_ints(i as i64, 0, i as i64 + 2, 2)
    }

    fn batch(epoch: u64, name: &str, r: Region) -> BatchRecord {
        BatchRecord {
            epoch,
            ops: vec![WalOp::Insert(name.to_string(), r)],
            changed: vec![name.to_string()],
        }
    }

    /// Run `n` insert batches through a fresh wal, returning the final
    /// instance.
    fn commit_n(wal: &Wal, n: u64) -> SpatialInstance {
        let mut inst = SpatialInstance::new();
        for epoch in 1..=n {
            let name = format!("r{epoch}");
            inst.insert(name.clone(), region(epoch));
            let out = wal.append_batch(&batch(epoch, &name, region(epoch)), &inst).unwrap();
            assert!(out.maintenance.is_none(), "{:?}", out.maintenance);
        }
        inst
    }

    #[test]
    fn create_then_reopen_replays_everything() {
        let (_, vfs) = sim();
        let wal = create_on(&vfs, WalConfig::default());
        let inst = commit_n(&wal, 5);
        drop(wal);

        let (wal, recovery) = open_on(&vfs, WalConfig::default());
        assert_eq!(recovery.checkpoint_epoch, 0);
        assert_eq!(recovery.head_epoch(), 5);
        assert_eq!(recovery.records.len(), 5);
        assert!(!recovery.torn_tail);
        // Replaying the records over the checkpoint reproduces the final
        // instance exactly.
        let mut replayed = recovery.checkpoint_instance.clone();
        for rec in &recovery.records {
            for op in &rec.ops {
                match op {
                    WalOp::Insert(name, r) => {
                        replayed.insert(name.clone(), r.clone());
                    }
                    WalOp::Remove(name) => {
                        replayed.remove(name);
                    }
                }
            }
        }
        assert_eq!(replayed, inst);
        assert_eq!(wal.head_epoch(), 5);
    }

    #[test]
    fn real_fs_round_trip() {
        // The default backend is the OS filesystem; one end-to-end pass
        // keeps RealFs covered inside this crate (the topodb recovery
        // suites exercise it heavily on top).
        let dir = std::env::temp_dir().join(format!("wal-lib-realfs-{}", std::process::id()));
        let _ = RealFs.remove_dir_all(&dir);
        let wal = Wal::create(&dir, 0, &SpatialInstance::new(), WalConfig::default()).unwrap();
        commit_n(&wal, 3);
        drop(wal);
        let (_, recovery) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(recovery.head_epoch(), 3);
        RealFs.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_resume_after_reopen() {
        let (_, vfs) = sim();
        let wal = create_on(&vfs, WalConfig::default());
        let mut inst = commit_n(&wal, 3);
        drop(wal);

        let (wal, _) = open_on(&vfs, WalConfig::default());
        inst.insert("x", region(50));
        let out = wal.append_batch(&batch(4, "x", region(50)), &inst).unwrap();
        assert!(out.maintenance.is_none());
        drop(wal);

        let (_, recovery) = open_on(&vfs, WalConfig::default());
        assert_eq!(recovery.head_epoch(), 4);
    }

    #[test]
    fn out_of_order_append_is_refused() {
        let (_, vfs) = sim();
        let wal = create_on(&vfs, WalConfig::default());
        let inst = commit_n(&wal, 2);
        let err = wal
            .append_batch(&BatchRecord { epoch: 2, ops: vec![], changed: vec![] }, &inst)
            .unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err:?}");
        assert!(!err.is_transient());
    }

    #[test]
    fn create_refuses_existing_database() {
        let (_, vfs) = sim();
        let wal = create_on(&vfs, WalConfig::default());
        drop(wal);
        let err = Wal::create_with_vfs(
            Arc::clone(&vfs),
            dir(),
            0,
            &SpatialInstance::new(),
            WalConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, WalError::AlreadyExists { .. }), "{err:?}");
    }

    #[test]
    fn open_of_nondatabase_is_refused() {
        let (sim, vfs) = sim();
        sim.create_dir_all(dir()).unwrap();
        let err = Wal::open_with_vfs(vfs, dir(), WalConfig::default()).unwrap_err();
        assert!(matches!(err, WalError::NotADatabase { .. }), "{err:?}");
    }

    #[test]
    fn segment_rotation_preserves_replay() {
        let (sim, vfs) = sim();
        // Tiny segments force a rotation roughly every record.
        let cfg = WalConfig::default().with_segment_max_bytes(96);
        let wal = create_on(&vfs, cfg);
        commit_n(&wal, 12);
        drop(wal);

        let segments = testing::segment_files(&sim, dir()).unwrap();
        assert!(segments.len() > 3, "expected several segments, found {segments:?}");
        let (_, recovery) = open_on(&vfs, cfg);
        assert_eq!(recovery.head_epoch(), 12);
        assert_eq!(recovery.records.len(), 12);
    }

    #[test]
    fn checkpoint_truncates_and_bounds_replay() {
        let (_, vfs) = sim();
        let cfg = WalConfig::default().with_checkpoint_every(4);
        let wal = create_on(&vfs, cfg);
        commit_n(&wal, 10);
        assert_eq!(wal.checkpoint_epoch(), 8, "periodic checkpoint at the 8th record");
        drop(wal);

        let (_, recovery) = open_on(&vfs, cfg);
        assert_eq!(recovery.checkpoint_epoch, 8);
        assert_eq!(recovery.records.len(), 2, "only post-checkpoint records replay");
        assert_eq!(recovery.head_epoch(), 10);
        // Epochs below the checkpoint are no longer recoverable.
        let err = recovery.records_up_to(3).unwrap_err();
        assert_eq!(err, WalError::UnknownEpoch { requested: 3, oldest: 8, newest: 10 });
        assert_eq!(recovery.records_up_to(9).unwrap().len(), 1);
    }

    #[test]
    fn explicit_checkpoint_and_sync() {
        let (_, vfs) = sim();
        let cfg = WalConfig::default().with_sync(SyncPolicy::None);
        let wal = create_on(&vfs, cfg);
        let inst = commit_n(&wal, 3);
        wal.sync().unwrap();
        wal.checkpoint(&inst).unwrap();
        assert_eq!(wal.checkpoint_epoch(), 3);
        drop(wal);

        let (_, recovery) = open_on(&vfs, cfg);
        assert_eq!(recovery.checkpoint_epoch, 3);
        assert_eq!(recovery.checkpoint_instance.len(), 3);
        assert!(recovery.records.is_empty());
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let (sim, vfs) = sim();
        let wal = create_on(&vfs, WalConfig::default());
        let mut inst = commit_n(&wal, 4);
        drop(wal);

        // Crash mid-append: chop the last record in half.
        let segments = testing::segment_files(&sim, dir()).unwrap();
        let seg = segments.last().unwrap();
        let bounds = testing::record_boundaries(&sim, seg).unwrap();
        let torn_at = (bounds[3] + bounds[4]) / 2;
        testing::truncate_at(&sim, seg, torn_at).unwrap();

        let (wal, recovery) = open_on(&vfs, WalConfig::default());
        assert!(recovery.torn_tail);
        assert_eq!(recovery.head_epoch(), 3, "the half-written epoch 4 is gone");
        // The torn bytes are physically gone and epoch 4 can be re-logged.
        assert_eq!(testing::file_len(&sim, seg).unwrap(), bounds[3]);
        inst.insert("again", region(9));
        let out = wal.append_batch(&batch(4, "again", region(9)), &inst).unwrap();
        assert!(out.maintenance.is_none());
        drop(wal);
        let (_, recovery) = open_on(&vfs, WalConfig::default());
        assert_eq!(recovery.head_epoch(), 4);
        assert!(!recovery.torn_tail);
    }

    #[test]
    fn mid_log_corruption_fails_with_offset() {
        let (sim, vfs) = sim();
        let wal = create_on(&vfs, WalConfig::default());
        commit_n(&wal, 4);
        drop(wal);

        let segments = testing::segment_files(&sim, dir()).unwrap();
        let seg = segments.last().unwrap();
        let bounds = testing::record_boundaries(&sim, seg).unwrap();
        // Flip a byte inside the *second* record's payload: records follow
        // it, so this must be loud, and the error must point at the
        // record's own offset.
        let flip_at = bounds[1] + 12;
        testing::flip_byte(&sim, seg, flip_at).unwrap();
        let err = Wal::open_with_vfs(vfs, dir(), WalConfig::default()).unwrap_err();
        match err {
            WalError::Corrupt { offset, detail, .. } => {
                assert_eq!(offset, bounds[1], "error points at the corrupted record");
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn read_is_nondestructive() {
        let (sim, vfs) = sim();
        let wal = create_on(&vfs, WalConfig::default());
        commit_n(&wal, 3);
        drop(wal);
        let segments = testing::segment_files(&sim, dir()).unwrap();
        let seg = segments.last().unwrap();
        let bounds = testing::record_boundaries(&sim, seg).unwrap();
        testing::truncate_at(&sim, seg, bounds[3] - 1).unwrap();

        let before = sim.read(seg).unwrap();
        let recovery = Wal::read_with_vfs(&*vfs, dir()).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.head_epoch(), 2);
        assert_eq!(sim.read(seg).unwrap(), before, "read-only scan must not truncate");
    }

    // ---- fault-injection behavior of the appender itself ----

    #[test]
    fn transient_append_fault_is_retryable_without_corruption() {
        let (sim, vfs) = sim();
        let wal = create_on(&vfs, WalConfig::default());
        let inst = commit_n(&wal, 2);

        // Tear the next append after 7 bytes; the error is transient.
        sim.set_plan(FaultPlan::none().fail_writes(1, Fault::Torn { keep: 7 }));
        let mut inst3 = inst.clone();
        inst3.insert("r3", region(3));
        let err = wal.append_batch(&batch(3, "r3", region(3)), &inst3).unwrap_err();
        assert!(err.is_transient(), "{err:?}");

        // The bare retry succeeds: the appender trims the torn bytes first.
        let out = wal.append_batch(&batch(3, "r3", region(3)), &inst3).unwrap();
        assert!(out.maintenance.is_none());
        drop(wal);
        let (_, recovery) = open_on(&vfs, WalConfig::default());
        assert_eq!(recovery.head_epoch(), 3);
        assert!(!recovery.torn_tail, "no torn garbage left behind the retried record");
    }

    #[test]
    fn failed_fsync_breaks_the_appender_and_loses_only_unsynced_bytes() {
        let (sim, vfs) = sim();
        let wal = create_on(&vfs, WalConfig::default());
        let inst = commit_n(&wal, 2);

        sim.set_plan(FaultPlan::none().fail_syncs(1, Fault::SyncFail));
        let mut inst3 = inst.clone();
        inst3.insert("r3", region(3));
        let err = wal.append_batch(&batch(3, "r3", region(3)), &inst3).unwrap_err();
        assert!(!err.is_transient(), "failed fsync must never be reported transient");
        assert_eq!(wal.broken(), Some(err.clone()));

        // The appender refuses further work with the same error.
        let err2 = wal.append_batch(&batch(3, "r3", region(3)), &inst3).unwrap_err();
        assert_eq!(err2, err);
        std::mem::forget(wal); // crash: Drop would try (and fail) to sync

        // Reopen sees exactly the synced prefix: epochs 1..=2.
        sim.power_cycle();
        let (_, recovery) = open_on(&vfs, WalConfig::default());
        assert_eq!(recovery.head_epoch(), 2, "the unacknowledged epoch 3 is honestly gone");
    }

    #[test]
    fn enospc_is_fatal_not_transient() {
        let (sim, vfs) = sim();
        let wal = create_on(&vfs, WalConfig::default());
        let inst = commit_n(&wal, 1);
        sim.set_plan(FaultPlan::none().fail_writes(1, Fault::NoSpace));
        let mut inst2 = inst.clone();
        inst2.insert("r2", region(2));
        let err = wal.append_batch(&batch(2, "r2", region(2)), &inst2).unwrap_err();
        assert!(matches!(err, WalError::Io { kind: VfsErrorKind::NoSpace, .. }), "{err:?}");
        assert!(!err.is_transient());
    }

    #[test]
    fn crash_fault_snapshots_only_synced_state() {
        let (sim, vfs) = sim();
        let cfg = WalConfig::default().with_sync(SyncPolicy::None);
        let wal = create_on(&vfs, cfg);
        let mut inst = commit_n(&wal, 2); // never synced under SyncPolicy::None
        wal.sync().unwrap(); // ... until now: epochs 1..=2 are durable
        inst.insert("r3", region(3));
        let out = wal.append_batch(&batch(3, "r3", region(3)), &inst).unwrap();
        assert!(out.maintenance.is_none());

        sim.set_plan(FaultPlan::none().at(sim.io_points(), Fault::Crash));
        let mut inst4 = inst.clone();
        inst4.insert("r4", region(4));
        let err = wal.append_batch(&batch(4, "r4", region(4)), &inst4).unwrap_err();
        assert!(!err.is_transient());
        assert!(sim.crashed());
        std::mem::forget(wal);

        sim.power_cycle();
        let (_, recovery) = open_on(&vfs, cfg);
        assert_eq!(recovery.head_epoch(), 2, "unsynced epoch 3 died with the machine");
    }

    #[test]
    fn fault_plans_are_deterministic_in_their_seed() {
        for seed in 0..32u64 {
            let a = format!("{:?}", FaultPlan::random(seed, 64));
            let b = format!("{:?}", FaultPlan::random(seed, 64));
            assert_eq!(a, b, "seed {seed}");
        }
        // ... and not all identical.
        let distinct: std::collections::BTreeSet<String> =
            (0..32u64).map(|s| format!("{:?}", FaultPlan::random(s, 64))).collect();
        assert!(distinct.len() > 8, "schedules should vary across seeds: {}", distinct.len());
    }
}
