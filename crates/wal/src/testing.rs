//! Crash-injection support for recovery tests.
//!
//! The recovery differential suites (here and in `topodb`) simulate
//! crashes by mutilating log files directly — truncating at chosen byte
//! offsets, flipping payload bytes — then reopening. These helpers expose
//! just enough framing knowledge (record boundaries, payload extents) for
//! those tests to aim precisely without re-implementing the format.
//!
//! This module is test *support*, not part of the durability API: nothing
//! here is used by the writer or recovery paths.

use crate::record::RECORD_HEADER_LEN;
use crate::segment::{parse_segment_name, SEGMENT_HEADER_LEN};
use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};

/// The log's segment files under `dir`, sorted by first epoch.
pub fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut segments: Vec<(u64, PathBuf)> = fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name();
            parse_segment_name(name.to_str()?).map(|e| (e, entry.path()))
        })
        .collect();
    segments.sort_by_key(|(e, _)| *e);
    segments.into_iter().map(|(_, p)| p).collect()
}

/// Byte offsets of the record boundaries in a segment file: the offset at
/// which each record *ends* (equivalently, where the next begins), starting
/// with the end of the segment header. Truncating the file at any returned
/// offset simulates a crash exactly between two appends; truncating
/// strictly between two consecutive offsets simulates a torn append.
///
/// Walks raw framing only (lengths, not checksums), so it also works on
/// files the test has already corrupted.
pub fn record_boundaries(path: &Path) -> Vec<u64> {
    let bytes = fs::read(path).unwrap_or_default();
    let mut boundaries = Vec::new();
    if bytes.len() < SEGMENT_HEADER_LEN {
        return boundaries;
    }
    boundaries.push(SEGMENT_HEADER_LEN as u64);
    let mut pos = SEGMENT_HEADER_LEN;
    while bytes.len() - pos >= RECORD_HEADER_LEN {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let end = pos + RECORD_HEADER_LEN + len;
        if end > bytes.len() {
            break;
        }
        boundaries.push(end as u64);
        pos = end;
    }
    boundaries
}

/// Truncate the file to exactly `len` bytes — the crash simulator.
pub fn truncate_at(path: &Path, len: u64) {
    let file = OpenOptions::new().write(true).open(path).expect("open for truncate");
    file.set_len(len).expect("truncate");
    file.sync_all().expect("fsync after truncate");
}

/// XOR one byte of the file at `offset` — the bit-rot simulator.
pub fn flip_byte(path: &Path, offset: u64) {
    let mut bytes = fs::read(path).expect("read for flip");
    let i = offset as usize;
    assert!(i < bytes.len(), "flip offset {offset} past end of {}", path.display());
    bytes[i] ^= 0x5A;
    fs::write(path, bytes).expect("write flipped bytes");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BatchRecord, WalOp};
    use crate::writer::{Wal, WalConfig};
    use spatial_core::instance::SpatialInstance;
    use spatial_core::region::Region;

    #[test]
    fn boundaries_track_appends() {
        let dir = std::env::temp_dir().join(format!("wal-testing-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let wal = Wal::create(&dir, 0, &SpatialInstance::new(), WalConfig::default()).unwrap();
        let mut inst = SpatialInstance::new();
        for epoch in 1..=3u64 {
            let name = format!("r{epoch}");
            let region = Region::rect_from_ints(0, 0, epoch as i64, 1);
            inst.insert(name.clone(), region.clone());
            wal.append_batch(
                &BatchRecord {
                    epoch,
                    ops: vec![WalOp::Insert(name.clone(), region)],
                    changed: vec![name],
                },
                &inst,
            )
            .unwrap();
        }
        let segments = segment_files(&dir);
        assert_eq!(segments.len(), 1);
        let boundaries = record_boundaries(&segments[0]);
        // Header end + one boundary per record.
        assert_eq!(boundaries.len(), 4);
        assert_eq!(boundaries[0], SEGMENT_HEADER_LEN as u64);
        assert_eq!(boundaries[3], fs::metadata(&segments[0]).unwrap().len());
        drop(wal);
        fs::remove_dir_all(&dir).unwrap();
    }
}
