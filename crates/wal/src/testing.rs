//! Crash-injection support for recovery tests.
//!
//! The recovery differential suites (here and in `topodb`) simulate
//! crashes by mutilating log files directly — truncating at chosen byte
//! offsets, flipping payload bytes — then reopening. These helpers expose
//! just enough framing knowledge (record boundaries, payload extents) for
//! those tests to aim precisely without re-implementing the format.
//!
//! Every helper takes the [`Vfs`] the log lives on and returns `Result`,
//! so the same harness drives both the on-disk truncation suites and the
//! [`SimFs`](crate::SimFs) chaos suites.
//!
//! This module is test *support*, not part of the durability API: nothing
//! here is used by the writer or recovery paths.

use crate::error::WalError;
use crate::record::RECORD_HEADER_LEN;
use crate::segment::{parse_segment_name, SEGMENT_HEADER_LEN};
use crate::vfs::Vfs;
use std::path::{Path, PathBuf};

/// The log's segment files under `dir`, sorted by first epoch.
pub fn segment_files(vfs: &dyn Vfs, dir: &Path) -> Result<Vec<PathBuf>, WalError> {
    let names = vfs
        .list_dir(dir)
        .map_err(|e| WalError::io(format!("read dir {}", dir.display()), &e))?;
    let mut segments: Vec<(u64, PathBuf)> = names
        .into_iter()
        .filter_map(|name| parse_segment_name(&name).map(|e| (e, dir.join(name))))
        .collect();
    segments.sort_by_key(|(e, _)| *e);
    Ok(segments.into_iter().map(|(_, p)| p).collect())
}

/// Byte offsets of the record boundaries in a segment file: the offset at
/// which each record *ends* (equivalently, where the next begins), starting
/// with the end of the segment header. Truncating the file at any returned
/// offset simulates a crash exactly between two appends; truncating
/// strictly between two consecutive offsets simulates a torn append.
///
/// Walks raw framing only (lengths, not checksums), so it also works on
/// files the test has already corrupted.
pub fn record_boundaries(vfs: &dyn Vfs, path: &Path) -> Result<Vec<u64>, WalError> {
    let bytes = vfs
        .read(path)
        .map_err(|e| WalError::io(format!("read {}", path.display()), &e))?;
    let mut boundaries = Vec::new();
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Ok(boundaries);
    }
    boundaries.push(SEGMENT_HEADER_LEN as u64);
    let mut pos = SEGMENT_HEADER_LEN;
    while bytes.len() - pos >= RECORD_HEADER_LEN {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let end = pos + RECORD_HEADER_LEN + len;
        if end > bytes.len() {
            break;
        }
        boundaries.push(end as u64);
        pos = end;
    }
    Ok(boundaries)
}

/// The current length of a log file in bytes.
pub fn file_len(vfs: &dyn Vfs, path: &Path) -> Result<u64, WalError> {
    vfs.len(path).map_err(|e| WalError::io(format!("stat {}", path.display()), &e))
}

/// Truncate the file to exactly `len` bytes — the crash simulator.
pub fn truncate_at(vfs: &dyn Vfs, path: &Path, len: u64) -> Result<(), WalError> {
    vfs.truncate(path, len)
        .map_err(|e| WalError::io(format!("truncate {}", path.display()), &e))
}

/// XOR one byte of the file at `offset` — the bit-rot simulator.
pub fn flip_byte(vfs: &dyn Vfs, path: &Path, offset: u64) -> Result<(), WalError> {
    let mut bytes = vfs
        .read(path)
        .map_err(|e| WalError::io(format!("read {}", path.display()), &e))?;
    let i = offset as usize;
    assert!(i < bytes.len(), "flip offset {offset} past end of {}", path.display());
    bytes[i] ^= 0x5A;
    vfs.write(path, &bytes)
        .map_err(|e| WalError::io(format!("write {}", path.display()), &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BatchRecord, WalOp};
    use crate::simfs::SimFs;
    use crate::writer::{Wal, WalConfig};
    use spatial_core::instance::SpatialInstance;
    use spatial_core::region::Region;
    use std::sync::Arc;

    #[test]
    fn boundaries_track_appends() {
        let sim = SimFs::new();
        let dir = Path::new("/db");
        let wal = Wal::create_with_vfs(
            Arc::new(sim.clone()),
            dir,
            0,
            &SpatialInstance::new(),
            WalConfig::default(),
        )
        .unwrap();
        let mut inst = SpatialInstance::new();
        for epoch in 1..=3u64 {
            let name = format!("r{epoch}");
            let region = Region::rect_from_ints(0, 0, epoch as i64, 1);
            inst.insert(name.clone(), region.clone());
            let outcome = wal
                .append_batch(
                    &BatchRecord {
                        epoch,
                        ops: vec![WalOp::Insert(name.clone(), region)],
                        changed: vec![name],
                    },
                    &inst,
                )
                .unwrap();
            assert!(outcome.maintenance.is_none());
        }
        let segments = segment_files(&sim, dir).unwrap();
        assert_eq!(segments.len(), 1);
        let boundaries = record_boundaries(&sim, &segments[0]).unwrap();
        // Header end + one boundary per record.
        assert_eq!(boundaries.len(), 4);
        assert_eq!(boundaries[0], SEGMENT_HEADER_LEN as u64);
        assert_eq!(boundaries[3], file_len(&sim, &segments[0]).unwrap());
    }
}
