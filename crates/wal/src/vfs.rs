//! Pluggable storage backend: the [`Vfs`] trait and its default
//! implementation, [`RealFs`].
//!
//! Every I/O site in this crate goes through a `Vfs` trait object; the
//! operating-system filesystem is just the default implementation. This is
//! the `IOTypes` trick from rUniversalDB applied to storage: with the
//! environment behind a trait, the whole log can run against the
//! deterministic in-memory [`SimFs`](crate::SimFs) and be subjected to
//! seeded fault schedules (torn writes, failed fsyncs, `ENOSPC`, power
//! loss) that no real disk will produce on demand.
//!
//! This module is the **only** place in the crate allowed to touch
//! `std::fs` (CI enforces that with a grep check); everything else speaks
//! [`Vfs`] / [`VfsFile`].

use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Coarse classification of a storage error, preserved from the backend so
/// callers can decide whether an operation is worth retrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VfsErrorKind {
    /// The call was interrupted before completing (`EINTR`-style). The
    /// operation did not happen (or only partially happened, for writes)
    /// and retrying it is reasonable.
    Interrupted,
    /// The device is out of space (`ENOSPC`). Retrying without freeing
    /// space will not help.
    NoSpace,
    /// The named file or directory does not exist.
    NotFound,
    /// Anything else: permission errors, device failures, failed fsyncs.
    Other,
}

impl fmt::Display for VfsErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            VfsErrorKind::Interrupted => "interrupted",
            VfsErrorKind::NoSpace => "no space",
            VfsErrorKind::NotFound => "not found",
            VfsErrorKind::Other => "io error",
        };
        f.write_str(name)
    }
}

/// A storage error from a [`Vfs`] backend: a [`VfsErrorKind`] plus a
/// human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VfsError {
    /// Retryability classification of the failure.
    pub kind: VfsErrorKind,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl VfsError {
    /// Builds an error of the given kind with a message.
    pub fn new(kind: VfsErrorKind, message: impl Into<String>) -> Self {
        VfsError { kind, message: message.into() }
    }

    /// Converts a `std::io::Error`, mapping the libc error classes the
    /// failure model cares about (`EINTR`, `ENOSPC`, `ENOENT`) and
    /// collapsing the rest to [`VfsErrorKind::Other`].
    pub fn from_io(err: &std::io::Error) -> Self {
        let kind = match err.kind() {
            std::io::ErrorKind::Interrupted => VfsErrorKind::Interrupted,
            std::io::ErrorKind::NotFound => VfsErrorKind::NotFound,
            std::io::ErrorKind::StorageFull => VfsErrorKind::NoSpace,
            _ if err.raw_os_error() == Some(28) => VfsErrorKind::NoSpace,
            _ => VfsErrorKind::Other,
        };
        VfsError { kind, message: err.to_string() }
    }
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.message, self.kind)
    }
}

impl std::error::Error for VfsError {}

/// An open file handle from a [`Vfs`] backend.
///
/// Handles are positioned at the end of the file and only ever append or
/// truncate — the log never seeks into the middle of a segment through a
/// live handle (reads go through [`Vfs::read`] on a quiesced file).
pub trait VfsFile: Send + fmt::Debug {
    /// Appends all of `buf` at the end of the file.
    ///
    /// On failure an unknown prefix of `buf` may have reached the file
    /// (a torn write); callers must restore their framing invariant (see
    /// [`VfsFile::set_len`]) before writing anything else.
    fn write_all(&mut self, buf: &[u8]) -> Result<(), VfsError>;

    /// Flushes file content to durable storage.
    ///
    /// Failure follows fsync-gate semantics: the kernel may have *dropped*
    /// the dirty pages, so the unsynced tail must be considered lost — a
    /// failed sync is never retryable on the same handle.
    fn sync_all(&mut self) -> Result<(), VfsError>;

    /// Truncates the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> Result<(), VfsError>;
}

/// A pluggable filesystem: everything the write-ahead log needs from the
/// environment, as a trait object.
///
/// Implementations must be safe to share across threads; the log holds one
/// behind an `Arc<dyn Vfs>`.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> Result<(), VfsError>;

    /// Returns the file names (not paths) of the plain files in `dir`.
    fn list_dir(&self, dir: &Path) -> Result<Vec<String>, VfsError>;

    /// Reads the entire content of `path`.
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError>;

    /// Replaces the content of `path` with `bytes` (creating it if
    /// missing), without any durability guarantee. Used by test harnesses;
    /// the log itself writes through handles.
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError>;

    /// Creates (or truncates) `path` and returns an append handle.
    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>, VfsError>;

    /// Opens an existing `path` for appending.
    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>, VfsError>;

    /// Durably truncates `path` to `len` bytes (truncate + fsync).
    fn truncate(&self, path: &Path, len: u64) -> Result<(), VfsError>;

    /// Returns the length of `path` in bytes.
    fn len(&self, path: &Path) -> Result<u64, VfsError>;

    /// Atomically renames `from` to `to`, replacing any existing `to`.
    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> Result<(), VfsError>;

    /// Removes `dir` and everything under it.
    fn remove_dir_all(&self, dir: &Path) -> Result<(), VfsError>;

    /// Flushes the directory entry metadata of `dir` (renames, creations)
    /// to durable storage.
    fn sync_dir(&self, dir: &Path) -> Result<(), VfsError>;
}

/// The default [`Vfs`]: the operating-system filesystem via `std::fs`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RealFs;

impl RealFs {
    /// A shared handle to the real filesystem.
    pub fn shared() -> Arc<dyn Vfs> {
        Arc::new(RealFs)
    }
}

fn map_io<T>(res: std::io::Result<T>) -> Result<T, VfsError> {
    res.map_err(|e| VfsError::from_io(&e))
}

#[derive(Debug)]
struct RealFile {
    file: fs::File,
}

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), VfsError> {
        map_io(self.file.write_all(buf))
    }

    fn sync_all(&mut self) -> Result<(), VfsError> {
        map_io(self.file.sync_all())
    }

    fn set_len(&mut self, len: u64) -> Result<(), VfsError> {
        map_io(self.file.set_len(len))
    }
}

impl Vfs for RealFs {
    fn create_dir_all(&self, dir: &Path) -> Result<(), VfsError> {
        map_io(fs::create_dir_all(dir))
    }

    fn list_dir(&self, dir: &Path) -> Result<Vec<String>, VfsError> {
        let mut names = Vec::new();
        for entry in map_io(fs::read_dir(dir))? {
            let entry = map_io(entry)?;
            if map_io(entry.file_type())?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        Ok(names)
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError> {
        let mut file = map_io(fs::File::open(path))?;
        let mut bytes = Vec::new();
        map_io(file.read_to_end(&mut bytes))?;
        Ok(bytes)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        map_io(fs::write(path, bytes))
    }

    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>, VfsError> {
        let file = map_io(fs::File::create(path))?;
        Ok(Box::new(RealFile { file }))
    }

    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>, VfsError> {
        let file = map_io(fs::OpenOptions::new().append(true).open(path))?;
        Ok(Box::new(RealFile { file }))
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<(), VfsError> {
        let file = map_io(fs::OpenOptions::new().write(true).open(path))?;
        map_io(file.set_len(len))?;
        map_io(file.sync_all())
    }

    fn len(&self, path: &Path) -> Result<u64, VfsError> {
        Ok(map_io(fs::metadata(path))?.len())
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError> {
        map_io(fs::rename(from, to))
    }

    fn remove_file(&self, path: &Path) -> Result<(), VfsError> {
        map_io(fs::remove_file(path))
    }

    fn remove_dir_all(&self, dir: &Path) -> Result<(), VfsError> {
        map_io(fs::remove_dir_all(dir))
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), VfsError> {
        // Directories cannot be opened writable; fsync on a read handle is
        // how POSIX flushes directory entries.
        let dir = map_io(fs::File::open(dir))?;
        map_io(dir.sync_all())
    }
}
