//! [`SimFs`]: a deterministic in-memory filesystem with seeded fault
//! injection.
//!
//! Every [`Vfs`] operation is a numbered *I/O point*; a [`FaultPlan`]
//! decides, per point, whether the operation succeeds or suffers one of
//! the faults real disks produce:
//!
//! - **Transient** (`EINTR`-style): the call fails, nothing changed.
//! - **Torn write**: only a prefix of the buffer reaches the file before
//!   the call fails.
//! - **No space** (`ENOSPC`): the call fails without effect.
//! - **Failed fsync**: the *unsynced bytes are dropped* before the error
//!   is returned — fsync-gate semantics; retrying the sync cannot bring
//!   them back.
//! - **Crash**: the simulated machine powers off. Every subsequent
//!   operation fails until [`SimFs::power_cycle`], which reverts every
//!   file to its last-synced content.
//!
//! File *content* is durable only up to the last successful
//! [`VfsFile::sync_all`]; metadata operations (create, rename, remove,
//! truncate) are modeled as immediately durable, matching the
//! directory-fsync discipline the log already follows on the real
//! filesystem.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::vfs::{Vfs, VfsError, VfsErrorKind, VfsFile};

/// A single injected fault, applied at one I/O point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Fail with an `EINTR`-style transient error; no state changes.
    Transient,
    /// On a write: keep only `keep` bytes of the buffer, then fail.
    /// On any other operation this degrades to [`Fault::Transient`].
    Torn {
        /// How many bytes of the attempted buffer reach the file.
        keep: usize,
    },
    /// Fail with `ENOSPC`; no state changes.
    NoSpace,
    /// On a sync: drop the unsynced bytes, then fail (fsync-gate). On any
    /// other operation this degrades to [`Fault::Transient`].
    SyncFail,
    /// Power loss: the operation fails and every later operation fails
    /// until [`SimFs::power_cycle`].
    Crash,
}

/// The class of I/O operation hitting a fault point; lets a [`FaultPlan`]
/// target appends, fsyncs, or directory fsyncs specifically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpClass {
    Write,
    Sync,
    DirSync,
    Meta,
}

/// A deterministic schedule of faults for a [`SimFs`].
///
/// Faults can be pinned to absolute I/O point numbers ([`FaultPlan::at`]),
/// queued against the next operations of a class
/// ([`FaultPlan::fail_writes`], [`FaultPlan::fail_syncs`],
/// [`FaultPlan::fail_dir_syncs`]), generated pseudo-randomly from a seed
/// ([`FaultPlan::random`]), or drawn probabilistically per write
/// ([`FaultPlan::transient_write_rate`]).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    by_point: BTreeMap<u64, Fault>,
    write_queue: VecDeque<Fault>,
    sync_queue: VecDeque<Fault>,
    dir_sync_queue: VecDeque<Fault>,
    /// (probability numerator out of 1<<32, rng state) for per-write
    /// transient faults.
    write_rate: Option<(u64, u64)>,
}

fn split_mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Injects `fault` at absolute I/O point `point` (points number
    /// operations from 0 in execution order).
    pub fn at(mut self, point: u64, fault: Fault) -> Self {
        self.by_point.insert(point, fault);
        self
    }

    /// Queues `fault` against each of the next `count` file-write
    /// operations.
    pub fn fail_writes(mut self, count: usize, fault: Fault) -> Self {
        self.write_queue.extend(std::iter::repeat_n(fault, count));
        self
    }

    /// Queues `fault` against each of the next `count` file fsyncs.
    pub fn fail_syncs(mut self, count: usize, fault: Fault) -> Self {
        self.sync_queue.extend(std::iter::repeat_n(fault, count));
        self
    }

    /// Queues `fault` against each of the next `count` directory fsyncs.
    pub fn fail_dir_syncs(mut self, count: usize, fault: Fault) -> Self {
        self.dir_sync_queue.extend(std::iter::repeat_n(fault, count));
        self
    }

    /// Makes each file write fail transiently with probability `rate`
    /// (clamped to `[0, 1]`), drawn deterministically from `seed`.
    pub fn transient_write_rate(mut self, rate: f64, seed: u64) -> Self {
        let clamped = rate.clamp(0.0, 1.0);
        let threshold = (clamped * (1u64 << 32) as f64) as u64;
        self.write_rate = Some((threshold, seed));
        self
    }

    /// Generates a schedule of 1–3 faults at pseudo-random points in
    /// `0..horizon`, with kinds weighted toward the interesting cases
    /// (transients and torn writes most common, crashes and failed fsyncs
    /// rarer). Deterministic in `seed`.
    pub fn random(seed: u64, horizon: u64) -> Self {
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        let mut plan = FaultPlan::none();
        let count = 1 + (split_mix(&mut state) % 3);
        for _ in 0..count {
            let point = split_mix(&mut state) % horizon.max(1);
            let kind = match split_mix(&mut state) % 100 {
                0..=34 => Fault::Transient,
                35..=54 => Fault::Torn { keep: (split_mix(&mut state) % 48) as usize },
                55..=69 => Fault::SyncFail,
                70..=79 => Fault::NoSpace,
                _ => Fault::Crash,
            };
            plan.by_point.insert(point, kind);
        }
        plan
    }

    fn pick(&mut self, point: u64, class: OpClass) -> Option<Fault> {
        let queued = match class {
            OpClass::Write => self.write_queue.pop_front(),
            OpClass::Sync => self.sync_queue.pop_front(),
            OpClass::DirSync => self.dir_sync_queue.pop_front(),
            OpClass::Meta => None,
        };
        if queued.is_some() {
            return queued;
        }
        if let Some(fault) = self.by_point.remove(&point) {
            return Some(fault);
        }
        if class == OpClass::Write {
            if let Some((threshold, state)) = self.write_rate.as_mut() {
                if split_mix(state) & 0xFFFF_FFFF < *threshold {
                    return Some(Fault::Transient);
                }
            }
        }
        None
    }
}

#[derive(Clone, Debug, Default)]
struct SimFileState {
    /// Current content, as the application sees it.
    data: Vec<u8>,
    /// Content guaranteed to survive a crash (up to the last fsync, or
    /// the last durable metadata operation that rewrote the file).
    synced: Vec<u8>,
}

#[derive(Debug, Default)]
struct SimState {
    files: BTreeMap<PathBuf, SimFileState>,
    dirs: BTreeSet<PathBuf>,
    plan: FaultPlan,
    io_points: u64,
    crashed: bool,
}

impl SimState {
    /// Numbers this operation, consults the plan, and applies any
    /// non-write fault. Returns the fault for the caller to apply when it
    /// needs buffer context (torn writes, fsync drops).
    fn fault_point(&mut self, class: OpClass, what: &str) -> Result<Option<Fault>, VfsError> {
        if self.crashed {
            return Err(VfsError::new(
                VfsErrorKind::Other,
                format!("{what}: simulated machine is powered off"),
            ));
        }
        let point = self.io_points;
        self.io_points += 1;
        let Some(fault) = self.plan.pick(point, class) else {
            return Ok(None);
        };
        match fault {
            Fault::Transient => Err(VfsError::new(
                VfsErrorKind::Interrupted,
                format!("{what}: simulated transient fault at io point {point}"),
            )),
            Fault::NoSpace => Err(VfsErrorKind::NoSpace)
                .map_err(|k| VfsError::new(k, format!("{what}: simulated ENOSPC at io point {point}"))),
            Fault::Crash => {
                self.crashed = true;
                Err(VfsError::new(
                    VfsErrorKind::Other,
                    format!("{what}: simulated power loss at io point {point}"),
                ))
            }
            Fault::Torn { .. } if class != OpClass::Write => Err(VfsError::new(
                VfsErrorKind::Interrupted,
                format!("{what}: simulated transient fault at io point {point}"),
            )),
            Fault::SyncFail if !matches!(class, OpClass::Sync | OpClass::DirSync) => {
                Err(VfsError::new(
                    VfsErrorKind::Interrupted,
                    format!("{what}: simulated transient fault at io point {point}"),
                ))
            }
            fault => Ok(Some(fault)),
        }
    }

    fn file_mut(&mut self, path: &Path, what: &str) -> Result<&mut SimFileState, VfsError> {
        self.files.get_mut(path).ok_or_else(|| {
            VfsError::new(VfsErrorKind::NotFound, format!("{what}: no such file: {}", path.display()))
        })
    }
}

/// The deterministic in-memory [`Vfs`]. Cloning shares the same
/// filesystem state, so a handle kept by a test can inspect (or
/// [power-cycle](SimFs::power_cycle)) storage owned by a live log.
#[derive(Clone, Debug, Default)]
pub struct SimFs {
    state: Arc<Mutex<SimState>>,
}

impl SimFs {
    /// An empty in-memory filesystem with no fault plan.
    pub fn new() -> Self {
        SimFs::default()
    }

    /// An empty in-memory filesystem that will execute `plan`.
    pub fn with_plan(plan: FaultPlan) -> Self {
        let fs = SimFs::new();
        fs.set_plan(plan);
        fs
    }

    fn lock(&self) -> MutexGuard<'_, SimState> {
        // Sim state is plain data; a panicking holder cannot leave it
        // logically inconsistent, so poison is survivable.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Replaces the fault plan (unfired faults from the old plan are
    /// dropped).
    pub fn set_plan(&self, plan: FaultPlan) {
        self.lock().plan = plan;
    }

    /// The number of I/O points executed so far.
    pub fn io_points(&self) -> u64 {
        self.lock().io_points
    }

    /// Whether a [`Fault::Crash`] has fired (and the machine is still
    /// off).
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Simulates power-on after a crash: every file reverts to its
    /// last-synced content, the crashed flag clears, and any remaining
    /// fault plan is discarded.
    pub fn power_cycle(&self) {
        let mut st = self.lock();
        for file in st.files.values_mut() {
            file.data = file.synced.clone();
        }
        st.crashed = false;
        st.plan = FaultPlan::none();
    }
}

#[derive(Debug)]
struct SimHandle {
    state: Arc<Mutex<SimState>>,
    path: PathBuf,
}

impl SimHandle {
    fn lock(&self) -> MutexGuard<'_, SimState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl VfsFile for SimHandle {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), VfsError> {
        let mut st = self.lock();
        let fault = st.fault_point(OpClass::Write, "write")?;
        if let Some(Fault::Torn { keep }) = fault {
            let keep = keep.min(buf.len());
            let path = self.path.clone();
            let file = st.file_mut(&path, "write")?;
            file.data.extend_from_slice(&buf[..keep]);
            return Err(VfsError::new(
                VfsErrorKind::Interrupted,
                format!("write {}: simulated torn write ({keep} of {} bytes)", self.path.display(), buf.len()),
            ));
        }
        let path = self.path.clone();
        let file = st.file_mut(&path, "write")?;
        file.data.extend_from_slice(buf);
        Ok(())
    }

    fn sync_all(&mut self) -> Result<(), VfsError> {
        let mut st = self.lock();
        let fault = st.fault_point(OpClass::Sync, "fsync")?;
        let path = self.path.clone();
        let file = st.file_mut(&path, "fsync")?;
        if let Some(Fault::SyncFail | Fault::Torn { .. }) = fault {
            // fsync-gate: the failed sync drops the dirty pages.
            file.data = file.synced.clone();
            return Err(VfsError::new(
                VfsErrorKind::Other,
                format!("fsync {}: simulated fsync failure; unsynced bytes dropped", self.path.display()),
            ));
        }
        file.synced = file.data.clone();
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> Result<(), VfsError> {
        let mut st = self.lock();
        st.fault_point(OpClass::Meta, "truncate")?;
        let path = self.path.clone();
        let file = st.file_mut(&path, "truncate")?;
        file.data.truncate(len as usize);
        Ok(())
    }
}

impl Vfs for SimFs {
    fn create_dir_all(&self, dir: &Path) -> Result<(), VfsError> {
        let mut st = self.lock();
        st.fault_point(OpClass::Meta, "mkdir")?;
        st.dirs.insert(dir.to_path_buf());
        Ok(())
    }

    fn list_dir(&self, dir: &Path) -> Result<Vec<String>, VfsError> {
        let mut st = self.lock();
        st.fault_point(OpClass::Meta, "readdir")?;
        if !st.dirs.contains(dir) {
            return Err(VfsError::new(
                VfsErrorKind::NotFound,
                format!("readdir: no such directory: {}", dir.display()),
            ));
        }
        Ok(st
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(str::to_string))
            .collect())
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError> {
        let mut st = self.lock();
        st.fault_point(OpClass::Meta, "read")?;
        st.file_mut(path, "read").map(|f| f.data.clone())
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        let mut st = self.lock();
        st.fault_point(OpClass::Meta, "write file")?;
        let entry = st.files.entry(path.to_path_buf()).or_default();
        entry.data = bytes.to_vec();
        // A whole-file rewrite is a harness operation (byte flipping);
        // model it as durable so corruption survives a reopen.
        entry.synced = bytes.to_vec();
        Ok(())
    }

    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>, VfsError> {
        let mut st = self.lock();
        st.fault_point(OpClass::Meta, "create")?;
        st.files.insert(path.to_path_buf(), SimFileState::default());
        drop(st);
        Ok(Box::new(SimHandle { state: Arc::clone(&self.state), path: path.to_path_buf() }))
    }

    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>, VfsError> {
        let mut st = self.lock();
        st.fault_point(OpClass::Meta, "open")?;
        st.file_mut(path, "open")?;
        drop(st);
        Ok(Box::new(SimHandle { state: Arc::clone(&self.state), path: path.to_path_buf() }))
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<(), VfsError> {
        let mut st = self.lock();
        st.fault_point(OpClass::Meta, "truncate")?;
        let file = st.file_mut(path, "truncate")?;
        file.data.truncate(len as usize);
        // A durable truncate (truncate + fsync) pins the surviving prefix.
        file.synced = file.data.clone();
        Ok(())
    }

    fn len(&self, path: &Path) -> Result<u64, VfsError> {
        let mut st = self.lock();
        st.fault_point(OpClass::Meta, "stat")?;
        st.file_mut(path, "stat").map(|f| f.data.len() as u64)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError> {
        let mut st = self.lock();
        st.fault_point(OpClass::Meta, "rename")?;
        let Some(file) = st.files.remove(from) else {
            return Err(VfsError::new(
                VfsErrorKind::NotFound,
                format!("rename: no such file: {}", from.display()),
            ));
        };
        st.files.insert(to.to_path_buf(), file);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> Result<(), VfsError> {
        let mut st = self.lock();
        st.fault_point(OpClass::Meta, "remove")?;
        if st.files.remove(path).is_none() {
            return Err(VfsError::new(
                VfsErrorKind::NotFound,
                format!("remove: no such file: {}", path.display()),
            ));
        }
        Ok(())
    }

    fn remove_dir_all(&self, dir: &Path) -> Result<(), VfsError> {
        let mut st = self.lock();
        st.fault_point(OpClass::Meta, "rmdir")?;
        st.files.retain(|p, _| !p.starts_with(dir));
        st.dirs.retain(|d| !d.starts_with(dir));
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), VfsError> {
        let mut st = self.lock();
        let fault = st.fault_point(OpClass::DirSync, "fsync dir")?;
        if fault.is_some() {
            return Err(VfsError::new(
                VfsErrorKind::Other,
                format!("fsync dir {}: simulated directory fsync failure", dir.display()),
            ));
        }
        Ok(())
    }
}
