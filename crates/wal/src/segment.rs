//! Segment files: naming, headers, and the single-segment scan.
//!
//! The log is a sequence of segment files named `seg-{first_epoch:016x}.log`
//! — the hex field is the epoch of the first record the segment *may*
//! contain, so lexicographic file-name order is epoch order. Each segment
//! starts with a 16-byte header (8-byte magic+version, 8-byte LE first
//! epoch) followed by framed records ([`crate::record`]).
//!
//! Scanning distinguishes a *torn tail* — the unsynced suffix a crash can
//! leave in the **final** segment: an incomplete record, or a
//! checksum-failing record with nothing after it — from *corruption*: a
//! checksum failure (or framing violation) anywhere bytes demonstrably
//! continue past it, or any anomaly in a non-final segment. Torn tails are
//! silently dropped at the byte where the valid prefix ends; corruption is
//! a loud [`WalError::Corrupt`] carrying the segment name and offset.

use crate::error::WalError;
use crate::record::{read_record, BatchRecord, RecordRead};

/// Magic + format version opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"TOPOWAL\x01";

/// Total header length: magic + little-endian first-epoch word.
pub const SEGMENT_HEADER_LEN: usize = 16;

/// File name for the segment whose first record publishes `first_epoch`.
pub fn segment_file_name(first_epoch: u64) -> String {
    format!("seg-{first_epoch:016x}.log")
}

/// Parse a segment file name back to its first epoch.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// The 16-byte header for a segment starting at `first_epoch`.
pub fn encode_segment_header(first_epoch: u64) -> [u8; SEGMENT_HEADER_LEN] {
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[..8].copy_from_slice(&SEGMENT_MAGIC);
    h[8..].copy_from_slice(&first_epoch.to_le_bytes());
    h
}

/// Result of scanning one segment's bytes.
#[derive(Debug)]
pub struct SegmentScan {
    /// The first-epoch word from the header.
    pub first_epoch: u64,
    /// Complete, checksum-verified records in file order.
    pub records: Vec<BatchRecord>,
    /// Length of the valid prefix: the offset just past the last complete
    /// record (or past the header if there are none). Bytes beyond this
    /// are the torn tail.
    pub valid_len: u64,
    /// Whether a torn tail was dropped.
    pub torn: bool,
}

/// Scan a whole segment.
///
/// `is_final` selects torn-tail tolerance (only the last segment of the
/// log may legitimately end mid-record). `prev_epoch` is the last epoch
/// seen before this segment — records must continue the exactly-sequential
/// epoch chain (`prev + 1, prev + 2, …`); a gap or repeat means a segment
/// or record went missing and replay would silently diverge, so it is
/// reported as corruption, not tolerated.
///
/// A final segment too short to hold a header (a crash between file
/// creation and the header write) scans as empty-and-torn with
/// `valid_len = 0`; the caller recreates the file.
pub fn scan_segment(
    bytes: &[u8],
    name: &str,
    is_final: bool,
    prev_epoch: u64,
) -> Result<SegmentScan, WalError> {
    let corrupt = |offset: u64, detail: String| {
        Err(WalError::Corrupt { segment: name.to_string(), offset, detail })
    };

    if bytes.len() < SEGMENT_HEADER_LEN {
        if is_final {
            return Ok(SegmentScan {
                first_epoch: prev_epoch + 1,
                records: Vec::new(),
                valid_len: 0,
                torn: true,
            });
        }
        return corrupt(0, format!("segment header truncated at {} bytes", bytes.len()));
    }
    if bytes[..8] != SEGMENT_MAGIC {
        return corrupt(0, "bad segment magic".to_string());
    }
    let first_epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if first_epoch != prev_epoch + 1 {
        return corrupt(
            8,
            format!(
                "segment declares first epoch {first_epoch} but the log is at epoch {prev_epoch}"
            ),
        );
    }

    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER_LEN;
    let mut next_epoch = first_epoch;
    loop {
        if pos == bytes.len() {
            return Ok(SegmentScan { first_epoch, records, valid_len: pos as u64, torn: false });
        }
        match read_record(bytes, pos, name)? {
            RecordRead::Complete(record, end) => {
                if record.epoch != next_epoch {
                    return corrupt(
                        pos as u64,
                        format!("expected epoch {next_epoch}, record carries {}", record.epoch),
                    );
                }
                next_epoch += 1;
                records.push(record);
                pos = end;
            }
            RecordRead::Incomplete => {
                if is_final {
                    return Ok(SegmentScan {
                        first_epoch,
                        records,
                        valid_len: pos as u64,
                        torn: true,
                    });
                }
                return corrupt(
                    pos as u64,
                    "incomplete record in a non-final segment".to_string(),
                );
            }
            RecordRead::BadCrc { at, end } => {
                // Tolerable only as the very last thing in the log: a
                // record the crash half-wrote whose tail happened to
                // contain old bytes. Anything after it proves the record
                // was once complete — that is corruption.
                if is_final && end == bytes.len() {
                    return Ok(SegmentScan {
                        first_epoch,
                        records,
                        valid_len: at as u64,
                        torn: true,
                    });
                }
                return corrupt(
                    at as u64,
                    format!(
                        "record checksum mismatch with {} bytes following it",
                        bytes.len() - end
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::WalOp;
    use spatial_core::region::Region;

    fn rec(epoch: u64) -> BatchRecord {
        BatchRecord {
            epoch,
            ops: vec![WalOp::Insert(
                format!("r{epoch}"),
                Region::rect_from_ints(0, 0, 1 + epoch as i64, 2),
            )],
            changed: vec![format!("r{epoch}")],
        }
    }

    fn segment_with(epochs: std::ops::Range<u64>) -> Vec<u8> {
        let mut bytes = encode_segment_header(epochs.start).to_vec();
        for e in epochs {
            bytes.extend_from_slice(&rec(e).encode_framed());
        }
        bytes
    }

    #[test]
    fn name_round_trip() {
        assert_eq!(parse_segment_name(&segment_file_name(0)), Some(0));
        assert_eq!(parse_segment_name(&segment_file_name(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_segment_name("seg-zzz.log"), None);
        assert_eq!(parse_segment_name("checkpoint-0000000000000001.ckpt"), None);
    }

    #[test]
    fn clean_segment_scans_fully() {
        let bytes = segment_with(5..9);
        let scan = scan_segment(&bytes, "s", true, 4).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert!(!scan.torn);
        assert_eq!(scan.records.iter().map(|r| r.epoch).collect::<Vec<_>>(), vec![5, 6, 7, 8]);
    }

    #[test]
    fn torn_tail_tolerated_only_in_final_segment() {
        let bytes = segment_with(1..4);
        let boundary_after_two = {
            let mut b = encode_segment_header(1).to_vec();
            b.extend_from_slice(&rec(1).encode_framed());
            b.extend_from_slice(&rec(2).encode_framed());
            b.len()
        };
        for cut in boundary_after_two + 1..bytes.len() {
            let scan = scan_segment(&bytes[..cut], "s", true, 0).unwrap();
            assert_eq!(scan.records.len(), 2, "cut at {cut}");
            assert!(scan.torn);
            assert_eq!(scan.valid_len as usize, boundary_after_two);

            let err = scan_segment(&bytes[..cut], "s", false, 0).unwrap_err();
            assert!(matches!(err, WalError::Corrupt { .. }), "cut at {cut}: {err:?}");
        }
    }

    #[test]
    fn bad_crc_final_record_is_torn_mid_log_is_corrupt() {
        let bytes = segment_with(1..3);
        // Flip a byte in the *last* record's payload.
        let mut torn = bytes.clone();
        let last = torn.len() - 3;
        torn[last] ^= 0xFF;
        let scan = scan_segment(&torn, "s", true, 0).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn);

        // Same flip is corruption when bytes follow (non-final position in
        // the file) or when the segment is not final.
        let err = scan_segment(&torn, "s", false, 0).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }));

        let mut mid = bytes.clone();
        let first_payload = SEGMENT_HEADER_LEN + 8 + 2;
        mid[first_payload] ^= 0xFF;
        let err = scan_segment(&mid, "s", true, 0).unwrap_err();
        match err {
            WalError::Corrupt { offset, detail, .. } => {
                assert_eq!(offset, SEGMENT_HEADER_LEN as u64);
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn epoch_gap_is_corruption() {
        let mut bytes = encode_segment_header(1).to_vec();
        bytes.extend_from_slice(&rec(1).encode_framed());
        bytes.extend_from_slice(&rec(3).encode_framed());
        let err = scan_segment(&bytes, "s", true, 0).unwrap_err();
        match err {
            WalError::Corrupt { detail, .. } => assert!(detail.contains("expected epoch 2")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn header_mismatches_are_corruption() {
        let bytes = segment_with(4..6);
        let err = scan_segment(&bytes, "s", true, 0).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { offset: 8, .. }), "{err:?}");

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 1;
        let err = scan_segment(&bad_magic, "s", true, 3).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { offset: 0, .. }), "{err:?}");
    }

    #[test]
    fn headerless_final_segment_is_torn_empty() {
        let scan = scan_segment(&SEGMENT_MAGIC[..5], "s", true, 9).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.valid_len, 0);
        assert!(scan.records.is_empty());
        assert_eq!(scan.first_epoch, 10);
    }
}
