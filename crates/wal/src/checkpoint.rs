//! Checkpoints: full-instance snapshots that bound replay work and allow
//! segment truncation.
//!
//! A checkpoint file `checkpoint-{epoch:016x}.ckpt` holds the complete
//! [`SpatialInstance`] as of that epoch:
//!
//! ```text
//! [8-byte magic+version][u32 LE payload length][u32 LE CRC-32 of payload]
//! [payload: u64 epoch + SpatialInstance (spatial_core::wire)]
//! ```
//!
//! Checkpoints are written to a `.tmp` sibling, fsynced, then renamed into
//! place (and the directory fsynced), so a crash can never leave a
//! half-written file under the checkpoint name — recovery either sees the
//! old checkpoint or the new one, never a torn one. After the rename the
//! writer rotates to a fresh segment and deletes every older segment and
//! checkpoint; recovery therefore only ever replays records *after* the
//! newest checkpoint's epoch, and leftover older files (a crash between
//! rename and deletion) are skipped, not replayed.

use crate::crc::crc32;
use crate::error::WalError;
use spatial_core::instance::SpatialInstance;
use spatial_core::wire::{put_u64, Wire, WireReader};
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic + format version opening every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"TOPOCKP\x01";

/// File name for the checkpoint taken at `epoch`.
pub fn checkpoint_file_name(epoch: u64) -> String {
    format!("checkpoint-{epoch:016x}.ckpt")
}

/// Parse a checkpoint file name back to its epoch.
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("checkpoint-")?.strip_suffix(".ckpt")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Serialize a checkpoint file's full contents.
pub fn encode_checkpoint(epoch: u64, instance: &SpatialInstance) -> Vec<u8> {
    let mut payload = Vec::with_capacity(128);
    put_u64(&mut payload, epoch);
    instance.to_wire(&mut payload);
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parse and verify checkpoint file contents. The file name (for error
/// messages) comes in via `name`; the epoch embedded in the payload must
/// match `expect_epoch` (the epoch parsed from the file name).
pub fn decode_checkpoint(
    bytes: &[u8],
    name: &str,
    expect_epoch: u64,
) -> Result<SpatialInstance, WalError> {
    let corrupt = |offset: u64, detail: String| {
        Err(WalError::Corrupt { segment: name.to_string(), offset, detail })
    };
    if bytes.len() < 16 {
        return corrupt(0, format!("checkpoint header truncated at {} bytes", bytes.len()));
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return corrupt(0, "bad checkpoint magic".to_string());
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let crc_stored = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if bytes.len() != 16 + len {
        return corrupt(
            8,
            format!("checkpoint declares {len} payload bytes, file holds {}", bytes.len() - 16),
        );
    }
    let payload = &bytes[16..];
    if crc32(payload) != crc_stored {
        return corrupt(16, "checkpoint checksum mismatch".to_string());
    }
    let mut r = WireReader::new(payload);
    let epoch = r
        .read_u64()
        .map_err(|e| WalError::Corrupt {
            segment: name.to_string(),
            offset: 16 + e.offset as u64,
            detail: e.detail,
        })?;
    if epoch != expect_epoch {
        return corrupt(16, format!("checkpoint named for epoch {expect_epoch} carries {epoch}"));
    }
    let instance = SpatialInstance::from_wire(&mut r).map_err(|e| WalError::Corrupt {
        segment: name.to_string(),
        offset: 16 + e.offset as u64,
        detail: e.detail,
    })?;
    if !r.is_exhausted() {
        return corrupt(
            (16 + r.position()) as u64,
            format!("{} trailing bytes in checkpoint payload", r.remaining()),
        );
    }
    Ok(instance)
}

/// Write the checkpoint for `epoch` durably into `dir`: temp file, fsync,
/// atomic rename, directory fsync (best-effort where the platform allows).
pub fn write_checkpoint(
    dir: &Path,
    epoch: u64,
    instance: &SpatialInstance,
) -> Result<PathBuf, WalError> {
    let final_path = dir.join(checkpoint_file_name(epoch));
    let tmp_path = dir.join(format!("{}.tmp", checkpoint_file_name(epoch)));
    let bytes = encode_checkpoint(epoch, instance);
    let ctx = |what: &str| format!("{what} {}", tmp_path.display());

    let mut f = File::create(&tmp_path).map_err(|e| WalError::io(ctx("create"), &e))?;
    f.write_all(&bytes).map_err(|e| WalError::io(ctx("write"), &e))?;
    f.sync_all().map_err(|e| WalError::io(ctx("fsync"), &e))?;
    drop(f);
    fs::rename(&tmp_path, &final_path)
        .map_err(|e| WalError::io(format!("rename into {}", final_path.display()), &e))?;
    // Make the rename itself durable. Directory fsync is not supported
    // everywhere; failure here narrows the durability window but does not
    // threaten consistency (the rename is atomic either way).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// Read and verify the checkpoint at `path`, returning its epoch (from the
/// validated file name) and instance.
pub fn read_checkpoint(path: &Path) -> Result<(u64, SpatialInstance), WalError> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .map(str::to_string)
        .unwrap_or_else(|| path.display().to_string());
    let epoch = parse_checkpoint_name(&name).ok_or_else(|| WalError::NotADatabase {
        path: path.display().to_string(),
        detail: "not a checkpoint file name".to_string(),
    })?;
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| WalError::io(format!("read checkpoint {}", path.display()), &e))?;
    let instance = decode_checkpoint(&bytes, &name, epoch)?;
    Ok((epoch, instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::region::Region;

    fn sample_instance() -> SpatialInstance {
        let mut inst = SpatialInstance::new();
        inst.insert("A", Region::rect_from_ints(0, 0, 10, 10));
        inst.insert("B", Region::polygon_from_ints(&[(2, 2), (8, 2), (5, 7)]).unwrap());
        inst
    }

    #[test]
    fn encode_decode_round_trip() {
        let inst = sample_instance();
        let bytes = encode_checkpoint(42, &inst);
        assert_eq!(decode_checkpoint(&bytes, "c", 42), Ok(inst));
    }

    #[test]
    fn name_round_trip() {
        assert_eq!(parse_checkpoint_name(&checkpoint_file_name(7)), Some(7));
        assert_eq!(parse_checkpoint_name("seg-0000000000000007.log"), None);
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = encode_checkpoint(3, &sample_instance());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                decode_checkpoint(&bad, "c", 3).is_err(),
                "flip at byte {i} of {} undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_checkpoint(3, &sample_instance());
        for cut in 0..bytes.len() {
            assert!(decode_checkpoint(&bytes[..cut], "c", 3).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn epoch_name_mismatch_is_detected() {
        let bytes = encode_checkpoint(3, &sample_instance());
        let err = decode_checkpoint(&bytes, "c", 4).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }));
    }

    #[test]
    fn write_read_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("wal-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst = sample_instance();
        let path = write_checkpoint(&dir, 9, &inst).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), (9, inst));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
