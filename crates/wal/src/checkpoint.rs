//! Checkpoints: full-instance snapshots that bound replay work and allow
//! segment truncation.
//!
//! A checkpoint file `checkpoint-{epoch:016x}.ckpt` holds the complete
//! [`SpatialInstance`] as of that epoch:
//!
//! ```text
//! [8-byte magic+version][u32 LE payload length][u32 LE CRC-32 of payload]
//! [payload: u64 epoch + SpatialInstance (spatial_core::wire)]
//! ```
//!
//! Checkpoints are written to a `.tmp` sibling, fsynced, then renamed into
//! place (and the directory fsynced), so a crash can never leave a
//! half-written file under the checkpoint name — recovery either sees the
//! old checkpoint or the new one, never a torn one. After the rename the
//! writer rotates to a fresh segment and deletes every older segment and
//! checkpoint; recovery therefore only ever replays records *after* the
//! newest checkpoint's epoch, and leftover older files (a crash between
//! rename and deletion) are skipped, not replayed.

use crate::crc::crc32;
use crate::error::WalError;
use crate::vfs::Vfs;
use crate::writer::WalStats;
use spatial_core::instance::SpatialInstance;
use spatial_core::wire::{put_u64, Wire, WireReader};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;

/// Magic + format version opening every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"TOPOCKP\x01";

/// File name for the checkpoint taken at `epoch`.
pub fn checkpoint_file_name(epoch: u64) -> String {
    format!("checkpoint-{epoch:016x}.ckpt")
}

/// Parse a checkpoint file name back to its epoch.
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("checkpoint-")?.strip_suffix(".ckpt")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Serialize a checkpoint file's full contents.
pub fn encode_checkpoint(epoch: u64, instance: &SpatialInstance) -> Vec<u8> {
    let mut payload = Vec::with_capacity(128);
    put_u64(&mut payload, epoch);
    instance.to_wire(&mut payload);
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parse and verify checkpoint file contents. The file name (for error
/// messages) comes in via `name`; the epoch embedded in the payload must
/// match `expect_epoch` (the epoch parsed from the file name).
pub fn decode_checkpoint(
    bytes: &[u8],
    name: &str,
    expect_epoch: u64,
) -> Result<SpatialInstance, WalError> {
    let corrupt = |offset: u64, detail: String| {
        Err(WalError::Corrupt { segment: name.to_string(), offset, detail })
    };
    if bytes.len() < 16 {
        return corrupt(0, format!("checkpoint header truncated at {} bytes", bytes.len()));
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return corrupt(0, "bad checkpoint magic".to_string());
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let crc_stored = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if bytes.len() != 16 + len {
        return corrupt(
            8,
            format!("checkpoint declares {len} payload bytes, file holds {}", bytes.len() - 16),
        );
    }
    let payload = &bytes[16..];
    if crc32(payload) != crc_stored {
        return corrupt(16, "checkpoint checksum mismatch".to_string());
    }
    let mut r = WireReader::new(payload);
    let epoch = r
        .read_u64()
        .map_err(|e| WalError::Corrupt {
            segment: name.to_string(),
            offset: 16 + e.offset as u64,
            detail: e.detail,
        })?;
    if epoch != expect_epoch {
        return corrupt(16, format!("checkpoint named for epoch {expect_epoch} carries {epoch}"));
    }
    let instance = SpatialInstance::from_wire(&mut r).map_err(|e| WalError::Corrupt {
        segment: name.to_string(),
        offset: 16 + e.offset as u64,
        detail: e.detail,
    })?;
    if !r.is_exhausted() {
        return corrupt(
            (16 + r.position()) as u64,
            format!("{} trailing bytes in checkpoint payload", r.remaining()),
        );
    }
    Ok(instance)
}

/// How many times a transiently-failing directory fsync is retried before
/// being downgraded to best-effort (and counted).
const DIR_SYNC_ATTEMPTS: u32 = 3;

/// Write the checkpoint for `epoch` durably into `dir`: temp file, fsync,
/// atomic rename, directory fsync.
///
/// The directory fsync makes the rename itself durable. It can fail
/// transiently (`EINTR`, retried here) or be unsupported by the platform;
/// a persistent failure narrows the durability window but never threatens
/// consistency (the rename is atomic either way), so it is downgraded to
/// best-effort — and *counted* in [`WalStats::dir_sync_downgrades`], never
/// silently discarded.
pub fn write_checkpoint(
    vfs: &dyn Vfs,
    dir: &Path,
    epoch: u64,
    instance: &SpatialInstance,
    stats: &WalStats,
) -> Result<PathBuf, WalError> {
    let final_path = dir.join(checkpoint_file_name(epoch));
    let tmp_path = dir.join(format!("{}.tmp", checkpoint_file_name(epoch)));
    let bytes = encode_checkpoint(epoch, instance);
    let ctx = |what: &str| format!("{what} {}", tmp_path.display());

    let mut f = vfs.create(&tmp_path).map_err(|e| WalError::io(ctx("create"), &e))?;
    f.write_all(&bytes).map_err(|e| WalError::io(ctx("write"), &e))?;
    f.sync_all().map_err(|e| WalError::io(ctx("fsync"), &e))?;
    drop(f);
    vfs.rename(&tmp_path, &final_path)
        .map_err(|e| WalError::io(format!("rename into {}", final_path.display()), &e))?;
    let mut attempt = 0;
    while let Err(e) = vfs.sync_dir(dir) {
        attempt += 1;
        let err = WalError::io(format!("fsync dir {}", dir.display()), &e);
        if err.is_transient() && attempt < DIR_SYNC_ATTEMPTS {
            continue;
        }
        stats.dir_sync_downgrades.fetch_add(1, Ordering::Relaxed);
        break;
    }
    Ok(final_path)
}

/// Read and verify the checkpoint at `path`, returning its epoch (from the
/// validated file name) and instance.
pub fn read_checkpoint(vfs: &dyn Vfs, path: &Path) -> Result<(u64, SpatialInstance), WalError> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .map(str::to_string)
        .unwrap_or_else(|| path.display().to_string());
    let epoch = parse_checkpoint_name(&name).ok_or_else(|| WalError::NotADatabase {
        path: path.display().to_string(),
        detail: "not a checkpoint file name".to_string(),
    })?;
    let bytes = vfs
        .read(path)
        .map_err(|e| WalError::io(format!("read checkpoint {}", path.display()), &e))?;
    let instance = decode_checkpoint(&bytes, &name, epoch)?;
    Ok((epoch, instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::region::Region;

    fn sample_instance() -> SpatialInstance {
        let mut inst = SpatialInstance::new();
        inst.insert("A", Region::rect_from_ints(0, 0, 10, 10));
        inst.insert("B", Region::polygon_from_ints(&[(2, 2), (8, 2), (5, 7)]).unwrap());
        inst
    }

    #[test]
    fn encode_decode_round_trip() {
        let inst = sample_instance();
        let bytes = encode_checkpoint(42, &inst);
        assert_eq!(decode_checkpoint(&bytes, "c", 42), Ok(inst));
    }

    #[test]
    fn name_round_trip() {
        assert_eq!(parse_checkpoint_name(&checkpoint_file_name(7)), Some(7));
        assert_eq!(parse_checkpoint_name("seg-0000000000000007.log"), None);
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = encode_checkpoint(3, &sample_instance());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                decode_checkpoint(&bad, "c", 3).is_err(),
                "flip at byte {i} of {} undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_checkpoint(3, &sample_instance());
        for cut in 0..bytes.len() {
            assert!(decode_checkpoint(&bytes[..cut], "c", 3).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn epoch_name_mismatch_is_detected() {
        let bytes = encode_checkpoint(3, &sample_instance());
        let err = decode_checkpoint(&bytes, "c", 4).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }));
    }

    #[test]
    fn write_read_round_trip_on_disk() {
        use crate::vfs::RealFs;
        let dir = std::env::temp_dir().join(format!("wal-ckpt-test-{}", std::process::id()));
        RealFs.create_dir_all(&dir).unwrap();
        let inst = sample_instance();
        let stats = WalStats::default();
        let path = write_checkpoint(&RealFs, &dir, 9, &inst, &stats).unwrap();
        assert_eq!(read_checkpoint(&RealFs, &path).unwrap(), (9, inst));
        assert_eq!(stats.dir_sync_downgrades.load(Ordering::Relaxed), 0);
        RealFs.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_sync_failure_is_retried_then_counted() {
        use crate::simfs::{Fault, FaultPlan, SimFs};
        let dir = Path::new("/db");
        let inst = sample_instance();
        let stats = WalStats::default();

        // One transient directory-fsync fault: absorbed by the retry loop.
        let sim = SimFs::with_plan(FaultPlan::none().fail_dir_syncs(1, Fault::Transient));
        sim.create_dir_all(dir).unwrap();
        write_checkpoint(&sim, dir, 1, &inst, &stats).unwrap();
        assert_eq!(stats.dir_sync_downgrades.load(Ordering::Relaxed), 0);

        // A persistently failing directory fsync: the checkpoint still
        // lands (consistency is rename's job) but the downgrade is counted.
        let sim = SimFs::with_plan(FaultPlan::none().fail_dir_syncs(8, Fault::SyncFail));
        sim.create_dir_all(dir).unwrap();
        let path = write_checkpoint(&sim, dir, 2, &inst, &stats).unwrap();
        assert_eq!(stats.dir_sync_downgrades.load(Ordering::Relaxed), 1);
        assert_eq!(read_checkpoint(&sim, &path).unwrap(), (2, inst));
    }
}
