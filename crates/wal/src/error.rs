//! Durability error type.

use std::fmt;

/// Everything that can go wrong opening, reading, or appending to a log.
///
/// The type is `Clone + PartialEq + Eq` (I/O errors are captured as
/// strings) so the facade's `TopoDbError` can embed it without giving up
/// its own derives.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalError {
    /// An operating-system I/O failure. `context` says what the log was
    /// doing (e.g. `"append to seg-…"`), `message` is the OS error text.
    Io {
        /// What the log was doing when the failure happened.
        context: String,
        /// The underlying OS error, stringified.
        message: String,
    },
    /// Bytes on disk that are neither a valid record nor a tolerable torn
    /// tail: a checksum mismatch with further data after it, an invalid
    /// payload, a bad header, epochs out of order.
    Corrupt {
        /// File name of the offending segment or checkpoint.
        segment: String,
        /// Absolute byte offset of the offending bytes within that file.
        offset: u64,
        /// What was wrong there.
        detail: String,
    },
    /// The directory does not look like a database (no valid checkpoint).
    NotADatabase {
        /// The directory that was opened.
        path: String,
        /// Why it was rejected.
        detail: String,
    },
    /// `create` was pointed at a directory that already holds a database.
    AlreadyExists {
        /// The offending directory.
        path: String,
    },
    /// A point-in-time reopen asked for an epoch the log no longer (or not
    /// yet) covers.
    UnknownEpoch {
        /// The epoch that was requested.
        requested: u64,
        /// Oldest recoverable epoch (the newest checkpoint's epoch).
        oldest: u64,
        /// Newest logged epoch (the head at the time of the crash).
        newest: u64,
    },
}

impl WalError {
    pub(crate) fn io(context: impl Into<String>, err: &std::io::Error) -> WalError {
        WalError::Io { context: context.into(), message: err.to_string() }
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { context, message } => write!(f, "wal i/o error ({context}): {message}"),
            WalError::Corrupt { segment, offset, detail } => {
                write!(f, "wal corruption in {segment} at byte {offset}: {detail}")
            }
            WalError::NotADatabase { path, detail } => {
                write!(f, "{path} is not a topodb database: {detail}")
            }
            WalError::AlreadyExists { path } => {
                write!(f, "{path} already contains a topodb database")
            }
            WalError::UnknownEpoch { requested, oldest, newest } => write!(
                f,
                "epoch {requested} is not recoverable from this log \
                 (covers epochs {oldest}..={newest})"
            ),
        }
    }
}

impl std::error::Error for WalError {}
