//! Durability error type.

use crate::vfs::{VfsError, VfsErrorKind};
use std::fmt;

/// Everything that can go wrong opening, reading, or appending to a log.
///
/// The type is `Clone + PartialEq + Eq` (I/O errors are captured as
/// strings) so the facade's `TopoDbError` can embed it without giving up
/// its own derives.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalError {
    /// A storage backend failure. `context` says what the log was doing
    /// (e.g. `"append to seg-…"`), `kind` preserves the backend's
    /// retryability classification, `message` is the backend error text.
    Io {
        /// What the log was doing when the failure happened.
        context: String,
        /// The backend's classification of the failure (see the crate's
        /// "Failure model" section for how callers should react).
        kind: VfsErrorKind,
        /// The underlying backend error, stringified.
        message: String,
    },
    /// Bytes on disk that are neither a valid record nor a tolerable torn
    /// tail: a checksum mismatch with further data after it, an invalid
    /// payload, a bad header, epochs out of order.
    Corrupt {
        /// File name of the offending segment or checkpoint.
        segment: String,
        /// Absolute byte offset of the offending bytes within that file.
        offset: u64,
        /// What was wrong there.
        detail: String,
    },
    /// The directory does not look like a database (no valid checkpoint).
    NotADatabase {
        /// The directory that was opened.
        path: String,
        /// Why it was rejected.
        detail: String,
    },
    /// `create` was pointed at a directory that already holds a database.
    AlreadyExists {
        /// The offending directory.
        path: String,
    },
    /// A point-in-time reopen asked for an epoch the log no longer (or not
    /// yet) covers.
    UnknownEpoch {
        /// The epoch that was requested.
        requested: u64,
        /// Oldest recoverable epoch (the newest checkpoint's epoch).
        oldest: u64,
        /// Newest logged epoch (the head at the time of the crash).
        newest: u64,
    },
}

impl WalError {
    pub(crate) fn io(context: impl Into<String>, err: &VfsError) -> WalError {
        WalError::Io { context: context.into(), kind: err.kind, message: err.message.clone() }
    }

    /// Whether this error is worth retrying at the same call site: only
    /// `EINTR`-style transient backend failures are. Fsync failures are
    /// *never* reported as transient (the unsynced tail must be assumed
    /// lost — see the crate's "Failure model").
    pub fn is_transient(&self) -> bool {
        matches!(self, WalError::Io { kind: VfsErrorKind::Interrupted, .. })
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { context, kind, message } => {
                write!(f, "wal i/o error ({context}, {kind}): {message}")
            }
            WalError::Corrupt { segment, offset, detail } => {
                write!(f, "wal corruption in {segment} at byte {offset}: {detail}")
            }
            WalError::NotADatabase { path, detail } => {
                write!(f, "{path} is not a topodb database: {detail}")
            }
            WalError::AlreadyExists { path } => {
                write!(f, "{path} already contains a topodb database")
            }
            WalError::UnknownEpoch { requested, oldest, newest } => write!(
                f,
                "epoch {requested} is not recoverable from this log \
                 (covers epochs {oldest}..={newest})"
            ),
        }
    }
}

impl std::error::Error for WalError {}
