//! Record framing: one length-prefixed, checksummed record per committed
//! operation batch.
//!
//! On disk a record is
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32 of payload][payload bytes]
//! ```
//!
//! and the payload is
//!
//! ```text
//! u64   epoch                 — the epoch this batch published
//! u32   op count
//!       per op: u8 tag (0 = insert, 1 = remove)
//!                insert: str name + Region (spatial_core::wire)
//!                remove: str name
//! u32   changed-name count
//!       per name: str
//! ```
//!
//! All coordinate data rides through [`spatial_core::wire`], so the exact
//! `Rational` numerator/denominator pairs are preserved bit-for-bit — replay
//! reconstructs the *identical* instance, not an approximation of it.

use crate::crc::crc32;
use crate::error::WalError;
use spatial_core::region::Region;
use spatial_core::wire::{put_string, put_u32, put_u64, Wire, WireReader};

/// Framing overhead preceding every record payload (length + CRC words).
pub const RECORD_HEADER_LEN: usize = 8;

/// Hard upper bound on a single record's payload, rejected at both append
/// and recovery time. Guards recovery against allocating pathological
/// lengths decoded from corrupt headers.
pub const MAX_RECORD_LEN: usize = 256 << 20;

/// One logged operation. Mirrors `topodb`'s transaction op set; the WAL
/// keeps its own type so the facade's internals stay private.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalOp {
    /// Insert (or replace) the named region.
    Insert(String, Region),
    /// Remove the named region (a no-op if absent, exactly like the
    /// transaction op it mirrors).
    Remove(String),
}

/// A committed batch as logged: the epoch it published, the ops applied,
/// and the set of region names whose geometry actually changed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchRecord {
    /// Epoch number the batch published.
    pub epoch: u64,
    /// The operations, in application order.
    pub ops: Vec<WalOp>,
    /// Names whose geometry changed (the epoch's changed set) — logged so
    /// replay can cross-check its own `apply_ops` result.
    pub changed: Vec<String>,
}

impl BatchRecord {
    /// Serialize the payload (everything after the length/CRC words).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        put_u64(&mut out, self.epoch);
        put_u32(&mut out, self.ops.len() as u32);
        for op in &self.ops {
            match op {
                WalOp::Insert(name, region) => {
                    out.push(0);
                    put_string(&mut out, name);
                    region.to_wire(&mut out);
                }
                WalOp::Remove(name) => {
                    out.push(1);
                    put_string(&mut out, name);
                }
            }
        }
        put_u32(&mut out, self.changed.len() as u32);
        for name in &self.changed {
            put_string(&mut out, name);
        }
        out
    }

    /// Serialize the full framed record (header + payload).
    pub fn encode_framed(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        assert!(payload.len() <= MAX_RECORD_LEN, "record payload exceeds MAX_RECORD_LEN");
        let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a payload previously produced by [`encode_payload`]
    /// (CRC already verified by the caller). `context` names the segment
    /// and `base` is the payload's absolute offset in it, so errors point
    /// at the offending bytes on disk.
    ///
    /// [`encode_payload`]: BatchRecord::encode_payload
    pub fn decode_payload(payload: &[u8], context: &str, base: u64) -> Result<BatchRecord, WalError> {
        let mut r = WireReader::new(payload);
        let fail = |r: &WireReader<'_>, detail: String| WalError::Corrupt {
            segment: context.to_string(),
            offset: base + r.position() as u64,
            detail,
        };
        let wire_fail = |e: spatial_core::wire::WireError| WalError::Corrupt {
            segment: context.to_string(),
            offset: base + e.offset as u64,
            detail: e.detail,
        };

        let epoch = r.read_u64().map_err(wire_fail)?;
        let op_count = r.read_u32().map_err(wire_fail)? as usize;
        let mut ops = Vec::with_capacity(op_count.min(4096));
        for _ in 0..op_count {
            let tag = r.read_u8().map_err(wire_fail)?;
            match tag {
                0 => {
                    let name = r.read_string().map_err(wire_fail)?;
                    let region = Region::from_wire(&mut r).map_err(wire_fail)?;
                    ops.push(WalOp::Insert(name, region));
                }
                1 => ops.push(WalOp::Remove(r.read_string().map_err(wire_fail)?)),
                other => return Err(fail(&r, format!("unknown op tag {other}"))),
            }
        }
        let changed_count = r.read_u32().map_err(wire_fail)? as usize;
        let mut changed = Vec::with_capacity(changed_count.min(4096));
        for _ in 0..changed_count {
            changed.push(r.read_string().map_err(wire_fail)?);
        }
        if !r.is_exhausted() {
            return Err(fail(&r, format!("{} trailing bytes in record payload", r.remaining())));
        }
        Ok(BatchRecord { epoch, ops, changed })
    }
}

/// Outcome of pulling one record off a byte stream.
#[derive(Debug)]
pub enum RecordRead {
    /// A complete, checksum-verified record, plus the offset just past it.
    Complete(BatchRecord, usize),
    /// The stream ends inside the header or the payload: a torn tail if
    /// this is the final segment's final bytes, corruption otherwise.
    Incomplete,
    /// The payload is fully present but its CRC does not match. `end` is
    /// the offset just past the record; the caller decides (by whether any
    /// bytes follow) if this is a torn tail or mid-log corruption.
    BadCrc {
        /// Offset of the record's header within `buf`.
        at: usize,
        /// Offset just past the record.
        end: usize,
    },
}

/// Try to read one framed record starting at `pos` in `buf`.
///
/// `context` names the segment for error messages. A length field larger
/// than [`MAX_RECORD_LEN`] is reported as corruption outright — no real
/// record is that large, and trusting it would make recovery attempt a
/// matching allocation.
pub fn read_record(buf: &[u8], pos: usize, context: &str) -> Result<RecordRead, WalError> {
    let rest = &buf[pos..];
    if rest.len() < RECORD_HEADER_LEN {
        return Ok(RecordRead::Incomplete);
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
    let crc_stored = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
    if len > MAX_RECORD_LEN {
        return Err(WalError::Corrupt {
            segment: context.to_string(),
            offset: pos as u64,
            detail: format!("record length {len} exceeds maximum {MAX_RECORD_LEN}"),
        });
    }
    if rest.len() < RECORD_HEADER_LEN + len {
        return Ok(RecordRead::Incomplete);
    }
    let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
    let end = pos + RECORD_HEADER_LEN + len;
    if crc32(payload) != crc_stored {
        return Ok(RecordRead::BadCrc { at: pos, end });
    }
    let record =
        BatchRecord::decode_payload(payload, context, (pos + RECORD_HEADER_LEN) as u64)?;
    Ok(RecordRead::Complete(record, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BatchRecord {
        BatchRecord {
            epoch: 7,
            ops: vec![
                WalOp::Insert("A".into(), Region::rect_from_ints(0, 0, 4, 4)),
                WalOp::Remove("B".into()),
                WalOp::Insert(
                    "C".into(),
                    Region::polygon_from_ints(&[(0, 0), (8, 0), (4, 5)]).unwrap(),
                ),
            ],
            changed: vec!["A".into(), "C".into()],
        }
    }

    #[test]
    fn framed_round_trip() {
        let rec = sample();
        let framed = rec.encode_framed();
        match read_record(&framed, 0, "seg").unwrap() {
            RecordRead::Complete(back, end) => {
                assert_eq!(back, rec);
                assert_eq!(end, framed.len());
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_incomplete() {
        let framed = sample().encode_framed();
        for cut in 0..framed.len() {
            match read_record(&framed[..cut], 0, "seg").unwrap() {
                RecordRead::Incomplete => {}
                other => panic!("cut at {cut}: expected Incomplete, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_payload_bit_flip_fails_crc() {
        let framed = sample().encode_framed();
        for i in RECORD_HEADER_LEN..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            match read_record(&bad, 0, "seg").unwrap() {
                RecordRead::BadCrc { at: 0, end } => assert_eq!(end, framed.len()),
                other => panic!("flip at {i}: expected BadCrc, got {other:?}"),
            }
        }
    }

    #[test]
    fn absurd_length_is_corruption() {
        let mut framed = sample().encode_framed();
        framed[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = match read_record(&framed, 0, "seg-test") {
            Err(e) => e,
            Ok(r) => panic!("expected error, got {r:?}"),
        };
        match err {
            WalError::Corrupt { segment, offset, .. } => {
                assert_eq!(segment, "seg-test");
                assert_eq!(offset, 0);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn empty_batch_round_trips() {
        let rec = BatchRecord { epoch: 1, ops: vec![], changed: vec![] };
        let framed = rec.encode_framed();
        match read_record(&framed, 0, "seg").unwrap() {
            RecordRead::Complete(back, _) => assert_eq!(back, rec),
            other => panic!("{other:?}"),
        }
    }
}
