//! The appender: `Wal` owns a database directory, appends one framed
//! record per committed batch, rotates segments, and takes periodic
//! checkpoints.
//!
//! All mutation goes through one internal mutex, so a `&Wal` is freely
//! shared across threads. Callers who need append order to agree with
//! another order (the facade's log-before-publish protocol) serialize
//! *around* the WAL with their own lock; the WAL's mutex only protects its
//! file state.
//!
//! All I/O goes through a [`Vfs`] trait object (default: [`RealFs`]), so
//! the same appender runs against the fault-injecting
//! [`SimFs`](crate::SimFs). The failure discipline (see the crate-level
//! "Failure model"):
//!
//! * a failed **append** leaves a possibly-torn tail past the last record
//!   boundary; the appender remembers it and truncates back to the
//!   boundary before the next append, so retrying a transiently-failed
//!   append is always safe;
//! * a failed **fsync** is fatal for this appender: the kernel may have
//!   dropped the dirty pages (fsync-gate), so the on-disk tail state is
//!   unknown and the appender refuses all further work rather than build
//!   on it — reopening the directory re-establishes a known-good tail;
//! * a failed **checkpoint or rotation** after a durable append is a
//!   *maintenance* failure: the record is safe, so the append is reported
//!   as successful with the maintenance error carried alongside
//!   ([`AppendOutcome::maintenance`]) for the caller's health accounting.

use crate::checkpoint::write_checkpoint;
use crate::error::WalError;
use crate::record::BatchRecord;
use crate::recovery::{remove_stale, scan_dir, Recovery};
use crate::segment::{encode_segment_header, segment_file_name, SEGMENT_HEADER_LEN};
use crate::vfs::{RealFs, Vfs, VfsErrorKind, VfsFile};
use spatial_core::instance::SpatialInstance;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// When appended records are forced to stable storage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncPolicy {
    /// `fsync` on every append: a committed batch survives power loss.
    PerCommit,
    /// Group commit: `fsync` at most once per interval; a crash can lose
    /// up to one interval of committed batches, never consistency.
    Interval(Duration),
    /// Never `fsync` (the OS flushes when it pleases). A process crash
    /// loses nothing — the page cache survives it — only a machine crash
    /// can drop the un-flushed tail.
    None,
}

/// Tunables for a log.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WalConfig {
    /// Durability of each append. Default: [`SyncPolicy::PerCommit`].
    pub sync: SyncPolicy,
    /// Rotate to a new segment once the current one exceeds this many
    /// bytes. Default: 4 MiB.
    pub segment_max_bytes: u64,
    /// Take a checkpoint (and truncate the log behind it) every this many
    /// appended records. Default: 1024.
    pub checkpoint_every_records: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            sync: SyncPolicy::PerCommit,
            segment_max_bytes: 4 << 20,
            checkpoint_every_records: 1024,
        }
    }
}

impl WalConfig {
    /// This config with a different sync policy.
    pub fn with_sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// This config with a different checkpoint cadence.
    pub fn with_checkpoint_every(mut self, records: u64) -> Self {
        self.checkpoint_every_records = records.max(1);
        self
    }

    /// This config with a different segment rotation threshold.
    pub fn with_segment_max_bytes(mut self, bytes: u64) -> Self {
        self.segment_max_bytes = bytes.max(SEGMENT_HEADER_LEN as u64 + 1);
        self
    }
}

/// Counters for degraded-but-survivable storage events the log absorbed
/// rather than failed on.
#[derive(Debug, Default)]
pub struct WalStats {
    /// Directory fsyncs that kept failing after transient retries and
    /// were downgraded to best-effort (narrowing the durability window of
    /// one checkpoint rename, never consistency).
    pub(crate) dir_sync_downgrades: AtomicU64,
}

impl WalStats {
    /// How many checkpoint directory fsyncs were downgraded to
    /// best-effort.
    pub fn dir_sync_downgrades(&self) -> u64 {
        self.dir_sync_downgrades.load(Ordering::Relaxed)
    }
}

/// The result of a successful append.
///
/// The record itself is durably framed in the log (to the configured
/// [`SyncPolicy`]); `maintenance` carries any *post-append* housekeeping
/// failure (checkpoint or rotation) that does not retract the append.
#[derive(Debug)]
#[must_use = "a maintenance failure must be fed into the caller's health accounting"]
pub struct AppendOutcome {
    /// A checkpoint/rotation failure that happened after the record was
    /// safely appended. `None` when housekeeping succeeded (or none was
    /// due). A fatal maintenance error means the *next* append will
    /// likely fail — callers should degrade proactively.
    pub maintenance: Option<WalError>,
}

#[derive(Debug)]
struct Appender {
    file: Box<dyn VfsFile>,
    seg_path: PathBuf,
    /// Length of the segment's valid prefix (a record boundary).
    seg_bytes: u64,
    /// A failed append may have left partial bytes past `seg_bytes`; when
    /// set, the file is truncated back to the boundary before the next
    /// write.
    dirty_tail: bool,
    /// Set when an fsync failed: the tail's durable state is unknown, so
    /// the appender refuses further work with this error.
    broken: Option<WalError>,
    head_epoch: u64,
    checkpoint_epoch: u64,
    records_since_checkpoint: u64,
    last_sync: Instant,
    unsynced: bool,
}

/// A write-ahead log rooted at a database directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    cfg: WalConfig,
    vfs: Arc<dyn Vfs>,
    stats: WalStats,
    inner: Mutex<Appender>,
}

fn open_for_append(vfs: &dyn Vfs, path: &Path) -> Result<Box<dyn VfsFile>, WalError> {
    vfs.open_append(path)
        .map_err(|e| WalError::io(format!("open {} for append", path.display()), &e))
}

fn create_segment(
    vfs: &dyn Vfs,
    dir: &Path,
    first_epoch: u64,
) -> Result<(Box<dyn VfsFile>, PathBuf), WalError> {
    let path = dir.join(segment_file_name(first_epoch));
    let mut file = vfs
        .create(&path)
        .map_err(|e| WalError::io(format!("create segment {}", path.display()), &e))?;
    file.write_all(&encode_segment_header(first_epoch))
        .map_err(|e| WalError::io(format!("write header of {}", path.display()), &e))?;
    Ok((file, path))
}

impl Wal {
    /// Initialize a fresh database at `dir` holding `instance` as epoch
    /// `epoch`: a checkpoint of the instance plus an empty first segment.
    /// Fails with [`WalError::AlreadyExists`] if the directory already
    /// holds log files. Uses the real filesystem; see
    /// [`Wal::create_with_vfs`] for a pluggable backend.
    pub fn create(
        dir: &Path,
        epoch: u64,
        instance: &SpatialInstance,
        cfg: WalConfig,
    ) -> Result<Wal, WalError> {
        Wal::create_with_vfs(RealFs::shared(), dir, epoch, instance, cfg)
    }

    /// [`Wal::create`] on an explicit storage backend.
    pub fn create_with_vfs(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        epoch: u64,
        instance: &SpatialInstance,
        cfg: WalConfig,
    ) -> Result<Wal, WalError> {
        vfs.create_dir_all(dir)
            .map_err(|e| WalError::io(format!("create dir {}", dir.display()), &e))?;
        if scan_dir(vfs.as_ref(), dir).is_ok() {
            return Err(WalError::AlreadyExists { path: dir.display().to_string() });
        }
        let stats = WalStats::default();
        write_checkpoint(vfs.as_ref(), dir, epoch, instance, &stats)?;
        let (mut file, seg_path) = create_segment(vfs.as_ref(), dir, epoch + 1)?;
        file.sync_all()
            .map_err(|e| WalError::io(format!("fsync {}", seg_path.display()), &e))?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            cfg,
            vfs,
            stats,
            inner: Mutex::new(Appender {
                file,
                seg_path,
                seg_bytes: SEGMENT_HEADER_LEN as u64,
                dirty_tail: false,
                broken: None,
                head_epoch: epoch,
                checkpoint_epoch: epoch,
                records_since_checkpoint: 0,
                last_sync: Instant::now(),
                unsynced: false,
            }),
        })
    }

    /// Open an existing database: recover the committed history, truncate
    /// any torn tail, and position the appender after the last durable
    /// record. Returns the log plus what was recovered. Uses the real
    /// filesystem; see [`Wal::open_with_vfs`] for a pluggable backend.
    pub fn open(dir: &Path, cfg: WalConfig) -> Result<(Wal, Recovery), WalError> {
        Wal::open_with_vfs(RealFs::shared(), dir, cfg)
    }

    /// [`Wal::open`] on an explicit storage backend.
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        cfg: WalConfig,
    ) -> Result<(Wal, Recovery), WalError> {
        let recovery = scan_dir(vfs.as_ref(), dir)?;
        let head_epoch = recovery.head_epoch();

        let (file, seg_path, seg_bytes) = match &recovery.tail {
            Some(tail) if tail.valid_len >= SEGMENT_HEADER_LEN as u64 => {
                // Drop the torn tail so the next append starts at a record
                // boundary.
                vfs.truncate(&tail.path, tail.valid_len).map_err(|e| {
                    WalError::io(format!("truncate {}", tail.path.display()), &e)
                })?;
                let file = open_for_append(vfs.as_ref(), &tail.path)?;
                (file, tail.path.clone(), tail.valid_len)
            }
            Some(tail) => {
                // The final segment died before its header hit the disk;
                // rebuild it from scratch under the same name.
                let (file, path) = create_segment(vfs.as_ref(), dir, tail.first_epoch)?;
                (file, path, SEGMENT_HEADER_LEN as u64)
            }
            None => {
                // Crash between checkpoint rename and segment creation (or
                // the segment was lost): start the post-checkpoint segment.
                let (file, path) = create_segment(vfs.as_ref(), dir, head_epoch + 1)?;
                (file, path, SEGMENT_HEADER_LEN as u64)
            }
        };

        // A fresh open is a natural moment to sweep files an interrupted
        // checkpoint left behind.
        remove_stale(vfs.as_ref(), dir, recovery.checkpoint_epoch);

        let wal = Wal {
            dir: dir.to_path_buf(),
            cfg,
            vfs,
            stats: WalStats::default(),
            inner: Mutex::new(Appender {
                file,
                seg_path,
                seg_bytes,
                dirty_tail: false,
                broken: None,
                head_epoch,
                checkpoint_epoch: recovery.checkpoint_epoch,
                records_since_checkpoint: head_epoch - recovery.checkpoint_epoch,
                last_sync: Instant::now(),
                unsynced: false,
            }),
        };
        Ok((wal, recovery))
    }

    /// Read-only recovery: reconstruct the committed history without
    /// touching the files (no truncation, no appender). This is what
    /// point-in-time reopen uses — it must not disturb a live database.
    pub fn read(dir: &Path) -> Result<Recovery, WalError> {
        scan_dir(&RealFs, dir)
    }

    /// [`Wal::read`] on an explicit storage backend.
    pub fn read_with_vfs(vfs: &dyn Vfs, dir: &Path) -> Result<Recovery, WalError> {
        scan_dir(vfs, dir)
    }

    /// Append one committed batch. `instance_after` is the full instance
    /// *after* the batch — used when this append triggers the periodic
    /// checkpoint, so the snapshot and truncation happen under the same
    /// lock acquisition as the append itself.
    ///
    /// The record's epoch must be exactly `head + 1`; the log refuses
    /// out-of-order appends rather than persisting a history recovery
    /// would reject.
    ///
    /// `Err` means the record is **not** acknowledged (transient append
    /// failures are safely retryable — the appender trims any torn bytes
    /// first). `Ok` means the record is in the log to the configured sync
    /// policy; see [`AppendOutcome::maintenance`] for post-append
    /// housekeeping failures.
    pub fn append_batch(
        &self,
        record: &BatchRecord,
        instance_after: &SpatialInstance,
    ) -> Result<AppendOutcome, WalError> {
        let mut app = self.lock();
        if let Some(broken) = &app.broken {
            return Err(broken.clone());
        }
        if app.dirty_tail {
            // A previous append failed partway; restore the record
            // boundary before writing anything else so the retried record
            // cannot land after torn garbage.
            let seg_bytes = app.seg_bytes;
            app.file
                .set_len(seg_bytes)
                .map_err(|e| WalError::io(format!("trim {}", app.seg_path.display()), &e))?;
            app.dirty_tail = false;
        }
        if record.epoch != app.head_epoch + 1 {
            return Err(WalError::Corrupt {
                segment: app.seg_path.display().to_string(),
                offset: app.seg_bytes,
                detail: format!(
                    "append of epoch {} but the log head is {}",
                    record.epoch, app.head_epoch
                ),
            });
        }
        let framed = record.encode_framed();
        app.dirty_tail = true;
        app.file
            .write_all(&framed)
            .map_err(|e| WalError::io(format!("append to {}", app.seg_path.display()), &e))?;
        app.dirty_tail = false;
        app.seg_bytes += framed.len() as u64;
        app.head_epoch = record.epoch;
        app.records_since_checkpoint += 1;
        app.unsynced = true;

        match self.cfg.sync {
            SyncPolicy::PerCommit => self.sync_locked(&mut app)?,
            SyncPolicy::Interval(every) => {
                if app.last_sync.elapsed() >= every {
                    self.sync_locked(&mut app)?;
                }
            }
            SyncPolicy::None => {}
        }

        // From here on the record is appended (and synced per policy):
        // housekeeping failures no longer retract it.
        let maintenance = if app.records_since_checkpoint >= self.cfg.checkpoint_every_records {
            self.checkpoint_locked(&mut app, instance_after).err()
        } else if app.seg_bytes >= self.cfg.segment_max_bytes {
            self.rotate_locked(&mut app).err()
        } else {
            None
        };
        Ok(AppendOutcome { maintenance })
    }

    /// Force a checkpoint of `instance` (which must be the instance at the
    /// current head epoch), truncating the log behind it.
    pub fn checkpoint(&self, instance: &SpatialInstance) -> Result<(), WalError> {
        let mut app = self.lock();
        if let Some(broken) = &app.broken {
            return Err(broken.clone());
        }
        self.checkpoint_locked(&mut app, instance)
    }

    /// Flush any unsynced appends to stable storage, regardless of policy.
    pub fn sync(&self) -> Result<(), WalError> {
        let mut app = self.lock();
        if let Some(broken) = &app.broken {
            return Err(broken.clone());
        }
        if app.unsynced {
            self.sync_locked(&mut app)?;
        }
        Ok(())
    }

    /// The newest logged epoch.
    pub fn head_epoch(&self) -> u64 {
        self.lock().head_epoch
    }

    /// The newest checkpoint's epoch (the oldest recoverable one).
    pub fn checkpoint_epoch(&self) -> u64 {
        self.lock().checkpoint_epoch
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The storage backend this log runs on.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// Counters for storage events the log absorbed (see [`WalStats`]).
    pub fn stats(&self) -> &WalStats {
        &self.stats
    }

    /// If an fsync failure has broken this appender, the error that broke
    /// it. A broken log refuses appends/syncs/checkpoints; reopening the
    /// directory is the only way back to a known-good tail.
    pub fn broken(&self) -> Option<WalError> {
        self.lock().broken.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Appender> {
        // The appender holds no invariant a panicking thread could break
        // mid-way that the next append would silently compound: a poisoned
        // append left, at worst, a torn tail — exactly what recovery
        // tolerates — so we continue rather than propagate the poison.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn sync_locked(&self, app: &mut Appender) -> Result<(), WalError> {
        if let Err(e) = app.file.sync_all() {
            // fsync-gate: a failed fsync may have *dropped* the dirty
            // pages, so the durable tail is unknown. Never retry the sync;
            // report the failure as non-transient and refuse further work
            // on this appender.
            let err = WalError::Io {
                context: format!("fsync {}", app.seg_path.display()),
                kind: VfsErrorKind::Other,
                message: format!(
                    "{} (a failed fsync may drop the unsynced tail; reopen to recover)",
                    e.message
                ),
            };
            app.broken = Some(err.clone());
            return Err(err);
        }
        app.last_sync = Instant::now();
        app.unsynced = false;
        Ok(())
    }

    fn rotate_locked(&self, app: &mut Appender) -> Result<(), WalError> {
        // Records in the retiring segment must be durable before the log
        // moves on; rotation is rare, so this sync is cheap in aggregate.
        self.sync_locked(app)?;
        let (file, path) = create_segment(self.vfs.as_ref(), &self.dir, app.head_epoch + 1)?;
        app.file = file;
        app.seg_path = path;
        app.seg_bytes = SEGMENT_HEADER_LEN as u64;
        app.dirty_tail = false;
        Ok(())
    }

    fn checkpoint_locked(
        &self,
        app: &mut Appender,
        instance: &SpatialInstance,
    ) -> Result<(), WalError> {
        write_checkpoint(self.vfs.as_ref(), &self.dir, app.head_epoch, instance, &self.stats)?;
        app.checkpoint_epoch = app.head_epoch;
        app.records_since_checkpoint = 0;
        if let Err(e) = self.rotate_locked(app) {
            // The new checkpoint makes the current segment invisible to
            // recovery (its first epoch now predates the checkpoint), so
            // appending more records into it would silently lose them.
            // Break the appender instead; reopen recovers cleanly.
            app.broken.get_or_insert_with(|| e.clone());
            return Err(e);
        }
        remove_stale(self.vfs.as_ref(), &self.dir, app.checkpoint_epoch);
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort flush of an un-synced tail on clean shutdown; a
        // failure here is indistinguishable from a crash, which recovery
        // already handles.
        let _ = self.sync();
    }
}
