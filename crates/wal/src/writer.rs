//! The appender: `Wal` owns a database directory, appends one framed
//! record per committed batch, rotates segments, and takes periodic
//! checkpoints.
//!
//! All mutation goes through one internal mutex, so a `&Wal` is freely
//! shared across threads. Callers who need append order to agree with
//! another order (the facade's log-before-publish protocol) serialize
//! *around* the WAL with their own lock; the WAL's mutex only protects its
//! file state.

use crate::checkpoint::write_checkpoint;
use crate::error::WalError;
use crate::record::BatchRecord;
use crate::recovery::{remove_stale, scan_dir, Recovery};
use crate::segment::{encode_segment_header, segment_file_name, SEGMENT_HEADER_LEN};
use spatial_core::instance::SpatialInstance;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// When appended records are forced to stable storage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncPolicy {
    /// `fsync` on every append: a committed batch survives power loss.
    PerCommit,
    /// Group commit: `fsync` at most once per interval; a crash can lose
    /// up to one interval of committed batches, never consistency.
    Interval(Duration),
    /// Never `fsync` (the OS flushes when it pleases). A process crash
    /// loses nothing — the page cache survives it — only a machine crash
    /// can drop the un-flushed tail.
    None,
}

/// Tunables for a log.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WalConfig {
    /// Durability of each append. Default: [`SyncPolicy::PerCommit`].
    pub sync: SyncPolicy,
    /// Rotate to a new segment once the current one exceeds this many
    /// bytes. Default: 4 MiB.
    pub segment_max_bytes: u64,
    /// Take a checkpoint (and truncate the log behind it) every this many
    /// appended records. Default: 1024.
    pub checkpoint_every_records: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            sync: SyncPolicy::PerCommit,
            segment_max_bytes: 4 << 20,
            checkpoint_every_records: 1024,
        }
    }
}

impl WalConfig {
    /// This config with a different sync policy.
    pub fn with_sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// This config with a different checkpoint cadence.
    pub fn with_checkpoint_every(mut self, records: u64) -> Self {
        self.checkpoint_every_records = records.max(1);
        self
    }

    /// This config with a different segment rotation threshold.
    pub fn with_segment_max_bytes(mut self, bytes: u64) -> Self {
        self.segment_max_bytes = bytes.max(SEGMENT_HEADER_LEN as u64 + 1);
        self
    }
}

#[derive(Debug)]
struct Appender {
    file: File,
    seg_path: PathBuf,
    seg_bytes: u64,
    head_epoch: u64,
    checkpoint_epoch: u64,
    records_since_checkpoint: u64,
    last_sync: Instant,
    unsynced: bool,
}

/// A write-ahead log rooted at a database directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    cfg: WalConfig,
    inner: Mutex<Appender>,
}

fn open_for_append(path: &Path) -> Result<File, WalError> {
    OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| WalError::io(format!("open {} for append", path.display()), &e))
}

fn create_segment(dir: &Path, first_epoch: u64) -> Result<(File, PathBuf), WalError> {
    let path = dir.join(segment_file_name(first_epoch));
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&path)
        .map_err(|e| WalError::io(format!("create segment {}", path.display()), &e))?;
    file.write_all(&encode_segment_header(first_epoch))
        .map_err(|e| WalError::io(format!("write header of {}", path.display()), &e))?;
    Ok((file, path))
}

impl Wal {
    /// Initialize a fresh database at `dir` holding `instance` as epoch
    /// `epoch`: a checkpoint of the instance plus an empty first segment.
    /// Fails with [`WalError::AlreadyExists`] if the directory already
    /// holds log files.
    pub fn create(
        dir: &Path,
        epoch: u64,
        instance: &SpatialInstance,
        cfg: WalConfig,
    ) -> Result<Wal, WalError> {
        fs::create_dir_all(dir)
            .map_err(|e| WalError::io(format!("create dir {}", dir.display()), &e))?;
        if scan_dir(dir).is_ok() {
            return Err(WalError::AlreadyExists { path: dir.display().to_string() });
        }
        write_checkpoint(dir, epoch, instance)?;
        let (file, seg_path) = create_segment(dir, epoch + 1)?;
        file.sync_all()
            .map_err(|e| WalError::io(format!("fsync {}", seg_path.display()), &e))?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            cfg,
            inner: Mutex::new(Appender {
                file,
                seg_path,
                seg_bytes: SEGMENT_HEADER_LEN as u64,
                head_epoch: epoch,
                checkpoint_epoch: epoch,
                records_since_checkpoint: 0,
                last_sync: Instant::now(),
                unsynced: false,
            }),
        })
    }

    /// Open an existing database: recover the committed history, truncate
    /// any torn tail, and position the appender after the last durable
    /// record. Returns the log plus what was recovered.
    pub fn open(dir: &Path, cfg: WalConfig) -> Result<(Wal, Recovery), WalError> {
        let recovery = scan_dir(dir)?;
        let head_epoch = recovery.head_epoch();

        let (file, seg_path, seg_bytes) = match &recovery.tail {
            Some(tail) if tail.valid_len >= SEGMENT_HEADER_LEN as u64 => {
                // Drop the torn tail so the next append starts at a record
                // boundary.
                let file = OpenOptions::new()
                    .write(true)
                    .open(&tail.path)
                    .map_err(|e| {
                        WalError::io(format!("open {} for truncation", tail.path.display()), &e)
                    })?;
                file.set_len(tail.valid_len).map_err(|e| {
                    WalError::io(format!("truncate {}", tail.path.display()), &e)
                })?;
                file.sync_all()
                    .map_err(|e| WalError::io(format!("fsync {}", tail.path.display()), &e))?;
                drop(file);
                let file = open_for_append(&tail.path)?;
                (file, tail.path.clone(), tail.valid_len)
            }
            Some(tail) => {
                // The final segment died before its header hit the disk;
                // rebuild it from scratch under the same name.
                let (file, path) = create_segment(dir, tail.first_epoch)?;
                (file, path, SEGMENT_HEADER_LEN as u64)
            }
            None => {
                // Crash between checkpoint rename and segment creation (or
                // the segment was lost): start the post-checkpoint segment.
                let (file, path) = create_segment(dir, head_epoch + 1)?;
                (file, path, SEGMENT_HEADER_LEN as u64)
            }
        };

        // A fresh open is a natural moment to sweep files an interrupted
        // checkpoint left behind.
        remove_stale(dir, recovery.checkpoint_epoch);

        let wal = Wal {
            dir: dir.to_path_buf(),
            cfg,
            inner: Mutex::new(Appender {
                file,
                seg_path,
                seg_bytes,
                head_epoch,
                checkpoint_epoch: recovery.checkpoint_epoch,
                records_since_checkpoint: head_epoch - recovery.checkpoint_epoch,
                last_sync: Instant::now(),
                unsynced: false,
            }),
        };
        Ok((wal, recovery))
    }

    /// Read-only recovery: reconstruct the committed history without
    /// touching the files (no truncation, no appender). This is what
    /// point-in-time reopen uses — it must not disturb a live database.
    pub fn read(dir: &Path) -> Result<Recovery, WalError> {
        scan_dir(dir)
    }

    /// Append one committed batch. `instance_after` is the full instance
    /// *after* the batch — used when this append triggers the periodic
    /// checkpoint, so the snapshot and truncation happen under the same
    /// lock acquisition as the append itself.
    ///
    /// The record's epoch must be exactly `head + 1`; the log refuses
    /// out-of-order appends rather than persisting a history recovery
    /// would reject.
    pub fn append_batch(
        &self,
        record: &BatchRecord,
        instance_after: &SpatialInstance,
    ) -> Result<(), WalError> {
        let mut app = self.lock();
        if record.epoch != app.head_epoch + 1 {
            return Err(WalError::Corrupt {
                segment: app.seg_path.display().to_string(),
                offset: app.seg_bytes,
                detail: format!(
                    "append of epoch {} but the log head is {}",
                    record.epoch, app.head_epoch
                ),
            });
        }
        let framed = record.encode_framed();
        app.file
            .write_all(&framed)
            .map_err(|e| WalError::io(format!("append to {}", app.seg_path.display()), &e))?;
        app.seg_bytes += framed.len() as u64;
        app.head_epoch = record.epoch;
        app.records_since_checkpoint += 1;
        app.unsynced = true;

        match self.cfg.sync {
            SyncPolicy::PerCommit => self.sync_locked(&mut app)?,
            SyncPolicy::Interval(every) => {
                if app.last_sync.elapsed() >= every {
                    self.sync_locked(&mut app)?;
                }
            }
            SyncPolicy::None => {}
        }

        if app.records_since_checkpoint >= self.cfg.checkpoint_every_records {
            self.checkpoint_locked(&mut app, instance_after)?;
        } else if app.seg_bytes >= self.cfg.segment_max_bytes {
            self.rotate_locked(&mut app)?;
        }
        Ok(())
    }

    /// Force a checkpoint of `instance` (which must be the instance at the
    /// current head epoch), truncating the log behind it.
    pub fn checkpoint(&self, instance: &SpatialInstance) -> Result<(), WalError> {
        let mut app = self.lock();
        self.checkpoint_locked(&mut app, instance)
    }

    /// Flush any unsynced appends to stable storage, regardless of policy.
    pub fn sync(&self) -> Result<(), WalError> {
        let mut app = self.lock();
        if app.unsynced {
            self.sync_locked(&mut app)?;
        }
        Ok(())
    }

    /// The newest logged epoch.
    pub fn head_epoch(&self) -> u64 {
        self.lock().head_epoch
    }

    /// The newest checkpoint's epoch (the oldest recoverable one).
    pub fn checkpoint_epoch(&self) -> u64 {
        self.lock().checkpoint_epoch
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Appender> {
        // The appender holds no invariant a panicking thread could break
        // mid-way that the next append would silently compound: a poisoned
        // append left, at worst, a torn tail — exactly what recovery
        // tolerates — so we continue rather than propagate the poison.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn sync_locked(&self, app: &mut Appender) -> Result<(), WalError> {
        app.file
            .sync_all()
            .map_err(|e| WalError::io(format!("fsync {}", app.seg_path.display()), &e))?;
        app.last_sync = Instant::now();
        app.unsynced = false;
        Ok(())
    }

    fn rotate_locked(&self, app: &mut Appender) -> Result<(), WalError> {
        // Records in the retiring segment must be durable before the log
        // moves on; rotation is rare, so this sync is cheap in aggregate.
        self.sync_locked(app)?;
        let (file, path) = create_segment(&self.dir, app.head_epoch + 1)?;
        app.file = file;
        app.seg_path = path;
        app.seg_bytes = SEGMENT_HEADER_LEN as u64;
        Ok(())
    }

    fn checkpoint_locked(
        &self,
        app: &mut Appender,
        instance: &SpatialInstance,
    ) -> Result<(), WalError> {
        write_checkpoint(&self.dir, app.head_epoch, instance)?;
        app.checkpoint_epoch = app.head_epoch;
        app.records_since_checkpoint = 0;
        self.rotate_locked(app)?;
        remove_stale(&self.dir, app.checkpoint_epoch);
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort flush of an un-synced tail on clean shutdown; a
        // failure here is indistinguishable from a crash, which recovery
        // already handles.
        let _ = self.sync();
    }
}
