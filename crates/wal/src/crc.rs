//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) over record payloads.
//!
//! The table is generated at compile time; the implementation is the
//! textbook byte-at-a-time reflected algorithm. The workspace is offline
//! (no `crc32fast`), and WAL throughput is dominated by `fsync`, so the
//! simple loop is more than fast enough.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, reflected, init/xorout `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"topological invariant");
        let mut flipped = b"topological invariant".to_vec();
        for i in 0..flipped.len() {
            flipped[i] ^= 1;
            assert_ne!(crc32(&flipped), base, "flip at byte {i} undetected");
            flipped[i] ^= 1;
        }
    }
}
