//! Topological constraint networks and their satisfiability.
//!
//! This implements the *topological inference* problem studied in \[GPP95\]
//! and referenced by the paper as the existential fragment of its
//! region-based languages (Section 6): given variables standing for regions
//! and, for some pairs, a set of admissible 4-intersection relations, decide
//! whether regions realizing all constraints exist.
//!
//! The decision procedure is the standard one for RCC8-style calculi:
//! path consistency by weak composition, plus backtracking over base-relation
//! refinements. Path consistency over base relations is sound and, for the
//! RCC8 algebra over planar regions, refutation-complete for the purposes of
//! the benchmark workloads used here; `DESIGN.md` documents the caveat that
//! for disc-only interpretations the composition table is an over-
//! approximation (exactly the subtlety \[GPP95\] investigates).

use crate::composition::{compose_sets, RelationSet};
use crate::relation::Relation4;
use std::collections::BTreeMap;

/// A constraint network over `n` region variables.
#[derive(Clone, Debug)]
pub struct ConstraintNetwork {
    n: usize,
    /// Constraint matrix: `constraints[i][j]` is the set of admissible
    /// relations `R(i, j)`. The diagonal is `{Equal}` and the matrix is kept
    /// converse-consistent.
    constraints: Vec<Vec<RelationSet>>,
}

impl ConstraintNetwork {
    /// A network of `n` variables with no constraints (all pairs
    /// unconstrained).
    pub fn unconstrained(n: usize) -> Self {
        let mut constraints = vec![vec![RelationSet::ALL; n]; n];
        for (i, row) in constraints.iter_mut().enumerate() {
            row[i] = RelationSet::singleton(Relation4::Equal);
        }
        ConstraintNetwork { n, constraints }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the network trivial (no variables)?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Constrain `R(i, j)` to the given set (intersecting with any existing
    /// constraint); the converse constraint is updated symmetrically.
    pub fn constrain(&mut self, i: usize, j: usize, rels: RelationSet) {
        assert!(i < self.n && j < self.n, "variable out of range");
        self.constraints[i][j] = self.constraints[i][j].intersect(rels);
        self.constraints[j][i] = self.constraints[j][i].intersect(rels.inverse());
    }

    /// Constrain `R(i, j)` to a single base relation.
    pub fn constrain_base(&mut self, i: usize, j: usize, rel: Relation4) {
        self.constrain(i, j, RelationSet::singleton(rel));
    }

    /// The current constraint on `R(i, j)`.
    pub fn constraint(&self, i: usize, j: usize) -> RelationSet {
        self.constraints[i][j]
    }

    /// Enforce path consistency by weak composition: repeatedly refine
    /// `R(i, j) ← R(i, j) ∩ (R(i, k) ; R(k, j))` until a fixpoint.
    ///
    /// Returns `false` if some constraint became empty (the network is
    /// certainly unsatisfiable); `true` otherwise.
    pub fn path_consistency(&mut self) -> bool {
        let n = self.n;
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    for k in 0..n {
                        if k == i || k == j {
                            continue;
                        }
                        let composed =
                            compose_sets(self.constraints[i][k], self.constraints[k][j]);
                        let refined = self.constraints[i][j].intersect(composed);
                        if refined != self.constraints[i][j] {
                            self.constraints[i][j] = refined;
                            self.constraints[j][i] = refined.inverse();
                            changed = true;
                            if refined.is_empty() {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        true
    }

    /// Decide satisfiability by backtracking over base-relation refinements,
    /// pruning with path consistency. Returns a consistent atomic refinement
    /// (a *scenario*) if one exists.
    pub fn solve(&self) -> Option<Scenario> {
        let mut work = self.clone();
        if !work.path_consistency() {
            return None;
        }
        work.solve_rec(0)
    }

    /// Is the network satisfiable?
    pub fn is_satisfiable(&self) -> bool {
        self.solve().is_some()
    }

    fn solve_rec(&mut self, _depth: usize) -> Option<Scenario> {
        // Find the most constrained undecided pair.
        let mut target: Option<(usize, usize)> = None;
        let mut best = usize::MAX;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let k = self.constraints[i][j].len();
                if k == 0 {
                    return None;
                }
                if k > 1 && k < best {
                    best = k;
                    target = Some((i, j));
                }
            }
        }
        let Some((i, j)) = target else {
            // Fully atomic and path consistent: report the scenario.
            return Some(Scenario::from_network(self));
        };
        for r in self.constraints[i][j].iter() {
            let mut branch = self.clone();
            branch.constraints[i][j] = RelationSet::singleton(r);
            branch.constraints[j][i] = RelationSet::singleton(r.inverse());
            if branch.path_consistency() {
                if let Some(s) = branch.solve_rec(_depth + 1) {
                    return Some(s);
                }
            }
        }
        None
    }
}

/// A fully refined (atomic), path-consistent assignment of a base relation to
/// every pair of variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Scenario {
    relations: BTreeMap<(usize, usize), Relation4>,
    n: usize,
}

impl Scenario {
    fn from_network(net: &ConstraintNetwork) -> Scenario {
        let mut relations = BTreeMap::new();
        for i in 0..net.n {
            for j in (i + 1)..net.n {
                let r = net.constraints[i][j]
                    .iter()
                    .next()
                    .expect("atomic network has nonempty constraints");
                relations.insert((i, j), r);
            }
        }
        Scenario { relations, n: net.n }
    }

    /// The base relation between two variables in the scenario.
    pub fn relation(&self, i: usize, j: usize) -> Relation4 {
        if i == j {
            return Relation4::Equal;
        }
        if i < j {
            self.relations[&(i, j)]
        } else {
            self.relations[&(j, i)].inverse()
        }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the scenario over zero variables?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Build the constraint network recording the actual pairwise relations of a
/// spatial instance (a trivially satisfiable network — useful as a
/// benchmark workload and for soundness tests of the composition table).
pub fn network_of_instance(inst: &spatial_core::instance::SpatialInstance) -> ConstraintNetwork {
    let rels = crate::relation::all_pairwise_relations(inst);
    let names: Vec<&str> = inst.names();
    let index: BTreeMap<&str, usize> = names.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut net = ConstraintNetwork::unconstrained(names.len());
    for (a, b, r) in rels {
        net.constrain_base(index[a.as_str()], index[b.as_str()], r);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::fixtures;
    use Relation4::*;

    #[test]
    fn empty_and_trivial_networks() {
        assert!(ConstraintNetwork::unconstrained(0).is_satisfiable());
        assert!(ConstraintNetwork::unconstrained(1).is_satisfiable());
        assert!(ConstraintNetwork::unconstrained(5).is_satisfiable());
    }

    #[test]
    fn contradictory_cycle_is_unsatisfiable() {
        // A inside B, B inside C, C inside A is impossible.
        let mut net = ConstraintNetwork::unconstrained(3);
        net.constrain_base(0, 1, Inside);
        net.constrain_base(1, 2, Inside);
        net.constrain_base(2, 0, Inside);
        assert!(!net.is_satisfiable());
    }

    #[test]
    fn containment_chain_is_satisfiable() {
        let mut net = ConstraintNetwork::unconstrained(4);
        net.constrain_base(0, 1, Inside);
        net.constrain_base(1, 2, Inside);
        net.constrain_base(2, 3, Inside);
        let scenario = net.solve().expect("chain is satisfiable");
        // Transitivity is forced: 0 inside 3.
        assert_eq!(scenario.relation(0, 3), Inside);
        assert_eq!(scenario.relation(3, 0), Contains);
    }

    #[test]
    fn meet_inside_forces_overlap_family() {
        // A meets B, B inside C: then A and C must overlap-or-be-inside.
        let mut net = ConstraintNetwork::unconstrained(3);
        net.constrain_base(0, 1, Meet);
        net.constrain_base(1, 2, Inside);
        assert!(net.path_consistency());
        let allowed = net.constraint(0, 2);
        assert_eq!(
            allowed.to_set(),
            RelationSet::from_slice(&[Overlap, CoveredBy, Inside]).to_set()
        );
        // Adding a contradictory requirement kills it.
        net.constrain_base(0, 2, Disjoint);
        assert!(!net.path_consistency());
    }

    #[test]
    fn disjunctive_constraints_are_searched() {
        // A and B are either disjoint or one inside the other; B contains C;
        // C overlaps A. The only consistent choice for (A, B) is overlap-free?
        // Work it out: C ⊂ B and C overlaps A forces A ∩ B ≠ ∅, so A and B
        // cannot be disjoint; the solver must pick a containment-ish option.
        let mut net = ConstraintNetwork::unconstrained(3);
        net.constrain(0, 1, RelationSet::from_slice(&[Disjoint, Inside, Contains]));
        net.constrain_base(1, 2, Contains);
        net.constrain_base(2, 0, Overlap);
        let scenario = net.solve().expect("satisfiable");
        assert_ne!(scenario.relation(0, 1), Disjoint);
    }

    #[test]
    fn networks_from_real_instances_are_satisfiable() {
        for inst in [
            fixtures::fig_1a(),
            fixtures::fig_1b(),
            fixtures::fig_1c(),
            fixtures::fig_1d(),
            fixtures::nested_three(),
            fixtures::shared_boundary(),
            fixtures::ring_with_flag(),
        ] {
            let net = network_of_instance(&inst);
            assert!(net.is_satisfiable(), "real instance yields a satisfiable network");
        }
    }

    #[test]
    fn composition_table_is_sound_on_real_instances() {
        // For every triple of regions in a real instance, the observed
        // relation R(A, C) must be contained in the composition of the
        // observed R(A, B) and R(B, C).
        for inst in [fixtures::fig_1a(), fixtures::fig_1b(), fixtures::nested_three(), fixtures::shared_boundary()] {
            let names = inst.names();
            let complex = arrangement::build_complex(&inst);
            let rel = |x: &str, y: &str| {
                crate::relation::relation_in_complex(&complex, x, y).unwrap()
            };
            for a in &names {
                for b in &names {
                    for c in &names {
                        if a == b || b == c || a == c {
                            continue;
                        }
                        let composed = compose_sets(
                            RelationSet::singleton(rel(a, b)),
                            RelationSet::singleton(rel(b, c)),
                        );
                        assert!(
                            composed.contains(rel(a, c)),
                            "composition table unsound for ({a},{b},{c})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scenario_accessors() {
        let mut net = ConstraintNetwork::unconstrained(2);
        net.constrain_base(0, 1, Covers);
        let s = net.solve().unwrap();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.relation(0, 0), Equal);
        assert_eq!(s.relation(0, 1), Covers);
        assert_eq!(s.relation(1, 0), CoveredBy);
    }
}
