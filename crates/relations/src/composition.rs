//! The composition algebra of the 4-intersection relations.
//!
//! Given `R(A, B)` and `R(B, C)`, the composition table lists which relations
//! `R(A, C)` are possible. This is the (weak) composition table of RCC8 /
//! the Egenhofer relations, the algebraic backbone of topological inference
//! over the existential fragment of the paper's languages (\[GPP95\],
//! Section 6 of the paper).

use crate::relation::Relation4;
use std::collections::BTreeSet;

/// A set of 4-intersection relations, represented as a bitmask over
/// [`Relation4::ALL`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelationSet(u8);

impl RelationSet {
    /// The empty set (an unsatisfiable constraint).
    pub const EMPTY: RelationSet = RelationSet(0);
    /// The universal set (no constraint).
    pub const ALL: RelationSet = RelationSet(0xFF);

    fn bit(r: Relation4) -> u8 {
        1 << (Relation4::ALL.iter().position(|&x| x == r).unwrap() as u8)
    }

    /// The singleton set.
    pub fn singleton(r: Relation4) -> RelationSet {
        RelationSet(Self::bit(r))
    }

    /// Build a set from a slice of relations.
    pub fn from_slice(rs: &[Relation4]) -> RelationSet {
        RelationSet(rs.iter().fold(0, |acc, &r| acc | Self::bit(r)))
    }

    /// Does the set contain the relation?
    pub fn contains(self, r: Relation4) -> bool {
        self.0 & Self::bit(r) != 0
    }

    /// Set union.
    pub fn union(self, other: RelationSet) -> RelationSet {
        RelationSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: RelationSet) -> RelationSet {
        RelationSet(self.0 & other.0)
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of relations in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate over the members.
    pub fn iter(self) -> impl Iterator<Item = Relation4> {
        Relation4::ALL.into_iter().filter(move |&r| self.contains(r))
    }

    /// The set of converses of the members.
    pub fn inverse(self) -> RelationSet {
        RelationSet::from_slice(&self.iter().map(Relation4::inverse).collect::<Vec<_>>())
    }

    /// The members as a sorted set.
    pub fn to_set(self) -> BTreeSet<Relation4> {
        self.iter().collect()
    }
}

impl FromIterator<Relation4> for RelationSet {
    fn from_iter<I: IntoIterator<Item = Relation4>>(iter: I) -> Self {
        iter.into_iter().fold(RelationSet::EMPTY, |acc, r| acc.union(RelationSet::singleton(r)))
    }
}

/// The weak composition of two base relations: the set of relations possible
/// between `A` and `C` given `r1(A, B)` and `r2(B, C)`.
pub fn compose(r1: Relation4, r2: Relation4) -> RelationSet {
    use Relation4::*;
    // Shorthands for frequently used sets.
    let all = RelationSet::ALL;
    let s = RelationSet::from_slice;
    if r1 == Equal {
        return RelationSet::singleton(r2);
    }
    if r2 == Equal {
        return RelationSet::singleton(r1);
    }
    match (r1, r2) {
        // --- Disjoint (DC) ---
        (Disjoint, Disjoint) => all,
        (Disjoint, Meet) | (Disjoint, Overlap) | (Disjoint, CoveredBy) | (Disjoint, Inside) => {
            s(&[Disjoint, Meet, Overlap, CoveredBy, Inside])
        }
        (Disjoint, Covers) | (Disjoint, Contains) => s(&[Disjoint]),

        // --- Meet (EC) ---
        (Meet, Disjoint) => s(&[Disjoint, Meet, Overlap, Covers, Contains]),
        (Meet, Meet) => s(&[Disjoint, Meet, Overlap, CoveredBy, Covers, Equal]),
        (Meet, Overlap) => s(&[Disjoint, Meet, Overlap, CoveredBy, Inside]),
        (Meet, CoveredBy) => s(&[Meet, Overlap, CoveredBy, Inside]),
        (Meet, Inside) => s(&[Overlap, CoveredBy, Inside]),
        (Meet, Covers) => s(&[Disjoint, Meet]),
        (Meet, Contains) => s(&[Disjoint]),

        // --- Overlap (PO) ---
        (Overlap, Disjoint) | (Overlap, Meet) => s(&[Disjoint, Meet, Overlap, Covers, Contains]),
        (Overlap, Overlap) => all,
        (Overlap, CoveredBy) | (Overlap, Inside) => s(&[Overlap, CoveredBy, Inside]),
        (Overlap, Covers) | (Overlap, Contains) => s(&[Disjoint, Meet, Overlap, Covers, Contains]),

        // --- CoveredBy (TPP) ---
        (CoveredBy, Disjoint) => s(&[Disjoint]),
        (CoveredBy, Meet) => s(&[Disjoint, Meet]),
        (CoveredBy, Overlap) => s(&[Disjoint, Meet, Overlap, CoveredBy, Inside]),
        (CoveredBy, CoveredBy) => s(&[CoveredBy, Inside]),
        (CoveredBy, Inside) => s(&[Inside]),
        (CoveredBy, Covers) => s(&[Disjoint, Meet, Overlap, CoveredBy, Covers, Equal]),
        (CoveredBy, Contains) => s(&[Disjoint, Meet, Overlap, Covers, Contains]),

        // --- Inside (NTPP) ---
        (Inside, Disjoint) | (Inside, Meet) => s(&[Disjoint]),
        (Inside, Overlap) => s(&[Disjoint, Meet, Overlap, CoveredBy, Inside]),
        (Inside, CoveredBy) | (Inside, Inside) => s(&[Inside]),
        (Inside, Covers) => s(&[Disjoint, Meet, Overlap, CoveredBy, Inside]),
        (Inside, Contains) => all,

        // --- Covers (TPPi) ---
        (Covers, Disjoint) => s(&[Disjoint, Meet, Overlap, Covers, Contains]),
        (Covers, Meet) => s(&[Meet, Overlap, Covers, Contains]),
        (Covers, Overlap) => s(&[Overlap, Covers, Contains]),
        (Covers, CoveredBy) => s(&[Overlap, CoveredBy, Covers, Equal]),
        (Covers, Inside) => s(&[Overlap, CoveredBy, Inside]),
        (Covers, Covers) => s(&[Covers, Contains]),
        (Covers, Contains) => s(&[Contains]),

        // --- Contains (NTPPi) ---
        (Contains, Disjoint) => s(&[Disjoint, Meet, Overlap, Covers, Contains]),
        (Contains, Meet) | (Contains, Overlap) | (Contains, CoveredBy) => {
            s(&[Overlap, Covers, Contains])
        }
        (Contains, Inside) => {
            s(&[Overlap, CoveredBy, Inside, Covers, Contains, Equal])
        }
        (Contains, Covers) | (Contains, Contains) => s(&[Contains]),

        // Equal handled above.
        (Equal, _) | (_, Equal) => unreachable!("handled before the match"),
    }
}

/// Weak composition lifted to sets of relations.
pub fn compose_sets(a: RelationSet, b: RelationSet) -> RelationSet {
    let mut out = RelationSet::EMPTY;
    for r1 in a.iter() {
        for r2 in b.iter() {
            out = out.union(compose(r1, r2));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use Relation4::*;

    #[test]
    fn relation_set_basics() {
        let s = RelationSet::from_slice(&[Disjoint, Meet]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Disjoint));
        assert!(!s.contains(Overlap));
        assert!(!s.is_empty());
        assert!(RelationSet::EMPTY.is_empty());
        assert_eq!(RelationSet::ALL.len(), 8);
        assert_eq!(s.union(RelationSet::singleton(Overlap)).len(), 3);
        assert_eq!(s.intersect(RelationSet::singleton(Meet)).len(), 1);
        assert_eq!(s.inverse(), s); // Disjoint and Meet are self-converse.
        let t = RelationSet::from_slice(&[Contains, Covers]);
        assert_eq!(t.inverse(), RelationSet::from_slice(&[Inside, CoveredBy]));
        let collected: RelationSet = [Equal, Equal, Inside].into_iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn equality_is_identity_for_composition() {
        for r in Relation4::ALL {
            assert_eq!(compose(Equal, r), RelationSet::singleton(r));
            assert_eq!(compose(r, Equal), RelationSet::singleton(r));
        }
    }

    #[test]
    fn composition_converse_law() {
        // compose(r1, r2) = converse(compose(converse(r2), converse(r1)))
        for r1 in Relation4::ALL {
            for r2 in Relation4::ALL {
                let lhs = compose(r1, r2);
                let rhs = compose(r2.inverse(), r1.inverse()).inverse();
                assert_eq!(lhs.to_set(), rhs.to_set(), "converse law fails for {r1} ; {r2}");
            }
        }
    }

    #[test]
    fn composition_contains_identity_witnesses() {
        // r ∈ compose(r, converse(r)) would not hold in general, but
        // Equal ∈ compose(r, converse(r)) must hold (take C = A).
        for r in Relation4::ALL {
            assert!(
                compose(r, r.inverse()).contains(Equal),
                "Equal missing from {r} ; {}",
                r.inverse()
            );
        }
    }

    #[test]
    fn some_well_known_entries() {
        assert_eq!(compose(Inside, Inside), RelationSet::singleton(Inside));
        assert_eq!(compose(Contains, Contains), RelationSet::singleton(Contains));
        assert_eq!(compose(Inside, Disjoint), RelationSet::singleton(Disjoint));
        assert_eq!(compose(Disjoint, Contains), RelationSet::singleton(Disjoint));
        assert_eq!(compose(Disjoint, Disjoint), RelationSet::ALL);
        assert_eq!(compose(Inside, Contains), RelationSet::ALL);
        assert_eq!(compose(Meet, Contains), RelationSet::singleton(Disjoint));
        assert_eq!(
            compose(Covers, Covers),
            RelationSet::from_slice(&[Covers, Contains])
        );
    }

    #[test]
    fn compose_sets_distributes() {
        let a = RelationSet::from_slice(&[Inside, Equal]);
        let b = RelationSet::from_slice(&[Disjoint]);
        assert_eq!(
            compose_sets(a, b).to_set(),
            compose(Inside, Disjoint).union(compose(Equal, Disjoint)).to_set()
        );
    }
}
