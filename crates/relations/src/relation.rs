//! The eight 4-intersection (Egenhofer) relations between plane regions
//! (Section 2 of the paper, Fig. 2), plus the finer 9-intersection matrix.

use arrangement::{build_complex, build_complex_view, ComplexRead, Sign};
use spatial_core::prelude::*;
use std::fmt;

/// The eight mutually exclusive, jointly exhaustive 4-intersection relations
/// between two regions (Egenhofer; the paper's Fig. 2).
///
/// The correspondence with the RCC8 vocabulary used in qualitative spatial
/// reasoning is noted on each variant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Relation4 {
    /// The closures are disjoint (RCC8 `DC`).
    Disjoint,
    /// Only the boundaries intersect (RCC8 `EC`).
    Meet,
    /// Interiors and boundaries all intersect, neither region contains the
    /// other (RCC8 `PO`).
    Overlap,
    /// The regions are equal (RCC8 `EQ`).
    Equal,
    /// The first region properly contains the second, boundaries disjoint
    /// (RCC8 `NTPPi`).
    Contains,
    /// The first region is properly contained in the second, boundaries
    /// disjoint (RCC8 `NTPP`).
    Inside,
    /// The first region contains the second and their boundaries touch
    /// (RCC8 `TPPi`).
    Covers,
    /// The first region is contained in the second and their boundaries touch
    /// (RCC8 `TPP`).
    CoveredBy,
}

impl Relation4 {
    /// All eight relations.
    pub const ALL: [Relation4; 8] = [
        Relation4::Disjoint,
        Relation4::Meet,
        Relation4::Overlap,
        Relation4::Equal,
        Relation4::Contains,
        Relation4::Inside,
        Relation4::Covers,
        Relation4::CoveredBy,
    ];

    /// The converse relation: `r(A, B)` holds iff `r.inverse()(B, A)` holds.
    pub fn inverse(self) -> Relation4 {
        match self {
            Relation4::Contains => Relation4::Inside,
            Relation4::Inside => Relation4::Contains,
            Relation4::Covers => Relation4::CoveredBy,
            Relation4::CoveredBy => Relation4::Covers,
            other => other,
        }
    }

    /// Does the relation imply that the closures of the two regions share at
    /// least one point? True for every relation except [`Relation4::Disjoint`]
    /// (whose definition is exactly closure-disjointness).
    ///
    /// This is the spatial grounding of the query planner's candidate
    /// generators: an atom asserting a closure-contact-implying relation
    /// between a variable and a bound region can only be satisfied by
    /// regions whose bounding boxes intersect that region's box, so the
    /// variable ranges over the spatial index's bbox neighbors instead of
    /// all names.
    pub fn implies_closure_contact(self) -> bool {
        self != Relation4::Disjoint
    }

    /// The relation's conventional lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Relation4::Disjoint => "disjoint",
            Relation4::Meet => "meet",
            Relation4::Overlap => "overlap",
            Relation4::Equal => "equal",
            Relation4::Contains => "contains",
            Relation4::Inside => "inside",
            Relation4::Covers => "covers",
            Relation4::CoveredBy => "covered_by",
        }
    }

    /// Parse a relation from its [`Relation4::name`].
    pub fn from_name(name: &str) -> Option<Relation4> {
        Relation4::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Classify a 4-intersection matrix. The four booleans state whether the
    /// following intersections are nonempty:
    /// `(int ∩ int, bnd ∩ bnd, int ∩ bnd, bnd ∩ int)`
    /// where the first operand refers to region `A`, the second to `B`.
    ///
    /// Of the 16 combinations only 8 are realizable by regions; the others
    /// return `None` (the paper, Section 2).
    pub fn from_matrix(m: FourIntersectionMatrix) -> Option<Relation4> {
        let FourIntersectionMatrix {
            interiors,
            boundaries,
            interior_a_boundary_b,
            boundary_a_interior_b,
        } = m;
        match (interiors, boundaries, interior_a_boundary_b, boundary_a_interior_b) {
            (false, false, false, false) => Some(Relation4::Disjoint),
            (false, true, false, false) => Some(Relation4::Meet),
            (true, true, true, true) => Some(Relation4::Overlap),
            (true, true, false, false) => Some(Relation4::Equal),
            (true, false, true, false) => Some(Relation4::Contains),
            (true, true, true, false) => Some(Relation4::Covers),
            (true, false, false, true) => Some(Relation4::Inside),
            (true, true, false, true) => Some(Relation4::CoveredBy),
            _ => None,
        }
    }

    /// The 4-intersection matrix realized by this relation.
    pub fn to_matrix(self) -> FourIntersectionMatrix {
        let m = |a, b, c, d| FourIntersectionMatrix {
            interiors: a,
            boundaries: b,
            interior_a_boundary_b: c,
            boundary_a_interior_b: d,
        };
        match self {
            Relation4::Disjoint => m(false, false, false, false),
            Relation4::Meet => m(false, true, false, false),
            Relation4::Overlap => m(true, true, true, true),
            Relation4::Equal => m(true, true, false, false),
            Relation4::Contains => m(true, false, true, false),
            Relation4::Covers => m(true, true, true, false),
            Relation4::Inside => m(true, false, false, true),
            Relation4::CoveredBy => m(true, true, false, true),
        }
    }
}

impl fmt::Display for Relation4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The 4-intersection matrix of a pair of regions: which of the four
/// interior/boundary intersections are nonempty.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FourIntersectionMatrix {
    /// `int(A) ∩ int(B) ≠ ∅`
    pub interiors: bool,
    /// `∂A ∩ ∂B ≠ ∅`
    pub boundaries: bool,
    /// `int(A) ∩ ∂B ≠ ∅`
    pub interior_a_boundary_b: bool,
    /// `∂A ∩ int(B) ≠ ∅`
    pub boundary_a_interior_b: bool,
}

/// The full 9-intersection matrix (Egenhofer–Franzosa): emptiness of the
/// pairwise intersections of interior, boundary and exterior of two regions.
/// Row index = part of `A` (interior, boundary, exterior); column index =
/// part of `B`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NineIntersectionMatrix(pub [[bool; 3]; 3]);

/// Compute the 4-intersection relation between two regions exactly, by
/// building the two-region cell complex and inspecting its cell labels.
pub fn relation_between(a: &Region, b: &Region) -> Relation4 {
    let inst = SpatialInstance::from_regions([("A", a.clone()), ("B", b.clone())]);
    let complex = build_complex(&inst);
    relation_in_complex(&complex, "A", "B").expect("both regions present")
}

/// Compute the 4-intersection matrix between two regions exactly.
pub fn matrix_between(a: &Region, b: &Region) -> FourIntersectionMatrix {
    let inst = SpatialInstance::from_regions([("A", a.clone()), ("B", b.clone())]);
    let complex = build_complex(&inst);
    matrix_in_complex(&complex, "A", "B").expect("both regions present")
}

/// Compute the 9-intersection matrix between two regions exactly.
pub fn nine_matrix_between(a: &Region, b: &Region) -> NineIntersectionMatrix {
    let inst = SpatialInstance::from_regions([("A", a.clone()), ("B", b.clone())]);
    let complex = build_complex(&inst);
    nine_matrix_in_complex(&complex, "A", "B").expect("both regions present")
}

/// The 4-intersection relation between two named regions of an instance,
/// read off the instance's cell complex (flat or zero-copy view — any
/// [`ComplexRead`] implementation). This realizes the reduction of
/// Corollary 3.7: the relation is a topological query, answerable from the
/// invariant alone.
pub fn relation_in_complex<C: ComplexRead>(complex: &C, a: &str, b: &str) -> Option<Relation4> {
    matrix_in_complex(complex, a, b).and_then(|m| {
        Relation4::from_matrix(m).or_else(|| {
            panic!("unrealizable 4-intersection matrix computed: {m:?}")
        })
    })
}

/// The 4-intersection matrix between two named regions of a cell complex.
pub fn matrix_in_complex<C: ComplexRead>(
    complex: &C,
    a: &str,
    b: &str,
) -> Option<FourIntersectionMatrix> {
    let nine = nine_matrix_in_complex(complex, a, b)?;
    Some(FourIntersectionMatrix {
        interiors: nine.0[0][0],
        boundaries: nine.0[1][1],
        interior_a_boundary_b: nine.0[0][1],
        boundary_a_interior_b: nine.0[1][0],
    })
}

/// The 9-intersection matrix between two named regions of a cell complex.
///
/// Reads only the two relevant signs of every cell (the
/// [`ComplexRead::vertex_sign`]-family fast paths), so no label is
/// materialized — on the zero-copy view this avoids widening any label at
/// all.
pub fn nine_matrix_in_complex<C: ComplexRead>(
    complex: &C,
    a: &str,
    b: &str,
) -> Option<NineIntersectionMatrix> {
    let ia = complex.region_index(a)?;
    let ib = complex.region_index(b)?;
    let part = |s: Sign| -> usize {
        match s {
            Sign::Interior => 0,
            Sign::Boundary => 1,
            Sign::Exterior => 2,
        }
    };
    let mut m = [[false; 3]; 3];
    for v in complex.vertex_ids() {
        m[part(complex.vertex_sign(v, ia))][part(complex.vertex_sign(v, ib))] = true;
    }
    for e in complex.edge_ids() {
        m[part(complex.edge_sign(e, ia))][part(complex.edge_sign(e, ib))] = true;
    }
    for f in complex.face_ids() {
        m[part(complex.face_sign(f, ia))][part(complex.face_sign(f, ib))] = true;
    }
    Some(NineIntersectionMatrix(m))
}

/// All pairwise 4-intersection relations of an instance, in name order.
///
/// Builds the instance's complex view from scratch; callers that already
/// hold a complex (for example a caching facade) should use
/// [`all_pairwise_relations_in_complex`] instead, which reuses it.
pub fn all_pairwise_relations(inst: &SpatialInstance) -> Vec<(String, String, Relation4)> {
    all_pairwise_relations_in_complex(&build_complex_view(inst))
}

/// All pairwise 4-intersection relations read off an already-built cell
/// complex (flat or view), in region-name order. Zero-copy companion of
/// [`all_pairwise_relations`]: no arrangement is rebuilt, every pair is
/// answered from the complex's cell labels alone (Corollary 3.7).
pub fn all_pairwise_relations_in_complex<C: ComplexRead>(
    complex: &C,
) -> Vec<(String, String, Relation4)> {
    let names = complex.region_names();
    let mut out = Vec::new();
    for i in 0..names.len() {
        for j in (i + 1)..names.len() {
            let r = relation_in_complex(complex, &names[i], &names[j])
                .expect("names come from the complex");
            out.push((names[i].clone(), names[j].clone(), r));
        }
    }
    out
}

/// One region's row of the relation matrix: the 4-intersection relation of
/// `name` with every *other* region of the complex, in name order. `None` if
/// `name` is not a region of the complex.
///
/// This is the accessor behind per-region serving ("how does X relate to
/// everything?"): `O(regions)` relation classifications against the shared
/// complex instead of materializing the full `O(regions²)` matrix.
pub fn relations_with_in_complex<C: ComplexRead>(
    complex: &C,
    name: &str,
) -> Option<Vec<(String, Relation4)>> {
    complex.region_index(name)?;
    let out = complex
        .region_names()
        .iter()
        .filter(|other| other.as_str() != name)
        .map(|other| {
            let r = relation_in_complex(complex, name, other)
                .expect("names come from the complex");
            (other.clone(), r)
        })
        .collect();
    Some(out)
}

/// Are two instances 4-intersection equivalent (same names, and every pair of
/// regions stands in the same relation in both)? This is the equivalence the
/// paper shows to be strictly coarser than topological equivalence (Fig. 1).
pub fn four_intersection_equivalent(a: &SpatialInstance, b: &SpatialInstance) -> bool {
    a.names() == b.names() && all_pairwise_relations(a) == all_pairwise_relations(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::fixtures;

    #[test]
    fn fig2_pairs_realize_all_eight_relations() {
        for (name, inst) in fixtures::fig_2_pairs() {
            let complex = build_complex(&inst);
            let r = relation_in_complex(&complex, "A", "B").unwrap();
            assert_eq!(r.name(), name, "fixture `{name}` realizes {r}");
        }
    }

    #[test]
    fn relation_is_converse_symmetric() {
        for (_, inst) in fixtures::fig_2_pairs() {
            let a = inst.ext("A").unwrap();
            let b = inst.ext("B").unwrap();
            assert_eq!(relation_between(a, b).inverse(), relation_between(b, a));
        }
    }

    #[test]
    fn matrix_round_trip() {
        for r in Relation4::ALL {
            assert_eq!(Relation4::from_matrix(r.to_matrix()), Some(r));
            assert_eq!(Relation4::from_name(r.name()), Some(r));
            assert_eq!(r.inverse().inverse(), r);
        }
        // An unrealizable matrix.
        assert_eq!(
            Relation4::from_matrix(FourIntersectionMatrix {
                interiors: false,
                boundaries: false,
                interior_a_boundary_b: true,
                boundary_a_interior_b: false,
            }),
            None
        );
    }

    #[test]
    fn computed_matrices_match_declared_ones() {
        for (name, inst) in fixtures::fig_2_pairs() {
            let a = inst.ext("A").unwrap();
            let b = inst.ext("B").unwrap();
            let m = matrix_between(a, b);
            let r = Relation4::from_name(name).unwrap();
            assert_eq!(m, r.to_matrix(), "{name}");
        }
    }

    #[test]
    fn nine_intersection_exterior_row() {
        // The exterior/exterior entry is always nonempty for bounded regions,
        // and a region strictly inside another has empty boundary/exterior
        // intersection with it.
        let inst = fixtures::fig_2_pairs()
            .into_iter()
            .find(|(n, _)| *n == "contains")
            .map(|(_, i)| i)
            .unwrap();
        let a = inst.ext("A").unwrap();
        let b = inst.ext("B").unwrap();
        let nine = nine_matrix_between(a, b);
        assert!(nine.0[2][2], "ext/ext");
        // B (inside A): B's boundary does not meet A's exterior.
        assert!(!nine.0[2][1], "A-exterior does not meet B-boundary");
        // A's boundary lies in B's exterior.
        assert!(nine.0[1][2]);
    }

    #[test]
    fn fig_1a_and_1b_are_four_intersection_equivalent_but_distinct() {
        let a = fixtures::fig_1a();
        let b = fixtures::fig_1b();
        assert!(four_intersection_equivalent(&a, &b));
        let rels = all_pairwise_relations(&a);
        assert_eq!(rels.len(), 3);
        assert!(rels.iter().all(|(_, _, r)| *r == Relation4::Overlap));
    }

    #[test]
    fn fig_1c_and_1d_are_four_intersection_equivalent() {
        assert!(four_intersection_equivalent(&fixtures::fig_1c(), &fixtures::fig_1d()));
        // But an instance with different names is not comparable.
        assert!(!four_intersection_equivalent(&fixtures::fig_1c(), &fixtures::fig_1a()));
    }

    #[test]
    fn shared_boundary_relations() {
        let inst = fixtures::shared_boundary();
        let rels = all_pairwise_relations(&inst);
        let get = |x: &str, y: &str| {
            rels.iter()
                .find(|(a, b, _)| a == x && b == y)
                .map(|(_, _, r)| *r)
                .unwrap()
        };
        assert_eq!(get("A", "B"), Relation4::Meet);
        assert_eq!(get("A", "C"), Relation4::Overlap);
        assert_eq!(get("B", "C"), Relation4::Overlap);
    }

    #[test]
    fn nested_relations() {
        let inst = fixtures::nested_three();
        let rels = all_pairwise_relations(&inst);
        assert!(rels.iter().all(|(_, _, r)| *r == Relation4::Contains));
    }
}
