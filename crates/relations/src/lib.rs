//! # relations
//!
//! The 4-intersection (Egenhofer) topological relations between plane
//! regions, their 9-intersection refinement, the composition algebra and
//! topological-inference (constraint network) reasoning.
//!
//! In the paper these relations are the starting point of the region-based
//! query languages (Section 2, Fig. 2): `disjoint`, `meet`, `overlap`,
//! `equal`, `contains`, `inside`, `covers`, `covered_by`. The paper shows
//! that pairwise relations alone do *not* determine an instance up to
//! homeomorphism (Fig. 1) — the demonstration of exactly that fact is one of
//! the reproduced experiments — and then builds complete languages by closing
//! them under quantification over regions.
//!
//! ## Example
//!
//! ```
//! use relations::{relation_between, Relation4};
//! use spatial_core::prelude::*;
//!
//! let a = Region::rect_from_ints(0, 0, 4, 4);
//! let b = Region::rect_from_ints(2, 2, 6, 6);
//! let c = Region::rect_from_ints(0, 1, 2, 2);
//! assert_eq!(relation_between(&a, &b), Relation4::Overlap);
//! assert_eq!(relation_between(&a, &c), Relation4::Covers);
//! assert_eq!(relation_between(&c, &a), Relation4::CoveredBy);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod composition;
pub mod network;
pub mod relation;

pub use composition::{compose, compose_sets, RelationSet};
pub use network::{network_of_instance, ConstraintNetwork, Scenario};
pub use relation::{
    all_pairwise_relations, all_pairwise_relations_in_complex, four_intersection_equivalent,
    matrix_between, matrix_in_complex, nine_matrix_between, nine_matrix_in_complex,
    relation_between, relation_in_complex, relations_with_in_complex, FourIntersectionMatrix,
    NineIntersectionMatrix, Relation4,
};
