//! Shared helpers for the differential test suites.

use arrangement::ComplexRead;
use spatial_core::prelude::Point;

/// A re-indexing-invariant fingerprint of any complex representation,
/// computed through the [`ComplexRead`] accessor surface (so it also
/// exercises the translation layer of the zero-copy view end to end):
/// sorted multisets of vertices (point, label, degree), edges
/// (direction-canonicalized polyline, label, boundary-region *names*) and
/// faces (label, exterior flag, boundary size).
///
/// Two complexes of the same instance must produce equal fingerprints
/// whatever construction path, assembly representation or thread count
/// produced them.
pub fn fingerprint<C: ComplexRead>(c: &C) -> (Vec<String>, Vec<String>, Vec<String>) {
    let mut vertices: Vec<String> = c
        .vertex_ids()
        .map(|v| {
            format!(
                "{:?} {:?} deg={}",
                c.vertex_point(v),
                c.vertex_label(v),
                c.vertex_rotation(v).len()
            )
        })
        .collect();
    vertices.sort();
    let mut edges: Vec<String> = c
        .edge_ids()
        .map(|e| {
            let mut pl = c.edge_polyline(e).to_vec();
            let rev: Vec<Point> = pl.iter().rev().copied().collect();
            if rev < pl {
                pl = rev;
            }
            let marks: Vec<&str> =
                c.edge_region_marks(e).iter().map(|&r| c.region_names()[r].as_str()).collect();
            format!("{:?} {:?} {:?}", pl, c.edge_label(e), marks)
        })
        .collect();
    edges.sort();
    let mut faces: Vec<String> = c
        .face_ids()
        .map(|f| {
            format!(
                "{:?} ext={} nbound={}",
                c.face_label(f),
                c.face_is_exterior(f),
                c.face_boundary(f).len()
            )
        })
        .collect();
    faces.sort();
    (vertices, edges, faces)
}
