//! Differential tests for the zero-copy assembly path:
//! [`arrangement::GlobalComplexView`] must agree with the pre-partitioning
//! single-sweep oracle ([`arrangement::build_complex_monolithic`]) on every
//! input, up to cell re-indexing — and must agree with the copying assembly
//! ([`arrangement::assemble_components`]) *cell for cell*, since the two
//! representations share one id numbering.
//!
//! Agreement with the monolithic oracle is checked on re-indexing-invariant
//! fingerprints computed through the [`ComplexRead`] accessor trait (the
//! same surface every downstream consumer uses), so the fingerprint also
//! exercises the trait's translation layer end to end.

use arrangement::{
    assemble_components, build_complex_monolithic, build_component_complexes, ComplexRead,
    GlobalComplexView,
};
use spatial_core::fixtures;
use spatial_core::prelude::*;

mod common;
use common::fingerprint;

fn view_of(inst: &SpatialInstance) -> GlobalComplexView {
    let names: Vec<String> = inst.names().iter().map(|s| s.to_string()).collect();
    GlobalComplexView::new(names, build_component_complexes(inst, 1))
}

fn check(inst: &SpatialInstance, context: &str) {
    let view = view_of(inst);
    let monolithic = build_complex_monolithic(inst);
    assert!(view.euler_formula_holds(), "euler fails (view) on {context}");
    assert_eq!(
        view.skeleton_component_count(),
        ComplexRead::skeleton_component_count(&monolithic),
        "skeleton component mismatch on {context}"
    );
    assert_eq!(fingerprint(&view), fingerprint(&monolithic), "fingerprints differ on {context}");

    // The copying assembly over the same components must match the view not
    // just up to re-indexing but cell for cell: identical ids, labels,
    // incidences, rotations and samples.
    let flat = assemble_components(
        inst.names().iter().map(|s| s.to_string()).collect(),
        view.components(),
    );
    assert_eq!(view.vertex_count(), ComplexRead::vertex_count(&flat), "{context}");
    assert_eq!(view.edge_count(), ComplexRead::edge_count(&flat), "{context}");
    assert_eq!(view.face_count(), ComplexRead::face_count(&flat), "{context}");
    assert_eq!(view.exterior_face(), ComplexRead::exterior_face(&flat), "{context}");
    for v in view.vertex_ids() {
        assert_eq!(view.vertex_point(v), ComplexRead::vertex_point(&flat, v), "{context}");
        assert_eq!(view.vertex_label(v), ComplexRead::vertex_label(&flat, v), "{context}");
        assert_eq!(view.vertex_rotation(v), ComplexRead::vertex_rotation(&flat, v), "{context}");
    }
    for e in view.edge_ids() {
        assert_eq!(view.edge_endpoints(e), ComplexRead::edge_endpoints(&flat, e), "{context}");
        assert_eq!(view.edge_faces(e), ComplexRead::edge_faces(&flat, e), "{context}");
        assert_eq!(view.edge_label(e), ComplexRead::edge_label(&flat, e), "{context}");
        assert_eq!(
            view.edge_region_marks(e),
            ComplexRead::edge_region_marks(&flat, e),
            "{context}"
        );
        assert_eq!(view.edge_polyline(e), ComplexRead::edge_polyline(&flat, e), "{context}");
    }
    for f in view.face_ids() {
        assert_eq!(view.face_label(f), ComplexRead::face_label(&flat, f), "{context}");
        assert_eq!(view.face_boundary(f), ComplexRead::face_boundary(&flat, f), "{context}");
        assert_eq!(view.face_sample(f), ComplexRead::face_sample(&flat, f), "{context}");
        assert_eq!(
            view.face_is_exterior(f),
            ComplexRead::face_is_exterior(&flat, f),
            "{context}"
        );
    }
}

#[test]
fn paper_fixtures_agree() {
    for (name, inst) in [
        ("fig_1a", fixtures::fig_1a()),
        ("fig_1b", fixtures::fig_1b()),
        ("fig_1c", fixtures::fig_1c()),
        ("fig_1d", fixtures::fig_1d()),
        ("petals_abcd", fixtures::petals_abcd()),
        ("petals_acbd", fixtures::petals_acbd()),
        ("ring", fixtures::ring()),
        ("ring_with_flag", fixtures::ring_with_flag()),
        ("ring_with_island_in", fixtures::ring_with_island(true)),
        ("ring_with_island_out", fixtures::ring_with_island(false)),
        ("nested_three", fixtures::nested_three()),
        ("shared_boundary", fixtures::shared_boundary()),
        ("empty", SpatialInstance::new()),
    ] {
        check(&inst, name);
    }
    for (name, inst) in fixtures::fig_2_pairs() {
        check(&inst, &format!("fig_2/{name}"));
    }
}

#[test]
fn randomized_instances_agree() {
    for seed in 0..40 {
        for n in [5usize, 12] {
            let inst = datagen::random_rectangles(n, 24, seed);
            check(&inst, &format!("random_rectangles({n}, 24, {seed})"));
        }
    }
    for seed in 0..10 {
        let inst = datagen::flower(8, seed);
        check(&inst, &format!("flower(8, {seed})"));
    }
}

#[test]
fn clustered_and_wide_workloads_agree() {
    for n in [2usize, 5, 9] {
        check(&datagen::nested_rings(n), &format!("nested_rings({n})"));
        check(&datagen::overlapping_chain(n), &format!("overlapping_chain({n})"));
    }
    for (clusters, per) in [(2usize, 3usize), (4, 4), (8, 2)] {
        for seed in [1u64, 7] {
            let inst = datagen::clustered_map(clusters, per, seed);
            check(&inst, &format!("clustered_map({clusters}, {per}, {seed})"));
        }
    }
    for (components, seed) in [(5usize, 2u64), (16, 11), (30, 23)] {
        let inst = datagen::wide_map(components, seed);
        check(&inst, &format!("wide_map({components}, {seed})"));
    }
}
