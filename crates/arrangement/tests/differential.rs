//! Differential tests: the Bentley–Ottmann sweep splitter must produce a
//! `SubSegment` set identical to the naive all-pairs oracle on every input —
//! randomized workloads from `datagen` plus hand-built degeneracy gauntlets.
//!
//! The oracle (`split_segments_naive`) is trivially correct: it tests every
//! pair of segments with the exact intersection primitive. Matching it
//! sub-segment for sub-segment is therefore a full functional specification
//! of the sweep, including region-mark merging of shared boundaries.

use arrangement::split::{instance_segments, split_segments_naive, TaggedSegment};
use arrangement::sweep::split_segments_sweep;
use spatial_core::fixtures;
use spatial_core::prelude::*;

fn assert_matches_oracle(segs: &[TaggedSegment], context: &str) {
    let sweep = split_segments_sweep(segs);
    let naive = split_segments_naive(segs);
    assert_eq!(
        sweep.len(),
        naive.len(),
        "sweep produced {} pieces, oracle {} on {context}",
        sweep.len(),
        naive.len()
    );
    for (s, n) in sweep.iter().zip(naive.iter()) {
        assert_eq!(s, n, "piece mismatch on {context}");
    }
}

fn check_instance(inst: &SpatialInstance, context: &str) {
    assert_matches_oracle(&instance_segments(inst), context);
}

#[test]
fn randomized_rectangle_instances() {
    // 60 seeds x sizes {5, 12}: overlapping, touching, nested and disjoint
    // axis-parallel rectangles — lots of shared supporting lines, vertical
    // segments and endpoint coincidences.
    for seed in 0..60 {
        for n in [5usize, 12] {
            let inst = datagen::random_rectangles(n, 24, seed);
            check_instance(&inst, &format!("random_rectangles({n}, 24, {seed})"));
        }
    }
}

#[test]
fn randomized_tight_rectangles() {
    // A tighter span forces far more degenerate contact: equal edges,
    // collinear overlap chains, corners on edges.
    for seed in 0..40 {
        let inst = datagen::random_rectangles(8, 9, 1000 + seed);
        check_instance(&inst, &format!("random_rectangles(8, 9, {})", 1000 + seed));
    }
}

#[test]
fn randomized_flowers() {
    // High-degree vertices: many triangles sharing the origin, in random
    // cyclic order — a many-segments-through-one-point stress.
    for seed in 0..20 {
        for n in [4usize, 8, 12] {
            let inst = datagen::flower(n, seed);
            check_instance(&inst, &format!("flower({n}, {seed})"));
        }
    }
}

#[test]
fn structured_generators() {
    for n in [2usize, 5, 9, 16] {
        check_instance(&datagen::nested_rings(n), &format!("nested_rings({n})"));
        check_instance(&datagen::overlapping_chain(n), &format!("overlapping_chain({n})"));
    }
    for (cols, rows) in [(2, 2), (4, 3), (6, 6)] {
        check_instance(&datagen::grid_map(cols, rows, 4), &format!("grid_map({cols}, {rows})"));
    }
}

#[test]
fn paper_fixtures() {
    for (name, inst) in [
        ("fig_1a", fixtures::fig_1a()),
        ("fig_1b", fixtures::fig_1b()),
        ("fig_1c", fixtures::fig_1c()),
        ("fig_1d", fixtures::fig_1d()),
        ("petals_abcd", fixtures::petals_abcd()),
        ("petals_acbd", fixtures::petals_acbd()),
        ("ring", fixtures::ring()),
        ("ring_with_flag", fixtures::ring_with_flag()),
        ("ring_with_island_in", fixtures::ring_with_island(true)),
        ("ring_with_island_out", fixtures::ring_with_island(false)),
        ("nested_three", fixtures::nested_three()),
        ("shared_boundary", fixtures::shared_boundary()),
    ] {
        check_instance(&inst, name);
    }
    for (name, inst) in fixtures::fig_2_pairs() {
        check_instance(&inst, &format!("fig_2/{name}"));
    }
}

fn tagged(segs: &[Segment]) -> Vec<TaggedSegment> {
    segs.iter().enumerate().map(|(i, s)| TaggedSegment { segment: *s, region: i }).collect()
}

#[test]
fn degeneracy_gauntlet() {
    let cases: Vec<(&str, Vec<Segment>)> = vec![
        ("three through one point", vec![
            seg(0, 0, 4, 4),
            seg(0, 4, 4, 0),
            seg(0, 2, 4, 2),
        ]),
        ("five through one point incl vertical", vec![
            seg(0, 0, 4, 4),
            seg(0, 4, 4, 0),
            seg(0, 2, 4, 2),
            seg(2, -1, 2, 5),
            seg(1, 0, 3, 4),
        ]),
        ("vertical stack with transversals", vec![
            seg(2, 0, 2, 3),
            seg(2, 3, 2, 7),
            seg(0, 1, 5, 1),
            seg(0, 5, 5, 5),
            seg(0, 3, 5, 3),
        ]),
        ("collinear overlap chain", vec![
            seg(0, 0, 4, 0),
            seg(2, 0, 6, 0),
            seg(5, 0, 9, 0),
            seg(3, 0, 8, 0),
        ]),
        ("vertical collinear overlaps", vec![
            seg(1, 0, 1, 4),
            seg(1, 2, 1, 6),
            seg(1, 6, 1, 9),
            seg(0, 3, 2, 3),
        ]),
        ("diagonal overlaps with crossings", vec![
            seg(0, 0, 4, 4),
            seg(2, 2, 6, 6),
            seg(0, 6, 6, 0),
            seg(1, 1, 3, 3),
        ]),
        ("endpoint touches interior", vec![
            seg(0, 0, 4, 0),
            seg(2, 0, 2, 3),
            seg(0, 2, 4, 2),
        ]),
        ("shared endpoints fan", vec![
            seg(0, 0, 3, 1),
            seg(0, 0, 3, -1),
            seg(0, 0, 3, 0),
            seg(0, 0, 0, 3),
            seg(0, 0, -1, 3),
        ]),
        ("crossing at rational point", vec![
            seg(0, 0, 3, 1),
            seg(0, 1, 3, 0),
            seg(1, -1, 1, 2),
        ]),
        ("grid of verticals and horizontals", vec![
            seg(0, 0, 0, 6),
            seg(2, 0, 2, 6),
            seg(4, 0, 4, 6),
            seg(0, 0, 4, 0),
            seg(0, 3, 4, 3),
            seg(0, 6, 4, 6),
        ]),
        ("duplicate geometry different regions", vec![
            seg(0, 0, 4, 0),
            seg(0, 0, 4, 0),
            seg(0, 0, 2, 0),
        ]),
        ("touch at sweep-source corner", vec![
            seg(0, 0, 2, 2),
            seg(0, 0, 2, -2),
            seg(0, -2, 0, 2),
        ]),
    ];
    for (name, segs) in cases {
        assert_matches_oracle(&tagged(&segs), name);
    }
}

#[test]
fn sweep_feeds_builder_identically() {
    // End-to-end: complexes built from the default (sweep) splitter still
    // satisfy the structural invariants on a non-trivial workload mix.
    for seed in [3u64, 7, 11] {
        let inst = datagen::random_rectangles(10, 16, seed);
        let complex = arrangement::build_complex(&inst);
        assert!(complex.euler_formula_holds(), "seed {seed}");
    }
    let complex = arrangement::build_complex(&fixtures::petals_abcd());
    assert!(complex.euler_formula_holds());
}
