//! Differential suite for the x-strip parallel sweep: on fixtures,
//! randomized dense single-component instances and crossing-heavy grids,
//! [`arrangement::strip::split_segments_striped`] must produce **identical**
//! sub-segment lists — not merely equivalent complexes — to the monolithic
//! sweep and to the all-pairs oracle, for every strip and thread count; and
//! the full complexes built through the strip path must be
//! fingerprint-identical to the monolithic single-sweep construction.

use arrangement::split::{instance_segments, split_segments, split_segments_naive};
use arrangement::strip::split_segments_striped;
use arrangement::{build_complex_monolithic, build_component_complexes, GlobalComplexView};
use spatial_core::prelude::*;

mod common;
use common::fingerprint;

fn assert_strips_exact(inst: &SpatialInstance, context: &str) {
    let segments = instance_segments(inst);
    let serial = split_segments(&segments);
    assert_eq!(
        serial,
        split_segments_naive(&segments),
        "{context}: serial sweep != all-pairs oracle"
    );
    for strips in [2usize, 3, 4, 8, 16] {
        for threads in [1usize, 3] {
            assert_eq!(
                split_segments_striped(&segments, strips, threads),
                serial,
                "{context}: strips={strips} threads={threads} diverges"
            );
        }
    }
}

#[test]
fn randomized_dense_instances_split_identically() {
    // Dense single-component jittered grids: irregular endpoint-x profiles,
    // Theta(n) proper crossings, seams landing on crossing abscissas.
    for seed in 0..12u64 {
        let inst = datagen::jittered_overlap_map(4, 4, 5, seed);
        assert_strips_exact(&inst, &format!("jittered_overlap_map(4, 4, 5, {seed})"));
    }
    // Random rectangle soups in a tight span: collinear shared edges,
    // touching corners, duplicated abscissas.
    for seed in 100..108u64 {
        let inst = datagen::random_rectangles(12, 16, seed);
        assert_strips_exact(&inst, &format!("random_rectangles(12, 16, {seed})"));
    }
    // The deterministic crossing-heavy benchmark workload.
    assert_strips_exact(&datagen::dense_overlap_map(5, 5, 4), "dense_overlap_map(5, 5, 4)");
}

#[test]
fn striped_complex_is_fingerprint_identical_to_monolithic() {
    for (name, inst) in [
        ("jittered_overlap_map(3, 3, 6, 9)", datagen::jittered_overlap_map(3, 3, 6, 9)),
        ("dense_overlap_map(4, 4, 4)", datagen::dense_overlap_map(4, 4, 4)),
    ] {
        let oracle = fingerprint(&build_complex_monolithic(&inst));
        let names: Vec<String> = inst.names().iter().map(|s| s.to_string()).collect();
        // The striped splitter is output-identical to the serial one, so the
        // complex built from its sub-segments must fingerprint-match the
        // monolithic single-sweep construction through the whole pipeline.
        let segments = instance_segments(&inst);
        for strips in [2usize, 8] {
            let subs = split_segments_striped(&segments, strips, 2);
            assert_eq!(subs, split_segments(&segments), "{name}: strips={strips}");
        }
        let view = GlobalComplexView::new(names, build_component_complexes(&inst, 2));
        assert_eq!(oracle, fingerprint(&view), "{name}: pipeline fingerprint diverges");
    }
}
