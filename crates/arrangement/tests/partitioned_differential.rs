//! Differential tests for the partition → per-component sweep → assemble
//! pipeline: [`arrangement::build_complex`] must agree with the
//! pre-partitioning single-sweep oracle
//! ([`arrangement::build_complex_monolithic`]) on every input, up to cell
//! re-indexing.
//!
//! Cell ids are not comparable across the two paths (the partitioned build
//! concatenates per-component id spaces), so agreement is checked on
//! re-indexing-invariant data: cell counts, the Euler relation, skeleton
//! component counts, and the full multisets of geometric cells with their
//! sign labels (vertices by point, edges by canonical polyline and
//! boundary-region set, faces by label and boundary size).

use arrangement::{build_complex, build_complex_monolithic};
use spatial_core::fixtures;
use spatial_core::prelude::*;

mod common;
use common::fingerprint;

fn check(inst: &SpatialInstance, context: &str) {
    let partitioned = build_complex(inst);
    let monolithic = build_complex_monolithic(inst);
    assert!(partitioned.euler_formula_holds(), "euler fails (partitioned) on {context}");
    assert!(monolithic.euler_formula_holds(), "euler fails (monolithic) on {context}");
    assert_eq!(
        partitioned.vertex_count(),
        monolithic.vertex_count(),
        "vertex count mismatch on {context}"
    );
    assert_eq!(
        partitioned.edge_count(),
        monolithic.edge_count(),
        "edge count mismatch on {context}"
    );
    assert_eq!(
        partitioned.face_count(),
        monolithic.face_count(),
        "face count mismatch on {context}"
    );
    assert_eq!(
        partitioned.skeleton_component_count(),
        monolithic.skeleton_component_count(),
        "skeleton component mismatch on {context}"
    );
    let fp = fingerprint(&partitioned);
    let fm = fingerprint(&monolithic);
    assert_eq!(fp.0, fm.0, "vertex fingerprints differ on {context}");
    assert_eq!(fp.1, fm.1, "edge fingerprints differ on {context}");
    assert_eq!(fp.2, fm.2, "face fingerprints differ on {context}");
}

#[test]
fn paper_fixtures_agree() {
    for (name, inst) in [
        ("fig_1a", fixtures::fig_1a()),
        ("fig_1b", fixtures::fig_1b()),
        ("fig_1c", fixtures::fig_1c()),
        ("fig_1d", fixtures::fig_1d()),
        ("petals_abcd", fixtures::petals_abcd()),
        ("petals_acbd", fixtures::petals_acbd()),
        ("ring", fixtures::ring()),
        ("ring_with_flag", fixtures::ring_with_flag()),
        ("ring_with_island_in", fixtures::ring_with_island(true)),
        ("ring_with_island_out", fixtures::ring_with_island(false)),
        ("nested_three", fixtures::nested_three()),
        ("shared_boundary", fixtures::shared_boundary()),
        ("empty", SpatialInstance::new()),
    ] {
        check(&inst, name);
    }
    for (name, inst) in fixtures::fig_2_pairs() {
        check(&inst, &format!("fig_2/{name}"));
    }
}

#[test]
fn randomized_instances_agree() {
    for seed in 0..40 {
        for n in [5usize, 12] {
            let inst = datagen::random_rectangles(n, 24, seed);
            check(&inst, &format!("random_rectangles({n}, 24, {seed})"));
        }
    }
    for seed in 0..10 {
        let inst = datagen::flower(8, seed);
        check(&inst, &format!("flower(8, {seed})"));
    }
}

#[test]
fn multi_component_workloads_agree() {
    // Structured generators whose partitions are non-trivial: disjoint
    // clusters, strictly nested rings (separate components resolved by
    // assembly), and single-blob grids (one component).
    for n in [2usize, 5, 9] {
        check(&datagen::nested_rings(n), &format!("nested_rings({n})"));
        check(&datagen::overlapping_chain(n), &format!("overlapping_chain({n})"));
    }
    check(&datagen::grid_map(4, 3, 4), "grid_map(4, 3)");
    for (clusters, per) in [(2usize, 3usize), (4, 4), (8, 2)] {
        for seed in [1u64, 7] {
            let inst = datagen::clustered_map(clusters, per, seed);
            check(&inst, &format!("clustered_map({clusters}, {per}, {seed})"));
        }
    }
}
