//! Differential suite for the phase-parallel post-split pipeline
//! (`ARRANGEMENT_PHASE_PARALLEL` / [`arrangement::build_complex_phased`]):
//! on randomized dense, shared-boundary, clustered and sparse workloads the
//! parallel chain-merge / face-walk / label phases must produce complexes
//! **byte-identical** (same cell ids, same order, checked through `Debug`)
//! to the serial phases, for every thread count — and fingerprint-identical
//! to the monolithic single-sweep oracle.
//!
//! The thread grid doubles as a strips grid: a component's strip budget
//! equals its thread share ([`arrangement::strip::strip_budget`]), so
//! sweeping the thread counts also sweeps the strip decomposition the
//! phases run downstream of.

use arrangement::{assemble_components, build_complex_monolithic, build_component_complexes_phased};
use spatial_core::prelude::*;

mod common;
use common::fingerprint;

/// Build through every (threads, phase_parallel) combination and require
/// byte-identical output to the fully serial pipeline, plus
/// fingerprint-identity to the monolithic oracle.
fn assert_phases_exact(inst: &SpatialInstance, context: &str) {
    let region_names: Vec<String> = inst.names().iter().map(|s| s.to_string()).collect();
    let serial =
        assemble_components(region_names.clone(), &build_component_complexes_phased(inst, 1, false));
    let serial_debug = format!("{serial:?}");
    for threads in [2usize, 3, 8] {
        for phase_parallel in [false, true] {
            let c = assemble_components(
                region_names.clone(),
                &build_component_complexes_phased(inst, threads, phase_parallel),
            );
            assert_eq!(
                serial_debug,
                format!("{c:?}"),
                "{context}: threads={threads} phase_parallel={phase_parallel} diverges"
            );
        }
    }
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&build_complex_monolithic(inst)),
        "{context}: partitioned pipeline != monolithic oracle"
    );
}

#[test]
fn randomized_dense_instances_build_identically() {
    // Dense single-component jittered grids: one big component, so the
    // phase threads equal the full budget and every parallel phase runs
    // with real fan-out.
    for seed in 0..6u64 {
        let inst = datagen::jittered_overlap_map(7, 7, 8, seed);
        assert_phases_exact(&inst, &format!("jittered seed={seed}"));
    }
}

#[test]
fn road_network_maps_build_identically() {
    // Shared-boundary cadastral sheets: endpoint coincidences, collinear
    // shared edges, multi-region marks, triangle/quad mix — the chain
    // merger's hardest inputs (many anchors, many short chains).
    for seed in 0..6u64 {
        let inst = datagen::road_network_map(6, 6, 8, seed);
        assert_phases_exact(&inst, &format!("road seed={seed}"));
    }
}

#[test]
fn clustered_and_sparse_instances_build_identically() {
    // Multi-component maps: phase threads shrink to the per-component
    // budget, exercising the serial/parallel boundary and pure-cycle
    // anchors (isolated rectangles are anchor-free loops).
    for seed in 0..4u64 {
        let inst = datagen::clustered_map(5, 4, seed);
        assert_phases_exact(&inst, &format!("clustered seed={seed}"));
        let sparse = datagen::random_rectangles(30, 80, seed);
        assert_phases_exact(&sparse, &format!("sparse seed={seed}"));
    }
}

#[test]
fn adversarial_dense_grid_builds_identically() {
    // The crossing-heavy regular grid of the strip benchmarks.
    assert_phases_exact(&datagen::dense_overlap_map(8, 8, 4), "dense 8x8");
}
