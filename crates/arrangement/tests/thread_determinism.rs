//! Determinism of the parallel construction pipeline: sweeping components on
//! 1, 2 or 8 worker threads — whether selected explicitly or through the
//! `ARRANGEMENT_THREADS` environment variable — must produce fingerprint- and
//! index-identical complexes.
//!
//! This file deliberately holds a single `#[test]` (its own test binary), so
//! the environment-variable part cannot race with any other test in the same
//! process.

use arrangement::{build_complex, build_component_complexes, ComplexRead, GlobalComplexView};
use spatial_core::prelude::*;

mod common;
use common::fingerprint;

fn view_with_threads(inst: &SpatialInstance, threads: usize) -> GlobalComplexView {
    let names: Vec<String> = inst.names().iter().map(|s| s.to_string()).collect();
    GlobalComplexView::new(names, build_component_complexes(inst, threads))
}

#[test]
fn thread_count_never_changes_the_complex() {
    for (name, inst) in [
        ("clustered_map(8, 4, 5)", datagen::clustered_map(8, 4, 5)),
        ("wide_map(24, 9)", datagen::wide_map(24, 9)),
        ("dense_overlap_map(4, 4, 4)", datagen::dense_overlap_map(4, 4, 4)),
    ] {
        // Explicit thread counts through the builder API. The serial result
        // is the baseline; parallel runs must be index-identical, not merely
        // fingerprint-equal, because downstream consumers address cells by
        // id.
        let baseline = view_with_threads(&inst, 1);
        let base_fp = fingerprint(&baseline);
        for threads in [2usize, 8] {
            let parallel = view_with_threads(&inst, threads);
            assert_eq!(
                base_fp,
                fingerprint(&parallel),
                "{name}: fingerprint changed at {threads} threads"
            );
            for f in baseline.face_ids() {
                assert_eq!(
                    baseline.face_label(f),
                    parallel.face_label(f),
                    "{name}: face {f:?} differs at {threads} threads"
                );
            }
            for e in baseline.edge_ids() {
                assert_eq!(
                    baseline.edge_faces(e),
                    parallel.edge_faces(e),
                    "{name}: edge {e:?} differs at {threads} threads"
                );
            }
        }

        // The same thread counts selected through ARRANGEMENT_THREADS, which
        // drives `build_complex` end to end (partition → parallel sweep →
        // copy assembly).
        let mut env_fps = Vec::new();
        for threads in ["1", "2", "8"] {
            std::env::set_var("ARRANGEMENT_THREADS", threads);
            env_fps.push(fingerprint(&build_complex(&inst)));
        }
        std::env::remove_var("ARRANGEMENT_THREADS");
        assert_eq!(env_fps[0], base_fp, "{name}: env-selected serial build diverges");
        assert_eq!(env_fps[0], env_fps[1], "{name}: ARRANGEMENT_THREADS=2 diverges");
        assert_eq!(env_fps[0], env_fps[2], "{name}: ARRANGEMENT_THREADS=8 diverges");
    }
}
