//! Determinism of the parallel construction pipeline: sweeping components on
//! 1, 2 or 8 worker threads and decomposing the per-component sweep into 1,
//! 2 or 8 x-strips — whether selected explicitly or through the
//! `ARRANGEMENT_THREADS` / `ARRANGEMENT_STRIPS` environment variables — must
//! produce fingerprint- and index-identical complexes.
//!
//! This file deliberately holds a single `#[test]` (its own test binary), so
//! the environment-variable part cannot race with any other test in the same
//! process.

use arrangement::split::{instance_segments, split_segments};
use arrangement::strip::split_segments_striped;
use arrangement::{build_complex, build_component_complexes, ComplexRead, GlobalComplexView};
use spatial_core::prelude::*;

mod common;
use common::fingerprint;

fn view_with_threads(inst: &SpatialInstance, threads: usize) -> GlobalComplexView {
    let names: Vec<String> = inst.names().iter().map(|s| s.to_string()).collect();
    GlobalComplexView::new(names, build_component_complexes(inst, threads))
}

#[test]
fn thread_count_never_changes_the_complex() {
    for (name, inst) in [
        ("clustered_map(8, 4, 5)", datagen::clustered_map(8, 4, 5)),
        ("wide_map(24, 9)", datagen::wide_map(24, 9)),
        ("dense_overlap_map(4, 4, 4)", datagen::dense_overlap_map(4, 4, 4)),
    ] {
        // Explicit thread counts through the builder API. The serial result
        // is the baseline; parallel runs must be index-identical, not merely
        // fingerprint-equal, because downstream consumers address cells by
        // id.
        let baseline = view_with_threads(&inst, 1);
        let base_fp = fingerprint(&baseline);
        for threads in [2usize, 8] {
            let parallel = view_with_threads(&inst, threads);
            assert_eq!(
                base_fp,
                fingerprint(&parallel),
                "{name}: fingerprint changed at {threads} threads"
            );
            for f in baseline.face_ids() {
                assert_eq!(
                    baseline.face_label(f),
                    parallel.face_label(f),
                    "{name}: face {f:?} differs at {threads} threads"
                );
            }
            for e in baseline.edge_ids() {
                assert_eq!(
                    baseline.edge_faces(e),
                    parallel.edge_faces(e),
                    "{name}: edge {e:?} differs at {threads} threads"
                );
            }
        }

        // Explicit strip counts through the splitter API: the x-strip
        // decomposition must be *output-identical* (sub-segment for
        // sub-segment, a stronger property than fingerprint equality) to the
        // monolithic sweep for every strips × threads combination.
        let segments = instance_segments(&inst);
        let serial_subs = split_segments(&segments);
        for strips in [1usize, 2, 8] {
            for threads in [1usize, 2, 8] {
                assert_eq!(
                    split_segments_striped(&segments, strips, threads),
                    serial_subs,
                    "{name}: explicit strips={strips} threads={threads} diverges"
                );
            }
        }

        // The same combinations selected through the environment, which
        // drives `build_complex` end to end (partition → strip-decomposed
        // parallel sweep → copy assembly). `ARRANGEMENT_STRIPS` forces the
        // strip path regardless of the component-size threshold, so these
        // instances exercise it even though they are small.
        for strips in ["1", "2", "8"] {
            std::env::set_var("ARRANGEMENT_STRIPS", strips);
            for threads in ["1", "2", "8"] {
                std::env::set_var("ARRANGEMENT_THREADS", threads);
                assert_eq!(
                    fingerprint(&build_complex(&inst)),
                    base_fp,
                    "{name}: ARRANGEMENT_STRIPS={strips} ARRANGEMENT_THREADS={threads} diverges"
                );
            }
        }
        std::env::remove_var("ARRANGEMENT_STRIPS");
        std::env::remove_var("ARRANGEMENT_THREADS");
    }
}
