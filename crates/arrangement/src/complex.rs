//! The planar cell complex of a spatial instance.
//!
//! A [`CellComplex`] is the geometric realization of the paper's cell complex
//! for an instance `I` (Section 3): a partition of the plane into vertices
//! (0-cells), edges (1-cells) and faces (2-cells) induced by the region
//! boundaries, together with
//!
//! * the sign label `σ : names(I) → {o, ∂, −}` of every cell,
//! * the designated exterior (unbounded) face `f0`,
//! * the rotation system (counter-clockwise cyclic order of darts around each
//!   vertex), which carries the paper's orientation relation `O`.
//!
//! The complex is *maximal*: cells are as large as possible (boundary pieces
//! are not subdivided at points where nothing topologically relevant
//! happens), with the single normalization that a boundary curve carrying no
//! forced vertex keeps one canonical anchor vertex so that every 1-cell has
//! endpoints. This normalization is applied uniformly to every instance and
//! therefore does not affect invariant comparisons (see `DESIGN.md`).

use crate::partition::BBox;
use crate::types::*;
use spatial_core::prelude::Point;
use std::collections::BTreeSet;

/// Read access to a (possibly virtual) planar cell complex.
///
/// This trait is the accessor surface of [`CellComplex`], extracted so that
/// every derived-structure computation — invariant extraction, 4-relation
/// classification, cell-level query evaluation — can run unchanged on either
/// representation of the global complex:
///
/// * the flat [`CellComplex`] produced by copying assembly
///   ([`crate::assemble_components`]), and
/// * the zero-copy [`GlobalComplexView`](crate::GlobalComplexView), which
///   serves the same cells directly out of shared per-component
///   sub-complexes through an id-translation table.
///
/// The two representations are *index-identical*: a given cell has the same
/// id, the same label and the same incidences through either. Methods that
/// must translate component-local data (labels widened to the global region
/// set, darts shifted into the global id space) return owned values; purely
/// geometric data ([`ComplexRead::edge_polyline`]) is borrowed.
pub trait ComplexRead {
    /// The region names, in the canonical (sorted) order used by all labels.
    fn region_names(&self) -> &[String];

    /// Number of vertices (0-cells).
    fn vertex_count(&self) -> usize;

    /// Number of edges (1-cells).
    fn edge_count(&self) -> usize;

    /// Number of faces (2-cells), including the exterior face.
    fn face_count(&self) -> usize;

    /// The designated exterior (unbounded) face `f0`.
    fn exterior_face(&self) -> FaceId;

    /// The geometric position of a vertex.
    fn vertex_point(&self, v: VertexId) -> Point;

    /// The full sign label of a vertex (one [`Sign`] per region).
    fn vertex_label(&self, v: VertexId) -> Label;

    /// The outgoing darts of a vertex in counter-clockwise order.
    fn vertex_rotation(&self, v: VertexId) -> Vec<DartId>;

    /// The (tail, head) vertices of an edge (equal for a loop).
    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId);

    /// The polyline realizing an edge, from tail to head.
    fn edge_polyline(&self, e: EdgeId) -> &[Point];

    /// The full sign label of an edge.
    fn edge_label(&self, e: EdgeId) -> Label;

    /// Indices (into [`ComplexRead::region_names`]) of the regions whose
    /// boundary contains the edge.
    fn edge_region_marks(&self, e: EdgeId) -> Vec<usize>;

    /// The two faces incident to an edge (left of the forward dart, left of
    /// the backward dart). They may coincide.
    fn edge_faces(&self, e: EdgeId) -> (FaceId, FaceId);

    /// The full sign label of a face.
    fn face_label(&self, f: FaceId) -> Label;

    /// All edges on the face's boundary, including the outer boundaries of
    /// components embedded inside the face (sorted, deduplicated).
    fn face_boundary(&self, f: FaceId) -> Vec<EdgeId>;

    /// Is this the unbounded (exterior) face `f0`?
    fn face_is_exterior(&self, f: FaceId) -> bool;

    /// An interior sample point of the face (absent for the exterior face).
    fn face_sample(&self, f: FaceId) -> Option<Point>;

    // ---- sign fast paths (override to avoid whole-label materialization) --

    /// The sign of a vertex with respect to one region index.
    fn vertex_sign(&self, v: VertexId, region: usize) -> Sign {
        self.vertex_label(v)[region]
    }

    /// The sign of an edge with respect to one region index.
    fn edge_sign(&self, e: EdgeId, region: usize) -> Sign {
        self.edge_label(e)[region]
    }

    /// The sign of a face with respect to one region index.
    fn face_sign(&self, f: FaceId, region: usize) -> Sign {
        self.face_label(f)[region]
    }

    // ---- derived accessors ------------------------------------------------

    /// The index of a region name in the label order.
    fn region_index(&self, name: &str) -> Option<usize> {
        self.region_names().iter().position(|n| n == name)
    }

    /// All vertex ids.
    fn vertex_ids(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vertex_count()).map(VertexId)
    }

    /// All edge ids.
    fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edge_count()).map(EdgeId)
    }

    /// All face ids.
    fn face_ids(&self) -> impl Iterator<Item = FaceId> {
        (0..self.face_count()).map(FaceId)
    }

    /// The full sign label of any cell.
    fn cell_label(&self, cell: CellId) -> Label {
        match cell {
            CellId::Vertex(v) => self.vertex_label(v),
            CellId::Edge(e) => self.edge_label(e),
            CellId::Face(f) => self.face_label(f),
        }
    }

    /// The sign of a cell with respect to a region given by name.
    fn sign_of(&self, cell: CellId, region: &str) -> Option<Sign> {
        let idx = self.region_index(region)?;
        Some(match cell {
            CellId::Vertex(v) => self.vertex_sign(v, idx),
            CellId::Edge(e) => self.edge_sign(e, idx),
            CellId::Face(f) => self.face_sign(f, idx),
        })
    }

    /// The tail vertex of a dart.
    fn dart_tail(&self, d: DartId) -> VertexId {
        let (t, h) = self.edge_endpoints(d.edge());
        if d.is_forward() {
            t
        } else {
            h
        }
    }

    /// The head vertex of a dart.
    fn dart_head(&self, d: DartId) -> VertexId {
        self.dart_tail(d.twin())
    }

    /// The face to the left of a dart.
    fn dart_face(&self, d: DartId) -> FaceId {
        let (l, r) = self.edge_faces(d.edge());
        if d.is_forward() {
            l
        } else {
            r
        }
    }

    /// The edges incident to a vertex (each loop appears once).
    fn vertex_edges(&self, v: VertexId) -> Vec<EdgeId> {
        let mut out: Vec<EdgeId> =
            self.vertex_rotation(v).iter().map(|d| d.edge()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The faces incident to a vertex.
    fn vertex_faces(&self, v: VertexId) -> Vec<FaceId> {
        let mut out: Vec<FaceId> =
            self.vertex_rotation(v).iter().map(|d| self.dart_face(*d)).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The faces making up a region (the cells labeled `Interior` for it).
    fn region_faces(&self, region: &str) -> Vec<FaceId> {
        match self.region_index(region) {
            None => vec![],
            Some(idx) => self
                .face_ids()
                .filter(|&f| self.face_sign(f, idx) == Sign::Interior)
                .collect(),
        }
    }

    /// The bounding box of every region's boundary, in
    /// [`ComplexRead::region_names`] order (`None` for a region contributing
    /// no boundary edge to the complex). A region's closure lives inside its
    /// box, so two regions whose boxes don't interact are provably disjoint —
    /// the pruning fact behind the spatial index
    /// ([`SpatialIndex`](crate::SpatialIndex)) that the query planner builds
    /// over these boxes. Computed by one scan of the edge polylines against
    /// their region marks; [`GlobalComplexView`](crate::GlobalComplexView)
    /// overrides this with a cached table.
    fn region_bboxes(&self) -> Vec<Option<BBox>> {
        let mut out: Vec<Option<BBox>> = vec![None; self.region_names().len()];
        for e in self.edge_ids() {
            let marks = self.edge_region_marks(e);
            if marks.is_empty() {
                continue;
            }
            let Some(eb) = BBox::of_points(self.edge_polyline(e)) else { continue };
            for r in marks {
                out[r] = Some(match out[r].take() {
                    None => eb.clone(),
                    Some(b) => b.union(&eb),
                });
            }
        }
        out
    }

    /// All darts whose left face is `f` (the face's boundary walk(s)).
    fn face_darts(&self, f: FaceId) -> Vec<DartId> {
        let mut out = Vec::new();
        for e in self.edge_ids() {
            let (l, r) = self.edge_faces(e);
            if l == f {
                out.push(DartId::forward(e));
            }
            if r == f {
                out.push(DartId::backward(e));
            }
        }
        out
    }

    /// Number of connected components of the skeleton (union of vertices and
    /// edges).
    fn skeleton_component_count(&self) -> usize {
        let n = self.vertex_count();
        if n == 0 {
            return 0;
        }
        let mut seen = vec![false; n];
        let mut components = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                for d in self.vertex_rotation(VertexId(v)) {
                    let w = self.dart_head(d).0;
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
        }
        components
    }

    /// Is the skeleton connected? (The paper's notion of a *connected*
    /// instance.)
    fn is_connected(&self) -> bool {
        self.skeleton_component_count() <= 1
    }

    /// Is the instance *simple* in the paper's sense: is the boundary walk of
    /// every face a simple closed curve?
    fn is_simple(&self) -> bool {
        if !self.is_connected() {
            return false;
        }
        for f in self.face_ids() {
            let darts = self.face_darts(f);
            let vertices: Vec<VertexId> = darts.iter().map(|d| self.dart_tail(*d)).collect();
            let distinct: BTreeSet<VertexId> = vertices.iter().copied().collect();
            if distinct.len() != vertices.len() {
                return false;
            }
        }
        true
    }

    /// Check the Euler relation `|F| = |E| - |V| + 1 + C` where `C` is the
    /// number of skeleton components.
    fn euler_formula_holds(&self) -> bool {
        let c = self.skeleton_component_count();
        if c == 0 {
            return self.face_count() == 1;
        }
        self.face_count() == self.edge_count() + 1 + c - self.vertex_count()
    }

    /// The paper's orientation relation `O`: for every vertex, the pairs of
    /// consecutive incident edges in clockwise (`true`) and counter-clockwise
    /// (`false`) order.
    fn orientation_relation(&self) -> Vec<(bool, VertexId, EdgeId, EdgeId)> {
        let mut out = Vec::new();
        for v in self.vertex_ids() {
            let rot = self.vertex_rotation(v);
            let k = rot.len();
            if k == 0 {
                continue;
            }
            for i in 0..k {
                let e1 = rot[i].edge();
                let e2 = rot[(i + 1) % k].edge();
                out.push((false, v, e1, e2));
                out.push((true, v, e2, e1));
            }
        }
        out
    }

    /// Human-readable summary of the complex.
    fn summary(&self) -> String {
        format!(
            "cell complex: {} vertices, {} edges, {} faces ({} region(s), exterior = f{})",
            self.vertex_count(),
            self.edge_count(),
            self.face_count(),
            self.region_names().len(),
            self.exterior_face().0
        )
    }
}

impl ComplexRead for CellComplex {
    fn region_names(&self) -> &[String] {
        &self.region_names
    }

    fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    fn edge_count(&self) -> usize {
        self.edges.len()
    }

    fn face_count(&self) -> usize {
        self.faces.len()
    }

    fn exterior_face(&self) -> FaceId {
        self.exterior
    }

    fn vertex_point(&self, v: VertexId) -> Point {
        self.vertices[v.0].point
    }

    fn vertex_label(&self, v: VertexId) -> Label {
        self.vertices[v.0].label.clone()
    }

    fn vertex_rotation(&self, v: VertexId) -> Vec<DartId> {
        self.vertices[v.0].rotation.clone()
    }

    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let d = &self.edges[e.0];
        (d.tail, d.head)
    }

    fn edge_polyline(&self, e: EdgeId) -> &[Point] {
        &self.edges[e.0].polyline
    }

    fn edge_label(&self, e: EdgeId) -> Label {
        self.edges[e.0].label.clone()
    }

    fn edge_region_marks(&self, e: EdgeId) -> Vec<usize> {
        self.edges[e.0].on_boundary_of.clone()
    }

    fn edge_faces(&self, e: EdgeId) -> (FaceId, FaceId) {
        (self.edges[e.0].left_face, self.edges[e.0].right_face)
    }

    fn face_label(&self, f: FaceId) -> Label {
        self.faces[f.0].label.clone()
    }

    fn face_boundary(&self, f: FaceId) -> Vec<EdgeId> {
        self.faces[f.0].boundary_edges.clone()
    }

    fn face_is_exterior(&self, f: FaceId) -> bool {
        self.faces[f.0].is_exterior
    }

    fn face_sample(&self, f: FaceId) -> Option<Point> {
        self.faces[f.0].sample_point
    }

    fn vertex_sign(&self, v: VertexId, region: usize) -> Sign {
        self.vertices[v.0].label[region]
    }

    fn edge_sign(&self, e: EdgeId, region: usize) -> Sign {
        self.edges[e.0].label[region]
    }

    fn face_sign(&self, f: FaceId, region: usize) -> Sign {
        self.faces[f.0].label[region]
    }

    fn skeleton_component_count(&self) -> usize {
        CellComplex::skeleton_component_count(self)
    }
}

/// The planar cell complex of a spatial database instance.
#[derive(Clone, Debug)]
pub struct CellComplex {
    pub(crate) region_names: Vec<String>,
    pub(crate) vertices: Vec<VertexData>,
    pub(crate) edges: Vec<EdgeData>,
    pub(crate) faces: Vec<FaceData>,
    pub(crate) exterior: FaceId,
}

impl CellComplex {
    /// The region names, in the canonical (sorted) order used by all labels.
    pub fn region_names(&self) -> &[String] {
        &self.region_names
    }

    /// The index of a region name in the label order.
    pub fn region_index(&self, name: &str) -> Option<usize> {
        self.region_names.iter().position(|n| n == name)
    }

    /// Number of vertices (0-cells).
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges (1-cells).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of faces (2-cells), including the exterior face.
    pub fn face_count(&self) -> usize {
        self.faces.len()
    }

    /// All vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vertices.len()).map(VertexId)
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len()).map(EdgeId)
    }

    /// All face ids.
    pub fn face_ids(&self) -> impl Iterator<Item = FaceId> {
        (0..self.faces.len()).map(FaceId)
    }

    /// Vertex data.
    pub fn vertex(&self, v: VertexId) -> &VertexData {
        &self.vertices[v.0]
    }

    /// Edge data.
    pub fn edge(&self, e: EdgeId) -> &EdgeData {
        &self.edges[e.0]
    }

    /// Face data.
    pub fn face(&self, f: FaceId) -> &FaceData {
        &self.faces[f.0]
    }

    /// The designated exterior (unbounded) face `f0`.
    pub fn exterior_face(&self) -> FaceId {
        self.exterior
    }

    /// The label of any cell.
    pub fn label(&self, cell: CellId) -> &Label {
        match cell {
            CellId::Vertex(v) => &self.vertices[v.0].label,
            CellId::Edge(e) => &self.edges[e.0].label,
            CellId::Face(f) => &self.faces[f.0].label,
        }
    }

    /// The sign of a cell with respect to a region given by name.
    pub fn sign_of(&self, cell: CellId, region: &str) -> Option<Sign> {
        ComplexRead::sign_of(self, cell, region)
    }

    /// The tail vertex of a dart.
    pub fn dart_tail(&self, d: DartId) -> VertexId {
        let e = &self.edges[d.edge().0];
        if d.is_forward() {
            e.tail
        } else {
            e.head
        }
    }

    /// The head vertex of a dart.
    pub fn dart_head(&self, d: DartId) -> VertexId {
        self.dart_tail(d.twin())
    }

    /// The face to the left of a dart.
    pub fn dart_face(&self, d: DartId) -> FaceId {
        let e = &self.edges[d.edge().0];
        if d.is_forward() {
            e.left_face
        } else {
            e.right_face
        }
    }

    /// The counter-clockwise rotation of darts around a vertex.
    pub fn rotation(&self, v: VertexId) -> &[DartId] {
        &self.vertices[v.0].rotation
    }

    /// The edges incident to a vertex (each loop appears once).
    pub fn vertex_edges(&self, v: VertexId) -> Vec<EdgeId> {
        ComplexRead::vertex_edges(self, v)
    }

    /// The faces incident to a vertex.
    pub fn vertex_faces(&self, v: VertexId) -> Vec<FaceId> {
        ComplexRead::vertex_faces(self, v)
    }

    /// The two faces incident to an edge (left of forward dart, left of
    /// backward dart). They may coincide.
    pub fn edge_faces(&self, e: EdgeId) -> (FaceId, FaceId) {
        (self.edges[e.0].left_face, self.edges[e.0].right_face)
    }

    /// The boundary edges of a face, including the outer boundaries of
    /// connected components embedded inside the face.
    pub fn face_edges(&self, f: FaceId) -> &[EdgeId] {
        &self.faces[f.0].boundary_edges
    }

    /// The faces making up a region (the cells labeled `Interior` for it).
    pub fn region_faces(&self, region: &str) -> Vec<FaceId> {
        ComplexRead::region_faces(self, region)
    }

    /// Is the skeleton (union of vertices and edges) connected?
    /// (The paper's notion of a *connected* instance.)
    pub fn is_connected(&self) -> bool {
        ComplexRead::is_connected(self)
    }

    /// Number of connected components of the skeleton.
    pub fn skeleton_component_count(&self) -> usize {
        let n = self.vertices.len();
        if n == 0 {
            return 0;
        }
        let mut seen = vec![false; n];
        let mut components = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                for d in &self.vertices[v].rotation {
                    let w = self.dart_head(*d).0;
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
        }
        components
    }

    /// Is the instance *simple* in the paper's sense: is the boundary walk of
    /// every face a simple closed curve? (Simple instances are also
    /// connected.)
    pub fn is_simple(&self) -> bool {
        ComplexRead::is_simple(self)
    }

    /// All darts whose left face is `f` (the face's boundary walk(s)).
    pub fn face_darts(&self, f: FaceId) -> Vec<DartId> {
        ComplexRead::face_darts(self, f)
    }

    /// Check the Euler relation `|F| = |E| - |V| + 1 + C` where `C` is the
    /// number of skeleton components (for connected complexes this is the
    /// paper's `|Faces| = |Edges| - |Vertices| + 2`).
    pub fn euler_formula_holds(&self) -> bool {
        ComplexRead::euler_formula_holds(self)
    }

    /// The paper's orientation relation `O ⊆ {↻, ↺} × V × E × E`: for every
    /// vertex, the pairs of consecutive incident edges in clockwise (`true`)
    /// and in counter-clockwise order. Loops contribute two entries, as in
    /// the paper's Example 3.3.
    pub fn orientation_relation(&self) -> Vec<(bool, VertexId, EdgeId, EdgeId)> {
        ComplexRead::orientation_relation(self)
    }

    /// Human-readable summary of the complex.
    pub fn summary(&self) -> String {
        ComplexRead::summary(self)
    }
}
