//! The planar cell complex of a spatial instance.
//!
//! A [`CellComplex`] is the geometric realization of the paper's cell complex
//! for an instance `I` (Section 3): a partition of the plane into vertices
//! (0-cells), edges (1-cells) and faces (2-cells) induced by the region
//! boundaries, together with
//!
//! * the sign label `σ : names(I) → {o, ∂, −}` of every cell,
//! * the designated exterior (unbounded) face `f0`,
//! * the rotation system (counter-clockwise cyclic order of darts around each
//!   vertex), which carries the paper's orientation relation `O`.
//!
//! The complex is *maximal*: cells are as large as possible (boundary pieces
//! are not subdivided at points where nothing topologically relevant
//! happens), with the single normalization that a boundary curve carrying no
//! forced vertex keeps one canonical anchor vertex so that every 1-cell has
//! endpoints. This normalization is applied uniformly to every instance and
//! therefore does not affect invariant comparisons (see `DESIGN.md`).

use crate::types::*;
use std::collections::BTreeSet;

/// The planar cell complex of a spatial database instance.
#[derive(Clone, Debug)]
pub struct CellComplex {
    pub(crate) region_names: Vec<String>,
    pub(crate) vertices: Vec<VertexData>,
    pub(crate) edges: Vec<EdgeData>,
    pub(crate) faces: Vec<FaceData>,
    pub(crate) exterior: FaceId,
}

impl CellComplex {
    /// The region names, in the canonical (sorted) order used by all labels.
    pub fn region_names(&self) -> &[String] {
        &self.region_names
    }

    /// The index of a region name in the label order.
    pub fn region_index(&self, name: &str) -> Option<usize> {
        self.region_names.iter().position(|n| n == name)
    }

    /// Number of vertices (0-cells).
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges (1-cells).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of faces (2-cells), including the exterior face.
    pub fn face_count(&self) -> usize {
        self.faces.len()
    }

    /// All vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vertices.len()).map(VertexId)
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len()).map(EdgeId)
    }

    /// All face ids.
    pub fn face_ids(&self) -> impl Iterator<Item = FaceId> {
        (0..self.faces.len()).map(FaceId)
    }

    /// Vertex data.
    pub fn vertex(&self, v: VertexId) -> &VertexData {
        &self.vertices[v.0]
    }

    /// Edge data.
    pub fn edge(&self, e: EdgeId) -> &EdgeData {
        &self.edges[e.0]
    }

    /// Face data.
    pub fn face(&self, f: FaceId) -> &FaceData {
        &self.faces[f.0]
    }

    /// The designated exterior (unbounded) face `f0`.
    pub fn exterior_face(&self) -> FaceId {
        self.exterior
    }

    /// The label of any cell.
    pub fn label(&self, cell: CellId) -> &Label {
        match cell {
            CellId::Vertex(v) => &self.vertices[v.0].label,
            CellId::Edge(e) => &self.edges[e.0].label,
            CellId::Face(f) => &self.faces[f.0].label,
        }
    }

    /// The sign of a cell with respect to a region given by name.
    pub fn sign_of(&self, cell: CellId, region: &str) -> Option<Sign> {
        let idx = self.region_index(region)?;
        Some(self.label(cell)[idx])
    }

    /// The tail vertex of a dart.
    pub fn dart_tail(&self, d: DartId) -> VertexId {
        let e = &self.edges[d.edge().0];
        if d.is_forward() {
            e.tail
        } else {
            e.head
        }
    }

    /// The head vertex of a dart.
    pub fn dart_head(&self, d: DartId) -> VertexId {
        self.dart_tail(d.twin())
    }

    /// The face to the left of a dart.
    pub fn dart_face(&self, d: DartId) -> FaceId {
        let e = &self.edges[d.edge().0];
        if d.is_forward() {
            e.left_face
        } else {
            e.right_face
        }
    }

    /// The counter-clockwise rotation of darts around a vertex.
    pub fn rotation(&self, v: VertexId) -> &[DartId] {
        &self.vertices[v.0].rotation
    }

    /// The edges incident to a vertex (each loop appears once).
    pub fn vertex_edges(&self, v: VertexId) -> Vec<EdgeId> {
        let mut out: Vec<EdgeId> =
            self.vertices[v.0].rotation.iter().map(|d| d.edge()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The faces incident to a vertex.
    pub fn vertex_faces(&self, v: VertexId) -> Vec<FaceId> {
        let mut out: Vec<FaceId> =
            self.vertices[v.0].rotation.iter().map(|d| self.dart_face(*d)).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The two faces incident to an edge (left of forward dart, left of
    /// backward dart). They may coincide.
    pub fn edge_faces(&self, e: EdgeId) -> (FaceId, FaceId) {
        (self.edges[e.0].left_face, self.edges[e.0].right_face)
    }

    /// The boundary edges of a face, including the outer boundaries of
    /// connected components embedded inside the face.
    pub fn face_edges(&self, f: FaceId) -> &[EdgeId] {
        &self.faces[f.0].boundary_edges
    }

    /// The faces making up a region (the cells labeled `Interior` for it).
    pub fn region_faces(&self, region: &str) -> Vec<FaceId> {
        match self.region_index(region) {
            None => vec![],
            Some(idx) => self
                .face_ids()
                .filter(|f| self.faces[f.0].label[idx] == Sign::Interior)
                .collect(),
        }
    }

    /// Is the skeleton (union of vertices and edges) connected?
    /// (The paper's notion of a *connected* instance.)
    pub fn is_connected(&self) -> bool {
        self.skeleton_component_count() <= 1
    }

    /// Number of connected components of the skeleton.
    pub fn skeleton_component_count(&self) -> usize {
        let n = self.vertices.len();
        if n == 0 {
            return 0;
        }
        let mut seen = vec![false; n];
        let mut components = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                for d in &self.vertices[v].rotation {
                    let w = self.dart_head(*d).0;
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
        }
        components
    }

    /// Is the instance *simple* in the paper's sense: is the boundary walk of
    /// every face a simple closed curve? (Simple instances are also
    /// connected.)
    pub fn is_simple(&self) -> bool {
        if !self.is_connected() {
            return false;
        }
        for f in self.face_ids() {
            // The face boundary must consist of exactly one closed walk with
            // no repeated vertices. We reconstruct the walk(s) from the darts
            // whose left face is `f`.
            let darts: Vec<DartId> = self.face_darts(f);
            let vertices: Vec<VertexId> = darts.iter().map(|d| self.dart_tail(*d)).collect();
            let distinct: BTreeSet<VertexId> = vertices.iter().copied().collect();
            if distinct.len() != vertices.len() {
                return false;
            }
        }
        true
    }

    /// All darts whose left face is `f` (the face's boundary walk(s)).
    pub fn face_darts(&self, f: FaceId) -> Vec<DartId> {
        let mut out = Vec::new();
        for e in self.edge_ids() {
            if self.edges[e.0].left_face == f {
                out.push(DartId::forward(e));
            }
            if self.edges[e.0].right_face == f {
                out.push(DartId::backward(e));
            }
        }
        out
    }

    /// Check the Euler relation `|F| = |E| - |V| + 1 + C` where `C` is the
    /// number of skeleton components (for connected complexes this is the
    /// paper's `|Faces| = |Edges| - |Vertices| + 2`).
    pub fn euler_formula_holds(&self) -> bool {
        let c = self.skeleton_component_count();
        if c == 0 {
            return self.face_count() == 1;
        }
        self.face_count() == self.edge_count() + 1 + c - self.vertex_count()
    }

    /// The paper's orientation relation `O ⊆ {↻, ↺} × V × E × E`: for every
    /// vertex, the pairs of consecutive incident edges in clockwise and in
    /// counter-clockwise order. Loops contribute two entries, as in the
    /// paper's Example 3.3.
    pub fn orientation_relation(&self) -> Vec<(bool, VertexId, EdgeId, EdgeId)> {
        // `true` encodes clockwise (↻), `false` counter-clockwise (↺).
        let mut out = Vec::new();
        for v in self.vertex_ids() {
            let rot = self.rotation(v);
            let k = rot.len();
            if k == 0 {
                continue;
            }
            for i in 0..k {
                let e1 = rot[i].edge();
                let e2 = rot[(i + 1) % k].edge();
                // rotation is counter-clockwise.
                out.push((false, v, e1, e2));
                out.push((true, v, e2, e1));
            }
        }
        out
    }

    /// Human-readable summary of the complex.
    pub fn summary(&self) -> String {
        format!(
            "cell complex: {} vertices, {} edges, {} faces ({} region(s), exterior = f{})",
            self.vertex_count(),
            self.edge_count(),
            self.face_count(),
            self.region_names.len(),
            self.exterior.0
        )
    }
}
