//! Bentley–Ottmann plane sweep over the region-boundary segments.
//!
//! This is the production splitter behind [`crate::split::split_segments`]:
//! it computes, for every input segment, the set of points at which it must
//! be cut — the same cut sets the naive all-pairs oracle produces — in
//! `O((n + k) log n)` time for `n` segments with `k` intersection
//! incidences, instead of the oracle's `O(n^2)` pairwise tests.
//!
//! # Algorithm
//!
//! A vertical sweep line advances through *event points* in lexicographic
//! `(x, y)` order (the total order of [`spatial_core::point::Point`]). The
//! *status* is the sequence of segments currently intersected by the sweep
//! line, ordered bottom-to-top; it changes only at event points. Events are
//! the segment endpoints plus the crossing points discovered between
//! status-adjacent segments; since two segments can only cross after having
//! been adjacent, processing each event point `p` as a batch — in the style
//! of de Berg et al., *Computational Geometry*, ch. 2 — finds every
//! intersection:
//!
//! 1. binary-search the status for the (contiguous) run of segments
//!    containing `p`,
//! 2. if that run plus the segments starting at `p` involves ≥ 2 segments,
//!    `p` is an intersection point: record it as a cut on all of them,
//! 3. remove the run, reinsert the segments continuing through `p` together
//!    with those starting at `p` in the order *just after* `p` (by slope,
//!    vertical last — [`Segment::slope_cmp`]), and
//! 4. test the at-most-two newly adjacent pairs for future crossings,
//!    enqueueing any crossing point lexicographically greater than `p`.
//!
//! # Degeneracies
//!
//! All the configurations the oracle supports are handled exactly:
//!
//! * **endpoint touching** — an endpoint event whose point lies on other
//!   segments cuts those segments (steps 1–2);
//! * **several segments through one point** — the whole run through `p` is
//!   processed as one batch, whatever its size;
//! * **vertical segments** — ordered by their `y`-range at the shared
//!   abscissa ([`Segment::cmp_at_sweep`]) and placed above every non-vertical
//!   segment through the same point (slope `+inf`), which matches the
//!   lexicographic event order: the part of a vertical segment above `p` is
//!   exactly the part the sweep has not reached yet;
//! * **collinear overlaps** — handled *before* the sweep by grouping
//!   segments by supporting line: within a group, every endpoint of a group
//!   member lying on a segment cuts that segment, which reproduces exactly
//!   the oracle's overlap cuts (the endpoints of each pairwise overlap).
//!   Inside the status, collinear segments are tie-broken by index; they
//!   never cross, so the tie-break never needs to flip. Because the
//!   collinear pass owns these cuts completely, the sweep proper registers
//!   an event point as a cut **only when segments of at least two distinct
//!   supporting lines pass through it** — an all-collinear batch (which can
//!   only arise at a segment endpoint) adds nothing the collinear pass has
//!   not already recorded. This refinement is what lets the x-strip
//!   decomposition of [`crate::strip`] reuse the sweep verbatim on clipped
//!   segments: two collinear pieces meeting at an artificial seam endpoint
//!   must *not* produce a cut there, and with this rule they don't.
//!
//! The status itself is a sorted `Vec`: ordering queries are `O(log n)`
//! exact-`Rational` comparisons and the `memmove` cost of batch
//! insert/remove is far cheaper in practice than a pointer-chasing balanced
//! tree at the instance sizes the workloads produce.

use crate::split::{assemble_subsegments, endpoint_cuts, CutSets, SubSegment, TaggedSegment};
use spatial_core::prelude::*;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Split all segments at their mutual intersection points via the plane
/// sweep and merge coincident pieces.
///
/// The output is identical — sub-segment for sub-segment — to
/// [`crate::split::split_segments_naive`]; the differential test suite
/// asserts exactly that.
pub fn split_segments_sweep(segments: &[TaggedSegment]) -> Vec<SubSegment> {
    let cuts = sweep_cut_sets(segments);
    assemble_subsegments(segments, &cuts)
}

/// The cut sets of every segment, computed by the plane sweep: each
/// segment's own endpoints, every intersection point it is involved in, and
/// the endpoints of every collinear overlap it participates in.
pub fn sweep_cut_sets(segments: &[TaggedSegment]) -> CutSets {
    let mut cuts = endpoint_cuts(segments);
    collinear_overlap_cuts(segments, &mut cuts);
    let segs: Vec<Segment> = segments.iter().map(|t| t.segment).collect();
    sweep_segment_cuts(&segs, &mut cuts);
    cuts
}

/// Run the sweep proper over plain segments, registering every point where
/// segments of at least two distinct supporting lines meet into `cuts`
/// (indexed like `segs`). Endpoint seeding and collinear-overlap cuts are
/// the caller's responsibility — [`sweep_cut_sets`] composes all three; the
/// strip decomposition ([`crate::strip`]) runs this over clipped segments
/// with its own seam-aware collinear pass. Returns the number of event
/// points processed (also added to the process-wide
/// [`crate::counters::phase_counters`] total).
pub(crate) fn sweep_segment_cuts(
    segs: &[Segment],
    cuts: &mut [std::collections::BTreeSet<Point>],
) -> u64 {
    Sweep::new(segs).run(cuts)
}

// ---------------------------------------------------------------------------
// Collinear overlaps: supporting-line groups
// ---------------------------------------------------------------------------

/// Canonical key of the supporting line of a segment: the coefficients
/// `(A, B, C)` of `A*x + B*y = C`, scaled so the leading nonzero of
/// `(A, B)` is `1`. Exact, so two segments get the same key iff they are
/// collinear.
pub(crate) fn line_key(s: &Segment) -> (Rational, Rational, Rational) {
    let d = s.direction();
    // Normal form: (dy) * x + (-dx) * y = dy * a.x - dx * a.y.
    let (a, b) = (d.dy, -d.dx);
    let c = a * s.a.x + b * s.a.y;
    if !a.is_zero() {
        (Rational::ONE, b / a, c / a)
    } else {
        (Rational::ZERO, Rational::ONE, c / b)
    }
}

/// Register the cuts arising from collinear overlaps: for every maximal
/// group of collinear segments, every endpoint of a group member lying on a
/// segment of the group cuts that segment.
///
/// This reproduces the oracle's overlap handling exactly: for a pair with
/// overlap `[lo, hi]`, the oracle cuts both segments at `lo` and `hi`, and
/// each of `lo`, `hi` is an endpoint of one of the two segments contained in
/// the other; conversely an endpoint of `t` contained in collinear `s` is an
/// endpoint of the pair's overlap.
fn collinear_overlap_cuts(segments: &[TaggedSegment], cuts: &mut CutSets) {
    let mut groups: BTreeMap<(Rational, Rational, Rational), Vec<usize>> = BTreeMap::new();
    for (i, ts) in segments.iter().enumerate() {
        groups.entry(line_key(&ts.segment)).or_default().push(i);
    }
    for members in groups.into_values() {
        if members.len() < 2 {
            continue;
        }
        // Lexicographic point order is monotone along a line, so a sorted
        // endpoint list supports range extraction per segment.
        let mut endpoints: Vec<Point> = members
            .iter()
            .flat_map(|&i| {
                let s = &segments[i].segment;
                [s.sweep_source(), s.sweep_target()]
            })
            .collect();
        endpoints.sort();
        endpoints.dedup();
        for &i in &members {
            let (lo, hi) = (segments[i].segment.sweep_source(), segments[i].segment.sweep_target());
            let from = endpoints.partition_point(|p| *p < lo);
            let to = endpoints.partition_point(|p| *p <= hi);
            for p in &endpoints[from..to] {
                cuts[i].insert(*p);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The sweep proper
// ---------------------------------------------------------------------------

struct Sweep<'a> {
    segments: &'a [Segment],
    /// Event queue: the key order (lexicographic point order) is the sweep
    /// order; the value is the list of segments whose sweep source is the
    /// point. Crossing events discovered later are inserted with an empty
    /// list.
    queue: BTreeMap<Point, Vec<usize>>,
    /// Active segments, ordered bottom-to-top along the sweep line.
    status: Vec<usize>,
}

impl<'a> Sweep<'a> {
    fn new(segments: &'a [Segment]) -> Self {
        let mut queue: BTreeMap<Point, Vec<usize>> = BTreeMap::new();
        for (i, s) in segments.iter().enumerate() {
            queue.entry(s.sweep_source()).or_default().push(i);
            // Ensure the removal event exists even if nothing starts there.
            queue.entry(s.sweep_target()).or_default();
        }
        Sweep { segments, queue, status: Vec::new() }
    }

    fn seg(&self, i: usize) -> &Segment {
        &self.segments[i]
    }

    fn run(mut self, cuts: &mut [std::collections::BTreeSet<Point>]) -> u64 {
        let mut events = 0u64;
        while let Some((p, starters)) = self.queue.pop_first() {
            self.handle_event(p, starters, cuts);
            events += 1;
        }
        crate::counters::add_events_processed(events);
        events
    }

    fn handle_event(
        &mut self,
        p: Point,
        starters: Vec<usize>,
        cuts: &mut [std::collections::BTreeSet<Point>],
    ) {
        // The run of status segments containing p. The status is ordered
        // with respect to `cmp_at_sweep` at p (all events before p have been
        // processed), so the run is contiguous and binary-searchable.
        let lo = self.status.partition_point(|&s| self.seg(s).cmp_at_sweep(&p) == Ordering::Less);
        let hi = lo
            + self.status[lo..]
                .partition_point(|&s| self.seg(s).cmp_at_sweep(&p) == Ordering::Equal);

        // Cut registration: p is an intersection point iff segments of at
        // least two distinct supporting lines pass through it. (Plain
        // endpoints are pre-seeded in the cut sets, and an all-collinear
        // batch — only possible at a segment endpoint — is fully covered by
        // the collinear-overlap pass, so neither needs bookkeeping here.
        // Segments through a common point are collinear iff their directions
        // are parallel.)
        if (hi - lo) + starters.len() >= 2 {
            let mut through = self.status[lo..hi].iter().chain(starters.iter()).copied();
            let d0 = self.seg(through.next().expect("batch has >= 2 segments")).direction();
            let multi_line = through.any(|s| !d0.cross(&self.seg(s).direction()).is_zero());
            if multi_line {
                for &s in &self.status[lo..hi] {
                    cuts[s].insert(p);
                }
                for &s in &starters {
                    cuts[s].insert(p);
                }
            }
        }

        // Replace the run with the segments continuing through p plus the
        // segments starting at p, in the order just after p: ascending
        // slope, vertical (slope +inf) last, collinear ties by index (they
        // never reorder).
        let mut block: Vec<usize> = self.status[lo..hi]
            .iter()
            .copied()
            .filter(|&s| self.seg(s).sweep_target() != p)
            .chain(starters.iter().copied())
            .collect();
        block.sort_by(|&a, &b| self.seg(a).slope_cmp(self.seg(b)).then(a.cmp(&b)));
        let block_len = block.len();
        self.status.splice(lo..hi, block);

        // Newly adjacent pairs: below the block and above the block — or,
        // if everything ended at p, the single pair the removal closed up.
        if block_len > 0 {
            if lo > 0 {
                self.test_pair(self.status[lo - 1], self.status[lo], &p);
            }
            let top = lo + block_len - 1;
            if top + 1 < self.status.len() {
                self.test_pair(self.status[top], self.status[top + 1], &p);
            }
        } else if lo > 0 && lo < self.status.len() {
            self.test_pair(self.status[lo - 1], self.status[lo], &p);
        }
    }

    /// Enqueue the crossing of two status-adjacent segments if it lies ahead
    /// of the sweep. Collinear overlaps are ignored here: their cuts are
    /// precomputed from the supporting-line groups and need no events beyond
    /// the segment endpoints, which are events already.
    fn test_pair(&mut self, a: usize, b: usize, after: &Point) {
        if let SegmentIntersection::Point(ip) = self.seg(a).intersect(self.seg(b)) {
            if ip > *after {
                self.queue.entry(ip).or_default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::{instance_segments, split_segments_naive};
    use spatial_core::fixtures;
    use spatial_core::point::pt;

    fn tagged(segs: &[Segment]) -> Vec<TaggedSegment> {
        segs.iter()
            .enumerate()
            .map(|(i, s)| TaggedSegment { segment: *s, region: i })
            .collect()
    }

    fn assert_matches_oracle(segs: &[TaggedSegment], context: &str) {
        let sweep = split_segments_sweep(segs);
        let naive = split_segments_naive(segs);
        assert_eq!(sweep, naive, "sweep != oracle on {context}");
    }

    #[test]
    fn line_key_is_canonical() {
        // Same line, different parameterizations and orientations.
        let k1 = line_key(&seg(0, 0, 2, 2));
        let k2 = line_key(&seg(5, 5, 3, 3));
        let k3 = line_key(&seg(-1, -1, 7, 7));
        assert_eq!(k1, k2);
        assert_eq!(k1, k3);
        // Parallel but distinct lines differ.
        assert_ne!(k1, line_key(&seg(0, 1, 2, 3)));
        // Vertical and horizontal lines are canonical too.
        assert_eq!(line_key(&seg(2, 0, 2, 5)), line_key(&seg(2, 9, 2, 7)));
        assert_ne!(line_key(&seg(2, 0, 2, 5)), line_key(&seg(3, 0, 3, 5)));
        assert_eq!(line_key(&seg(0, 4, 5, 4)), line_key(&seg(9, 4, 7, 4)));
    }

    #[test]
    fn proper_crossing_is_cut() {
        let segs = tagged(&[seg(0, 0, 4, 4), seg(0, 4, 4, 0)]);
        let subs = split_segments_sweep(&segs);
        assert_eq!(subs.len(), 4);
        assert!(subs.iter().all(|s| s.a == pt(2, 2) || s.b == pt(2, 2)));
        assert_matches_oracle(&segs, "proper crossing");
    }

    #[test]
    fn three_segments_through_one_point() {
        let segs = tagged(&[seg(0, 0, 4, 4), seg(0, 4, 4, 0), seg(0, 2, 4, 2)]);
        let subs = split_segments_sweep(&segs);
        // Every segment is cut once at (2, 2): 6 pieces.
        assert_eq!(subs.len(), 6);
        assert_matches_oracle(&segs, "three through one point");
    }

    #[test]
    fn vertical_segment_crossings() {
        // A vertical segment crossed by two others at interior points.
        let segs = tagged(&[seg(2, -3, 2, 5), seg(0, 0, 4, 0), seg(0, 4, 4, 0)]);
        assert_matches_oracle(&segs, "vertical crossed twice");
        // Vertical endpoint touching another segment's interior.
        let segs = tagged(&[seg(2, 0, 2, 4), seg(0, 0, 4, 0)]);
        assert_matches_oracle(&segs, "vertical endpoint touch");
        // Two verticals at the same abscissa, disjoint and touching.
        let segs = tagged(&[seg(2, 0, 2, 2), seg(2, 2, 2, 5), seg(2, 7, 2, 9)]);
        assert_matches_oracle(&segs, "stacked verticals");
    }

    #[test]
    fn collinear_overlap_chain() {
        // A chain of collinear segments with pairwise overlaps.
        let segs = tagged(&[seg(0, 0, 4, 0), seg(2, 0, 6, 0), seg(5, 0, 9, 0)]);
        assert_matches_oracle(&segs, "collinear overlap chain");
        // A segment fully inside another, same line.
        let segs = tagged(&[seg(0, 0, 9, 0), seg(3, 0, 5, 0)]);
        assert_matches_oracle(&segs, "nested collinear");
        // Collinear diagonal overlaps crossed by a transversal.
        let segs = tagged(&[seg(0, 0, 4, 4), seg(2, 2, 6, 6), seg(0, 5, 5, 0)]);
        assert_matches_oracle(&segs, "diagonal overlap plus transversal");
    }

    #[test]
    fn fixtures_match_oracle() {
        for (name, inst) in [
            ("fig_1a", fixtures::fig_1a()),
            ("fig_1b", fixtures::fig_1b()),
            ("fig_1c", fixtures::fig_1c()),
            ("fig_1d", fixtures::fig_1d()),
            ("petals_abcd", fixtures::petals_abcd()),
            ("ring", fixtures::ring()),
            ("nested_three", fixtures::nested_three()),
            ("shared_boundary", fixtures::shared_boundary()),
        ] {
            assert_matches_oracle(&instance_segments(&inst), name);
        }
        for (name, inst) in fixtures::fig_2_pairs() {
            assert_matches_oracle(&instance_segments(&inst), name);
        }
    }
}
