//! Intra-component parallel sweep: x-strip decomposition of the
//! Bentley–Ottmann splitting phase, with exact seam reconciliation.
//!
//! [`crate::partition`] parallelizes construction *across* interaction
//! components, but a crossing-heavy map that forms one big component (the
//! `dense_overlap_map` workload) still runs its entire sweep on a single
//! thread. This module splits that sweep itself: the event-x range is
//! partitioned into `k` vertical strips at exact rational *seam* abscissas
//! placed by a crossing-density cost model (so strips carry comparable
//! **event** counts, not merely comparable endpoint counts — see
//! [`strip_seams`] and the seam-placement section below), every segment is
//! clipped to each strip it overlaps, the strips are swept concurrently on
//! the [`crate::parallel`] scope pool, and the per-strip cut sets are
//! stitched back onto the original segments.
//!
//! # Seam placement: the crossing-density cost model
//!
//! Where the seams land decides the load balance, and the obvious policy —
//! quantiles of the endpoint-x multiset, the original implementation, kept
//! as [`quantile_seams`] — is wrong exactly on the instances that need
//! strips most. A sweep's work is proportional to its *events* (endpoints
//! plus crossings), and crossings scale quadratically where segments
//! cluster: `k` mutually crossing segments carry `Θ(k²)` events on `Θ(k)`
//! endpoints, so endpoint quantiles give a crossing-dense cluster one
//! strip's worth of seams when it deserves most of them. The cost model
//! fixes this with one [`crate::SpatialIndex`] probe per segment: the
//! segment's bbox-overlap count estimates the events it participates in
//! (overlapping boxes are exactly the candidate crossing partners), that
//! mass is deposited at the segment's endpoint abscissas, and seams are
//! placed at equal *cumulative cost* instead of equal endpoint count.
//! Seam candidates remain endpoint abscissas, so every exactness property
//! of the reconciliation argument below is unchanged — the cost model only
//! moves *which* abscissas are chosen. The per-strip processed-event
//! diagnostics ([`strip_event_counts`] / [`strip_event_counts_quantile`])
//! quantify the win and feed the `strip_sweep` benchmark's skew metrics.
//!
//! # Seam reconciliation, exactly
//!
//! The sweep phase's entire output is the [`CutSets`] — for each input
//! segment, the set of points where it must be cut. Downstream construction
//! (sub-segment assembly, chain merging, face walks, labeling) runs once over
//! the merged cut sets, so the half-edge cycles are globally consistent by
//! construction and the stitching problem reduces to making the merged cut
//! sets **identical** — not merely equivalent — to the serial sweep's:
//!
//! * **Duplicated discoveries** (an intersection at a seam abscissa is seen
//!   by both adjacent strips) merge for free: cut sets are sets.
//! * **Spurious seam cuts** are the real hazard. Clipping creates
//!   *artificial* endpoints at seams, and two **collinear** overlapping
//!   pieces both end at the same artificial seam point — which is an interior
//!   point of their overlap and must *not* become a cut. Two defenses make
//!   the strip sweep exact: the sweep proper only registers an event as a
//!   cut when pieces of **two distinct supporting lines** pass through it
//!   (any two such pieces genuinely intersect there, wherever the seams
//!   are — see [`crate::sweep`]), and the per-strip collinear-overlap pass
//!   only collects **real** endpoints (clip endpoints that coincide with an
//!   endpoint of the original segment).
//! * **Nothing is missed.** An intersection point `p` with abscissa strictly
//!   inside a strip is surrounded by exactly the clipped pieces of the
//!   segments through `p`, so the strip's sweep sees the same batch the
//!   serial sweep would. If `p` lies exactly on a seam, every segment
//!   extending to at least one side of the seam has a non-degenerate piece
//!   containing `p` in the corresponding strip (a piece that would clip to a
//!   single point is dropped); pairs whose only contact is a shared original
//!   endpoint at the seam are already covered by the endpoint seeding of
//!   [`endpoint_cuts`], and every other pair coexists in at least one
//!   adjacent strip.
//!
//! [`split_segments_striped`] is therefore *output-identical* — sub-segment
//! for sub-segment, and hence fingerprint-identical after complex
//! construction — to [`crate::split::split_segments`] for **every** strip
//! and thread count; `tests/strip_differential.rs` and
//! `tests/thread_determinism.rs` pin this against the serial sweep and the
//! all-pairs oracle on fixtures, randomized dense instances and every
//! strips × threads combination.
//!
//! # Configuration
//!
//! The strip count comes from the `ARRANGEMENT_STRIPS` environment variable
//! when set (a positive integer; `1` forces the monolithic sweep, any other
//! value forces that many strips regardless of input size). By default,
//! components with at least [`STRIP_MIN_SEGMENTS`] segments use
//! [`crate::parallel::configured_threads`] strips and smaller ones take the
//! serial path — the decomposition has a per-strip cost (clipping plus seam
//! events), so tiny components are faster unsplit, and components below the
//! threshold typically coexist with many siblings that the component-level
//! pool already spreads across cores.

use crate::parallel::{configured_threads, map_indexed};
use crate::split::{assemble_subsegments, endpoint_cuts, CutSets, SubSegment, TaggedSegment};
use crate::sweep::{line_key, sweep_segment_cuts};
use spatial_core::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Components with at least this many boundary segments route their
/// splitting phase through the strip decomposition (unless overridden by
/// `ARRANGEMENT_STRIPS`); smaller ones sweep monolithically.
pub const STRIP_MIN_SEGMENTS: usize = 256;

/// The explicit strip-count override: the value of the `ARRANGEMENT_STRIPS`
/// environment variable if it parses as a positive integer.
pub fn strip_override() -> Option<usize> {
    std::env::var("ARRANGEMENT_STRIPS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The strip count used for a component with `segment_count` boundary
/// segments and a thread budget of `budget`: the `ARRANGEMENT_STRIPS`
/// override if set (applied regardless of size, so tests can force the
/// strip path on small inputs), otherwise `budget` for components of at
/// least [`STRIP_MIN_SEGMENTS`] segments (when the budget allows any
/// parallelism at all) and `1` below the threshold. This is the single
/// routing policy behind [`split_segments_auto`] /
/// [`split_segments_auto_budgeted`].
pub fn effective_strips_budgeted(segment_count: usize, budget: usize) -> usize {
    match strip_override() {
        Some(k) => k,
        None if budget > 1 && segment_count >= STRIP_MIN_SEGMENTS => budget,
        None => 1,
    }
}

/// [`effective_strips_budgeted`] with the full configured thread count as
/// the budget.
pub fn effective_strips(segment_count: usize) -> usize {
    effective_strips_budgeted(segment_count, configured_threads())
}

/// Split segments at their mutual intersections, routing through the strip
/// decomposition or the monolithic sweep according to [`effective_strips`],
/// with the full configured thread count as the strip budget. Equivalent to
/// [`split_segments_auto_budgeted`] with [`configured_threads`] — callers
/// already running on a parallel pool should pass their remaining budget
/// instead.
pub fn split_segments_auto(segments: &[TaggedSegment]) -> Vec<SubSegment> {
    split_segments_auto_budgeted(segments, configured_threads())
}

/// Like [`split_segments_auto`], but with an explicit *strip budget*: the
/// number of threads (and, absent an `ARRANGEMENT_STRIPS` override, strips)
/// this call may use. The per-component build pipelines pass
/// [`strip_budget`] of their own fan-out here so that strip-level and
/// component-level parallelism compose to roughly the configured thread
/// count instead of multiplying into oversubscription. A budget of `1`
/// takes the monolithic path (unless the override forces strips).
pub fn split_segments_auto_budgeted(
    segments: &[TaggedSegment],
    budget: usize,
) -> Vec<SubSegment> {
    let budget = budget.max(1);
    let strips = effective_strips_budgeted(segments.len(), budget);
    if strips > 1 {
        split_segments_striped(segments, strips, budget)
    } else {
        crate::split::split_segments(segments)
    }
}

/// The per-item strip budget for a pool running `parallel_items` concurrent
/// component builds on `threads` workers: the whole budget when there is
/// nothing to share it with, an even share (at least 1, i.e. serial) once
/// the component-level fan-out itself occupies the pool. Keeps nested
/// strip × component parallelism at roughly `threads` total workers.
pub fn strip_budget(parallel_items: usize, threads: usize) -> usize {
    (threads / parallel_items.max(1)).max(1)
}

/// Split all segments at their mutual intersection points via `strips`
/// concurrent x-strip sweeps on up to `threads` worker threads, and merge
/// coincident pieces.
///
/// The output is identical — sub-segment for sub-segment — to
/// [`crate::split::split_segments`] for every `strips`/`threads` value.
pub fn split_segments_striped(
    segments: &[TaggedSegment],
    strips: usize,
    threads: usize,
) -> Vec<SubSegment> {
    let cuts = sweep_cut_sets_striped(segments, strips, threads);
    assemble_subsegments(segments, &cuts)
}

/// The cut sets of every segment, computed by `strips` concurrent x-strip
/// sweeps and stitched back together. Identical to
/// [`crate::sweep::sweep_cut_sets`] for every `strips`/`threads` value;
/// falls back to the monolithic sweep when the input is too small (or too
/// degenerate — e.g. all endpoints on one abscissa) to yield interior seams.
pub fn sweep_cut_sets_striped(
    segments: &[TaggedSegment],
    strips: usize,
    threads: usize,
) -> CutSets {
    let seams = strip_seams(segments, strips);
    if seams.is_empty() {
        return crate::sweep::sweep_cut_sets(segments);
    }
    let mut cuts = endpoint_cuts(segments);
    let strip_count = seams.len() + 1;
    let per_strip = map_indexed(strip_count, threads, |s| {
        let lo = if s == 0 { None } else { Some(seams[s - 1]) };
        let hi = if s == seams.len() { None } else { Some(seams[s]) };
        strip_cuts(segments, lo, hi).0
    });
    for strip in per_strip {
        for (original, points) in strip {
            cuts[original].extend(points);
        }
    }
    cuts
}

/// The interior seam abscissas for a `strips`-way decomposition, placed by
/// the crossing-density **cost model**: each segment's event mass is
/// estimated as its bbox-overlap count (one [`crate::SpatialIndex`] probe
/// per segment — overlapping boxes are exactly the candidate crossing
/// partners, so the count is a cheap, conservative stand-in for the events
/// the sweep will process around that segment), the mass is deposited at the
/// segment's two endpoint abscissas, and seams are read off at equal
/// cumulative cost. A crossing-dense cluster therefore attracts
/// proportionally more seams than an endpoint-x quantile would give it —
/// quantiles weight every endpoint equally, but a cluster of `k` mutually
/// crossing segments carries `Θ(k²)` events on `Θ(k)` endpoints, so
/// quantile seams starve it (see [`quantile_seams`], kept as the
/// pre-cost-model policy for the load-imbalance diagnostics).
///
/// Strictly increasing; may hold fewer than `strips - 1` values (duplicated
/// cost quantiles collapse), and is empty when no interior seam exists.
/// Deterministic in the input and `strips` alone.
pub fn strip_seams(segments: &[TaggedSegment], strips: usize) -> Vec<Rational> {
    if strips <= 1 || segments.len() < 2 {
        return Vec::new();
    }
    let boxes: Vec<Option<crate::partition::BBox>> = segments
        .iter()
        .map(|t| Some(crate::partition::BBox::of_segment(&t.segment)))
        .collect();
    let index = crate::index::SpatialIndex::build(&boxes);
    // Event mass per endpoint abscissa: the segment's bbox-neighbor count
    // (includes itself, so every segment carries at least mass 1).
    let mut weighted: Vec<(Rational, u64)> = Vec::with_capacity(segments.len() * 2);
    for (i, t) in segments.iter().enumerate() {
        let mass = index
            .bbox_neighbors(boxes[i].as_ref().expect("every segment has a box"))
            .len() as u64;
        weighted.push((t.segment.a.x, mass));
        weighted.push((t.segment.b.x, mass));
    }
    weighted.sort_by_key(|&(x, _)| x);
    let total: u64 = weighted.iter().map(|(_, w)| w).sum();
    let (min_x, max_x) = (weighted[0].0, weighted[weighted.len() - 1].0);
    let mut seams = Vec::new();
    let mut cumulative = 0u64;
    let mut next_seam = 1usize;
    for (x, w) in &weighted {
        if next_seam >= strips {
            break;
        }
        cumulative += w;
        // Exact integer comparison of cumulative/total >= next_seam/strips.
        while next_seam < strips && cumulative * strips as u64 >= next_seam as u64 * total {
            if *x > min_x && *x < max_x && seams.last() != Some(x) {
                seams.push(*x);
            }
            next_seam += 1;
        }
    }
    seams
}

/// The pre-cost-model seam policy: seams at quantiles of the endpoint-x
/// multiset, weighting every endpoint equally. Retained as the comparison
/// baseline for the load-imbalance diagnostics
/// ([`strip_event_counts_quantile`]) — it balances endpoint counts, not
/// event counts, and mishandles instances whose crossings cluster away from
/// their endpoint mass. Same invariants as [`strip_seams`]: strictly
/// increasing, interior, deterministic.
pub fn quantile_seams(segments: &[TaggedSegment], strips: usize) -> Vec<Rational> {
    if strips <= 1 || segments.len() < 2 {
        return Vec::new();
    }
    let mut xs: Vec<Rational> =
        segments.iter().flat_map(|t| [t.segment.a.x, t.segment.b.x]).collect();
    xs.sort();
    let n = xs.len();
    let (min_x, max_x) = (xs[0], xs[n - 1]);
    let mut seams = Vec::new();
    for i in 1..strips {
        let candidate = xs[i * n / strips];
        if candidate > min_x && candidate < max_x && seams.last() != Some(&candidate) {
            seams.push(candidate);
        }
    }
    seams
}

/// Per-strip processed-event counts of a `strips`-way decomposition under
/// the cost-model seams ([`strip_seams`]) — the load-balance diagnostic the
/// `strip_sweep` benchmark reports (max/mean over this vector is the seam
/// skew). Runs each strip's sweep serially; a single-element vector means no
/// interior seam existed and the sweep ran monolithically.
pub fn strip_event_counts(segments: &[TaggedSegment], strips: usize) -> Vec<u64> {
    event_counts_for_seams(segments, &strip_seams(segments, strips))
}

/// Per-strip processed-event counts under the endpoint-x quantile seams
/// ([`quantile_seams`]) — the comparison baseline quantifying what the cost
/// model wins on crossing-clustered instances.
pub fn strip_event_counts_quantile(segments: &[TaggedSegment], strips: usize) -> Vec<u64> {
    event_counts_for_seams(segments, &quantile_seams(segments, strips))
}

fn event_counts_for_seams(segments: &[TaggedSegment], seams: &[Rational]) -> Vec<u64> {
    if seams.is_empty() {
        let mut cuts = endpoint_cuts(segments);
        let segs: Vec<Segment> = segments.iter().map(|t| t.segment).collect();
        return vec![crate::sweep::sweep_segment_cuts(&segs, &mut cuts)];
    }
    (0..=seams.len())
        .map(|s| {
            let lo = if s == 0 { None } else { Some(seams[s - 1]) };
            let hi = if s == seams.len() { None } else { Some(seams[s]) };
            strip_cuts(segments, lo, hi).1
        })
        .collect()
}

/// One segment clipped to a strip.
struct Clipped {
    /// The clipped piece (sweep source = left endpoint).
    segment: Segment,
    /// Index of the original segment in the input slice.
    original: usize,
    /// Does the piece's sweep source coincide with an original endpoint?
    source_real: bool,
    /// Does the piece's sweep target coincide with an original endpoint?
    target_real: bool,
}

/// Clip a segment to the closed x-interval `[lo, hi]` (`None` = unbounded).
/// Returns the piece plus real-endpoint flags, or `None` when the
/// intersection is empty or a single point (a non-vertical segment touching
/// a seam contributes nothing beyond its pre-seeded endpoint there).
fn clip_to_strip(
    s: &Segment,
    lo: Option<Rational>,
    hi: Option<Rational>,
) -> Option<(Segment, bool, bool)> {
    let src = s.sweep_source();
    let dst = s.sweep_target();
    if s.is_vertical() {
        let x = src.x;
        let inside = lo.is_none_or(|l| x >= l) && hi.is_none_or(|h| x <= h);
        return inside.then_some((*s, true, true));
    }
    let cx0 = match lo {
        Some(l) if l > src.x => l,
        _ => src.x,
    };
    let cx1 = match hi {
        Some(h) if h < dst.x => h,
        _ => dst.x,
    };
    if cx0 >= cx1 {
        return None;
    }
    let source_real = cx0 == src.x;
    let target_real = cx1 == dst.x;
    let a = if source_real { src } else { Point::new(cx0, s.y_at(cx0)) };
    let b = if target_real { dst } else { Point::new(cx1, s.y_at(cx1)) };
    Some((Segment::new(a, b), source_real, target_real))
}

/// The intersection cuts contributed by one strip, as `(original segment,
/// cut points)` pairs plus the strip's processed-event count: clip, run the
/// seam-restricted collinear pass, sweep.
fn strip_cuts(
    segments: &[TaggedSegment],
    lo: Option<Rational>,
    hi: Option<Rational>,
) -> (Vec<(usize, BTreeSet<Point>)>, u64) {
    let mut clipped: Vec<Clipped> = Vec::new();
    for (i, ts) in segments.iter().enumerate() {
        if let Some((segment, source_real, target_real)) = clip_to_strip(&ts.segment, lo, hi) {
            clipped.push(Clipped { segment, original: i, source_real, target_real });
        }
    }
    let mut local: Vec<BTreeSet<Point>> = vec![BTreeSet::new(); clipped.len()];
    collinear_real_endpoint_cuts(&clipped, &mut local);
    let segs: Vec<Segment> = clipped.iter().map(|c| c.segment).collect();
    let events = sweep_segment_cuts(&segs, &mut local);
    let cuts = clipped
        .iter()
        .zip(local)
        .filter(|(_, points)| !points.is_empty())
        .map(|(c, points)| (c.original, points))
        .collect();
    (cuts, events)
}

/// The seam-restricted collinear-overlap pass: like
/// `sweep::collinear_overlap_cuts`, but over clipped pieces and collecting
/// only **real** endpoints — an artificial seam endpoint is an interior
/// point of any overlap it lies in, and registering it would cut where the
/// serial sweep does not.
fn collinear_real_endpoint_cuts(clipped: &[Clipped], cuts: &mut [BTreeSet<Point>]) {
    let mut groups: BTreeMap<(Rational, Rational, Rational), Vec<usize>> = BTreeMap::new();
    for (i, c) in clipped.iter().enumerate() {
        groups.entry(line_key(&c.segment)).or_default().push(i);
    }
    for members in groups.into_values() {
        if members.len() < 2 {
            continue;
        }
        let mut endpoints: Vec<Point> = Vec::new();
        for &i in &members {
            let c = &clipped[i];
            if c.source_real {
                endpoints.push(c.segment.sweep_source());
            }
            if c.target_real {
                endpoints.push(c.segment.sweep_target());
            }
        }
        endpoints.sort();
        endpoints.dedup();
        // Lexicographic point order is monotone along the common line, so a
        // sorted endpoint list supports range extraction per piece.
        for &i in &members {
            let (piece_lo, piece_hi) =
                (clipped[i].segment.sweep_source(), clipped[i].segment.sweep_target());
            let from = endpoints.partition_point(|p| *p < piece_lo);
            let to = endpoints.partition_point(|p| *p <= piece_hi);
            for p in &endpoints[from..to] {
                cuts[i].insert(*p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::{instance_segments, split_segments, split_segments_naive};
    use spatial_core::fixtures;

    fn assert_striped_matches(segments: &[TaggedSegment], context: &str) {
        let serial = split_segments(segments);
        for strips in [2usize, 3, 5, 8] {
            for threads in [1usize, 4] {
                let striped = split_segments_striped(segments, strips, threads);
                assert_eq!(
                    striped, serial,
                    "{context}: strips={strips} threads={threads} diverges from serial"
                );
            }
        }
        assert_eq!(serial, split_segments_naive(segments), "{context}: serial != oracle");
    }

    fn tagged(segs: &[Segment]) -> Vec<TaggedSegment> {
        segs.iter()
            .enumerate()
            .map(|(i, s)| TaggedSegment { segment: *s, region: i })
            .collect()
    }

    #[test]
    fn seams_are_interior_strictly_increasing_and_deterministic() {
        let inst = datagen_like_grid();
        let segs = instance_segments(&inst);
        for strips in [2usize, 3, 7] {
            let seams = strip_seams(&segs, strips);
            assert_eq!(seams, strip_seams(&segs, strips), "seams must be deterministic");
            assert!(seams.len() < strips);
            for w in seams.windows(2) {
                assert!(w[0] < w[1], "seams must be strictly increasing");
            }
            let xs: Vec<Rational> =
                segs.iter().flat_map(|t| [t.segment.a.x, t.segment.b.x]).collect();
            let (min, max) = (xs.iter().min().unwrap(), xs.iter().max().unwrap());
            for s in &seams {
                assert!(s > min && s < max, "seam {s:?} not interior");
            }
        }
        // Degenerate inputs yield no seams (and so fall back to serial).
        assert!(strip_seams(&[], 4).is_empty());
        assert!(strip_seams(&segs[..1], 4).is_empty());
        assert!(strip_seams(&tagged(&[seg(2, 0, 2, 5), seg(2, 1, 2, 9)]), 4).is_empty());
    }

    #[test]
    fn clipping_flags_real_and_artificial_endpoints() {
        let s = seg(0, 0, 8, 4);
        // Fully inside: both endpoints real.
        let (c, ar, br) = clip_to_strip(&s, None, None).unwrap();
        assert_eq!((c, ar, br), (s, true, true));
        // Clipped on the right at x=4: seam endpoint is artificial, exact.
        let (c, ar, br) =
            clip_to_strip(&s, None, Some(Rational::from_int(4))).unwrap();
        assert_eq!(c, seg(0, 0, 4, 2));
        assert!(ar && !br);
        // Clipped on both sides.
        let (c, ar, br) = clip_to_strip(
            &s,
            Some(Rational::from_int(2)),
            Some(Rational::from_int(6)),
        )
        .unwrap();
        assert_eq!(c, seg(2, 1, 6, 3));
        assert!(!ar && !br);
        // Touching a strip in a single point contributes nothing.
        assert!(clip_to_strip(&s, Some(Rational::from_int(8)), None).is_none());
        assert!(clip_to_strip(&s, None, Some(Rational::from_int(0))).is_none());
        // Disjoint.
        assert!(clip_to_strip(&s, Some(Rational::from_int(9)), None).is_none());
        // Vertical at a seam belongs to both adjacent strips, uncut.
        let v = seg(4, -1, 4, 5);
        assert_eq!(clip_to_strip(&v, None, Some(Rational::from_int(4))).unwrap().0, v);
        assert_eq!(clip_to_strip(&v, Some(Rational::from_int(4)), None).unwrap().0, v);
        assert!(clip_to_strip(&v, Some(Rational::from_int(5)), None).is_none());
    }

    #[test]
    fn collinear_overlap_across_a_seam_is_not_cut_at_the_seam() {
        // Two collinear horizontals overlapping on [2, 6]; any seam strictly
        // inside the overlap creates coincident artificial endpoints there.
        // The only genuine cuts are the overlap endpoints x=2 and x=6.
        let segs = tagged(&[seg(0, 0, 6, 0), seg(2, 0, 9, 0)]);
        assert_striped_matches(&segs, "collinear overlap across seam");
        // Same, diagonal, with a transversal crossing exactly at a likely
        // seam abscissa.
        let segs = tagged(&[seg(0, 0, 6, 6), seg(2, 2, 9, 9), seg(3, 5, 5, 1)]);
        assert_striped_matches(&segs, "diagonal overlap plus transversal");
    }

    #[test]
    fn crossings_and_verticals_at_seams_survive_stitching() {
        // Proper crossing exactly at an endpoint-quantile abscissa.
        let segs = tagged(&[seg(0, 0, 4, 4), seg(0, 4, 4, 0), seg(2, -1, 2, 5)]);
        assert_striped_matches(&segs, "crossings through a vertical at the seam");
        // Endpoint meeting at a seam from both sides.
        let segs = tagged(&[seg(0, 0, 2, 2), seg(2, 2, 4, 0), seg(2, 0, 2, 4)]);
        assert_striped_matches(&segs, "endpoint meeting at seam");
    }

    /// The adversarial instance for endpoint-quantile seams: a
    /// crossing-dense cluster (every pair of the `C*` rectangles' boundaries
    /// cross, so Θ(k²) events on Θ(k) endpoints) next to a wide chain of
    /// pairwise disjoint rectangles carrying as many endpoints but no
    /// crossings at all. Quantiles split the endpoint mass evenly and starve
    /// the cluster of seams; the cost model sees the cluster's bbox-overlap
    /// mass and concentrates seams there.
    fn adversarial_clustered_crossings() -> Vec<TaggedSegment> {
        let mut inst = SpatialInstance::new();
        for i in 0..12i64 {
            inst.insert(
                format!("C{i:02}"),
                Region::rect_from_ints(i, -i, 12 + i, 12 - i),
            );
        }
        for j in 0..12i64 {
            inst.insert(
                format!("S{j:02}"),
                Region::rect_from_ints(100 + 40 * j, 0, 108 + 40 * j, 8),
            );
        }
        instance_segments(&inst)
    }

    fn skew(counts: &[u64]) -> f64 {
        let max = *counts.iter().max().expect("nonempty") as f64;
        let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        max / mean
    }

    #[test]
    fn cost_model_seams_balance_clustered_crossings_better_than_quantiles() {
        let segs = adversarial_clustered_crossings();
        for strips in [3usize, 4, 6] {
            let cost = strip_event_counts(&segs, strips);
            let quantile = strip_event_counts_quantile(&segs, strips);
            assert!(cost.len() > 1 && quantile.len() > 1, "both policies must yield seams");
            // The bottleneck strip (what wall-clock waits on) must shrink,
            // and the max/mean skew must improve.
            let (cost_max, quant_max) =
                (*cost.iter().max().unwrap(), *quantile.iter().max().unwrap());
            assert!(
                cost_max < quant_max,
                "strips={strips}: cost-model bottleneck {cost_max} not below quantile {quant_max} \
                 (cost {cost:?}, quantile {quantile:?})"
            );
            assert!(
                skew(&cost) < skew(&quantile),
                "strips={strips}: cost-model skew {} not below quantile skew {} \
                 (cost {cost:?}, quantile {quantile:?})",
                skew(&cost),
                skew(&quantile)
            );
        }
        // And the decomposition stays output-identical under both policies'
        // seam abscissas (the cost model only moves which abscissas are
        // chosen, never weakens the reconciliation argument).
        assert_striped_matches(&segs, "adversarial clustered crossings");
    }

    #[test]
    fn quantile_seams_share_the_invariants() {
        let segs = instance_segments(&datagen_like_grid());
        for strips in [2usize, 3, 7] {
            let seams = quantile_seams(&segs, strips);
            assert_eq!(seams, quantile_seams(&segs, strips));
            assert!(seams.len() < strips);
            for w in seams.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
        assert!(quantile_seams(&[], 4).is_empty());
    }

    #[test]
    fn fixtures_match_serial_for_every_strip_count() {
        for (name, inst) in [
            ("fig_1c", fixtures::fig_1c()),
            ("fig_1d", fixtures::fig_1d()),
            ("petals_abcd", fixtures::petals_abcd()),
            ("ring", fixtures::ring()),
            ("shared_boundary", fixtures::shared_boundary()),
        ] {
            assert_striped_matches(&instance_segments(&inst), name);
        }
    }

    #[test]
    fn effective_strips_respects_threshold() {
        // No override in the test environment is guaranteed, so only check
        // the threshold arm when the variable is absent.
        if strip_override().is_none() {
            assert_eq!(effective_strips(STRIP_MIN_SEGMENTS - 1), 1);
            assert_eq!(effective_strips(STRIP_MIN_SEGMENTS), configured_threads());
        }
    }

    fn datagen_like_grid() -> SpatialInstance {
        let mut inst = SpatialInstance::new();
        for r in 0..4i64 {
            for c in 0..4i64 {
                inst.insert(
                    format!("P{r}_{c}"),
                    Region::rect_from_ints(c * 4, r * 4, c * 4 + 6, r * 4 + 6),
                );
            }
        }
        inst
    }
}
