//! Assembly of per-component sub-complexes into the global
//! [`CellComplex`].
//!
//! The [`crate::partition`] step guarantees that different components share
//! no vertex or edge of the arrangement, so the global complex is the
//! disjoint union of the component complexes *except* for the 2-cells: a
//! whole component may sit inside a bounded face of another (strict nesting
//! without bounding-box contact), and the unbounded faces of all root
//! components are one and the same global exterior face. Assembly therefore:
//!
//! 1. locates every component in the face structure of the others (innermost
//!    bounded cycle containing a representative point — the cycles of
//!    distinct components never cross, so the innermost containing cycle
//!    identifies the parent face exactly);
//! 2. merges each nested component's local exterior face into its parent
//!    face (and all root components' exteriors into the global exterior),
//!    extending the parent's boundary-edge set with the component's outer
//!    boundary;
//! 3. widens every cell label from the component's region subset to the full
//!    instance: signs for foreign regions are inherited from the parent
//!    face's label, resolved parents-before-children over the nesting forest.
//!
//! A [`ComponentComplex`] is immutable and shared behind an
//! `Arc` by the component cache in `topodb`: re-assembling
//! after a localized update reuses every untouched component unchanged.
//!
//! [`assemble_components`] is the *copying* assembly: it materializes a flat
//! [`CellComplex`] in `O(total cells)`. Its zero-copy, index-identical
//! counterpart is [`GlobalComplexView`](crate::GlobalComplexView), which
//! performs steps 1–3 symbolically in `O(components + nesting)` and serves
//! cells through the [`ComplexRead`](crate::ComplexRead) translation layer;
//! both build on the same nesting computation
//! (`compute_component_nesting`).

use crate::builder::build_local_phased;
use crate::complex::CellComplex;
use crate::geometry::point_in_closed_polyline;
use crate::index::SpatialIndex;
use crate::partition::{BBox, ComponentGroup};
use crate::split::TaggedSegment;
use crate::types::*;
use spatial_core::prelude::*;
use std::sync::Arc;

/// The outer cycle of one bounded face of a component complex, kept for the
/// cross-component nesting tests of the assembly step.
#[derive(Clone, Debug)]
pub struct BoundedCycle {
    /// The bounded face this cycle is the outer boundary of.
    pub(crate) face: FaceId,
    /// The closed walk realizing the cycle (last point omitted).
    pub(crate) polyline: Vec<Point>,
    /// Twice the signed area of the walk (positive).
    pub(crate) area2: Rational,
}

/// The independently built cell complex of one interaction component,
/// together with the geometric data the assembly step needs to embed it into
/// the global complex.
#[derive(Clone, Debug)]
pub struct ComponentComplex {
    pub(crate) complex: CellComplex,
    pub(crate) bounded_cycles: Vec<BoundedCycle>,
    pub(crate) bbox: Option<BBox>,
    pub(crate) rep_point: Option<Point>,
}

impl ComponentComplex {
    /// The component's local cell complex (labels cover only the component's
    /// own regions).
    pub fn complex(&self) -> &CellComplex {
        &self.complex
    }

    /// The region names of this component, in sorted order.
    pub fn region_names(&self) -> &[String] {
        self.complex.region_names()
    }

    /// The bounding box of the component's geometry (`None` for a component
    /// with no segments).
    pub fn bbox(&self) -> Option<&BBox> {
        self.bbox.as_ref()
    }
}

/// Build the sub-complex of one component from its tagged boundary segments
/// (`region` tags index `region_names`).
///
/// The splitting phase routes through the x-strip parallel sweep for large
/// components and the monolithic sweep for small ones
/// ([`crate::strip::split_segments_auto`]); the two are output-identical, so
/// the resulting complex does not depend on the routing. Uses the full
/// configured thread count as the strip budget — callers already fanning
/// out over components should use [`build_component_complex_budgeted`].
pub fn build_component_complex(
    region_names: Vec<String>,
    segments: &[TaggedSegment],
) -> ComponentComplex {
    build_component_complex_budgeted(region_names, segments, crate::parallel::configured_threads())
}

/// Like [`build_component_complex`], with an explicit strip budget (see
/// [`crate::strip::split_segments_auto_budgeted`]): the thread count this
/// one component build may spend on its own strip decomposition. Parallel
/// component pipelines pass [`crate::strip::strip_budget`] of their fan-out
/// so nested strip × component parallelism stays at roughly the configured
/// thread count. The output is identical for every budget.
pub fn build_component_complex_budgeted(
    region_names: Vec<String>,
    segments: &[TaggedSegment],
    strip_budget: usize,
) -> ComponentComplex {
    build_component_complex_phased(
        region_names,
        segments,
        strip_budget,
        crate::parallel::phase_parallel_enabled(),
    )
}

/// Like [`build_component_complex_budgeted`], with the phase-parallel toggle
/// as an explicit argument instead of the `ARRANGEMENT_PHASE_PARALLEL`
/// environment default: `phase_parallel = true` runs the post-split phases
/// (chain merging, face walks, label propagation, cell assembly) on the
/// worker pool under the same `strip_budget` thread share the splitting
/// phase uses; `false` forces them serial. The output is identical either
/// way (`tests/phase_parallel_differential.rs`).
pub fn build_component_complex_phased(
    region_names: Vec<String>,
    segments: &[TaggedSegment],
    strip_budget: usize,
    phase_parallel: bool,
) -> ComponentComplex {
    let bbox = segments
        .iter()
        .map(|t| BBox::of_segment(&t.segment))
        .reduce(|a, b| a.union(&b));
    let subs = crate::strip::split_segments_auto_budgeted(segments, strip_budget);
    let phase_threads = if phase_parallel { strip_budget } else { 1 };
    let (complex, bounded_cycles) = build_local_phased(region_names, &subs, phase_threads);
    let rep_point = complex.vertices.first().map(|v| v.point);
    ComponentComplex { complex, bounded_cycles, bbox, rep_point }
}

/// Build the sub-complex of one partition group of an instance.
pub fn build_group_component(
    instance: &SpatialInstance,
    group: &ComponentGroup,
) -> ComponentComplex {
    build_group_component_budgeted(instance, group, crate::parallel::configured_threads())
}

/// Like [`build_group_component`], with an explicit strip budget (see
/// [`build_component_complex_budgeted`]).
pub fn build_group_component_budgeted(
    instance: &SpatialInstance,
    group: &ComponentGroup,
    strip_budget: usize,
) -> ComponentComplex {
    build_group_component_phased(
        instance,
        group,
        strip_budget,
        crate::parallel::phase_parallel_enabled(),
    )
}

/// Like [`build_group_component_budgeted`], with the phase-parallel toggle
/// as an explicit argument (see [`build_component_complex_phased`]).
pub fn build_group_component_phased(
    instance: &SpatialInstance,
    group: &ComponentGroup,
    strip_budget: usize,
    phase_parallel: bool,
) -> ComponentComplex {
    let names = instance.names();
    let mut local_names = Vec::with_capacity(group.region_indices.len());
    let mut segments = Vec::new();
    for (local, &gi) in group.region_indices.iter().enumerate() {
        let name = names[gi];
        let region = instance.ext(name).expect("group region exists");
        local_names.push(name.to_string());
        for segment in region.boundary().edges() {
            segments.push(TaggedSegment { segment, region: local });
        }
    }
    build_component_complex_phased(local_names, &segments, strip_budget, phase_parallel)
}

/// The outcome of [`build_components_with_reuse`]: the partition's
/// per-group sorted region-name keys and the corresponding component
/// sub-complexes, both in partition order, plus how many components had to
/// be swept from scratch (the rest came out of `reuse` pointer-identically).
pub struct ComponentSet {
    /// Sorted region-name set of each partition group, in partition order.
    pub keys: Vec<Vec<String>>,
    /// The component sub-complex of each group, aligned with `keys`.
    pub components: Vec<Arc<ComponentComplex>>,
    /// How many entries of `components` were swept from scratch.
    pub rebuilt: usize,
}

/// Partition `instance` and produce every component sub-complex, asking
/// `reuse` for an already-built component first: `reuse(key)` receives the
/// group's sorted region-name set and may return a previously built
/// component for it (which is used as-is, pointer-identically — the caller
/// guarantees it matches the group's current geometry). Groups `reuse`
/// declines are swept from scratch — concurrently on the shared worker pool
/// ([`crate::parallel`]), sharing the thread budget between the component
/// fan-out and each component's own strip decomposition
/// ([`crate::strip::strip_budget`]).
///
/// This is the builder entry point behind incremental maintenance in
/// `topodb`: both the epoch-chain and the legacy cache paths express
/// "re-sweep only what changed against a base epoch" as a `reuse` closure
/// over the base's component map.
pub fn build_components_with_reuse<F>(instance: &SpatialInstance, reuse: F) -> ComponentSet
where
    F: Fn(&[String]) -> Option<Arc<ComponentComplex>> + Sync,
{
    let groups = crate::partition_instance(instance);
    let names = instance.names();
    let keys: Vec<Vec<String>> = groups
        .iter()
        .map(|g| g.region_indices.iter().map(|&i| names[i].to_string()).collect())
        .collect();
    let mut slots: Vec<Option<Arc<ComponentComplex>>> =
        keys.iter().map(|key| reuse(key)).collect();
    let missing: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].is_none()).collect();
    let rebuilt = missing.len();
    if !missing.is_empty() {
        let threads = crate::parallel::configured_threads();
        let strip_budget = crate::strip::strip_budget(missing.len(), threads);
        let built = crate::parallel::map_indexed(missing.len(), threads, |j| {
            Arc::new(build_group_component_budgeted(instance, &groups[missing[j]], strip_budget))
        });
        for (j, component) in built.into_iter().enumerate() {
            slots[missing[j]] = Some(component);
        }
    }
    let components = slots.into_iter().map(|s| s.expect("every slot filled")).collect();
    ComponentSet { keys, components, rebuilt }
}

/// Overwrite the positions of a component's own regions in an inherited
/// parent label.
pub(crate) fn widen_label(parent: &Label, local: &Label, region_map: &[usize]) -> Label {
    let mut out = parent.clone();
    for (li, &gi) in region_map.iter().enumerate() {
        out[gi] = local[li];
    }
    out
}

/// Cross-component nesting: for every component, `Some((parent component,
/// parent *local* face))` if the component sits strictly inside a bounded
/// face of another component, `None` if it is a root (sits in the global
/// exterior face).
///
/// The parent is found as the innermost bounded cycle of any *other*
/// component containing the component's representative point. Cycles of
/// distinct components never cross (partitioning keeps their geometry
/// disjoint), so the containing cycles form a laminar family and the
/// innermost one is the face the component sits in.
///
/// This computation is shared between the copying assembly
/// ([`assemble_components`]) and the zero-copy
/// [`GlobalComplexView`](crate::GlobalComplexView) so the two resolve
/// nesting identically.
pub(crate) fn compute_component_nesting(
    components: &[Arc<ComponentComplex>],
) -> Vec<Option<(usize, FaceId)>> {
    let k = components.len();
    let mut parents: Vec<Option<(usize, FaceId)>> = vec![None; k];
    // Box-level point location through a spatial index over the component
    // boxes: each representative point probes in `O(log k + candidates)`
    // instead of scanning all `k` components, and only the reported
    // candidates pay the exact point-in-polygon tests.
    let boxes: Vec<Option<BBox>> = components.iter().map(|comp| comp.bbox.clone()).collect();
    let index = SpatialIndex::build(&boxes);
    for (c, parent) in parents.iter_mut().enumerate() {
        let Some(rep) = components[c].rep_point else { continue };
        let mut best: Option<(Rational, usize, FaceId)> = None;
        for d in index.locate_point(&rep) {
            if d == c {
                continue;
            }
            let comp = &components[d];
            for cyc in &comp.bounded_cycles {
                if point_in_closed_polyline(&rep, &cyc.polyline) {
                    let area = cyc.area2.abs();
                    if best.as_ref().is_none_or(|(a, _, _)| area < *a) {
                        best = Some((area, d, cyc.face));
                    }
                }
            }
        }
        if let Some((_, d, f)) = best {
            *parent = Some((d, f));
        }
    }
    parents
}

/// A parents-before-children order of the nesting forest returned by
/// [`compute_component_nesting`].
pub(crate) fn nesting_topo_order(parents: &[Option<(usize, FaceId)>]) -> Vec<usize> {
    let k = parents.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut topo: Vec<usize> = Vec::with_capacity(k);
    for (c, parent) in parents.iter().enumerate() {
        match parent {
            Some((d, _)) => children[*d].push(c),
            None => topo.push(c),
        }
    }
    let mut i = 0;
    while i < topo.len() {
        let d = topo[i];
        topo.extend(children[d].iter().copied());
        i += 1;
    }
    debug_assert_eq!(topo.len(), k, "nesting forest must cover all components");
    topo
}

/// Stitch component complexes into the global cell complex of the instance
/// with region set `global_names` (sorted; every component's region set must
/// be a subset).
pub fn assemble_components(
    global_names: Vec<String>,
    components: &[Arc<ComponentComplex>],
) -> CellComplex {
    let n_regions = global_names.len();
    let exterior = FaceId(0);
    if components.is_empty() {
        return CellComplex {
            region_names: global_names,
            vertices: vec![],
            edges: vec![],
            faces: vec![FaceData {
                is_exterior: true,
                boundary_edges: vec![],
                label: vec![Sign::Exterior; n_regions],
                sample_point: None,
            }],
            exterior,
        };
    }

    let k = components.len();

    // Local-to-global region index map per component.
    let region_map: Vec<Vec<usize>> = components
        .iter()
        .map(|c| {
            c.region_names()
                .iter()
                .map(|n| {
                    global_names
                        .binary_search(n)
                        .expect("component region is in the global name set")
                })
                .collect()
        })
        .collect();

    // Vertex/edge id offsets by concatenation; face ids: 0 is the global
    // exterior, bounded local faces get fresh sequential ids.
    let mut vertex_off = vec![0usize; k];
    let mut edge_off = vec![0usize; k];
    let mut face_map: Vec<Vec<FaceId>> = Vec::with_capacity(k);
    let mut next_face = 1usize;
    {
        let (mut voff, mut eoff) = (0usize, 0usize);
        for (c, comp) in components.iter().enumerate() {
            vertex_off[c] = voff;
            edge_off[c] = eoff;
            voff += comp.complex.vertex_count();
            eoff += comp.complex.edge_count();
            let local_ext = comp.complex.exterior;
            let map = (0..comp.complex.face_count())
                .map(|f| {
                    if FaceId(f) == local_ext {
                        exterior // placeholder, fixed up after nesting below
                    } else {
                        next_face += 1;
                        FaceId(next_face - 1)
                    }
                })
                .collect();
            face_map.push(map);
        }
    }

    // Cross-component nesting (shared with the zero-copy view) and the
    // parents-before-children resolution order.
    let parents = compute_component_nesting(components);
    let parent_comp: Vec<Option<usize>> = parents.iter().map(|p| p.map(|(d, _)| d)).collect();
    let parent_face: Vec<FaceId> = parents
        .iter()
        .map(|p| match p {
            Some((d, f)) => face_map[*d][f.0],
            None => exterior,
        })
        .collect();
    // A nested component's local exterior face *is* its parent face.
    for c in 0..k {
        let local_ext = components[c].complex.exterior;
        face_map[c][local_ext.0] = parent_face[c];
    }
    let topo = nesting_topo_order(&parents);

    // Global faces: start with the exterior, then translate every bounded
    // local face; nested components extend their parent face's boundary with
    // their own outer boundary.
    let mut faces: Vec<FaceData> = vec![FaceData {
        is_exterior: true,
        boundary_edges: vec![],
        label: vec![Sign::Exterior; n_regions],
        sample_point: None,
    }];
    faces.resize(
        next_face,
        FaceData {
            is_exterior: false,
            boundary_edges: vec![],
            label: vec![],
            sample_point: None,
        },
    );
    for (c, comp) in components.iter().enumerate() {
        for f in comp.complex.face_ids() {
            let gf = face_map[c][f.0];
            let data = comp.complex.face(f);
            let translated: Vec<EdgeId> =
                data.boundary_edges.iter().map(|e| EdgeId(e.0 + edge_off[c])).collect();
            if f == comp.complex.exterior {
                // Merged into the parent face (or the global exterior).
                faces[gf.0].boundary_edges.extend(translated);
            } else {
                faces[gf.0].boundary_edges.extend(translated);
                faces[gf.0].sample_point = data.sample_point;
            }
        }
    }
    for face in &mut faces {
        face.boundary_edges.sort();
        face.boundary_edges.dedup();
    }

    // A parent face's locally computed sample point may now fall inside (or
    // on) a component embedded into it by this assembly; drop it then. The
    // bounding-box test is conservative — a lost sample is always safe, a
    // stale one never is.
    for (c, comp) in components.iter().enumerate() {
        if parent_comp[c].is_none() {
            continue; // the exterior face carries no sample point
        }
        let pf = parent_face[c];
        if let (Some(p), Some(bbox)) = (faces[pf.0].sample_point, comp.bbox.as_ref()) {
            if bbox.contains_point(&p) {
                faces[pf.0].sample_point = None;
            }
        }
    }

    // Face labels, parents first: a component's cells inherit the parent
    // face's signs for all foreign regions and keep their local signs for the
    // component's own regions.
    let mut inherited: Vec<Label> = vec![Vec::new(); k];
    for &c in &topo {
        let parent_label = faces[parent_face[c].0].label.clone();
        debug_assert_eq!(parent_label.len(), n_regions, "parent labels resolve before children");
        let comp = &components[c].complex;
        for f in comp.face_ids() {
            if f == comp.exterior {
                continue;
            }
            faces[face_map[c][f.0].0].label =
                widen_label(&parent_label, &comp.face(f).label, &region_map[c]);
        }
        inherited[c] = parent_label;
    }

    // Edges and vertices, concatenated in component order.
    let mut edges: Vec<EdgeData> = Vec::new();
    let mut vertices: Vec<VertexData> = Vec::new();
    for (c, comp) in components.iter().enumerate() {
        let cx = &comp.complex;
        for e in cx.edge_ids() {
            let data = cx.edge(e);
            edges.push(EdgeData {
                tail: VertexId(data.tail.0 + vertex_off[c]),
                head: VertexId(data.head.0 + vertex_off[c]),
                polyline: data.polyline.clone(),
                on_boundary_of: data.on_boundary_of.iter().map(|&r| region_map[c][r]).collect(),
                left_face: face_map[c][data.left_face.0],
                right_face: face_map[c][data.right_face.0],
                label: widen_label(&inherited[c], &data.label, &region_map[c]),
            });
        }
        for v in cx.vertex_ids() {
            let data = cx.vertex(v);
            vertices.push(VertexData {
                point: data.point,
                label: widen_label(&inherited[c], &data.label, &region_map[c]),
                rotation: data.rotation.iter().map(|d| DartId(d.0 + 2 * edge_off[c])).collect(),
            });
        }
    }

    CellComplex { region_names: global_names, vertices, edges, faces, exterior }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_instance;

    fn assemble_instance(inst: &SpatialInstance) -> CellComplex {
        let global_names: Vec<String> = inst.names().iter().map(|s| s.to_string()).collect();
        let comps: Vec<Arc<ComponentComplex>> = partition_instance(inst)
            .iter()
            .map(|g| Arc::new(build_group_component(inst, g)))
            .collect();
        assemble_components(global_names, &comps)
    }

    #[test]
    fn nested_separated_squares() {
        // Strict nesting with no bounding-box contact between any segments:
        // the partition yields two components, and assembly must embed the
        // inner one into the outer one's interior face.
        let inst = SpatialInstance::from_regions([
            ("Inner", Region::rect_from_ints(40, 40, 60, 60)),
            ("Outer", Region::rect_from_ints(0, 0, 100, 100)),
        ]);
        let c = assemble_instance(&inst);
        assert_eq!(c.vertex_count(), 2);
        assert_eq!(c.edge_count(), 2);
        assert_eq!(c.face_count(), 3);
        assert!(c.euler_formula_holds());
        // The annulus face (Outer only) is bounded by both loops.
        let annulus = c
            .face_ids()
            .find(|f| c.face(*f).label == vec![Sign::Exterior, Sign::Interior])
            .expect("outer-only face exists");
        assert_eq!(c.face_edges(annulus).len(), 2);
        // The innermost face is inside both regions.
        assert!(c
            .face_ids()
            .any(|f| c.face(f).label == vec![Sign::Interior, Sign::Interior]));
        // The exterior sees only Outer's boundary.
        assert_eq!(c.face_edges(c.exterior_face()).len(), 1);
    }

    #[test]
    fn two_levels_of_separated_nesting() {
        let inst = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 100, 100)),
            ("B", Region::rect_from_ints(20, 20, 80, 80)),
            ("C", Region::rect_from_ints(45, 45, 55, 55)),
        ]);
        let c = assemble_instance(&inst);
        assert_eq!(partition_instance(&inst).len(), 3);
        assert_eq!(c.face_count(), 4);
        assert!(c.euler_formula_holds());
        let mut labels: Vec<Label> = c.face_ids().map(|f| c.face(f).label.clone()).collect();
        labels.sort();
        let mut expected = vec![
            vec![Sign::Exterior, Sign::Exterior, Sign::Exterior],
            vec![Sign::Interior, Sign::Exterior, Sign::Exterior],
            vec![Sign::Interior, Sign::Interior, Sign::Exterior],
            vec![Sign::Interior, Sign::Interior, Sign::Interior],
        ];
        expected.sort();
        assert_eq!(labels, expected);
    }

    #[test]
    fn siblings_inside_one_face() {
        // Two separated islands inside the same host face.
        let inst = SpatialInstance::from_regions([
            ("Host", Region::rect_from_ints(0, 0, 100, 50)),
            ("L", Region::rect_from_ints(10, 10, 30, 30)),
            ("R", Region::rect_from_ints(60, 10, 80, 30)),
        ]);
        let c = assemble_instance(&inst);
        assert_eq!(c.face_count(), 4);
        assert!(c.euler_formula_holds());
        let host_only = c
            .face_ids()
            .find(|f| c.face(*f).label == vec![Sign::Interior, Sign::Exterior, Sign::Exterior])
            .expect("host-only face");
        // Host's own loop + both island loops.
        assert_eq!(c.face_edges(host_only).len(), 3);
    }

    #[test]
    fn empty_assembly_is_single_exterior_face() {
        let c = assemble_components(vec![], &[]);
        assert_eq!(c.face_count(), 1);
        assert_eq!(c.vertex_count(), 0);
        assert!(c.euler_formula_holds());
    }
}
