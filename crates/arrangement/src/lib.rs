//! # arrangement
//!
//! Exact planar cell complexes of spatial database instances — the geometric
//! engine behind the paper's topological invariant (Section 3).
//!
//! Given a [`spatial_core::instance::SpatialInstance`] whose regions have
//! polygonal boundaries, [`build_complex`] computes the partition of the
//! plane induced by the region boundaries into vertices, edges and faces (the
//! *maximal cell complex* of the instance), together with:
//!
//! * the sign label of every cell with respect to every region
//!   (interior / boundary / exterior),
//! * the designated unbounded face `f0`,
//! * the rotation system (cyclic order of edges around each vertex), i.e. the
//!   paper's orientation relation `O`,
//! * the nesting of disconnected boundary components into the faces that
//!   contain them.
//!
//! This is the polygonal stand-in for the Kozen–Yap cell decomposition the
//! paper uses for semi-algebraic inputs; see `DESIGN.md` for the substitution
//! argument.
//!
//! ## Construction pipeline and cost
//!
//! Construction is a three-stage **partition → parallel per-component sweep
//! → view-assemble** pipeline:
//!
//! 1. **Partition** ([`partition`]): the boundary segments are grouped into
//!    connected components of their *interaction graph* (bounding-box
//!    overlap, union-find). Bounding-box overlap conservatively
//!    over-approximates geometric intersection, so distinct components
//!    provably share no vertex or edge of the arrangement.
//! 2. **Parallel per-component sweep**: each component is built
//!    independently — its segments are cut at their mutual intersections by
//!    a Bentley–Ottmann plane sweep in exact rational arithmetic ([`sweep`],
//!    `O((n + k) log n)` for `n` segments with `k` intersection
//!    incidences), chains are merged into maximal 1-cells, the rotation
//!    system and face walks extracted, and cells labeled by propagation from
//!    the unbounded face. Components share nothing until assembly, so they
//!    are swept **concurrently** on the small std-only worker pool of
//!    [`parallel`] (thread count from `ARRANGEMENT_THREADS`, default =
//!    available parallelism; the output is identical for every thread
//!    count). Inside a large component, the splitting phase is further
//!    decomposed into concurrent x-strips ([`strip`]). The result is an
//!    immutable [`ComponentComplex`], shareable behind an `Arc` so callers
//!    (the `topodb` component cache) can reuse untouched components across
//!    updates.
//! 3. **Assemble**: the component complexes are composed into the global
//!    complex — components strictly nested inside a face of another
//!    component are embedded there (their local exterior face is unified
//!    with the parent face), all root components share the single global
//!    exterior face, and every cell label is widened from the component's
//!    region subset to the full instance. Assembly comes in two
//!    index-identical flavors: **by view** ([`GlobalComplexView`],
//!    `O(components + cross-component nesting)` — it holds the
//!    `Arc<ComponentComplex>`es plus a compact global↔(component, local) id
//!    translation table and serves cells through [`ComplexRead`] with no
//!    per-cell copying), and **by copy** ([`assemble_components`],
//!    `O(total cells)` — it materializes the flat [`CellComplex`]).
//!
//! Every derived-structure computation downstream (invariant extraction,
//! 4-relation classification, cell-level query evaluation) is generic over
//! the [`ComplexRead`] accessor trait and works unchanged on either
//! representation. Since components interact with nothing outside
//! themselves, an update that touches one cluster of a multi-component map
//! only requires re-sweeping that cluster plus an `O(components)`
//! re-assembly of the view — update→read latency is proportional to the
//! affected cluster, however large the rest of the map is.
//!
//! ## Parallelism model
//!
//! Construction exploits three orthogonal levels of parallelism, all fed by
//! the same [`parallel`] worker pool:
//!
//! * **Component-level** (between components): interaction components share
//!   no vertex or edge, so their sub-complexes are swept as share-nothing
//!   work items. This is the right lever for *wide* maps (many clusters,
//!   `datagen::wide_map` / `clustered_map`) and costs nothing in
//!   coordination — but it is bounded by the component count: a dense map
//!   that forms one big component offers a single work item.
//! * **Strip-level** (inside a component, [`strip`]): the splitting phase of
//!   one component's sweep is decomposed into vertical x-strips at exact
//!   rational seam abscissas placed by a *crossing-density cost model* —
//!   each candidate endpoint abscissa is weighted by the bounding-box
//!   overlap mass around it (a [`SpatialIndex`] probe, the same
//!   conservative estimate the partitioner uses), and the seams are placed
//!   at equal *cumulative cost* rather than equal endpoint count, so
//!   crossing-clustered instances still hand every strip a comparable
//!   share of sweep events (the retired endpoint-quantile placement is
//!   kept as [`strip::quantile_seams`], the measured baseline of the
//!   `strip_sweep` seam-skew metrics). The strips are swept concurrently
//!   and their cut sets stitched back together with exact seam
//!   reconciliation. This is the lever for *dense single-blob* maps
//!   (`datagen::dense_overlap_map`, `jittered_overlap_map`), where it is
//!   the only parallelism available to the splitting phase. Components
//!   below [`strip::STRIP_MIN_SEGMENTS`] segments sweep monolithically —
//!   their parallelism, if any, comes from the component level. The levels
//!   share one thread budget ([`strip::strip_budget`]): a lone big
//!   component strips on every configured thread, a many-component map
//!   keeps the parallelism at the component level, and mixed maps split
//!   the budget evenly rather than multiplying the fan-outs.
//! * **Phase-level** (inside a component, downstream of the split): the
//!   post-split phases — chain merging into maximal 1-cells, face-walk
//!   extraction from the combinatorial embedding, label propagation from
//!   the unbounded face, and flat cell assembly — run on the component's
//!   same thread share. Chain merging fans out over *canonical darts*
//!   (each maximal chain is emitted only from its lexicographically
//!   smallest endpoint, reproducing the serial first-encounter order
//!   without coordination), face walks parallelize the next-dart
//!   permutation and the per-walk polyline/area builds around a serial
//!   orbit extraction, and labels propagate layer-synchronously (label
//!   values are path-independent, so frontier order cannot change them).
//!   Controlled by `ARRANGEMENT_PHASE_PARALLEL` (default on; set `0`,
//!   `off`, `false` or `serial` to force the serial phases); the
//!   per-phase work is observable through [`counters`].
//!
//! **Determinism guarantee:** no level affects the output — the strip
//! decomposition produces *identical* cut sets (and therefore identical
//! sub-segments, cells and fingerprints) to the monolithic sweep, the
//! parallel phases emit cells in the serial phase order, and the
//! component pool returns results in input order — so the constructed
//! complex is byte-for-byte the same for every
//! `ARRANGEMENT_THREADS` × `ARRANGEMENT_STRIPS` ×
//! `ARRANGEMENT_PHASE_PARALLEL` combination, on every machine.
//! `tests/thread_determinism.rs`, `tests/strip_differential.rs` and
//! `tests/phase_parallel_differential.rs` pin this.
//!
//! Two oracles guard the pipeline: the original all-pairs splitter (`O(n^2)`
//! exact intersection tests) is retained in [`split`] as the sweep's
//! differential-testing oracle, and the pre-partitioning single-sweep
//! construction is retained as [`build_complex_monolithic`] as the
//! pipeline's oracle — both must agree (up to cell re-indexing) on every
//! input, including the degenerate ones (endpoint touching, many segments
//! through one point, vertical segments, collinear overlap chains, shared
//! boundaries merged with multi-region marks).
//!
//! ## Example
//!
//! ```
//! use arrangement::build_complex;
//! use spatial_core::fixtures;
//!
//! // The instance of the paper's Example 3.1 (Fig. 1c).
//! let complex = build_complex(&fixtures::fig_1c());
//! assert_eq!(complex.vertex_count(), 2);
//! assert_eq!(complex.edge_count(), 4);
//! assert_eq!(complex.face_count(), 4);
//! assert!(complex.euler_formula_holds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assemble;
mod builder;
mod complex;
pub mod counters;
mod geometry;
pub mod index;
pub mod parallel;
pub mod partition;
pub mod split;
pub mod strip;
pub mod sweep;
mod types;
mod view;

pub use assemble::{
    assemble_components, build_component_complex, build_component_complex_budgeted,
    build_component_complex_phased, build_components_with_reuse, build_group_component,
    build_group_component_budgeted, build_group_component_phased, ComponentComplex, ComponentSet,
};
pub use builder::{
    build_complex, build_complex_monolithic, build_complex_phased, build_complex_view,
    build_component_complexes, build_component_complexes_phased,
};
pub use complex::{CellComplex, ComplexRead};
pub use index::SpatialIndex;
pub use view::GlobalComplexView;
pub use partition::{partition_instance, BBox, ComponentGroup};
pub use types::{
    CellId, DartId, Dimension, EdgeData, EdgeId, FaceData, FaceId, Label, Sign, VertexData,
    VertexId,
};

pub use geometry::{closed_polyline_area_doubled, point_in_closed_polyline};
