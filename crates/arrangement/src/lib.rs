//! # arrangement
//!
//! Exact planar cell complexes of spatial database instances — the geometric
//! engine behind the paper's topological invariant (Section 3).
//!
//! Given a [`spatial_core::instance::SpatialInstance`] whose regions have
//! polygonal boundaries, [`build_complex`] computes the partition of the
//! plane induced by the region boundaries into vertices, edges and faces (the
//! *maximal cell complex* of the instance), together with:
//!
//! * the sign label of every cell with respect to every region
//!   (interior / boundary / exterior),
//! * the designated unbounded face `f0`,
//! * the rotation system (cyclic order of edges around each vertex), i.e. the
//!   paper's orientation relation `O`,
//! * the nesting of disconnected boundary components into the faces that
//!   contain them.
//!
//! This is the polygonal stand-in for the Kozen–Yap cell decomposition the
//! paper uses for semi-algebraic inputs; see `DESIGN.md` for the substitution
//! argument.
//!
//! ## Construction pipeline and cost
//!
//! Construction proceeds in two phases. The *splitting* phase cuts every
//! input segment at every point where it meets another segment; the
//! production implementation is a Bentley–Ottmann plane sweep in exact
//! rational arithmetic ([`sweep`]) running in `O((n + k) log n)` for `n`
//! segments with `k` intersection incidences. The original all-pairs
//! splitter (`O(n^2)` exact intersection tests) is retained in [`split`] as
//! a differential-testing oracle: both produce identical sub-segment sets by
//! construction of the test suite, and the sweep handles the same
//! degeneracies (endpoint touching, many segments through one point,
//! vertical segments, collinear overlap chains, shared boundaries merged
//! with multi-region marks). The *assembly* phase — chain merging, rotation
//! system, face walks, nesting, labels — is independent of which splitter
//! produced the pieces.
//!
//! ## Example
//!
//! ```
//! use arrangement::build_complex;
//! use spatial_core::fixtures;
//!
//! // The instance of the paper's Example 3.1 (Fig. 1c).
//! let complex = build_complex(&fixtures::fig_1c());
//! assert_eq!(complex.vertex_count(), 2);
//! assert_eq!(complex.edge_count(), 4);
//! assert_eq!(complex.face_count(), 4);
//! assert!(complex.euler_formula_holds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod complex;
mod geometry;
pub mod split;
pub mod sweep;
mod types;

pub use builder::build_complex;
pub use complex::CellComplex;
pub use types::{
    CellId, DartId, Dimension, EdgeData, EdgeId, FaceData, FaceId, Label, Sign, VertexData,
    VertexId,
};

pub use geometry::{closed_polyline_area_doubled, point_in_closed_polyline};
