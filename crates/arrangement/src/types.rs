//! Identifier types, sign labels and raw cell data for the planar cell
//! complex.

use spatial_core::prelude::*;
use std::fmt;

/// Index of a 0-cell (vertex) in a [`crate::CellComplex`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VertexId(pub usize);

/// Index of a 1-cell (edge) in a [`crate::CellComplex`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub usize);

/// Index of a 2-cell (face) in a [`crate::CellComplex`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FaceId(pub usize);

/// A *dart* (half-edge): edge `e` traversed forward (`2e`) or backward
/// (`2e + 1`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DartId(pub usize);

impl DartId {
    /// The forward dart of an edge.
    pub fn forward(e: EdgeId) -> DartId {
        DartId(e.0 * 2)
    }

    /// The backward dart of an edge.
    pub fn backward(e: EdgeId) -> DartId {
        DartId(e.0 * 2 + 1)
    }

    /// The edge this dart belongs to.
    pub fn edge(self) -> EdgeId {
        EdgeId(self.0 / 2)
    }

    /// Is this the forward dart of its edge?
    pub fn is_forward(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// The opposite dart of the same edge.
    pub fn twin(self) -> DartId {
        DartId(self.0 ^ 1)
    }
}

/// The sign of a cell with respect to one region: the paper's labeling
/// `σ : names(I) → {o, ∂, −}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Sign {
    /// The cell lies in the region's interior (`o`).
    Interior,
    /// The cell lies on the region's boundary (`∂`).
    Boundary,
    /// The cell lies in the region's exterior (`−`).
    Exterior,
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sign::Interior => "o",
            Sign::Boundary => "∂",
            Sign::Exterior => "-",
        };
        write!(f, "{s}")
    }
}

/// A cell label: one [`Sign`] per region, in region-name order.
pub type Label = Vec<Sign>;

/// Data stored for a vertex (0-cell).
#[derive(Clone, Debug)]
pub struct VertexData {
    /// The geometric position of the vertex.
    pub point: Point,
    /// Per-region sign.
    pub label: Label,
    /// Outgoing darts in counter-clockwise order (the rotation system).
    pub rotation: Vec<DartId>,
}

/// Data stored for an edge (1-cell).
#[derive(Clone, Debug)]
pub struct EdgeData {
    /// Tail vertex of the forward dart.
    pub tail: VertexId,
    /// Head vertex of the forward dart (equal to `tail` for a loop).
    pub head: VertexId,
    /// The polyline realizing the edge, from `tail` to `head`
    /// (at least two points; first and last are the endpoint positions).
    pub polyline: Vec<Point>,
    /// Indices (into the region-name list) of the regions whose boundary
    /// contains this edge.
    pub on_boundary_of: Vec<usize>,
    /// Face to the left of the forward dart.
    pub left_face: FaceId,
    /// Face to the left of the backward dart (i.e. to the right of the edge).
    pub right_face: FaceId,
    /// Per-region sign.
    pub label: Label,
}

/// Data stored for a face (2-cell).
#[derive(Clone, Debug)]
pub struct FaceData {
    /// Is this the unbounded (exterior) face `f0`?
    pub is_exterior: bool,
    /// All edges on the face's boundary, including the boundaries of
    /// connected components embedded inside the face (sorted, deduplicated).
    pub boundary_edges: Vec<EdgeId>,
    /// Per-region sign (`Interior` or `Exterior` only; faces never lie on a
    /// boundary).
    pub label: Label,
    /// An interior sample point of the face (absent for the exterior face).
    pub sample_point: Option<Point>,
}

/// The dimension of a cell.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Dimension {
    /// 0-cells (vertices).
    Zero,
    /// 1-cells (edges).
    One,
    /// 2-cells (faces).
    Two,
}

/// A reference to any cell of the complex.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CellId {
    /// A vertex.
    Vertex(VertexId),
    /// An edge.
    Edge(EdgeId),
    /// A face.
    Face(FaceId),
}

impl CellId {
    /// The dimension of the referenced cell.
    pub fn dimension(self) -> Dimension {
        match self {
            CellId::Vertex(_) => Dimension::Zero,
            CellId::Edge(_) => Dimension::One,
            CellId::Face(_) => Dimension::Two,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dart_arithmetic() {
        let e = EdgeId(3);
        let f = DartId::forward(e);
        let b = DartId::backward(e);
        assert_eq!(f, DartId(6));
        assert_eq!(b, DartId(7));
        assert_eq!(f.twin(), b);
        assert_eq!(b.twin(), f);
        assert_eq!(f.edge(), e);
        assert_eq!(b.edge(), e);
        assert!(f.is_forward());
        assert!(!b.is_forward());
    }

    #[test]
    fn sign_display() {
        assert_eq!(format!("{}", Sign::Interior), "o");
        assert_eq!(format!("{}", Sign::Boundary), "∂");
        assert_eq!(format!("{}", Sign::Exterior), "-");
    }

    #[test]
    fn cell_dimension() {
        assert_eq!(CellId::Vertex(VertexId(0)).dimension(), Dimension::Zero);
        assert_eq!(CellId::Edge(EdgeId(0)).dimension(), Dimension::One);
        assert_eq!(CellId::Face(FaceId(0)).dimension(), Dimension::Two);
        assert!(Dimension::Zero < Dimension::Two);
    }
}
