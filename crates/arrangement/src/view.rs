//! Zero-copy assembly: a global complex served directly out of shared
//! per-component sub-complexes.
//!
//! [`GlobalComplexView`] is the "assemble by view" counterpart of the
//! "assemble by copy" [`crate::assemble_components`]: instead of translating
//! every vertex, edge and face of every component into a flat
//! [`CellComplex`](crate::CellComplex) (`O(total cells)` per assembly, even
//! when a single component changed), it holds the `Arc<ComponentComplex>`es
//! themselves plus a compact translation layer:
//!
//! * prefix-sum offset tables mapping global cell ids to `(component, local
//!   id)` pairs and back (`O(components)` space, `O(log components)` lookup),
//! * the cross-component nesting forest and the per-component *inherited*
//!   labels (the parent face's signs for all foreign regions), resolved
//!   parents-before-children exactly as the copying assembly does,
//! * the local→global region-index map of every component.
//!
//! Construction is therefore `O(components + cross-component nesting)`, not
//! `O(total cells)` — after a localized update, re-assembling the global
//! view costs nothing per untouched cell. Accessors translate on the fly:
//! labels are widened from the component's region subset to the full
//! instance, dart and face ids are shifted into the global id space, and
//! purely geometric data (polylines, points) is borrowed from the shared
//! component allocations.
//!
//! Repeated whole-complex scans are amortized by two **per-component memos**,
//! built lazily behind [`OnceLock`]s (so a view that is never label-scanned
//! never pays for them, and all clones and threads share one build): the
//! inverse region map (global region index → local label position), which
//! turns the `vertex_sign`/`edge_sign`/`face_sign` fast paths from a binary
//! search into an array index — the access pattern of
//! `relation_matrix` over many pairs — and the widened-label table, which
//! widens each cell's label once instead of on every
//! `vertex_label`/`edge_label`/`face_label` read
//! ([`GlobalComplexView::label_widenings`] counts widenings, and the test
//! suite pins that a second scan performs none).
//!
//! The view is **index-identical** to the flat complex produced by
//! [`crate::assemble_components`] from the same component list: every cell
//! has the same id, label and incidences through either representation
//! (`tests/view_differential.rs` pins this cell-by-cell). All derived
//! computations are generic over [`ComplexRead`] and accept both.

use crate::assemble::{
    assemble_components, compute_component_nesting, nesting_topo_order, widen_label,
    ComponentComplex,
};
use crate::complex::{CellComplex, ComplexRead};
use crate::index::SpatialIndex;
use crate::types::*;
use spatial_core::prelude::Point;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A zero-copy global cell complex over shared component sub-complexes.
///
/// See the module docs for the representation. Obtain one from
/// [`crate::build_complex_view`] (cold build) or assemble one directly from
/// cached components with [`GlobalComplexView::new`].
#[derive(Clone, Debug)]
pub struct GlobalComplexView {
    region_names: Vec<String>,
    components: Vec<Arc<ComponentComplex>>,
    /// Local→global region index map per component (strictly increasing,
    /// since both name lists are sorted).
    region_map: Vec<Vec<usize>>,
    /// First global vertex id of each component (prefix sums).
    vertex_start: Vec<usize>,
    /// First global edge id of each component (prefix sums).
    edge_start: Vec<usize>,
    /// First global id of each component's *bounded* faces (the global
    /// exterior face is id 0; bounded local faces `1..` map to consecutive
    /// global ids, matching the copying assembly's numbering exactly).
    face_start: Vec<usize>,
    vertex_total: usize,
    edge_total: usize,
    face_total: usize,
    /// Global id of the face each component is embedded in (the exterior
    /// face for root components).
    parent_face: Vec<FaceId>,
    /// Per component: the parent face's global label (signs inherited for
    /// all regions foreign to the component).
    inherited: Vec<Label>,
    /// Global face id → components embedded directly in that face.
    nested_in_face: BTreeMap<usize, Vec<usize>>,
    exterior_label: Label,
    /// Per component, lazily built on first sign read: global region index →
    /// local label position (`u32::MAX` for regions foreign to the
    /// component). Turns the sign fast paths from a binary search into an
    /// array index. Behind an `Arc` so every clone of the view shares one
    /// build.
    region_pos: Arc<Vec<OnceLock<Vec<u32>>>>,
    /// Per component, lazily built on first whole-label read: the widened
    /// labels of every cell, so repeated whole-complex scans widen each
    /// component's labels once instead of `O(regions)` merge work per read.
    /// Behind an `Arc` so every clone of the view shares one build.
    widened: Arc<Vec<OnceLock<WidenedLabels>>>,
    /// Number of label widenings performed by the accessor layer (shared by
    /// all clones of the view; see [`GlobalComplexView::label_widenings`]).
    widen_count: Arc<AtomicU64>,
    /// Lazily built spatial index over the region bounding boxes, shared by
    /// every clone of the view (and therefore by every evaluator of a
    /// snapshot); see [`GlobalComplexView::region_bbox_index`].
    bbox_index: Arc<OnceLock<Arc<SpatialIndex>>>,
}

/// The memoized widened labels of one component's cells.
#[derive(Clone, Debug)]
struct WidenedLabels {
    vertices: Vec<Label>,
    edges: Vec<Label>,
    /// Bounded local faces `1..`, indexed by `local face id - 1`.
    faces: Vec<Label>,
}

impl GlobalComplexView {
    /// Assemble the view of the instance with region set `region_names`
    /// (sorted; every component's region set must be a subset) over the
    /// given component sub-complexes.
    ///
    /// Cost: `O(components + cross-component nesting)` — no per-cell work.
    pub fn new(
        region_names: Vec<String>,
        components: Vec<Arc<ComponentComplex>>,
    ) -> GlobalComplexView {
        let n_regions = region_names.len();
        let k = components.len();

        let region_map: Vec<Vec<usize>> = components
            .iter()
            .map(|c| {
                c.region_names()
                    .iter()
                    .map(|n| {
                        region_names
                            .binary_search(n)
                            .expect("component region is in the global name set")
                    })
                    .collect()
            })
            .collect();

        let mut vertex_start = Vec::with_capacity(k);
        let mut edge_start = Vec::with_capacity(k);
        let mut face_start = Vec::with_capacity(k);
        let (mut vt, mut et, mut ft) = (0usize, 0usize, 1usize);
        for comp in &components {
            debug_assert_eq!(
                comp.complex.exterior, FaceId(0),
                "component complexes designate face 0 as their exterior"
            );
            vertex_start.push(vt);
            edge_start.push(et);
            face_start.push(ft);
            vt += comp.complex.vertex_count();
            et += comp.complex.edge_count();
            ft += comp.complex.face_count() - 1; // local exterior is merged away
        }

        let parents = compute_component_nesting(&components);
        let topo = nesting_topo_order(&parents);
        let parent_face: Vec<FaceId> = parents
            .iter()
            .map(|p| match p {
                Some((d, f)) => FaceId(face_start[*d] + f.0 - 1),
                None => FaceId(0),
            })
            .collect();

        let exterior_label: Label = vec![Sign::Exterior; n_regions];
        let mut inherited: Vec<Label> = vec![Vec::new(); k];
        for &c in &topo {
            inherited[c] = match parents[c] {
                None => exterior_label.clone(),
                Some((d, f)) => widen_label(
                    &inherited[d],
                    &components[d].complex.face(f).label,
                    &region_map[d],
                ),
            };
        }

        let mut nested_in_face: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (c, pf) in parent_face.iter().enumerate() {
            nested_in_face.entry(pf.0).or_default().push(c);
        }

        GlobalComplexView {
            region_names,
            region_map,
            vertex_start,
            edge_start,
            face_start,
            vertex_total: vt,
            edge_total: et,
            face_total: ft,
            parent_face,
            inherited,
            nested_in_face,
            exterior_label,
            region_pos: Arc::new((0..k).map(|_| OnceLock::new()).collect()),
            widened: Arc::new((0..k).map(|_| OnceLock::new()).collect()),
            widen_count: Arc::new(AtomicU64::new(0)),
            bbox_index: Arc::new(OnceLock::new()),
            components,
        }
    }

    /// The spatial index over the region bounding boxes of this view, built
    /// on first use and shared by every clone (one build per snapshot). The
    /// query planner draws its candidate generators from this index —
    /// regions whose boxes don't interact are provably disjoint — and its
    /// probe counter ([`SpatialIndex::probe_count`]) is the planner-work
    /// metric surfaced by the bench snapshot.
    pub fn region_bbox_index(&self) -> Arc<SpatialIndex> {
        Arc::clone(
            self.bbox_index
                .get_or_init(|| Arc::new(SpatialIndex::build(&self.region_bboxes()))),
        )
    }

    /// The component sub-complexes backing the view, in assembly order.
    pub fn components(&self) -> &[Arc<ComponentComplex>] {
        &self.components
    }

    /// Number of component sub-complexes.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Per-component `(vertices, edges, bounded faces)` counts, in assembly
    /// order.
    pub fn component_cell_counts(&self) -> Vec<(usize, usize, usize)> {
        self.components
            .iter()
            .map(|c| {
                let x = &c.complex;
                (x.vertex_count(), x.edge_count(), x.face_count() - 1)
            })
            .collect()
    }

    /// The global id of the face component `c` is embedded in (the exterior
    /// face for root components).
    pub fn component_parent_face(&self, c: usize) -> FaceId {
        self.parent_face[c]
    }

    /// Materialize the flat [`CellComplex`] with the identical cell
    /// numbering (a deep copy; `O(total cells)`).
    pub fn to_cell_complex(&self) -> CellComplex {
        assemble_components(self.region_names.clone(), &self.components)
    }

    // ---- id translation ---------------------------------------------------

    /// The `(component, local id)` pair of a global vertex id.
    fn vertex_home(&self, v: VertexId) -> (usize, usize) {
        debug_assert!(v.0 < self.vertex_total, "vertex id out of range");
        let c = self.vertex_start.partition_point(|&s| s <= v.0) - 1;
        (c, v.0 - self.vertex_start[c])
    }

    /// The `(component, local id)` pair of a global edge id.
    fn edge_home(&self, e: EdgeId) -> (usize, usize) {
        debug_assert!(e.0 < self.edge_total, "edge id out of range");
        let c = self.edge_start.partition_point(|&s| s <= e.0) - 1;
        (c, e.0 - self.edge_start[c])
    }

    /// The `(component, local id)` pair of a global *bounded* face id.
    fn face_home(&self, f: FaceId) -> (usize, FaceId) {
        debug_assert!(f.0 >= 1 && f.0 < self.face_total, "bounded face id out of range");
        let c = self.face_start.partition_point(|&s| s <= f.0) - 1;
        (c, FaceId(f.0 - self.face_start[c] + 1))
    }

    /// The global face id of a component-local face.
    fn face_abroad(&self, c: usize, local: FaceId) -> FaceId {
        if local == self.components[c].complex.exterior {
            self.parent_face[c]
        } else {
            FaceId(self.face_start[c] + local.0 - 1)
        }
    }

    /// The sign of a global region index at a component-local label, falling
    /// back to the component's inherited label for foreign regions.
    ///
    /// Served through the memoized inverse region map: the first sign read
    /// of a component builds its `O(regions)` global→local position table,
    /// after which every read is an array index instead of a binary search —
    /// the fast path for whole-complex scans like `relation_matrix`.
    fn local_sign(&self, c: usize, local_label: &Label, region: usize) -> Sign {
        let table = self.region_pos[c].get_or_init(|| {
            let mut t = vec![u32::MAX; self.region_names.len()];
            for (li, &gi) in self.region_map[c].iter().enumerate() {
                t[gi] = li as u32;
            }
            t
        });
        match table[region] {
            u32::MAX => self.inherited[c][region],
            p => local_label[p as usize],
        }
    }

    /// The memoized widened labels of component `c`, built on first use: one
    /// widening per cell, once per component, shared by every clone of the
    /// view and every thread reading through it.
    fn widened(&self, c: usize) -> &WidenedLabels {
        self.widened[c].get_or_init(|| {
            let cx = &self.components[c].complex;
            WidenedLabels {
                vertices: cx.vertices.iter().map(|v| self.widen_counted(c, &v.label)).collect(),
                edges: cx.edges.iter().map(|e| self.widen_counted(c, &e.label)).collect(),
                faces: (1..cx.face_count())
                    .map(|f| self.widen_counted(c, &cx.face(FaceId(f)).label))
                    .collect(),
            }
        })
    }

    fn widen_counted(&self, c: usize, local: &Label) -> Label {
        self.widen_count.fetch_add(1, Ordering::Relaxed);
        widen_label(&self.inherited[c], local, &self.region_map[c])
    }

    /// How many label widenings this view's accessors have performed (the
    /// counter is shared by all clones). Repeated whole-complex label scans
    /// must not grow it past one widening per cell — the observable
    /// guarantee of the per-component label memo, pinned by the test suite.
    pub fn label_widenings(&self) -> u64 {
        self.widen_count.load(Ordering::Relaxed)
    }
}

impl ComplexRead for GlobalComplexView {
    fn region_names(&self) -> &[String] {
        &self.region_names
    }

    fn vertex_count(&self) -> usize {
        self.vertex_total
    }

    fn edge_count(&self) -> usize {
        self.edge_total
    }

    fn face_count(&self) -> usize {
        self.face_total
    }

    fn exterior_face(&self) -> FaceId {
        FaceId(0)
    }

    fn vertex_point(&self, v: VertexId) -> Point {
        let (c, lv) = self.vertex_home(v);
        self.components[c].complex.vertices[lv].point
    }

    fn vertex_label(&self, v: VertexId) -> Label {
        let (c, lv) = self.vertex_home(v);
        self.widened(c).vertices[lv].clone()
    }

    fn vertex_rotation(&self, v: VertexId) -> Vec<DartId> {
        let (c, lv) = self.vertex_home(v);
        let shift = 2 * self.edge_start[c];
        self.components[c].complex.vertices[lv]
            .rotation
            .iter()
            .map(|d| DartId(d.0 + shift))
            .collect()
    }

    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let (c, le) = self.edge_home(e);
        let data = &self.components[c].complex.edges[le];
        let off = self.vertex_start[c];
        (VertexId(data.tail.0 + off), VertexId(data.head.0 + off))
    }

    fn edge_polyline(&self, e: EdgeId) -> &[Point] {
        let (c, le) = self.edge_home(e);
        &self.components[c].complex.edges[le].polyline
    }

    fn edge_label(&self, e: EdgeId) -> Label {
        let (c, le) = self.edge_home(e);
        self.widened(c).edges[le].clone()
    }

    fn edge_region_marks(&self, e: EdgeId) -> Vec<usize> {
        let (c, le) = self.edge_home(e);
        self.components[c].complex.edges[le]
            .on_boundary_of
            .iter()
            .map(|&r| self.region_map[c][r])
            .collect()
    }

    fn edge_faces(&self, e: EdgeId) -> (FaceId, FaceId) {
        let (c, le) = self.edge_home(e);
        let data = &self.components[c].complex.edges[le];
        (self.face_abroad(c, data.left_face), self.face_abroad(c, data.right_face))
    }

    fn face_label(&self, f: FaceId) -> Label {
        if f.0 == 0 {
            return self.exterior_label.clone();
        }
        let (c, lf) = self.face_home(f);
        self.widened(c).faces[lf.0 - 1].clone()
    }

    fn face_boundary(&self, f: FaceId) -> Vec<EdgeId> {
        let mut out = Vec::new();
        if f.0 != 0 {
            let (c, lf) = self.face_home(f);
            let off = self.edge_start[c];
            out.extend(
                self.components[c].complex.face(lf).boundary_edges.iter().map(|e| EdgeId(e.0 + off)),
            );
        }
        // Components embedded in this face contribute their outer boundary.
        if let Some(children) = self.nested_in_face.get(&f.0) {
            for &d in children {
                let comp = &self.components[d].complex;
                let off = self.edge_start[d];
                out.extend(
                    comp.face(comp.exterior).boundary_edges.iter().map(|e| EdgeId(e.0 + off)),
                );
            }
        }
        out.sort_unstable();
        out
    }

    fn face_is_exterior(&self, f: FaceId) -> bool {
        f.0 == 0
    }

    fn face_sample(&self, f: FaceId) -> Option<Point> {
        if f.0 == 0 {
            return None;
        }
        let (c, lf) = self.face_home(f);
        let p = self.components[c].complex.face(lf).sample_point?;
        // A sample computed locally may now fall inside a component embedded
        // into this face by assembly; drop it then (conservative bbox test,
        // mirroring the copying assembly).
        if let Some(children) = self.nested_in_face.get(&f.0) {
            for &d in children {
                if self.components[d].bbox.as_ref().is_some_and(|b| b.contains_point(&p)) {
                    return None;
                }
            }
        }
        Some(p)
    }

    fn vertex_sign(&self, v: VertexId, region: usize) -> Sign {
        let (c, lv) = self.vertex_home(v);
        self.local_sign(c, &self.components[c].complex.vertices[lv].label, region)
    }

    fn edge_sign(&self, e: EdgeId, region: usize) -> Sign {
        let (c, le) = self.edge_home(e);
        self.local_sign(c, &self.components[c].complex.edges[le].label, region)
    }

    fn face_sign(&self, f: FaceId, region: usize) -> Sign {
        if f.0 == 0 {
            return Sign::Exterior;
        }
        let (c, lf) = self.face_home(f);
        self.local_sign(c, &self.components[c].complex.face(lf).label, region)
    }

    fn skeleton_component_count(&self) -> usize {
        // Skeleton components never span partition components (they share no
        // vertex), so the global count is the sum of the local ones.
        self.components.iter().map(|c| c.complex.skeleton_component_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_component_complexes;
    use spatial_core::fixtures;
    use spatial_core::prelude::*;

    fn view_of(inst: &SpatialInstance) -> GlobalComplexView {
        let names: Vec<String> = inst.names().iter().map(|s| s.to_string()).collect();
        GlobalComplexView::new(names, build_component_complexes(inst, 1))
    }

    #[test]
    fn empty_view_is_single_exterior_face() {
        let v = GlobalComplexView::new(vec![], vec![]);
        assert_eq!(v.vertex_count(), 0);
        assert_eq!(v.edge_count(), 0);
        assert_eq!(v.face_count(), 1);
        assert!(v.face_is_exterior(FaceId(0)));
        assert!(v.euler_formula_holds());
        assert!(v.face_boundary(FaceId(0)).is_empty());
    }

    #[test]
    fn nested_separated_squares_through_the_view() {
        let inst = SpatialInstance::from_regions([
            ("Inner", Region::rect_from_ints(40, 40, 60, 60)),
            ("Outer", Region::rect_from_ints(0, 0, 100, 100)),
        ]);
        let v = view_of(&inst);
        assert_eq!(v.component_count(), 2);
        assert_eq!(v.vertex_count(), 2);
        assert_eq!(v.edge_count(), 2);
        assert_eq!(v.face_count(), 3);
        assert!(v.euler_formula_holds());
        // The annulus face (Outer only) is bounded by both loops.
        let annulus = v
            .face_ids()
            .find(|&f| v.face_label(f) == vec![Sign::Exterior, Sign::Interior])
            .expect("outer-only face exists");
        assert_eq!(v.face_boundary(annulus).len(), 2);
        assert!(v
            .face_ids()
            .any(|f| v.face_label(f) == vec![Sign::Interior, Sign::Interior]));
        // The exterior sees only Outer's boundary.
        assert_eq!(v.face_boundary(v.exterior_face()).len(), 1);
    }

    #[test]
    fn view_matches_copy_assembly_cell_for_cell() {
        let inst = fixtures::nested_three();
        let v = view_of(&inst);
        let flat = v.to_cell_complex();
        assert_eq!(v.vertex_count(), flat.vertex_count());
        assert_eq!(v.edge_count(), flat.edge_count());
        assert_eq!(v.face_count(), flat.face_count());
        for f in v.face_ids() {
            assert_eq!(v.face_label(f), ComplexRead::face_label(&flat, f));
            assert_eq!(v.face_boundary(f), ComplexRead::face_boundary(&flat, f));
        }
        for e in v.edge_ids() {
            assert_eq!(v.edge_faces(e), ComplexRead::edge_faces(&flat, e));
            assert_eq!(v.edge_label(e), ComplexRead::edge_label(&flat, e));
        }
        for vx in v.vertex_ids() {
            assert_eq!(v.vertex_rotation(vx), ComplexRead::vertex_rotation(&flat, vx));
        }
    }

    #[test]
    fn label_widening_is_memoized_per_component() {
        let inst = fixtures::nested_three();
        let v = view_of(&inst);
        assert_eq!(v.label_widenings(), 0, "assembly must not widen through the accessors");
        let scan = |v: &GlobalComplexView| -> Vec<Label> {
            v.vertex_ids()
                .map(|x| v.vertex_label(x))
                .chain(v.edge_ids().map(|e| v.edge_label(e)))
                .chain(v.face_ids().map(|f| v.face_label(f)))
                .collect()
        };
        // Clone *before* the memo is built: clones share the memo itself
        // (not just the counter), so the scan below must build it for both.
        let w = v.clone();
        let first = scan(&v);
        let after_first = v.label_widenings();
        let widenable = v.vertex_count() + v.edge_count() + (v.face_count() - 1);
        assert_eq!(after_first as usize, widenable, "exactly one widening per non-exterior cell");
        // A second whole-complex scan reuses the memo: zero further widenings.
        assert_eq!(scan(&v), first);
        assert_eq!(v.label_widenings(), after_first, "second scan must not widen again");
        // Sign fast paths go through the inverse region map, never the
        // widener.
        for r in 0..v.region_names().len() {
            for f in v.face_ids() {
                let _ = v.face_sign(f, r);
            }
            for e in v.edge_ids() {
                let _ = v.edge_sign(e, r);
            }
        }
        assert_eq!(v.label_widenings(), after_first);
        // The pre-build clone shares the built memo: zero further widenings.
        assert_eq!(scan(&w), first);
        assert_eq!(w.label_widenings(), after_first, "clone must share the memo, not rebuild it");
    }

    #[test]
    fn region_bbox_index_is_cached_and_answers_overlap() {
        let inst = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 4, 4)),
            ("B", Region::rect_from_ints(3, 3, 7, 7)),
            ("C", Region::rect_from_ints(50, 50, 52, 52)),
        ]);
        let v = view_of(&inst);
        let idx = v.region_bbox_index();
        // One build per view, shared by clones.
        assert!(Arc::ptr_eq(&idx, &v.clone().region_bbox_index()));
        let bboxes = v.region_bboxes();
        assert_eq!(bboxes.len(), 3);
        let a = bboxes[0].as_ref().expect("A has a box");
        // A's neighbors: itself and B (boxes overlap), not C.
        assert_eq!(idx.bbox_neighbors(a), vec![0, 1]);
        let c = bboxes[2].as_ref().expect("C has a box");
        assert_eq!(idx.bbox_neighbors(c), vec![2]);
    }

    #[test]
    fn sign_fast_paths_agree_with_labels() {
        let inst = fixtures::nested_three();
        let v = view_of(&inst);
        for r in 0..v.region_names().len() {
            for f in v.face_ids() {
                assert_eq!(v.face_sign(f, r), v.face_label(f)[r]);
            }
            for e in v.edge_ids() {
                assert_eq!(v.edge_sign(e, r), v.edge_label(e)[r]);
            }
            for vx in v.vertex_ids() {
                assert_eq!(v.vertex_sign(vx, r), v.vertex_label(vx)[r]);
            }
        }
    }
}
