//! Zero-copy assembly: a global complex served directly out of shared
//! per-component sub-complexes.
//!
//! [`GlobalComplexView`] is the "assemble by view" counterpart of the
//! "assemble by copy" [`crate::assemble_components`]: instead of translating
//! every vertex, edge and face of every component into a flat
//! [`CellComplex`](crate::CellComplex) (`O(total cells)` per assembly, even
//! when a single component changed), it holds the `Arc<ComponentComplex>`es
//! themselves plus a compact translation layer:
//!
//! * prefix-sum offset tables mapping global cell ids to `(component, local
//!   id)` pairs and back (`O(components)` space, `O(log components)` lookup),
//! * the cross-component nesting forest and the per-component *inherited*
//!   labels (the parent face's signs for all foreign regions), resolved
//!   parents-before-children exactly as the copying assembly does,
//! * the local→global region-index map of every component.
//!
//! Construction is therefore `O(components + cross-component nesting)`, not
//! `O(total cells)` — after a localized update, re-assembling the global
//! view costs nothing per untouched cell. Accessors translate on the fly:
//! labels are widened from the component's region subset to the full
//! instance, dart and face ids are shifted into the global id space, and
//! purely geometric data (polylines, points) is borrowed from the shared
//! component allocations.
//!
//! The view is **index-identical** to the flat complex produced by
//! [`crate::assemble_components`] from the same component list: every cell
//! has the same id, label and incidences through either representation
//! (`tests/view_differential.rs` pins this cell-by-cell). All derived
//! computations are generic over [`ComplexRead`] and accept both.

use crate::assemble::{
    assemble_components, compute_component_nesting, nesting_topo_order, widen_label,
    ComponentComplex,
};
use crate::complex::{CellComplex, ComplexRead};
use crate::types::*;
use spatial_core::prelude::Point;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A zero-copy global cell complex over shared component sub-complexes.
///
/// See the module docs for the representation. Obtain one from
/// [`crate::build_complex_view`] (cold build) or assemble one directly from
/// cached components with [`GlobalComplexView::new`].
#[derive(Clone, Debug)]
pub struct GlobalComplexView {
    region_names: Vec<String>,
    components: Vec<Arc<ComponentComplex>>,
    /// Local→global region index map per component (strictly increasing,
    /// since both name lists are sorted).
    region_map: Vec<Vec<usize>>,
    /// First global vertex id of each component (prefix sums).
    vertex_start: Vec<usize>,
    /// First global edge id of each component (prefix sums).
    edge_start: Vec<usize>,
    /// First global id of each component's *bounded* faces (the global
    /// exterior face is id 0; bounded local faces `1..` map to consecutive
    /// global ids, matching the copying assembly's numbering exactly).
    face_start: Vec<usize>,
    vertex_total: usize,
    edge_total: usize,
    face_total: usize,
    /// Global id of the face each component is embedded in (the exterior
    /// face for root components).
    parent_face: Vec<FaceId>,
    /// Per component: the parent face's global label (signs inherited for
    /// all regions foreign to the component).
    inherited: Vec<Label>,
    /// Global face id → components embedded directly in that face.
    nested_in_face: BTreeMap<usize, Vec<usize>>,
    exterior_label: Label,
}

impl GlobalComplexView {
    /// Assemble the view of the instance with region set `region_names`
    /// (sorted; every component's region set must be a subset) over the
    /// given component sub-complexes.
    ///
    /// Cost: `O(components + cross-component nesting)` — no per-cell work.
    pub fn new(
        region_names: Vec<String>,
        components: Vec<Arc<ComponentComplex>>,
    ) -> GlobalComplexView {
        let n_regions = region_names.len();
        let k = components.len();

        let region_map: Vec<Vec<usize>> = components
            .iter()
            .map(|c| {
                c.region_names()
                    .iter()
                    .map(|n| {
                        region_names
                            .binary_search(n)
                            .expect("component region is in the global name set")
                    })
                    .collect()
            })
            .collect();

        let mut vertex_start = Vec::with_capacity(k);
        let mut edge_start = Vec::with_capacity(k);
        let mut face_start = Vec::with_capacity(k);
        let (mut vt, mut et, mut ft) = (0usize, 0usize, 1usize);
        for comp in &components {
            debug_assert_eq!(
                comp.complex.exterior, FaceId(0),
                "component complexes designate face 0 as their exterior"
            );
            vertex_start.push(vt);
            edge_start.push(et);
            face_start.push(ft);
            vt += comp.complex.vertex_count();
            et += comp.complex.edge_count();
            ft += comp.complex.face_count() - 1; // local exterior is merged away
        }

        let parents = compute_component_nesting(&components);
        let topo = nesting_topo_order(&parents);
        let parent_face: Vec<FaceId> = parents
            .iter()
            .map(|p| match p {
                Some((d, f)) => FaceId(face_start[*d] + f.0 - 1),
                None => FaceId(0),
            })
            .collect();

        let exterior_label: Label = vec![Sign::Exterior; n_regions];
        let mut inherited: Vec<Label> = vec![Vec::new(); k];
        for &c in &topo {
            inherited[c] = match parents[c] {
                None => exterior_label.clone(),
                Some((d, f)) => widen_label(
                    &inherited[d],
                    &components[d].complex.face(f).label,
                    &region_map[d],
                ),
            };
        }

        let mut nested_in_face: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (c, pf) in parent_face.iter().enumerate() {
            nested_in_face.entry(pf.0).or_default().push(c);
        }

        GlobalComplexView {
            region_names,
            components,
            region_map,
            vertex_start,
            edge_start,
            face_start,
            vertex_total: vt,
            edge_total: et,
            face_total: ft,
            parent_face,
            inherited,
            nested_in_face,
            exterior_label,
        }
    }

    /// The component sub-complexes backing the view, in assembly order.
    pub fn components(&self) -> &[Arc<ComponentComplex>] {
        &self.components
    }

    /// Number of component sub-complexes.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Per-component `(vertices, edges, bounded faces)` counts, in assembly
    /// order.
    pub fn component_cell_counts(&self) -> Vec<(usize, usize, usize)> {
        self.components
            .iter()
            .map(|c| {
                let x = &c.complex;
                (x.vertex_count(), x.edge_count(), x.face_count() - 1)
            })
            .collect()
    }

    /// The global id of the face component `c` is embedded in (the exterior
    /// face for root components).
    pub fn component_parent_face(&self, c: usize) -> FaceId {
        self.parent_face[c]
    }

    /// Materialize the flat [`CellComplex`] with the identical cell
    /// numbering (a deep copy; `O(total cells)`).
    pub fn to_cell_complex(&self) -> CellComplex {
        assemble_components(self.region_names.clone(), &self.components)
    }

    // ---- id translation ---------------------------------------------------

    /// The `(component, local id)` pair of a global vertex id.
    fn vertex_home(&self, v: VertexId) -> (usize, usize) {
        debug_assert!(v.0 < self.vertex_total, "vertex id out of range");
        let c = self.vertex_start.partition_point(|&s| s <= v.0) - 1;
        (c, v.0 - self.vertex_start[c])
    }

    /// The `(component, local id)` pair of a global edge id.
    fn edge_home(&self, e: EdgeId) -> (usize, usize) {
        debug_assert!(e.0 < self.edge_total, "edge id out of range");
        let c = self.edge_start.partition_point(|&s| s <= e.0) - 1;
        (c, e.0 - self.edge_start[c])
    }

    /// The `(component, local id)` pair of a global *bounded* face id.
    fn face_home(&self, f: FaceId) -> (usize, FaceId) {
        debug_assert!(f.0 >= 1 && f.0 < self.face_total, "bounded face id out of range");
        let c = self.face_start.partition_point(|&s| s <= f.0) - 1;
        (c, FaceId(f.0 - self.face_start[c] + 1))
    }

    /// The global face id of a component-local face.
    fn face_abroad(&self, c: usize, local: FaceId) -> FaceId {
        if local == self.components[c].complex.exterior {
            self.parent_face[c]
        } else {
            FaceId(self.face_start[c] + local.0 - 1)
        }
    }

    /// The sign of a global region index at a component-local label, falling
    /// back to the component's inherited label for foreign regions.
    fn local_sign(&self, c: usize, local_label: &Label, region: usize) -> Sign {
        match self.region_map[c].binary_search(&region) {
            Ok(p) => local_label[p],
            Err(_) => self.inherited[c][region],
        }
    }
}

impl ComplexRead for GlobalComplexView {
    fn region_names(&self) -> &[String] {
        &self.region_names
    }

    fn vertex_count(&self) -> usize {
        self.vertex_total
    }

    fn edge_count(&self) -> usize {
        self.edge_total
    }

    fn face_count(&self) -> usize {
        self.face_total
    }

    fn exterior_face(&self) -> FaceId {
        FaceId(0)
    }

    fn vertex_point(&self, v: VertexId) -> Point {
        let (c, lv) = self.vertex_home(v);
        self.components[c].complex.vertices[lv].point
    }

    fn vertex_label(&self, v: VertexId) -> Label {
        let (c, lv) = self.vertex_home(v);
        widen_label(
            &self.inherited[c],
            &self.components[c].complex.vertices[lv].label,
            &self.region_map[c],
        )
    }

    fn vertex_rotation(&self, v: VertexId) -> Vec<DartId> {
        let (c, lv) = self.vertex_home(v);
        let shift = 2 * self.edge_start[c];
        self.components[c].complex.vertices[lv]
            .rotation
            .iter()
            .map(|d| DartId(d.0 + shift))
            .collect()
    }

    fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let (c, le) = self.edge_home(e);
        let data = &self.components[c].complex.edges[le];
        let off = self.vertex_start[c];
        (VertexId(data.tail.0 + off), VertexId(data.head.0 + off))
    }

    fn edge_polyline(&self, e: EdgeId) -> &[Point] {
        let (c, le) = self.edge_home(e);
        &self.components[c].complex.edges[le].polyline
    }

    fn edge_label(&self, e: EdgeId) -> Label {
        let (c, le) = self.edge_home(e);
        widen_label(
            &self.inherited[c],
            &self.components[c].complex.edges[le].label,
            &self.region_map[c],
        )
    }

    fn edge_region_marks(&self, e: EdgeId) -> Vec<usize> {
        let (c, le) = self.edge_home(e);
        self.components[c].complex.edges[le]
            .on_boundary_of
            .iter()
            .map(|&r| self.region_map[c][r])
            .collect()
    }

    fn edge_faces(&self, e: EdgeId) -> (FaceId, FaceId) {
        let (c, le) = self.edge_home(e);
        let data = &self.components[c].complex.edges[le];
        (self.face_abroad(c, data.left_face), self.face_abroad(c, data.right_face))
    }

    fn face_label(&self, f: FaceId) -> Label {
        if f.0 == 0 {
            return self.exterior_label.clone();
        }
        let (c, lf) = self.face_home(f);
        widen_label(
            &self.inherited[c],
            &self.components[c].complex.face(lf).label,
            &self.region_map[c],
        )
    }

    fn face_boundary(&self, f: FaceId) -> Vec<EdgeId> {
        let mut out = Vec::new();
        if f.0 != 0 {
            let (c, lf) = self.face_home(f);
            let off = self.edge_start[c];
            out.extend(
                self.components[c].complex.face(lf).boundary_edges.iter().map(|e| EdgeId(e.0 + off)),
            );
        }
        // Components embedded in this face contribute their outer boundary.
        if let Some(children) = self.nested_in_face.get(&f.0) {
            for &d in children {
                let comp = &self.components[d].complex;
                let off = self.edge_start[d];
                out.extend(
                    comp.face(comp.exterior).boundary_edges.iter().map(|e| EdgeId(e.0 + off)),
                );
            }
        }
        out.sort_unstable();
        out
    }

    fn face_is_exterior(&self, f: FaceId) -> bool {
        f.0 == 0
    }

    fn face_sample(&self, f: FaceId) -> Option<Point> {
        if f.0 == 0 {
            return None;
        }
        let (c, lf) = self.face_home(f);
        let p = self.components[c].complex.face(lf).sample_point?;
        // A sample computed locally may now fall inside a component embedded
        // into this face by assembly; drop it then (conservative bbox test,
        // mirroring the copying assembly).
        if let Some(children) = self.nested_in_face.get(&f.0) {
            for &d in children {
                if self.components[d].bbox.as_ref().is_some_and(|b| b.contains_point(&p)) {
                    return None;
                }
            }
        }
        Some(p)
    }

    fn vertex_sign(&self, v: VertexId, region: usize) -> Sign {
        let (c, lv) = self.vertex_home(v);
        self.local_sign(c, &self.components[c].complex.vertices[lv].label, region)
    }

    fn edge_sign(&self, e: EdgeId, region: usize) -> Sign {
        let (c, le) = self.edge_home(e);
        self.local_sign(c, &self.components[c].complex.edges[le].label, region)
    }

    fn face_sign(&self, f: FaceId, region: usize) -> Sign {
        if f.0 == 0 {
            return Sign::Exterior;
        }
        let (c, lf) = self.face_home(f);
        self.local_sign(c, &self.components[c].complex.face(lf).label, region)
    }

    fn skeleton_component_count(&self) -> usize {
        // Skeleton components never span partition components (they share no
        // vertex), so the global count is the sum of the local ones.
        self.components.iter().map(|c| c.complex.skeleton_component_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_component_complexes;
    use spatial_core::fixtures;
    use spatial_core::prelude::*;

    fn view_of(inst: &SpatialInstance) -> GlobalComplexView {
        let names: Vec<String> = inst.names().iter().map(|s| s.to_string()).collect();
        GlobalComplexView::new(names, build_component_complexes(inst, 1))
    }

    #[test]
    fn empty_view_is_single_exterior_face() {
        let v = GlobalComplexView::new(vec![], vec![]);
        assert_eq!(v.vertex_count(), 0);
        assert_eq!(v.edge_count(), 0);
        assert_eq!(v.face_count(), 1);
        assert!(v.face_is_exterior(FaceId(0)));
        assert!(v.euler_formula_holds());
        assert!(v.face_boundary(FaceId(0)).is_empty());
    }

    #[test]
    fn nested_separated_squares_through_the_view() {
        let inst = SpatialInstance::from_regions([
            ("Inner", Region::rect_from_ints(40, 40, 60, 60)),
            ("Outer", Region::rect_from_ints(0, 0, 100, 100)),
        ]);
        let v = view_of(&inst);
        assert_eq!(v.component_count(), 2);
        assert_eq!(v.vertex_count(), 2);
        assert_eq!(v.edge_count(), 2);
        assert_eq!(v.face_count(), 3);
        assert!(v.euler_formula_holds());
        // The annulus face (Outer only) is bounded by both loops.
        let annulus = v
            .face_ids()
            .find(|&f| v.face_label(f) == vec![Sign::Exterior, Sign::Interior])
            .expect("outer-only face exists");
        assert_eq!(v.face_boundary(annulus).len(), 2);
        assert!(v
            .face_ids()
            .any(|f| v.face_label(f) == vec![Sign::Interior, Sign::Interior]));
        // The exterior sees only Outer's boundary.
        assert_eq!(v.face_boundary(v.exterior_face()).len(), 1);
    }

    #[test]
    fn view_matches_copy_assembly_cell_for_cell() {
        let inst = fixtures::nested_three();
        let v = view_of(&inst);
        let flat = v.to_cell_complex();
        assert_eq!(v.vertex_count(), flat.vertex_count());
        assert_eq!(v.edge_count(), flat.edge_count());
        assert_eq!(v.face_count(), flat.face_count());
        for f in v.face_ids() {
            assert_eq!(v.face_label(f), ComplexRead::face_label(&flat, f));
            assert_eq!(v.face_boundary(f), ComplexRead::face_boundary(&flat, f));
        }
        for e in v.edge_ids() {
            assert_eq!(v.edge_faces(e), ComplexRead::edge_faces(&flat, e));
            assert_eq!(v.edge_label(e), ComplexRead::edge_label(&flat, e));
        }
        for vx in v.vertex_ids() {
            assert_eq!(v.vertex_rotation(vx), ComplexRead::vertex_rotation(&flat, vx));
        }
    }

    #[test]
    fn sign_fast_paths_agree_with_labels() {
        let inst = fixtures::nested_three();
        let v = view_of(&inst);
        for r in 0..v.region_names().len() {
            for f in v.face_ids() {
                assert_eq!(v.face_sign(f, r), v.face_label(f)[r]);
            }
            for e in v.edge_ids() {
                assert_eq!(v.edge_sign(e, r), v.edge_label(e)[r]);
            }
            for vx in v.vertex_ids() {
                assert_eq!(v.vertex_sign(vx, r), v.vertex_label(vx)[r]);
            }
        }
    }
}
