//! Splitting of region-boundary segments at their mutual intersections.
//!
//! This is the first phase of the arrangement construction: every input
//! segment is cut at every point where it meets another segment (crossing,
//! touching, or collinear overlap), and geometrically identical pieces coming
//! from different regions are merged into a single edge carrying all region
//! marks (this is how shared boundaries — the Egenhofer `meet`, `covers`,
//! `equal` situations — are represented exactly).
//!
//! Three interchangeable splitters produce the cut points:
//!
//! * [`split_segments`] — the monolithic production path, a Bentley–Ottmann
//!   plane sweep ([`crate::sweep`]) running in `O((n + k) log n)` for `n`
//!   segments with `k` intersections;
//! * [`crate::strip::split_segments_striped`] — the same sweep decomposed
//!   into concurrent x-strips with exact seam reconciliation, used by the
//!   per-component build for large components
//!   ([`crate::strip::split_segments_auto`] routes between the two);
//! * [`split_segments_naive`] — the original all-pairs `O(n^2)` splitter,
//!   kept as a differential-testing oracle: all must produce identical
//!   [`SubSegment`] sets on every input.
//!
//! Both share [`assemble_subsegments`], which orders each segment's cut
//! points, emits the pieces, and merges geometrically coincident pieces from
//! different regions.

use spatial_core::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// A maximal straight piece of region boundary between two arrangement
/// vertices.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SubSegment {
    /// Lexicographically smaller endpoint.
    pub a: Point,
    /// Lexicographically larger endpoint.
    pub b: Point,
    /// Sorted indices of the regions whose boundary contains this piece.
    pub regions: Vec<usize>,
}

/// An input boundary segment tagged with the index of the region it bounds.
#[derive(Clone, Debug)]
pub struct TaggedSegment {
    /// The segment.
    pub segment: Segment,
    /// Index of the region (in region-name order).
    pub region: usize,
}

/// Collect the boundary segments of every region of an instance.
pub fn instance_segments(instance: &SpatialInstance) -> Vec<TaggedSegment> {
    let mut out = Vec::new();
    for (idx, (_, region)) in instance.iter().enumerate() {
        for segment in region.boundary().edges() {
            out.push(TaggedSegment { segment, region: idx });
        }
    }
    out
}

/// The cut-point sets of each input segment, always containing at least the
/// segment's own endpoints.
pub type CutSets = Vec<BTreeSet<Point>>;

/// Fresh cut sets seeded with every segment's own endpoints.
pub fn endpoint_cuts(segments: &[TaggedSegment]) -> CutSets {
    segments
        .iter()
        .map(|ts| {
            let mut s = BTreeSet::new();
            s.insert(ts.segment.a);
            s.insert(ts.segment.b);
            s
        })
        .collect()
}

/// Split all segments at their mutual intersection points and merge
/// coincident pieces. This is the production path: a Bentley–Ottmann plane
/// sweep (see [`crate::sweep`]).
pub fn split_segments(segments: &[TaggedSegment]) -> Vec<SubSegment> {
    crate::sweep::split_segments_sweep(segments)
}

/// The original all-pairs splitter, kept as the differential-testing oracle
/// for the sweep. `O(n^2)` intersection tests, but independent of any
/// ordering argument — its output is the specification the sweep must match.
pub fn split_segments_naive(segments: &[TaggedSegment]) -> Vec<SubSegment> {
    let n = segments.len();
    let mut cuts = endpoint_cuts(segments);
    for i in 0..n {
        for j in (i + 1)..n {
            match segments[i].segment.intersect(&segments[j].segment) {
                SegmentIntersection::None => {}
                SegmentIntersection::Point(p) => {
                    cuts[i].insert(p);
                    cuts[j].insert(p);
                }
                SegmentIntersection::Overlap(ov) => {
                    cuts[i].insert(ov.a);
                    cuts[i].insert(ov.b);
                    cuts[j].insert(ov.a);
                    cuts[j].insert(ov.b);
                }
            }
        }
    }
    assemble_subsegments(segments, &cuts)
}

/// Shared final phase of both splitters: order each segment's cut points
/// along the segment, emit the pieces between consecutive cuts, and merge
/// geometrically identical pieces (keyed by canonical endpoint pair) into a
/// single [`SubSegment`] carrying the union of region marks.
pub fn assemble_subsegments(segments: &[TaggedSegment], cuts: &CutSets) -> Vec<SubSegment> {
    let mut merged: BTreeMap<(Point, Point), BTreeSet<usize>> = BTreeMap::new();
    for (ts, cut_points) in segments.iter().zip(cuts.iter()) {
        // Order the cut points along the segment.
        let mut params: Vec<(Rational, Point)> =
            cut_points.iter().map(|p| (ts.segment.param_of(p), *p)).collect();
        params.sort_by_key(|a| a.0);
        for w in params.windows(2) {
            let (p, q) = (w[0].1, w[1].1);
            if p == q {
                continue;
            }
            let key = if p < q { (p, q) } else { (q, p) };
            merged.entry(key).or_default().insert(ts.region);
        }
    }

    merged
        .into_iter()
        .map(|((a, b), regions)| SubSegment { a, b, regions: regions.into_iter().collect() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::fixtures;
    use spatial_core::point::pt;

    fn count_with_regions(subs: &[SubSegment], k: usize) -> usize {
        subs.iter().filter(|s| s.regions.len() == k).count()
    }

    #[test]
    fn two_crossing_squares() {
        // Fig. 1c: boundaries cross at exactly two points, so A's 4 segments
        // and B's 4 segments are cut into 4 + 2 = 10 pieces total... more
        // precisely: A's right edge is cut twice (3 pieces), B's bottom and
        // top edges are cut once each (2 pieces each).
        let inst = fixtures::fig_1c();
        let segs = instance_segments(&inst);
        assert_eq!(segs.len(), 8);
        let subs = split_segments(&segs);
        // A: 3 uncut edges + right edge in 3 pieces = 6.
        // B: 2 uncut edges + 2 edges in 2 pieces = 6.
        assert_eq!(subs.len(), 12);
        assert!(subs.iter().all(|s| s.regions.len() == 1));
    }

    #[test]
    fn shared_boundary_is_merged() {
        // Two rectangles meeting along a shared edge piece: the common piece
        // must appear once, marked with both regions.
        let inst = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 4, 4)),
            ("B", Region::rect_from_ints(4, 1, 8, 3)),
        ]);
        let subs = split_segments(&instance_segments(&inst));
        let shared: Vec<&SubSegment> = subs.iter().filter(|s| s.regions.len() == 2).collect();
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].a, pt(4, 1));
        assert_eq!(shared[0].b, pt(4, 3));
    }

    #[test]
    fn equal_regions_fully_shared() {
        let inst = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 4, 4)),
            ("B", Region::rect_from_ints(0, 0, 4, 4)),
        ]);
        let subs = split_segments(&instance_segments(&inst));
        assert_eq!(subs.len(), 4);
        assert_eq!(count_with_regions(&subs, 2), 4);
    }

    #[test]
    fn disjoint_regions_are_unaffected() {
        let inst = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 2, 2)),
            ("B", Region::rect_from_ints(5, 5, 7, 7)),
        ]);
        let subs = split_segments(&instance_segments(&inst));
        assert_eq!(subs.len(), 8);
        assert_eq!(count_with_regions(&subs, 1), 8);
    }

    #[test]
    fn petals_touch_at_origin() {
        let inst = fixtures::petals_abcd();
        let subs = split_segments(&instance_segments(&inst));
        // Each petal is a triangle with the origin as one corner; no segment
        // is actually cut (they meet only at a shared endpoint).
        assert_eq!(subs.len(), 12);
        // The origin appears as an endpoint of exactly 8 sub-segments.
        let at_origin =
            subs.iter().filter(|s| s.a == pt(0, 0) || s.b == pt(0, 0)).count();
        assert_eq!(at_origin, 8);
    }

    #[test]
    fn fig_1d_crossings() {
        let inst = fixtures::fig_1d();
        let subs = split_segments(&instance_segments(&inst));
        // All pieces carry exactly one region mark (no shared boundary here).
        assert!(subs.iter().all(|s| s.regions.len() == 1));
        // The U-shape (8 edges) is crossed 8 times, the bar (4 edges) 8 times.
        // 8 + 8 (extra pieces on A) and 4 + 8 on B... just sanity check count.
        assert_eq!(subs.len(), 8 + 8 + 4 + 8);
    }
}
