//! A static spatial index over exact-rational bounding boxes.
//!
//! [`SpatialIndex`] is the shared acceleration structure behind three hot
//! paths of the pipeline:
//!
//! * **Interaction-graph construction** ([`crate::partition`]): the segment
//!   pairs whose boxes overlap are exactly the candidate edges of the
//!   interaction graph, so partitioning asks one
//!   [`SpatialIndex::bbox_neighbors`] probe per segment instead of sweeping
//!   an active list whose width grows with the x-overlap of the instance.
//! * **Cross-component point location** ([`crate::assemble`]): nesting
//!   resolution asks which component boxes contain a representative point
//!   ([`SpatialIndex::locate_point`]) and only runs the exact
//!   point-in-polygon test against those, instead of against every other
//!   component.
//! * **Query planning** (the `query` crate): the candidate bindings of a
//!   name variable constrained by a contact-implying atom against a bound
//!   region are exactly the index-reported bbox neighbors of that region —
//!   the sub-linear candidate generators of the semi-join planner. The
//!   per-region index of an instance is built once per snapshot and cached
//!   in [`GlobalComplexView`](crate::GlobalComplexView) behind a `OnceLock`
//!   ([`crate::GlobalComplexView::region_bbox_index`]).
//!
//! The structure is a bulk-loaded, packed R-tree (Sort-Tile-Recursive): the
//! boxes are sorted by x-center into vertical slices, each slice sorted by
//! y-center and cut into leaves of [`NODE_CAPACITY`] entries, and the upper
//! levels group consecutive nodes until a single root remains. All
//! comparisons are exact (rational arithmetic, no rounding), so probes are
//! *conservatively exact*: a probe reports every item whose closed box
//! interacts with the query and nothing else. Construction is
//! `O(n log n)` rational comparisons; a probe visits `O(log n + answer)`
//! nodes on realistically distributed boxes.
//!
//! The index counts its probes ([`SpatialIndex::probe_count`], shared by all
//! clones) so benchmark harnesses can report planner/partition work even on
//! hosts where wall-clock comparisons are noisy.

use crate::partition::BBox;
use spatial_core::prelude::{Point, Rational};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fan-out of the packed R-tree: leaves hold up to this many entries and
/// internal nodes up to this many children.
pub const NODE_CAPACITY: usize = 8;

/// One node of the packed tree: its covering box plus the half-open range of
/// children (entries for level 0, nodes of the level below otherwise).
#[derive(Clone, Debug)]
struct Node {
    bbox: BBox,
    start: usize,
    end: usize,
}

/// A static (bulk-loaded) spatial index over the bounding boxes of a fixed
/// item set; see the module docs for the role it plays in the pipeline.
///
/// Items are addressed by the index they had in the construction slice;
/// items passed as `None` (no geometry) are never reported. Probe results
/// are returned in ascending item order, so downstream consumers are
/// deterministic in the input regardless of tree shape.
#[derive(Debug)]
pub struct SpatialIndex {
    /// Number of items the index was built over (including `None` slots).
    item_count: usize,
    /// `(item id, box)` pairs in packed (STR) order.
    entries: Vec<(usize, BBox)>,
    /// Tree levels bottom-up: `levels[0]` are leaves over `entries`,
    /// `levels.last()` is the single root level.
    levels: Vec<Vec<Node>>,
    /// Number of probes answered (shared by clones; see
    /// [`SpatialIndex::probe_count`]).
    probes: Arc<AtomicU64>,
}

impl Clone for SpatialIndex {
    fn clone(&self) -> SpatialIndex {
        SpatialIndex {
            item_count: self.item_count,
            entries: self.entries.clone(),
            levels: self.levels.clone(),
            probes: Arc::clone(&self.probes),
        }
    }
}

impl SpatialIndex {
    /// Bulk-load the index over the boxes of an item slice (`None` items are
    /// indexed by position but never reported by probes).
    pub fn build(items: &[Option<BBox>]) -> SpatialIndex {
        let mut entries: Vec<(usize, BBox)> = items
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.as_ref().map(|b| (i, b.clone())))
            .collect();
        let item_count = items.len();
        if entries.is_empty() {
            return SpatialIndex {
                item_count,
                entries,
                levels: Vec::new(),
                probes: Arc::new(AtomicU64::new(0)),
            };
        }

        // STR: sort by x-center, slice vertically, sort each slice by
        // y-center, pack consecutive runs into leaves. Centers are compared
        // via the (exact) coordinate sums; ties fall back to the item id so
        // the packing is deterministic in the input.
        let center_x = |b: &BBox| b.x0 + b.x1;
        let center_y = |b: &BBox| b.y0 + b.y1;
        entries.sort_by(|(ia, a), (ib, b)| {
            center_x(a).cmp(&center_x(b)).then_with(|| ia.cmp(ib))
        });
        let n = entries.len();
        let leaf_count = n.div_ceil(NODE_CAPACITY);
        let slices = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slice = n.div_ceil(slices.max(1));
        for chunk in entries.chunks_mut(per_slice.max(1)) {
            chunk.sort_by(|(ia, a), (ib, b)| {
                center_y(a).cmp(&center_y(b)).then_with(|| ia.cmp(ib))
            });
        }

        let leaves: Vec<Node> = entries
            .chunks(NODE_CAPACITY)
            .enumerate()
            .map(|(k, chunk)| Node {
                bbox: cover(chunk.iter().map(|(_, b)| b)),
                start: k * NODE_CAPACITY,
                end: k * NODE_CAPACITY + chunk.len(),
            })
            .collect();
        let mut levels = vec![leaves];
        while levels.last().expect("at least one level").len() > 1 {
            let below = levels.last().expect("at least one level");
            let parents: Vec<Node> = below
                .chunks(NODE_CAPACITY)
                .enumerate()
                .map(|(k, chunk)| Node {
                    bbox: cover(chunk.iter().map(|nd| &nd.bbox)),
                    start: k * NODE_CAPACITY,
                    end: k * NODE_CAPACITY + chunk.len(),
                })
                .collect();
            levels.push(parents);
        }

        SpatialIndex { item_count, entries, levels, probes: Arc::new(AtomicU64::new(0)) }
    }

    /// Number of items the index was built over (including `None` slots).
    pub fn len(&self) -> usize {
        self.item_count
    }

    /// Is the index empty (no items at all)?
    pub fn is_empty(&self) -> bool {
        self.item_count == 0
    }

    /// Number of items that actually carry a box.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// How many probes ([`SpatialIndex::bbox_neighbors`] +
    /// [`SpatialIndex::locate_point`]) this index has answered. The counter
    /// is shared by all clones, so a cached index reports its lifetime
    /// total — the planner-work metric recorded by the bench snapshot.
    pub fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// The items whose closed box shares at least one point with `query`
    /// (touching counts, exactly as
    /// [`BBox::intersects`]), in ascending item order.
    pub fn bbox_neighbors(&self, query: &BBox) -> Vec<usize> {
        self.probe(|b| b.intersects(query))
    }

    /// The items whose closed box contains the point, in ascending item
    /// order — the box-level point-location probe (callers still run their
    /// exact geometric test against the reported candidates).
    pub fn locate_point(&self, p: &Point) -> Vec<usize> {
        self.probe(|b| b.contains_point(p))
    }

    fn probe<F: Fn(&BBox) -> bool>(&self, hit: F) -> Vec<usize> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::new();
        let Some(root_level) = self.levels.len().checked_sub(1) else {
            return out;
        };
        // (level, node index) descent; level 0 scans entry ranges.
        let mut stack: Vec<(usize, usize)> = vec![(root_level, 0)];
        while let Some((level, idx)) = stack.pop() {
            let node = &self.levels[level][idx];
            if !hit(&node.bbox) {
                continue;
            }
            if level == 0 {
                for (id, b) in &self.entries[node.start..node.end] {
                    if hit(b) {
                        out.push(*id);
                    }
                }
            } else {
                for child in node.start..node.end {
                    stack.push((level - 1, child));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// The smallest box covering a nonempty box iterator.
fn cover<'a, I: Iterator<Item = &'a BBox>>(mut boxes: I) -> BBox {
    let first = boxes.next().expect("cover of a nonempty chunk").clone();
    boxes.fold(first, |acc, b| acc.union(b))
}

/// A degenerate box covering exactly one point (used by point-keyed index
/// consumers; exact, since coordinates are rational).
pub fn point_bbox(p: &Point) -> BBox {
    BBox { x0: p.x, y0: p.y, x1: p.x, y1: p.y }
}

/// Convenience: the box `[x0, x1] × [y0, y1]` from integer coordinates.
pub fn bbox_from_ints(x0: i64, y0: i64, x1: i64, y1: i64) -> BBox {
    BBox {
        x0: Rational::from_int(x0),
        y0: Rational::from_int(y0),
        x1: Rational::from_int(x1),
        y1: Rational::from_int(y1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes(specs: &[(i64, i64, i64, i64)]) -> Vec<Option<BBox>> {
        specs.iter().map(|&(a, b, c, d)| Some(bbox_from_ints(a, b, c, d))).collect()
    }

    /// Brute-force oracle for the neighbor probe.
    fn naive_neighbors(items: &[Option<BBox>], q: &BBox) -> Vec<usize> {
        items
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.as_ref().filter(|b| b.intersects(q)).map(|_| i))
            .collect()
    }

    #[test]
    fn empty_index_reports_nothing() {
        let idx = SpatialIndex::build(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.entry_count(), 0);
        assert!(idx.bbox_neighbors(&bbox_from_ints(0, 0, 10, 10)).is_empty());
        assert!(idx.locate_point(&Point::new(Rational::from_int(1), Rational::from_int(1))).is_empty());
        let none_only = SpatialIndex::build(&[None, None]);
        assert_eq!(none_only.len(), 2);
        assert_eq!(none_only.entry_count(), 0);
        assert!(none_only.bbox_neighbors(&bbox_from_ints(0, 0, 1, 1)).is_empty());
    }

    #[test]
    fn neighbors_match_brute_force_on_a_grid() {
        // 10x10 grid of 4x4 boxes on a pitch of 3: every box overlaps its
        // neighbors; query boxes of several shapes must match brute force.
        let mut items = Vec::new();
        for r in 0..10i64 {
            for c in 0..10i64 {
                items.push(Some(bbox_from_ints(3 * c, 3 * r, 3 * c + 4, 3 * r + 4)));
            }
        }
        let idx = SpatialIndex::build(&items);
        for q in [
            bbox_from_ints(0, 0, 2, 2),
            bbox_from_ints(10, 10, 14, 11),
            bbox_from_ints(-5, -5, -1, -1),
            bbox_from_ints(0, 0, 40, 40),
            bbox_from_ints(17, 0, 17, 40),
        ] {
            assert_eq!(idx.bbox_neighbors(&q), naive_neighbors(&items, &q), "query {q:?}");
        }
    }

    #[test]
    fn touching_boxes_count_as_neighbors() {
        let items = boxes(&[(0, 0, 4, 4), (4, 4, 8, 8), (9, 0, 12, 3)]);
        let idx = SpatialIndex::build(&items);
        assert_eq!(idx.bbox_neighbors(&bbox_from_ints(4, 4, 4, 4)), vec![0, 1]);
        assert_eq!(idx.bbox_neighbors(&bbox_from_ints(0, 0, 20, 20)), vec![0, 1, 2]);
    }

    #[test]
    fn point_location_reports_containing_boxes() {
        let items = boxes(&[(0, 0, 10, 10), (2, 2, 5, 5), (20, 20, 30, 30)]);
        let idx = SpatialIndex::build(&items);
        let p = |x, y| Point::new(Rational::from_int(x), Rational::from_int(y));
        assert_eq!(idx.locate_point(&p(3, 3)), vec![0, 1]);
        assert_eq!(idx.locate_point(&p(8, 8)), vec![0]);
        assert_eq!(idx.locate_point(&p(25, 25)), vec![2]);
        assert_eq!(idx.locate_point(&p(15, 15)), Vec::<usize>::new());
        // Closed boxes: the shared corner belongs to both.
        assert_eq!(idx.locate_point(&p(10, 10)), vec![0]);
    }

    #[test]
    fn none_items_are_skipped_but_keep_ids_stable() {
        let items = vec![
            Some(bbox_from_ints(0, 0, 2, 2)),
            None,
            Some(bbox_from_ints(1, 1, 3, 3)),
        ];
        let idx = SpatialIndex::build(&items);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.entry_count(), 2);
        assert_eq!(idx.bbox_neighbors(&bbox_from_ints(1, 1, 1, 1)), vec![0, 2]);
    }

    #[test]
    fn probe_counter_is_shared_by_clones() {
        let idx = SpatialIndex::build(&boxes(&[(0, 0, 1, 1)]));
        assert_eq!(idx.probe_count(), 0);
        let other = idx.clone();
        idx.bbox_neighbors(&bbox_from_ints(0, 0, 1, 1));
        other.locate_point(&Point::new(Rational::from_int(0), Rational::from_int(0)));
        assert_eq!(idx.probe_count(), 2);
        assert_eq!(other.probe_count(), 2);
    }

    #[test]
    fn large_random_set_matches_brute_force() {
        // Deterministic pseudo-random boxes via a tiny LCG (no rand dep in
        // this crate).
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        let items: Vec<Option<BBox>> = (0..300)
            .map(|_| {
                let x = next() % 200;
                let y = next() % 200;
                let w = 1 + next().rem_euclid(30);
                let h = 1 + next().rem_euclid(30);
                Some(bbox_from_ints(x, y, x + w, y + h))
            })
            .collect();
        let idx = SpatialIndex::build(&items);
        for probe in 0..40 {
            let x = (probe * 13) % 220 - 10;
            let y = (probe * 29) % 220 - 10;
            let q = bbox_from_ints(x, y, x + 25, y + 25);
            assert_eq!(idx.bbox_neighbors(&q), naive_neighbors(&items, &q), "probe {probe}");
        }
    }
}
