//! Partitioning of a spatial instance into independently buildable
//! interaction components.
//!
//! Two boundary segments *interact* when their axis-aligned bounding boxes
//! overlap — a cheap, conservative over-approximation of geometric
//! intersection (any two segments that actually meet have overlapping boxes).
//! The connected components of this interaction graph (segments of one region
//! are additionally linked to each other, since a region boundary is one
//! closed curve) partition the region set into groups that provably share no
//! vertex or edge of the arrangement: each group's sub-complex can be built
//! by an independent plane sweep and the results stitched together by
//! [`crate::assemble`].
//!
//! Components may still be *nested* (one group's geometry strictly inside a
//! face of another's, with no bounding-box contact between any pair of
//! segments); the assembly step resolves that containment. What partitioning
//! guarantees is the absence of 0-/1-cell interaction, which is all the
//! per-component sweep needs.

use crate::index::SpatialIndex;
use crate::split::TaggedSegment;
use spatial_core::prelude::*;

/// A closed axis-aligned bounding box in exact rational coordinates.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BBox {
    /// Smallest x coordinate.
    pub x0: Rational,
    /// Smallest y coordinate.
    pub y0: Rational,
    /// Largest x coordinate.
    pub x1: Rational,
    /// Largest y coordinate.
    pub y1: Rational,
}

impl BBox {
    /// The bounding box of a segment.
    pub fn of_segment(s: &Segment) -> BBox {
        BBox {
            x0: s.a.x.min(s.b.x),
            y0: s.a.y.min(s.b.y),
            x1: s.a.x.max(s.b.x),
            y1: s.a.y.max(s.b.y),
        }
    }

    /// The bounding box of a region (of its boundary polygon).
    pub fn of_region(region: &Region) -> BBox {
        let (x0, y0, x1, y1) = region.bounding_box();
        BBox { x0, y0, x1, y1 }
    }

    /// The bounding box of a point set (`None` when empty).
    pub fn of_points(points: &[Point]) -> Option<BBox> {
        let (first, rest) = points.split_first()?;
        let mut out = BBox { x0: first.x, y0: first.y, x1: first.x, y1: first.y };
        for p in rest {
            out.x0 = out.x0.min(p.x);
            out.y0 = out.y0.min(p.y);
            out.x1 = out.x1.max(p.x);
            out.y1 = out.y1.max(p.y);
        }
        Some(out)
    }

    /// Do two closed boxes share at least one point? (Touching counts:
    /// segments meeting only at an endpoint must still interact.)
    pub fn intersects(&self, other: &BBox) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// Does the closed box contain a point?
    pub fn contains_point(&self, p: &Point) -> bool {
        self.x0 <= p.x && p.x <= self.x1 && self.y0 <= p.y && p.y <= self.y1
    }

    /// Does the closed box contain the whole of `other` (non-strictly —
    /// shared edges count)? Containment of boxes is what bbox *nesting*
    /// means: `a.contains_box(b)` is a necessary condition for region `b`
    /// to be inside (or covered by, or equal to) region `a`, since a
    /// region's closure is bounded by its boundary's box.
    pub fn contains_box(&self, other: &BBox) -> bool {
        self.x0 <= other.x0 && self.y0 <= other.y0 && other.x1 <= self.x1 && other.y1 <= self.y1
    }

    /// The smallest box containing both operands.
    pub fn union(&self, other: &BBox) -> BBox {
        BBox {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }
}

/// One connected component of the segment interaction graph, reported at
/// region granularity (every segment of a region lands in the same component,
/// so components partition the region set).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ComponentGroup {
    /// Sorted indices (in instance name order) of the member regions.
    pub region_indices: Vec<usize>,
    /// Union of the member segments' bounding boxes.
    pub bbox: BBox,
}

/// Union-find with path halving and union by size.
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), size: vec![1; n] }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

/// Partition the boundary segments of an instance into interaction
/// components, reported as disjoint region groups sorted by smallest member
/// index (so the output order is deterministic in the instance).
///
/// Cost: `O(s log s + s·w)` for `s` segments, where `w` is the number of
/// simultaneously x-overlapping segment boxes — effectively the sweep-width
/// of the instance, far below `s` on realistic multi-cluster maps.
pub fn partition_instance(instance: &SpatialInstance) -> Vec<ComponentGroup> {
    let mut segments: Vec<TaggedSegment> = Vec::new();
    for (idx, (_, region)) in instance.iter().enumerate() {
        for segment in region.boundary().edges() {
            segments.push(TaggedSegment { segment, region: idx });
        }
    }
    partition_segments(&segments, instance.len())
}

/// Partition tagged segments into interaction components over `n_regions`
/// regions. See [`partition_instance`].
///
/// The interaction graph is discovered through a bulk-loaded
/// [`SpatialIndex`] over the segment boxes: one box-overlap probe per
/// segment reports exactly its interacting partners, `O(s (log s + d))` for
/// `s` segments of maximum interaction degree `d`. The pre-index x-interval
/// sweep is retained as [`partition_segments_sweep`], the differential
/// oracle of this path.
pub fn partition_segments(segments: &[TaggedSegment], n_regions: usize) -> Vec<ComponentGroup> {
    let boxes: Vec<BBox> = segments.iter().map(|t| BBox::of_segment(&t.segment)).collect();
    let mut uf = union_regions(segments, n_regions);

    let indexed: Vec<Option<BBox>> = boxes.iter().cloned().map(Some).collect();
    let index = SpatialIndex::build(&indexed);
    for (i, b) in boxes.iter().enumerate() {
        for j in index.bbox_neighbors(b) {
            if j < i {
                uf.union(i, j);
            }
        }
    }

    collapse_groups(uf, segments, &boxes)
}

/// The pre-index interaction-graph construction: an x-interval sweep whose
/// active list holds every x-overlapping box. Retained as the differential
/// oracle of [`partition_segments`] — both must produce identical groups on
/// every input. Cost `O(s log s + s·w)` where `w` is the sweep width.
pub fn partition_segments_sweep(
    segments: &[TaggedSegment],
    n_regions: usize,
) -> Vec<ComponentGroup> {
    let s = segments.len();
    let boxes: Vec<BBox> = segments.iter().map(|t| BBox::of_segment(&t.segment)).collect();
    let mut uf = union_regions(segments, n_regions);

    // Interval sweep over x: segments whose x-ranges overlap are candidates;
    // union those whose y-ranges overlap too.
    let mut order: Vec<usize> = (0..s).collect();
    order.sort_by(|&a, &b| boxes[a].x0.cmp(&boxes[b].x0).then_with(|| a.cmp(&b)));
    let mut active: Vec<usize> = Vec::new();
    for &i in &order {
        active.retain(|&j| boxes[j].x1 >= boxes[i].x0);
        for &j in &active {
            if boxes[i].y0 <= boxes[j].y1 && boxes[j].y0 <= boxes[i].y1 {
                uf.union(i, j);
            }
        }
        active.push(i);
    }

    collapse_groups(uf, segments, &boxes)
}

/// All segments of one region are connected (a region boundary is a single
/// closed curve): link them through the first segment seen per region.
fn union_regions(segments: &[TaggedSegment], n_regions: usize) -> UnionFind {
    let mut uf = UnionFind::new(segments.len());
    let mut first_of_region: Vec<Option<usize>> = vec![None; n_regions];
    for (i, t) in segments.iter().enumerate() {
        match first_of_region[t.region] {
            None => first_of_region[t.region] = Some(i),
            Some(f) => uf.union(f, i),
        }
    }
    uf
}

/// Collapse a fully unioned segment forest to region groups keyed by the
/// component root.
fn collapse_groups(
    mut uf: UnionFind,
    segments: &[TaggedSegment],
    boxes: &[BBox],
) -> Vec<ComponentGroup> {
    let s = segments.len();
    let mut groups: Vec<(Vec<usize>, Option<BBox>)> = Vec::new();
    let mut group_of_root: std::collections::BTreeMap<usize, usize> =
        std::collections::BTreeMap::new();
    for i in 0..s {
        let root = uf.find(i);
        let g = *group_of_root.entry(root).or_insert_with(|| {
            groups.push((Vec::new(), None));
            groups.len() - 1
        });
        let (regions, bbox) = &mut groups[g];
        if !regions.contains(&segments[i].region) {
            regions.push(segments[i].region);
        }
        *bbox = Some(match bbox.take() {
            None => boxes[i].clone(),
            Some(b) => b.union(&boxes[i]),
        });
    }

    let mut out: Vec<ComponentGroup> = groups
        .into_iter()
        .map(|(mut regions, bbox)| {
            regions.sort_unstable();
            ComponentGroup {
                region_indices: regions,
                bbox: bbox.expect("every group has at least one segment"),
            }
        })
        .collect();
    out.sort_by_key(|g| g.region_indices[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::fixtures;

    #[test]
    fn disjoint_clusters_split() {
        let inst = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 2, 2)),
            ("B", Region::rect_from_ints(1, 1, 3, 3)),
            ("C", Region::rect_from_ints(50, 50, 52, 52)),
        ]);
        let groups = partition_instance(&inst);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].region_indices, vec![0, 1]);
        assert_eq!(groups[1].region_indices, vec![2]);
    }

    #[test]
    fn overlapping_fixture_is_one_group() {
        let groups = partition_instance(&fixtures::fig_1c());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].region_indices, vec![0, 1]);
    }

    #[test]
    fn strictly_nested_rectangles_are_separate_groups() {
        // Inner square deep inside the outer one: no segment boxes touch, so
        // partitioning keeps them apart; assembly resolves the nesting.
        let inst = SpatialInstance::from_regions([
            ("Inner", Region::rect_from_ints(40, 40, 60, 60)),
            ("Outer", Region::rect_from_ints(0, 0, 100, 100)),
        ]);
        let groups = partition_instance(&inst);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn touching_regions_share_a_group() {
        let inst = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 4, 4)),
            ("B", Region::rect_from_ints(4, 1, 8, 3)),
        ]);
        assert_eq!(partition_instance(&inst).len(), 1);
    }

    #[test]
    fn empty_instance_has_no_groups() {
        assert!(partition_instance(&SpatialInstance::new()).is_empty());
    }

    #[test]
    fn index_partition_matches_sweep_oracle() {
        // The indexed interaction-graph construction and the retained
        // x-interval sweep must produce identical groups.
        let mut instances = vec![
            SpatialInstance::new(),
            fixtures::fig_1c(),
            SpatialInstance::from_regions([
                ("A", Region::rect_from_ints(0, 0, 2, 2)),
                ("B", Region::rect_from_ints(1, 1, 3, 3)),
                ("C", Region::rect_from_ints(50, 50, 52, 52)),
                ("D", Region::rect_from_ints(51, 40, 53, 51)),
            ]),
        ];
        // A grid of touching squares: many segment-box contacts, one group.
        let mut grid = SpatialInstance::new();
        for r in 0..6i64 {
            for c in 0..6i64 {
                grid.insert(
                    format!("G{r}{c}"),
                    Region::rect_from_ints(4 * c, 4 * r, 4 * c + 4, 4 * r + 4),
                );
            }
        }
        instances.push(grid);
        for (k, inst) in instances.iter().enumerate() {
            let mut segments: Vec<TaggedSegment> = Vec::new();
            for (idx, (_, region)) in inst.iter().enumerate() {
                for segment in region.boundary().edges() {
                    segments.push(TaggedSegment { segment, region: idx });
                }
            }
            assert_eq!(
                partition_segments(&segments, inst.len()),
                partition_segments_sweep(&segments, inst.len()),
                "instance {k}"
            );
        }
    }

    #[test]
    fn bbox_predicates() {
        let a = BBox::of_segment(&seg(0, 0, 4, 2));
        let b = BBox::of_segment(&seg(4, 2, 6, 0));
        let c = BBox::of_segment(&seg(10, 10, 12, 12));
        assert!(a.intersects(&b), "touching at a corner counts");
        assert!(!a.intersects(&c));
        assert!(a.contains_point(&pt(2, 1)));
        assert!(!a.contains_point(&pt(5, 1)));
        let u = a.union(&c);
        assert!(u.contains_point(&pt(7, 7)));
    }
}
