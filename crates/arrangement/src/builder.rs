//! Construction of the [`CellComplex`](crate::CellComplex) of a spatial
//! instance.
//!
//! This is the polygonal counterpart of the Kozen–Yap cell-decomposition
//! algorithm the paper relies on for semi-algebraic inputs (see `DESIGN.md`).
//! [`build_complex`] is a thin compose of three phases:
//!
//! 1. [`crate::partition`] groups the regions into interaction components
//!    (connected components of the segment bounding-box overlap graph);
//! 2. each component is built independently by the local pipeline in this
//!    module ([`build_local`] via
//!    [`crate::assemble::build_group_component`]): its segments are split at
//!    their mutual intersections by the Bentley–Ottmann plane sweep of
//!    [`crate::sweep`] — decomposed into concurrent x-strips for large
//!    components, monolithic for small ones
//!    ([`crate::strip::split_segments_auto`]) — merged into maximal 1-cells,
//!    the faces extracted from the combinatorial embedding, same-component
//!    disconnected skeletons nested into the faces that contain them, and
//!    every cell labeled by exact combinatorial propagation from the
//!    unbounded face;
//! 3. [`crate::assemble`] stitches the component complexes into the global
//!    complex (cross-component nesting, exterior-face unification, label
//!    widening).
//!
//! [`build_complex_monolithic`] preserves the pre-partitioning single-sweep
//! construction as a differential-testing oracle: both paths must produce
//! isomorphic complexes on every input.

use crate::assemble::{assemble_components, BoundedCycle, ComponentComplex};
use crate::complex::CellComplex;
use crate::geometry::{closed_polyline_area_doubled, interior_point_of_simple_cycle, point_in_closed_polyline};
use crate::parallel::{configured_threads, map_indexed};
use crate::partition::partition_instance;
use crate::split::{instance_segments, split_segments, SubSegment};
use crate::types::*;
use crate::view::GlobalComplexView;
use spatial_core::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Build the maximal labeled cell complex of a spatial instance by the
/// partition → parallel per-component sweep → assemble pipeline.
///
/// Independent components are swept concurrently (thread count from
/// `ARRANGEMENT_THREADS`, default = available parallelism; see
/// [`crate::parallel`]); the output is identical for every thread count.
/// The complex of the empty instance consists of the single unbounded face.
pub fn build_complex(instance: &SpatialInstance) -> CellComplex {
    let region_names: Vec<String> = instance.names().iter().map(|s| s.to_string()).collect();
    let components = build_component_complexes(instance, configured_threads());
    assemble_components(region_names, &components)
}

/// Build the zero-copy [`GlobalComplexView`] of a spatial instance by the
/// same partition → parallel per-component sweep pipeline as
/// [`build_complex`], assembling by view instead of by copy.
pub fn build_complex_view(instance: &SpatialInstance) -> GlobalComplexView {
    let region_names: Vec<String> = instance.names().iter().map(|s| s.to_string()).collect();
    let components = build_component_complexes(instance, configured_threads());
    GlobalComplexView::new(region_names, components)
}

/// Partition an instance and sweep every interaction component, using up to
/// `threads` worker threads ([`crate::parallel::map_indexed`]). Components
/// are returned in partition order regardless of the thread count, so both
/// assembly paths produce identical output for every `threads` value.
///
/// Each component build receives an even share of the thread budget for its
/// own x-strip decomposition ([`crate::strip::strip_budget`]): a lone big
/// component strips on all `threads`, while a many-component map leaves the
/// parallelism at the component level instead of multiplying the two.
pub fn build_component_complexes(
    instance: &SpatialInstance,
    threads: usize,
) -> Vec<Arc<ComponentComplex>> {
    build_component_complexes_phased(instance, threads, crate::parallel::phase_parallel_enabled())
}

/// Like [`build_component_complexes`], with the phase-parallel toggle as an
/// explicit argument instead of the `ARRANGEMENT_PHASE_PARALLEL` environment
/// default: `phase_parallel = false` forces every post-split phase (chain
/// merging, face walks, label propagation, cell assembly) onto the serial
/// path, `true` runs them on the worker pool under the component build's
/// thread share ([`crate::strip::strip_budget`]). The output is identical
/// either way; the explicit knob exists so benchmarks and differential tests
/// can compare the two paths without mutating process environment.
pub fn build_component_complexes_phased(
    instance: &SpatialInstance,
    threads: usize,
    phase_parallel: bool,
) -> Vec<Arc<ComponentComplex>> {
    let groups = partition_instance(instance);
    let strip_budget = crate::strip::strip_budget(groups.len(), threads);
    map_indexed(groups.len(), threads, |i| {
        Arc::new(crate::assemble::build_group_component_phased(
            instance,
            &groups[i],
            strip_budget,
            phase_parallel,
        ))
    })
}

/// Like [`build_complex`], with an explicit thread count and phase-parallel
/// toggle (see [`build_component_complexes_phased`]). Used by benchmarks to
/// A/B the strips-only pipeline against strips + parallel post-split phases.
pub fn build_complex_phased(
    instance: &SpatialInstance,
    threads: usize,
    phase_parallel: bool,
) -> CellComplex {
    let region_names: Vec<String> = instance.names().iter().map(|s| s.to_string()).collect();
    let components = build_component_complexes_phased(instance, threads, phase_parallel);
    assemble_components(region_names, &components)
}

/// The pre-partitioning construction: one plane sweep over the whole
/// instance, faces and nesting resolved globally. Kept as the differential
/// oracle for the partitioned pipeline (and exercised by the `arrangement`
/// test suite); the two must agree up to cell re-indexing on every input.
pub fn build_complex_monolithic(instance: &SpatialInstance) -> CellComplex {
    let region_names: Vec<String> = instance.names().iter().map(|s| s.to_string()).collect();
    let subs = split_segments(&instance_segments(instance));
    build_local(region_names, &subs).0
}

/// The local construction pipeline shared by the per-component and the
/// monolithic paths: build the cell complex of a set of already split
/// sub-segments, returning the complex together with the outer cycles of its
/// bounded faces (the data the assembly step needs for cross-component
/// nesting tests).
pub(crate) fn build_local(
    region_names: Vec<String>,
    subs: &[SubSegment],
) -> (CellComplex, Vec<BoundedCycle>) {
    build_local_phased(region_names, subs, 1)
}

/// [`build_local`] with an explicit thread budget for the post-split phases:
/// `phase_threads <= 1` runs the original serial pipeline, larger values run
/// chain merging, face walks, label propagation and cell assembly on the
/// worker pool. The two paths are output-identical (byte-for-byte, pinned by
/// `tests/phase_parallel_differential.rs` and the unit tests below); both
/// bump the per-phase work counters of [`crate::counters`].
pub(crate) fn build_local_phased(
    region_names: Vec<String>,
    subs: &[SubSegment],
    phase_threads: usize,
) -> (CellComplex, Vec<BoundedCycle>) {
    let n_regions = region_names.len();

    if subs.is_empty() {
        // No geometry at all: a single exterior face.
        let complex = CellComplex {
            region_names,
            vertices: vec![],
            edges: vec![],
            faces: vec![FaceData {
                is_exterior: true,
                boundary_edges: vec![],
                label: vec![Sign::Exterior; n_regions],
                sample_point: None,
            }],
            exterior: FaceId(0),
        };
        return (complex, vec![]);
    }

    // ---- Raw graph ----------------------------------------------------
    let raw = RawGraph::new(subs);

    // ---- Merge chains into maximal 1-cells ------------------------------
    let merged = if phase_threads > 1 {
        merge_chains_parallel(&raw, phase_threads)
    } else {
        merge_chains(&raw)
    };
    crate::counters::add_chains_merged(merged.edges.len() as u64);

    // ---- Rotation system -------------------------------------------------
    let rotations = compute_rotations(&merged);

    // ---- Face walks -------------------------------------------------------
    let walks = if phase_threads > 1 {
        face_walks_parallel(&merged, &rotations, phase_threads)
    } else {
        face_walks(&merged, &rotations)
    };
    crate::counters::add_cells_walked(walks.len() as u64);

    // ---- Components and embedding forest ---------------------------------
    let mut assembled = assemble_faces(&merged, &walks);

    // ---- Labels -----------------------------------------------------------
    let cycles = std::mem::take(&mut assembled.bounded_cycles);
    (finish_complex(region_names, merged, rotations, assembled, phase_threads), cycles)
}

/// The raw planar graph before chain merging: one vertex per split point, one
/// edge per sub-segment.
struct RawGraph {
    points: Vec<Point>,
    /// Edges as (vertex, vertex, region set).
    edges: Vec<(usize, usize, Vec<usize>)>,
    /// Incident raw edges per vertex.
    incident: Vec<Vec<usize>>,
}

impl RawGraph {
    fn new(subs: &[SubSegment]) -> Self {
        let mut index: BTreeMap<Point, usize> = BTreeMap::new();
        let mut points = Vec::new();
        let mut id_of = |p: Point, points: &mut Vec<Point>| -> usize {
            *index.entry(p).or_insert_with(|| {
                points.push(p);
                points.len() - 1
            })
        };
        let mut edges = Vec::with_capacity(subs.len());
        for s in subs {
            let u = id_of(s.a, &mut points);
            let v = id_of(s.b, &mut points);
            edges.push((u, v, s.regions.clone()));
        }
        let mut incident = vec![Vec::new(); points.len()];
        for (i, (u, v, _)) in edges.iter().enumerate() {
            incident[*u].push(i);
            incident[*v].push(i);
        }
        RawGraph { points, edges, incident }
    }

    /// A vertex is an *anchor* (a forced 0-cell of the maximal complex) if it
    /// is not a plain degree-2 pass-through point of a single boundary curve
    /// bundle.
    fn is_anchor(&self, v: usize) -> bool {
        let inc = &self.incident[v];
        if inc.len() != 2 {
            return true;
        }
        let (e1, e2) = (inc[0], inc[1]);
        self.edges[e1].2 != self.edges[e2].2
    }
}

/// The merged graph: maximal 1-cells with polyline geometry.
struct MergedGraph {
    /// Positions of the surviving vertices.
    vertex_points: Vec<Point>,
    /// Edges: tail vertex, head vertex, polyline (tail..head), region set.
    edges: Vec<(usize, usize, Vec<Point>, Vec<usize>)>,
    region_count: usize,
}

/// Anchor flags of every raw vertex: the forced 0-cells
/// ([`RawGraph::is_anchor`]) plus one canonical anchor (the vertex with the
/// lexicographically smallest point) per pure boundary cycle, so that every
/// maximal 1-cell has endpoints. The per-vertex anchor test is
/// embarrassingly parallel and runs chunked on the worker pool for
/// `threads > 1`; the pure-cycle pass is a cheap serial scan touching each
/// unanchored vertex once.
fn chain_anchors(raw: &RawGraph, threads: usize) -> Vec<bool> {
    let n = raw.points.len();
    let mut anchor: Vec<bool> = if threads > 1 && n > 1 {
        let chunk = n.div_ceil(threads).max(1);
        let chunks = n.div_ceil(chunk);
        map_indexed(chunks, threads, |c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(n);
            (lo..hi).map(|v| raw.is_anchor(v)).collect::<Vec<bool>>()
        })
        .into_iter()
        .flatten()
        .collect()
    } else {
        (0..n).map(|v| raw.is_anchor(v)).collect()
    };

    // Boundary cycles with no anchor at all keep one canonical anchor (the
    // lexicographically smallest point of the cycle) so that every 1-cell has
    // endpoints. Find such cycles by scanning unanchored vertices.
    let mut visited = vec![false; n];
    for start in 0..n {
        if anchor[start] || visited[start] {
            continue;
        }
        // Walk the chain through degree-2 vertices in both directions; if we
        // come back to `start` without meeting an anchor, this is a pure
        // cycle.
        let mut cycle = vec![start];
        visited[start] = true;
        let mut prev_edge = raw.incident[start][0];
        let mut cur = other_endpoint(raw, prev_edge, start);
        let mut is_pure_cycle = false;
        loop {
            if cur == start {
                is_pure_cycle = true;
                break;
            }
            if anchor[cur] {
                break;
            }
            visited[cur] = true;
            cycle.push(cur);
            let inc = &raw.incident[cur];
            let next_edge = if inc[0] == prev_edge { inc[1] } else { inc[0] };
            prev_edge = next_edge;
            cur = other_endpoint(raw, next_edge, cur);
        }
        if is_pure_cycle {
            let best = cycle
                .iter()
                .copied()
                .min_by(|&a, &b| raw.points[a].cmp(&raw.points[b]))
                .expect("cycle is nonempty");
            anchor[best] = true;
        }
    }
    anchor
}

fn merge_chains(raw: &RawGraph) -> MergedGraph {
    let n = raw.points.len();
    let anchor = chain_anchors(raw, 1);

    // Re-index anchors.
    let mut new_id = vec![usize::MAX; n];
    let mut vertex_points = Vec::new();
    for v in 0..n {
        if anchor[v] {
            new_id[v] = vertex_points.len();
            vertex_points.push(raw.points[v]);
        }
    }

    // Walk chains from anchors.
    let mut edge_used = vec![false; raw.edges.len()];
    let mut edges: Vec<(usize, usize, Vec<Point>, Vec<usize>)> = Vec::new();
    let region_count = raw
        .edges
        .iter()
        .flat_map(|(_, _, rs)| rs.iter().copied())
        .max()
        .map_or(0, |m| m + 1);

    for v in 0..n {
        if !anchor[v] {
            continue;
        }
        for &e0 in &raw.incident[v] {
            if edge_used[e0] {
                continue;
            }
            // Walk from v along e0 through non-anchor vertices.
            let mut polyline = vec![raw.points[v]];
            let regions = raw.edges[e0].2.clone();
            let mut prev_edge = e0;
            edge_used[e0] = true;
            let mut cur = other_endpoint(raw, e0, v);
            while !anchor[cur] {
                polyline.push(raw.points[cur]);
                let inc = &raw.incident[cur];
                let next_edge = if inc[0] == prev_edge { inc[1] } else { inc[0] };
                debug_assert_eq!(
                    raw.edges[next_edge].2, regions,
                    "chain continues through a label change"
                );
                edge_used[next_edge] = true;
                prev_edge = next_edge;
                cur = other_endpoint(raw, prev_edge, cur);
            }
            polyline.push(raw.points[cur]);
            edges.push((new_id[v], new_id[cur], polyline, regions));
        }
    }
    debug_assert!(edge_used.iter().all(|&u| u), "all raw edges must be consumed");

    MergedGraph { vertex_points, edges, region_count }
}

fn other_endpoint(raw: &RawGraph, edge: usize, v: usize) -> usize {
    let (a, b, _) = &raw.edges[edge];
    if *a == v {
        *b
    } else {
        *a
    }
}

/// Walk the maximal chain leaving anchor `v` along the raw edge at position
/// `pos` of its incidence list, through non-anchor pass-through vertices,
/// until the next anchor. Returns the raw end vertex, the position of the
/// arrival edge in the end vertex's incidence list (so the caller can
/// identify the chain's far end dart), the polyline and the region set.
/// Unlike the serial walk in [`merge_chains`] this does not mark edges — it
/// is safe to call concurrently from many workers.
fn walk_chain(
    raw: &RawGraph,
    anchor: &[bool],
    v: usize,
    pos: usize,
) -> (usize, usize, Vec<Point>, Vec<usize>) {
    let e0 = raw.incident[v][pos];
    let mut polyline = vec![raw.points[v]];
    let regions = raw.edges[e0].2.clone();
    let mut prev_edge = e0;
    let mut cur = other_endpoint(raw, e0, v);
    while !anchor[cur] {
        polyline.push(raw.points[cur]);
        let inc = &raw.incident[cur];
        let next_edge = if inc[0] == prev_edge { inc[1] } else { inc[0] };
        debug_assert_eq!(
            raw.edges[next_edge].2, regions,
            "chain continues through a label change"
        );
        prev_edge = next_edge;
        cur = other_endpoint(raw, prev_edge, cur);
    }
    polyline.push(raw.points[cur]);
    let arrival = raw
        .incident[cur]
        .iter()
        .position(|&e| e == prev_edge)
        .expect("arrival edge is incident to the end vertex");
    (cur, arrival, polyline, regions)
}

/// The parallel counterpart of [`merge_chains`], output-identical by
/// construction. The serial walk loop deduplicates chains with a shared
/// `edge_used` bitmap, which is inherently sequential; here every worker
/// instead walks the chains starting at its share of the anchor darts and
/// emits a chain only from its *canonical* end — the lexicographically
/// smaller of its two end darts in (vertex, incidence-position) order.
/// That is exactly the dart the serial pass first reaches each chain from,
/// so concatenating the per-chunk results (chunks cover the dart sequence
/// in order) reproduces the serial edge order without any cross-thread
/// coordination. The price is that a chain may be walked from both ends
/// (once per end, the non-canonical walk discarded): at most twice the
/// serial chain-walk work, split across `threads` workers.
fn merge_chains_parallel(raw: &RawGraph, threads: usize) -> MergedGraph {
    let n = raw.points.len();
    let anchor = chain_anchors(raw, threads);

    // Re-index anchors.
    let mut new_id = vec![usize::MAX; n];
    let mut vertex_points = Vec::new();
    for v in 0..n {
        if anchor[v] {
            new_id[v] = vertex_points.len();
            vertex_points.push(raw.points[v]);
        }
    }

    // Anchor darts in the serial walk order: vertex ascending, incidence
    // position ascending.
    let mut starts: Vec<(usize, usize)> = Vec::new();
    for (v, inc) in raw.incident.iter().enumerate() {
        if anchor[v] {
            starts.extend((0..inc.len()).map(|pos| (v, pos)));
        }
    }

    let chunk = starts.len().div_ceil(threads).max(1);
    let chunks = starts.len().div_ceil(chunk);
    let parts = map_indexed(chunks, threads, |c| {
        let lo = c * chunk;
        let hi = ((c + 1) * chunk).min(starts.len());
        let mut out: Vec<(usize, usize, Vec<Point>, Vec<usize>)> = Vec::new();
        for &(v, pos) in &starts[lo..hi] {
            let (end, arrival, polyline, regions) = walk_chain(raw, &anchor, v, pos);
            // A chain's two end darts are always distinct (a one-edge loop
            // would need a degenerate sub-segment), so exactly one end is
            // canonical and each chain is emitted exactly once.
            if (v, pos) <= (end, arrival) {
                out.push((v, end, polyline, regions));
            }
        }
        out
    });

    let mut edges: Vec<(usize, usize, Vec<Point>, Vec<usize>)> = Vec::new();
    let mut raw_edges_consumed = 0usize;
    for part in parts {
        for (u, w, polyline, regions) in part {
            raw_edges_consumed += polyline.len() - 1;
            edges.push((new_id[u], new_id[w], polyline, regions));
        }
    }
    debug_assert_eq!(
        raw_edges_consumed,
        raw.edges.len(),
        "all raw edges must be consumed exactly once"
    );

    let region_count = raw
        .edges
        .iter()
        .flat_map(|(_, _, rs)| rs.iter().copied())
        .max()
        .map_or(0, |m| m + 1);
    MergedGraph { vertex_points, edges, region_count }
}

/// For every vertex, the outgoing darts sorted counter-clockwise by the
/// direction of their first polyline piece.
fn compute_rotations(g: &MergedGraph) -> Vec<Vec<DartId>> {
    let mut per_vertex: Vec<Vec<(Vector, DartId)>> = vec![Vec::new(); g.vertex_points.len()];
    for (idx, (tail, head, polyline, _)) in g.edges.iter().enumerate() {
        let e = EdgeId(idx);
        let fwd_dir = polyline[0].vector_to(&polyline[1]);
        let bwd_dir = polyline[polyline.len() - 1].vector_to(&polyline[polyline.len() - 2]);
        per_vertex[*tail].push((fwd_dir, DartId::forward(e)));
        per_vertex[*head].push((bwd_dir, DartId::backward(e)));
    }
    per_vertex
        .into_iter()
        .map(|mut darts| {
            darts.sort_by(|a, b| a.0.angle_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            darts.into_iter().map(|(_, d)| d).collect()
        })
        .collect()
}

/// A face walk: the darts of one boundary cycle, plus derived data.
struct Walk {
    darts: Vec<DartId>,
    /// Concatenated polyline of the walk (closed; last point omitted).
    polyline: Vec<Point>,
    /// Twice the signed area of the walk.
    area2: Rational,
    /// Skeleton component this walk belongs to.
    component: usize,
}

fn dart_polyline(g: &MergedGraph, d: DartId) -> Vec<Point> {
    let (_, _, polyline, _) = &g.edges[d.edge().0];
    if d.is_forward() {
        polyline.clone()
    } else {
        let mut p = polyline.clone();
        p.reverse();
        p
    }
}

fn dart_tail(g: &MergedGraph, d: DartId) -> usize {
    let (tail, head, _, _) = &g.edges[d.edge().0];
    if d.is_forward() {
        *tail
    } else {
        *head
    }
}

fn face_walks(g: &MergedGraph, rotations: &[Vec<DartId>]) -> Vec<Walk> {
    // Component labeling of vertices.
    let component = vertex_components(g);

    // next(d): at head(d), the dart cyclically preceding twin(d) in the
    // counter-clockwise rotation (faces lie to the left of darts).
    let dart_count = g.edges.len() * 2;
    let next = |d: DartId| -> DartId {
        let head = dart_tail(g, d.twin());
        let rot = &rotations[head];
        let pos = rot.iter().position(|&x| x == d.twin()).expect("twin in rotation");
        rot[(pos + rot.len() - 1) % rot.len()]
    };

    let mut assigned = vec![false; dart_count];
    let mut walks = Vec::new();
    for start in 0..dart_count {
        if assigned[start] {
            continue;
        }
        let mut darts = Vec::new();
        let mut d = DartId(start);
        loop {
            assigned[d.0] = true;
            darts.push(d);
            d = next(d);
            if d.0 == start {
                break;
            }
        }
        // Build the closed polyline (drop the duplicate junction points).
        let mut polyline: Vec<Point> = Vec::new();
        for d in &darts {
            let mut pl = dart_polyline(g, *d);
            pl.pop(); // the head point is the next dart's tail
            polyline.extend(pl);
        }
        let area2 = closed_polyline_area_doubled(&polyline);
        let comp = component[dart_tail(g, darts[0])];
        walks.push(Walk { darts, polyline, area2, component: comp });
    }
    walks
}

/// The parallel counterpart of [`face_walks`], output-identical by
/// construction. The expensive parts of the serial walk are the per-dart
/// rotation-position lookups behind `next` and the polyline/area
/// construction per walk; both are side-effect free and parallelize over
/// the worker pool. The cycle extraction itself — partitioning the darts
/// into the orbits of the `next` permutation — is a cheap pointer chase and
/// stays serial, scanning start darts in ascending id order exactly like
/// the serial path so the walk list comes out in the same order.
fn face_walks_parallel(g: &MergedGraph, rotations: &[Vec<DartId>], threads: usize) -> Vec<Walk> {
    let component = vertex_components(g);
    let dart_count = g.edges.len() * 2;

    // Materialize the `next` permutation in parallel (the serial path
    // computes it lazily per step).
    let chunk = dart_count.div_ceil(threads).max(1);
    let chunks = dart_count.div_ceil(chunk);
    let next: Vec<DartId> = map_indexed(chunks, threads, |c| {
        let lo = c * chunk;
        let hi = ((c + 1) * chunk).min(dart_count);
        (lo..hi)
            .map(|i| {
                let d = DartId(i);
                let head = dart_tail(g, d.twin());
                let rot = &rotations[head];
                let pos = rot.iter().position(|&x| x == d.twin()).expect("twin in rotation");
                rot[(pos + rot.len() - 1) % rot.len()]
            })
            .collect::<Vec<DartId>>()
    })
    .into_iter()
    .flatten()
    .collect();

    // Serial orbit extraction, ascending starts (same order as serial).
    let mut assigned = vec![false; dart_count];
    let mut cycles: Vec<Vec<DartId>> = Vec::new();
    for start in 0..dart_count {
        if assigned[start] {
            continue;
        }
        let mut darts = Vec::new();
        let mut d = DartId(start);
        loop {
            assigned[d.0] = true;
            darts.push(d);
            d = next[d.0];
            if d.0 == start {
                break;
            }
        }
        cycles.push(darts);
    }

    // Per-walk polyline, area and component, one work item per walk.
    map_indexed(cycles.len(), threads, |i| {
        let darts = &cycles[i];
        let mut polyline: Vec<Point> = Vec::new();
        for d in darts {
            let mut pl = dart_polyline(g, *d);
            pl.pop(); // the head point is the next dart's tail
            polyline.extend(pl);
        }
        let area2 = closed_polyline_area_doubled(&polyline);
        let comp = component[dart_tail(g, darts[0])];
        Walk { darts: darts.clone(), polyline, area2, component: comp }
    })
}

fn vertex_components(g: &MergedGraph) -> Vec<usize> {
    let n = g.vertex_points.len();
    let mut comp = vec![usize::MAX; n];
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (tail, head, _, _) in &g.edges {
        adjacency[*tail].push(*head);
        adjacency[*head].push(*tail);
    }
    let mut next_comp = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = next_comp;
        while let Some(v) = stack.pop() {
            for &w in &adjacency[v] {
                if comp[w] == usize::MAX {
                    comp[w] = next_comp;
                    stack.push(w);
                }
            }
        }
        next_comp += 1;
    }
    comp
}

/// The outcome of face assembly: face of every dart, exterior face, boundary
/// edge sets and sample points.
struct AssembledFaces {
    face_of_dart: Vec<FaceId>,
    face_boundaries: Vec<Vec<EdgeId>>,
    face_samples: Vec<Option<Point>>,
    /// The outer cycle of every bounded face, exported for cross-component
    /// nesting tests in [`crate::assemble`].
    bounded_cycles: Vec<BoundedCycle>,
    exterior: FaceId,
}

fn assemble_faces(g: &MergedGraph, walks: &[Walk]) -> AssembledFaces {
    let component_count = walks.iter().map(|w| w.component).max().map_or(0, |m| m + 1);

    // Positive walks become bounded faces; each component has exactly one
    // non-positive walk: its outer boundary.
    let mut bounded_walks: Vec<usize> = Vec::new();
    let mut outer_walk_of_component: Vec<Option<usize>> = vec![None; component_count];
    for (i, w) in walks.iter().enumerate() {
        if w.area2.signum() > 0 {
            bounded_walks.push(i);
        } else {
            assert!(
                outer_walk_of_component[w.component].is_none(),
                "a skeleton component has two outer walks"
            );
            outer_walk_of_component[w.component] = Some(i);
        }
    }

    // Face ids: 0 = exterior, then one per bounded walk.
    let exterior = FaceId(0);
    let face_of_bounded_walk: BTreeMap<usize, FaceId> = bounded_walks
        .iter()
        .enumerate()
        .map(|(k, &w)| (w, FaceId(k + 1)))
        .collect();
    let face_count = bounded_walks.len() + 1;

    // Embedding forest: which face is each component embedded in?
    // A representative point of the component (any vertex) is tested against
    // the bounded walks of *other* components; the innermost (smallest-area)
    // containing walk gives the parent face.
    let mut rep_point_of_component: Vec<Option<Point>> = vec![None; component_count];
    for (v, &c) in vertex_components(g).iter().enumerate() {
        rep_point_of_component[c].get_or_insert(g.vertex_points[v]);
    }
    let mut parent_face_of_component: Vec<FaceId> = vec![exterior; component_count];
    for c in 0..component_count {
        let rep = match rep_point_of_component[c] {
            Some(p) => p,
            None => continue,
        };
        let mut best: Option<(Rational, FaceId)> = None;
        for &wi in &bounded_walks {
            let w = &walks[wi];
            if w.component == c {
                continue;
            }
            if point_in_closed_polyline(&rep, &w.polyline) {
                let area = w.area2.abs();
                if best.as_ref().is_none_or(|(a, _)| area < *a) {
                    best = Some((area, face_of_bounded_walk[&wi]));
                }
            }
        }
        if let Some((_, f)) = best {
            parent_face_of_component[c] = f;
        }
    }

    // Face of every dart: darts on bounded walks get that walk's face; darts
    // on a component's outer walk get the face the component is embedded in.
    let mut face_of_dart = vec![exterior; g.edges.len() * 2];
    for (wi, w) in walks.iter().enumerate() {
        let face = match face_of_bounded_walk.get(&wi) {
            Some(f) => *f,
            None => parent_face_of_component[w.component],
        };
        for d in &w.darts {
            face_of_dart[d.0] = face;
        }
    }

    // Boundary edge sets.
    let mut face_boundaries: Vec<Vec<EdgeId>> = vec![Vec::new(); face_count];
    for (d, face) in face_of_dart.iter().enumerate() {
        face_boundaries[face.0].push(DartId(d).edge());
    }
    for b in &mut face_boundaries {
        b.sort();
        b.dedup();
    }

    // Sample points for bounded faces: a point inside the face's own outer
    // walk that is not inside (or on) any component embedded in the face.
    let mut face_samples: Vec<Option<Point>> = vec![None; face_count];
    for &wi in &bounded_walks {
        let face = face_of_bounded_walk[&wi];
        let w = &walks[wi];
        let candidate = interior_point_of_simple_cycle(&w.polyline);
        if let Some(p) = candidate {
            // Reject the candidate if it landed inside an embedded component.
            let mut ok = point_in_closed_polyline(&p, &w.polyline);
            if ok {
                for (other_wi, other) in walks.iter().enumerate() {
                    if other_wi == wi || other.component == w.component {
                        continue;
                    }
                    if parent_face_of_component[other.component] == face
                        && other.area2.signum() <= 0
                        && point_in_closed_polyline(&p, &other.polyline)
                    {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                face_samples[face.0] = Some(p);
            }
        }
    }

    let bounded_cycles = bounded_walks
        .iter()
        .map(|&wi| BoundedCycle {
            face: face_of_bounded_walk[&wi],
            polyline: walks[wi].polyline.clone(),
            area2: walks[wi].area2,
        })
        .collect();

    AssembledFaces { face_of_dart, face_boundaries, face_samples, bounded_cycles, exterior }
}

/// Face membership per region, by serial FIFO flood fill from the exterior
/// face.
fn face_membership_serial(
    g: &MergedGraph,
    assembled: &AssembledFaces,
    n_regions: usize,
) -> Vec<Vec<bool>> {
    let face_count = assembled.face_boundaries.len();
    let mut inside: Vec<Option<Vec<bool>>> = vec![None; face_count];
    inside[assembled.exterior.0] = Some(vec![false; n_regions]);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(assembled.exterior);
    while let Some(f) = queue.pop_front() {
        let current = inside[f.0].clone().expect("visited face has labels");
        // Cross every edge on the face boundary.
        for &e in &assembled.face_boundaries[f.0] {
            let fwd_face = assembled.face_of_dart[DartId::forward(e).0];
            let bwd_face = assembled.face_of_dart[DartId::backward(e).0];
            let neighbor = if fwd_face == f { bwd_face } else { fwd_face };
            if neighbor == f || inside[neighbor.0].is_some() {
                continue;
            }
            let mut next = current.clone();
            for &r in &g.edges[e.0].3 {
                next[r] = !next[r];
            }
            inside[neighbor.0] = Some(next);
            queue.push_back(neighbor);
        }
    }
    inside
        .into_iter()
        .map(|m| m.expect("every face is reachable from the exterior face"))
        .collect()
}

/// The parallel counterpart of [`face_membership_serial`]: layer-synchronous
/// flood fill. Each BFS layer expands every frontier face concurrently on
/// the worker pool (one work item per frontier face, reading the shared
/// label table immutably); the discovered (neighbor, label) pairs are then
/// committed serially in frontier order. A face reachable from two frontier
/// faces gets the label of the first parent in frontier order — the same
/// tie-break a FIFO queue applies — and the label is in any case
/// path-independent: a face's membership in a region is the parity of
/// region-boundary crossings along *any* path from the exterior face,
/// because each region's boundary-edge set is a union of closed curves
/// (asserted on every duplicate discovery in debug builds).
fn face_membership_parallel(
    g: &MergedGraph,
    assembled: &AssembledFaces,
    n_regions: usize,
    threads: usize,
) -> Vec<Vec<bool>> {
    let face_count = assembled.face_boundaries.len();
    let mut inside: Vec<Option<Vec<bool>>> = vec![None; face_count];
    inside[assembled.exterior.0] = Some(vec![false; n_regions]);
    let mut frontier = vec![assembled.exterior];
    while !frontier.is_empty() {
        let discovered = map_indexed(frontier.len(), threads, |i| {
            let f = frontier[i];
            let current = inside[f.0].as_ref().expect("frontier face has labels");
            let mut out: Vec<(FaceId, Vec<bool>)> = Vec::new();
            for &e in &assembled.face_boundaries[f.0] {
                let fwd_face = assembled.face_of_dart[DartId::forward(e).0];
                let bwd_face = assembled.face_of_dart[DartId::backward(e).0];
                let neighbor = if fwd_face == f { bwd_face } else { fwd_face };
                if neighbor == f || inside[neighbor.0].is_some() {
                    continue;
                }
                let mut next = current.clone();
                for &r in &g.edges[e.0].3 {
                    next[r] = !next[r];
                }
                out.push((neighbor, next));
            }
            out
        });
        let mut next_frontier = Vec::new();
        for batch in discovered {
            for (neighbor, label) in batch {
                match &inside[neighbor.0] {
                    Some(existing) => debug_assert_eq!(
                        existing, &label,
                        "face labels are path-independent"
                    ),
                    None => {
                        inside[neighbor.0] = Some(label);
                        next_frontier.push(neighbor);
                    }
                }
            }
        }
        frontier = next_frontier;
    }
    inside
        .into_iter()
        .map(|m| m.expect("every face is reachable from the exterior face"))
        .collect()
}

/// Compute labels by propagation and assemble the final complex. With
/// `threads > 1` the label flood fill runs layer-synchronously and the
/// per-edge / per-vertex cell assembly fans out on the worker pool; the
/// output is identical to the serial path either way.
fn finish_complex(
    region_names: Vec<String>,
    g: MergedGraph,
    rotations: Vec<Vec<DartId>>,
    assembled: AssembledFaces,
    threads: usize,
) -> CellComplex {
    let n_regions = region_names.len().max(g.region_count);
    let face_count = assembled.face_boundaries.len();

    let face_membership: Vec<Vec<bool>> = if threads > 1 {
        face_membership_parallel(&g, &assembled, n_regions, threads)
    } else {
        face_membership_serial(&g, &assembled, n_regions)
    };
    crate::counters::add_labels_propagated(face_count as u64);

    // Assemble faces (cheap: label translation plus clones).
    let faces: Vec<FaceData> = (0..face_count)
        .map(|i| FaceData {
            is_exterior: FaceId(i) == assembled.exterior,
            boundary_edges: assembled.face_boundaries[i].clone(),
            label: face_membership[i]
                .iter()
                .map(|&b| if b { Sign::Interior } else { Sign::Exterior })
                .collect(),
            sample_point: assembled.face_samples[i],
        })
        .collect();

    // Assemble edges (one work item per edge; serial map for threads <= 1).
    let edges: Vec<EdgeData> = map_indexed(g.edges.len(), threads, |i| {
        let (tail, head, polyline, regions) = &g.edges[i];
        let e = EdgeId(i);
        let left = assembled.face_of_dart[DartId::forward(e).0];
        let right = assembled.face_of_dart[DartId::backward(e).0];
        let label: Label = (0..n_regions)
            .map(|r| {
                if regions.contains(&r) {
                    Sign::Boundary
                } else if face_membership[left.0][r] {
                    Sign::Interior
                } else {
                    Sign::Exterior
                }
            })
            .collect();
        EdgeData {
            tail: VertexId(*tail),
            head: VertexId(*head),
            polyline: polyline.clone(),
            on_boundary_of: regions.clone(),
            left_face: left,
            right_face: right,
            label,
        }
    });

    // Assemble vertices (reads the assembled edges' boundary marks).
    let vertices: Vec<VertexData> = map_indexed(g.vertex_points.len(), threads, |i| {
        let point = &g.vertex_points[i];
        let rotation = rotations[i].clone();
        let label: Label = (0..n_regions)
            .map(|r| {
                let on_boundary = rotation
                    .iter()
                    .any(|d| edges[d.edge().0].on_boundary_of.contains(&r));
                if on_boundary {
                    Sign::Boundary
                } else {
                    let f = assembled.face_of_dart[rotation[0].0];
                    if face_membership[f.0][r] {
                        Sign::Interior
                    } else {
                        Sign::Exterior
                    }
                }
            })
            .collect();
        VertexData { point: *point, label, rotation }
    });

    CellComplex { region_names, vertices, edges, faces, exterior: assembled.exterior }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::fixtures;

    #[test]
    fn empty_instance() {
        let c = build_complex(&SpatialInstance::new());
        assert_eq!(c.vertex_count(), 0);
        assert_eq!(c.edge_count(), 0);
        assert_eq!(c.face_count(), 1);
        assert!(c.euler_formula_holds());
    }

    #[test]
    fn single_rectangle() {
        let inst = SpatialInstance::from_regions([("A", Region::rect_from_ints(0, 0, 4, 4))]);
        let c = build_complex(&inst);
        // One anchor vertex, one loop edge, two faces (inside + exterior).
        assert_eq!(c.vertex_count(), 1);
        assert_eq!(c.edge_count(), 1);
        assert_eq!(c.face_count(), 2);
        assert!(c.euler_formula_holds());
        assert!(c.is_connected());
        let interior_faces = c.region_faces("A");
        assert_eq!(interior_faces.len(), 1);
        assert_ne!(interior_faces[0], c.exterior_face());
        // Labels.
        let f_in = interior_faces[0];
        assert_eq!(c.face(f_in).label, vec![Sign::Interior]);
        assert_eq!(c.face(c.exterior_face()).label, vec![Sign::Exterior]);
        assert_eq!(c.edge(EdgeId(0)).label, vec![Sign::Boundary]);
        assert_eq!(c.vertex(VertexId(0)).label, vec![Sign::Boundary]);
    }

    #[test]
    fn fig_1c_matches_example_3_1() {
        // The paper's Example 3.1: 2 vertices, 4 edges, 4 faces.
        let c = build_complex(&fixtures::fig_1c());
        assert_eq!(c.vertex_count(), 2, "{}", c.summary());
        assert_eq!(c.edge_count(), 4, "{}", c.summary());
        assert_eq!(c.face_count(), 4, "{}", c.summary());
        assert!(c.euler_formula_holds());
        assert!(c.is_connected());
        assert!(c.is_simple());

        // Face labels: exterior (-,-), A-only (o,-), B-only (-,o), lens (o,o).
        let mut labels: Vec<Label> = c.face_ids().map(|f| c.face(f).label.clone()).collect();
        labels.sort();
        let mut expected = vec![
            vec![Sign::Interior, Sign::Interior],
            vec![Sign::Interior, Sign::Exterior],
            vec![Sign::Exterior, Sign::Interior],
            vec![Sign::Exterior, Sign::Exterior],
        ];
        expected.sort();
        assert_eq!(labels, expected);

        // Edge labels as in Example 3.1: (A∂,B-), (A∂,Bo), (Ao,B∂), (A-,B∂).
        let mut edge_labels: Vec<Label> = c.edge_ids().map(|e| c.edge(e).label.clone()).collect();
        edge_labels.sort();
        let mut expected_edges = vec![
            vec![Sign::Boundary, Sign::Exterior],
            vec![Sign::Boundary, Sign::Interior],
            vec![Sign::Interior, Sign::Boundary],
            vec![Sign::Exterior, Sign::Boundary],
        ];
        expected_edges.sort();
        assert_eq!(edge_labels, expected_edges);

        // Both vertices are on both boundaries.
        for v in c.vertex_ids() {
            assert_eq!(c.vertex(v).label, vec![Sign::Boundary, Sign::Boundary]);
        }
    }

    #[test]
    fn fig_1d_has_two_lens_faces() {
        let c = build_complex(&fixtures::fig_1d());
        assert!(c.euler_formula_holds());
        let both = c
            .face_ids()
            .filter(|f| c.face(*f).label == vec![Sign::Interior, Sign::Interior])
            .count();
        assert_eq!(both, 2, "A ∩ B must have two connected components");
        // While in fig 1c it has exactly one.
        let c1 = build_complex(&fixtures::fig_1c());
        let both1 = c1
            .face_ids()
            .filter(|f| c1.face(*f).label == vec![Sign::Interior, Sign::Interior])
            .count();
        assert_eq!(both1, 1);
    }

    #[test]
    fn disjoint_regions_are_disconnected_components() {
        let inst = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 2, 2)),
            ("B", Region::rect_from_ints(5, 5, 7, 7)),
        ]);
        let c = build_complex(&inst);
        assert_eq!(c.vertex_count(), 2);
        assert_eq!(c.edge_count(), 2);
        assert_eq!(c.face_count(), 3);
        assert!(!c.is_connected());
        assert_eq!(c.skeleton_component_count(), 2);
        assert!(c.euler_formula_holds());
        // The exterior face's boundary contains both loop edges.
        assert_eq!(c.face_edges(c.exterior_face()).len(), 2);
    }

    #[test]
    fn nested_regions_embed_in_inner_faces() {
        let c = build_complex(&fixtures::nested_three());
        // 3 loop edges, 3 anchor vertices, 4 faces.
        assert_eq!(c.vertex_count(), 3);
        assert_eq!(c.edge_count(), 3);
        assert_eq!(c.face_count(), 4);
        assert!(c.euler_formula_holds());
        assert_eq!(c.skeleton_component_count(), 3);
        // Face labels: (-,-,-) exterior, (o,-,-), (o,o,-), (o,o,o).
        let mut labels: Vec<Label> = c.face_ids().map(|f| c.face(f).label.clone()).collect();
        labels.sort();
        let mut expected = vec![
            vec![Sign::Exterior, Sign::Exterior, Sign::Exterior],
            vec![Sign::Interior, Sign::Exterior, Sign::Exterior],
            vec![Sign::Interior, Sign::Interior, Sign::Exterior],
            vec![Sign::Interior, Sign::Interior, Sign::Interior],
        ];
        expected.sort();
        assert_eq!(labels, expected);
        // The annulus-like A-only face has two boundary edges (its own outer
        // boundary ∂A and the embedded ∂B).
        let a_only = c
            .face_ids()
            .find(|f| c.face(*f).label == vec![Sign::Interior, Sign::Exterior, Sign::Exterior])
            .unwrap();
        assert_eq!(c.face_edges(a_only).len(), 2);
        // The exterior face sees only ∂A.
        assert_eq!(c.face_edges(c.exterior_face()).len(), 1);
    }

    #[test]
    fn petals_share_one_vertex() {
        let c = build_complex(&fixtures::petals_abcd());
        // One vertex (the origin), four loop edges, five faces.
        assert_eq!(c.vertex_count(), 1);
        assert_eq!(c.edge_count(), 4);
        assert_eq!(c.face_count(), 6 - 1);
        assert!(c.euler_formula_holds());
        assert!(c.is_connected());
        // Not simple: the exterior face's walk visits the origin four times.
        assert!(!c.is_simple());
        // The rotation at the origin has 8 darts.
        assert_eq!(c.rotation(VertexId(0)).len(), 8);
    }

    #[test]
    fn ring_has_two_all_exterior_faces() {
        let c = build_complex(&fixtures::ring());
        assert!(c.euler_formula_holds());
        let all_ext: Vec<FaceId> = c
            .face_ids()
            .filter(|f| c.face(*f).label.iter().all(|&s| s == Sign::Exterior))
            .collect();
        assert_eq!(all_ext.len(), 2, "the hole and the unbounded face");
        assert!(all_ext.contains(&c.exterior_face()));
        // Two lens faces where A and B overlap.
        let lenses = c
            .face_ids()
            .filter(|f| c.face(*f).label == vec![Sign::Interior, Sign::Interior])
            .count();
        assert_eq!(lenses, 2);
    }

    #[test]
    fn ring_with_island_inside_vs_outside() {
        let inn = build_complex(&fixtures::ring_with_island(true));
        let out = build_complex(&fixtures::ring_with_island(false));
        assert!(inn.euler_formula_holds());
        assert!(out.euler_formula_holds());
        // Same counts...
        assert_eq!(inn.vertex_count(), out.vertex_count());
        assert_eq!(inn.edge_count(), out.edge_count());
        assert_eq!(inn.face_count(), out.face_count());
        // ...but in one case ∂C is on the boundary of the hole face, in the
        // other on the boundary of the unbounded face.
        let island_edge_in = inn.region_faces("C")[0];
        let _ = island_edge_in;
        let hole_of = |c: &CellComplex| {
            c.face_ids()
                .find(|f| {
                    *f != c.exterior_face() && c.face(*f).label.iter().all(|&s| s == Sign::Exterior)
                })
                .unwrap()
        };
        let hole_in = hole_of(&inn);
        let hole_out = hole_of(&out);
        // Number of edges bounding the hole differs: 5 vs 4 (it gains ∂C).
        assert_eq!(inn.face_edges(hole_in).len(), out.face_edges(hole_out).len() + 1);
        assert_eq!(
            out.face_edges(out.exterior_face()).len(),
            inn.face_edges(inn.exterior_face()).len() + 1
        );
    }

    #[test]
    fn face_sample_points_agree_with_labels() {
        for (name, inst) in [
            ("fig1a", fixtures::fig_1a()),
            ("fig1b", fixtures::fig_1b()),
            ("fig1c", fixtures::fig_1c()),
            ("fig1d", fixtures::fig_1d()),
            ("ring", fixtures::ring()),
            ("nested", fixtures::nested_three()),
            ("shared", fixtures::shared_boundary()),
        ] {
            let c = build_complex(&inst);
            assert!(c.euler_formula_holds(), "{name}");
            for f in c.face_ids() {
                let Some(p) = c.face(f).sample_point else { continue };
                for (idx, rname) in c.region_names().iter().enumerate() {
                    let expected = match inst.ext(rname).unwrap().locate(&p) {
                        Location::Inside => Sign::Interior,
                        Location::Boundary => Sign::Boundary,
                        Location::Outside => Sign::Exterior,
                    };
                    assert_eq!(
                        c.face(f).label[idx],
                        expected,
                        "{name}: face {f:?} sample {p:?} region {rname}"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_boundary_edges_marked_for_both_regions() {
        let c = build_complex(&fixtures::shared_boundary());
        assert!(c.euler_formula_holds());
        let shared: Vec<EdgeId> =
            c.edge_ids().filter(|e| c.edge(*e).on_boundary_of.len() == 2).collect();
        assert!(!shared.is_empty());
        for e in shared {
            let lbl = &c.edge(e).label;
            assert_eq!(lbl.iter().filter(|&&s| s == Sign::Boundary).count(), 2);
        }
    }

    #[test]
    fn fig2_pairs_build_and_satisfy_euler() {
        for (name, inst) in fixtures::fig_2_pairs() {
            let c = build_complex(&inst);
            assert!(c.euler_formula_holds(), "{name}: {}", c.summary());
        }
    }

    /// Differential fixtures for the phase-parallel pipeline: every named
    /// fixture covers a distinct combinatorial shape (pure cycles, shared
    /// anchors, nesting, multi-component skeletons, shared boundaries).
    fn phase_fixtures() -> Vec<(&'static str, SpatialInstance)> {
        vec![
            ("fig1a", fixtures::fig_1a()),
            ("fig1b", fixtures::fig_1b()),
            ("fig1c", fixtures::fig_1c()),
            ("fig1d", fixtures::fig_1d()),
            ("ring", fixtures::ring()),
            ("nested", fixtures::nested_three()),
            ("petals", fixtures::petals_abcd()),
            ("shared", fixtures::shared_boundary()),
            ("island_in", fixtures::ring_with_island(true)),
            ("island_out", fixtures::ring_with_island(false)),
        ]
    }

    #[test]
    fn phase_parallel_local_pipeline_matches_serial() {
        for (name, inst) in phase_fixtures() {
            let subs = split_segments(&instance_segments(&inst));
            let names: Vec<String> = inst.names().iter().map(|s| s.to_string()).collect();
            let (serial, serial_cycles) = build_local_phased(names.clone(), &subs, 1);
            for threads in [2, 3, 8] {
                let (phased, phased_cycles) = build_local_phased(names.clone(), &subs, threads);
                assert_eq!(
                    format!("{serial:?}"),
                    format!("{phased:?}"),
                    "{name}: complex differs at phase_threads={threads}"
                );
                assert_eq!(
                    format!("{serial_cycles:?}"),
                    format!("{phased_cycles:?}"),
                    "{name}: bounded cycles differ at phase_threads={threads}"
                );
            }
        }
    }

    #[test]
    fn phased_pipeline_matches_default_build() {
        for (name, inst) in phase_fixtures() {
            let base = build_complex(&inst);
            for (threads, phase_parallel) in [(1, false), (4, false), (4, true)] {
                let phased = build_complex_phased(&inst, threads, phase_parallel);
                assert_eq!(
                    format!("{base:?}"),
                    format!("{phased:?}"),
                    "{name}: threads={threads} phase_parallel={phase_parallel}"
                );
            }
        }
    }

    #[test]
    fn phase_counters_advance_during_a_build() {
        let before = crate::counters::phase_counters();
        let c = build_complex_phased(&fixtures::fig_1c(), 2, true);
        assert!(c.euler_formula_holds());
        let delta = crate::counters::phase_counters().delta_since(&before);
        assert!(delta.events_processed >= 1, "sweep events counted");
        assert!(delta.chains_merged >= 1, "merged chains counted");
        assert!(delta.cells_walked >= 1, "face walks counted");
        assert!(delta.labels_propagated >= 1, "propagated labels counted");
    }
}
