//! Process-wide per-phase work counters for the construction pipeline.
//!
//! The committed bench host is single-core, so wall-clock numbers alone
//! cannot show whether the parallel phases still do the same amount of work
//! per build — a parallel-efficiency regression (duplicated chain walks,
//! re-swept strips, re-labeled faces) would be invisible there. These
//! counters make the work itself observable: every phase of the local
//! pipeline bumps a monotone process-wide total, and the benchmark harness
//! records the *delta* across a single build into the bench snapshot
//! (`BENCH_arrangement.json`), following the same pattern as the planner's
//! assignments-tried and index-probe counters.
//!
//! The counters are cumulative over the process lifetime and shared by every
//! thread (the parallel phases bump them from worker threads), so consumers
//! must always difference two [`phase_counters`] snapshots rather than read
//! one in isolation.

use std::sync::atomic::{AtomicU64, Ordering};

static EVENTS_PROCESSED: AtomicU64 = AtomicU64::new(0);
static CHAINS_MERGED: AtomicU64 = AtomicU64::new(0);
static CELLS_WALKED: AtomicU64 = AtomicU64::new(0);
static LABELS_PROPAGATED: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide phase-work totals; see the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PhaseCounters {
    /// Event points processed by the Bentley–Ottmann sweep (every popped
    /// event of every strip and every monolithic sweep).
    pub events_processed: u64,
    /// Maximal 1-cells emitted by chain merging.
    pub chains_merged: u64,
    /// Face-boundary walks traced from the combinatorial embedding (both
    /// bounded faces and component outer walks).
    pub cells_walked: u64,
    /// Face labels assigned by propagation from the unbounded face.
    pub labels_propagated: u64,
}

impl PhaseCounters {
    /// The per-field difference `self - earlier` (saturating, so a stale
    /// `earlier` from another epoch never underflows).
    pub fn delta_since(&self, earlier: &PhaseCounters) -> PhaseCounters {
        PhaseCounters {
            events_processed: self.events_processed.saturating_sub(earlier.events_processed),
            chains_merged: self.chains_merged.saturating_sub(earlier.chains_merged),
            cells_walked: self.cells_walked.saturating_sub(earlier.cells_walked),
            labels_propagated: self.labels_propagated.saturating_sub(earlier.labels_propagated),
        }
    }
}

/// The current process-wide totals. Monotone; difference two snapshots to
/// measure the work of one build.
pub fn phase_counters() -> PhaseCounters {
    PhaseCounters {
        events_processed: EVENTS_PROCESSED.load(Ordering::Relaxed),
        chains_merged: CHAINS_MERGED.load(Ordering::Relaxed),
        cells_walked: CELLS_WALKED.load(Ordering::Relaxed),
        labels_propagated: LABELS_PROPAGATED.load(Ordering::Relaxed),
    }
}

pub(crate) fn add_events_processed(n: u64) {
    EVENTS_PROCESSED.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn add_chains_merged(n: u64) {
    CHAINS_MERGED.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn add_cells_walked(n: u64) {
    CELLS_WALKED.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn add_labels_propagated(n: u64) {
    LABELS_PROPAGATED.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_and_deltas_subtract() {
        let before = phase_counters();
        add_events_processed(3);
        add_chains_merged(2);
        add_cells_walked(5);
        add_labels_propagated(7);
        let after = phase_counters();
        let delta = after.delta_since(&before);
        // Other tests may bump the shared totals concurrently, so the delta
        // is a lower bound, never less than what this thread added.
        assert!(delta.events_processed >= 3);
        assert!(delta.chains_merged >= 2);
        assert!(delta.cells_walked >= 5);
        assert!(delta.labels_propagated >= 7);
        // A stale "earlier" snapshot saturates instead of underflowing.
        assert_eq!(before.delta_since(&after).chains_merged, 0);
    }
}
