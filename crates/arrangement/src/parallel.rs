//! A minimal std-only worker pool for share-nothing component sweeps.
//!
//! Interaction components share no vertex or edge of the arrangement, so
//! their sub-complexes can be swept on separate threads with no
//! synchronization beyond work distribution. This module provides the small
//! [`std::thread::scope`]-based pool used by [`crate::build_complex`] /
//! [`crate::build_component_complexes`], by the `topodb` component cache,
//! and by the x-strip decomposition of [`crate::strip`] (whose share-nothing
//! work items are vertical strips of one component's sweep rather than whole
//! components): no external thread-pool crate is needed (the build
//! environment is offline), and results are returned **in input order**
//! regardless of the thread count, so construction output is deterministic.
//!
//! The default thread count is the machine's available parallelism,
//! overridable with the `ARRANGEMENT_THREADS` environment variable (a
//! positive integer; `1` forces the serial path).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The thread count used by the construction pipeline: the value of the
/// `ARRANGEMENT_THREADS` environment variable if it parses as a positive
/// integer, otherwise [`std::thread::available_parallelism`] (falling back
/// to 1 if that is unavailable).
pub fn configured_threads() -> usize {
    std::env::var("ARRANGEMENT_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(available_threads)
}

/// The machine's available parallelism (1 if undetectable).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Whether the post-split phases of a component build — chain merging, face
/// walks, label propagation and cell assembly — run on the worker pool
/// (see [`crate::build_complex_phased`]). Controlled by the
/// `ARRANGEMENT_PHASE_PARALLEL` environment variable: `0`, `off`, `false`
/// or `serial` (case-insensitive) force the serial phase path, anything
/// else — including unset — enables the parallel phases. Read per build, so
/// tests can toggle it. The output is identical either way
/// (`tests/phase_parallel_differential.rs`); the knob exists for A/B
/// benchmarking and as an operational escape hatch.
pub fn phase_parallel_enabled() -> bool {
    match std::env::var("ARRANGEMENT_PHASE_PARALLEL") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !matches!(v.as_str(), "0" | "off" | "false" | "serial")
        }
        Err(_) => true,
    }
}

/// Evaluate `f(0), f(1), …, f(n - 1)` on up to `threads` worker threads and
/// return the results in index order.
///
/// Work is distributed dynamically (an atomic work counter), so uneven item
/// costs balance automatically; the output ordering — and therefore every
/// structure assembled from it — is identical for every thread count. With
/// `threads <= 1` or `n <= 1` no thread is spawned. A panic in `f`
/// propagates to the caller when the scope joins.
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every work item produces a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let out = map_indexed(13, threads, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still land in their slots.
        let out = map_indexed(9, 3, |i| {
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..9).collect::<Vec<_>>());
    }
}
