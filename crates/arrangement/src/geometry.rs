//! Geometric helpers on polylines used by the arrangement builder.

use spatial_core::prelude::*;

/// Twice the signed area enclosed by a closed polyline (the polyline is
/// interpreted cyclically; the last point needs not repeat the first).
pub fn closed_polyline_area_doubled(points: &[Point]) -> Rational {
    let n = points.len();
    let mut acc = Rational::ZERO;
    for i in 0..n {
        let p = &points[i];
        let q = &points[(i + 1) % n];
        acc += p.x * q.y - q.x * p.y;
    }
    acc
}

/// Even-odd containment test of a point with respect to a closed polyline
/// (which may repeat vertices but must not pass through the query point).
///
/// Uses the exact half-open crossing rule, so vertices on the horizontal line
/// through the query point are handled without perturbation.
pub fn point_in_closed_polyline(p: &Point, points: &[Point]) -> bool {
    let n = points.len();
    let mut crossings = 0usize;
    for i in 0..n {
        let a = &points[i];
        let b = &points[(i + 1) % n];
        if a.y == b.y {
            continue;
        }
        let (lo, hi) = if a.y <= b.y { (a, b) } else { (b, a) };
        if p.y >= lo.y && p.y < hi.y {
            let t = (p.y - lo.y) / (hi.y - lo.y);
            let x = lo.x + (hi.x - lo.x) * t;
            if x > p.x {
                crossings += 1;
            }
        }
    }
    crossings % 2 == 1
}

/// A point strictly inside the region bounded by a *simple* closed polyline
/// (no repeated vertices). Uses the lowest-leftmost-corner diagonal trick.
pub fn interior_point_of_simple_cycle(points: &[Point]) -> Option<Point> {
    // Delegate to the polygon implementation when the cycle is a valid simple
    // polygon; otherwise fall back to midpoint probing.
    if let Ok(poly) = Polygon::new(points.to_vec()) {
        return Some(poly.interior_point());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::point::pt;

    #[test]
    fn area_of_square() {
        let sq = [pt(0, 0), pt(2, 0), pt(2, 2), pt(0, 2)];
        assert_eq!(closed_polyline_area_doubled(&sq), Rational::from_int(8));
        let rev = [pt(0, 2), pt(2, 2), pt(2, 0), pt(0, 0)];
        assert_eq!(closed_polyline_area_doubled(&rev), Rational::from_int(-8));
    }

    #[test]
    fn containment_in_square() {
        let sq = [pt(0, 0), pt(4, 0), pt(4, 4), pt(0, 4)];
        assert!(point_in_closed_polyline(&pt(2, 2), &sq));
        assert!(!point_in_closed_polyline(&pt(5, 2), &sq));
        assert!(!point_in_closed_polyline(&pt(-1, 2), &sq));
    }

    #[test]
    fn containment_with_repeated_vertices() {
        // A figure-eight-like walk around two squares joined at (2, 2),
        // traversed as one closed walk (vertex (2,2) repeats).
        let walk = [
            pt(0, 0),
            pt(2, 0),
            pt(2, 2),
            pt(4, 2),
            pt(4, 4),
            pt(2, 4),
            pt(2, 2),
            pt(0, 2),
        ];
        assert!(point_in_closed_polyline(&pt(1, 1), &walk));
        assert!(point_in_closed_polyline(&pt(3, 3), &walk));
        assert!(!point_in_closed_polyline(&pt(3, 1), &walk));
        assert!(!point_in_closed_polyline(&pt(1, 3), &walk));
    }

    #[test]
    fn interior_point_of_cycle() {
        let sq = [pt(0, 0), pt(4, 0), pt(4, 4), pt(0, 4)];
        let p = interior_point_of_simple_cycle(&sq).unwrap();
        assert!(point_in_closed_polyline(&p, &sq));
    }
}
