//! Abstract syntax of the region-based query languages
//! `FO(Region, Region')` (Section 4 of the paper).
//!
//! The languages share one syntax and differ only in the class of regions the
//! region quantifiers range over (`Rect`, `Rect*`, `Poly`, `Alg`, `Disc`) and
//! the class the input regions are drawn from. Name variables range over the
//! finite set `names(I)`; region variables range over the (generally
//! infinite) chosen region class.

use relations::Relation4;
use spatial_core::region::RegionClass;
use std::fmt;

/// A name term: a variable ranging over `names(I)` or a name constant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NameTerm {
    /// A name variable (written in lowercase, e.g. `a`).
    Var(String),
    /// A name constant (written capitalized, e.g. `A`).
    Const(String),
}

/// A region expression: a region variable or the extent `ext(a)` of a named
/// region.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RegionExpr {
    /// A region variable bound by a region quantifier.
    Var(String),
    /// The extent of a named region (the paper's `ext(a)`; following the
    /// paper we usually write just the name).
    Ext(NameTerm),
}

impl RegionExpr {
    /// Convenience: the extent of a name constant.
    pub fn named<S: Into<String>>(name: S) -> RegionExpr {
        RegionExpr::Ext(NameTerm::Const(name.into()))
    }

    /// Convenience: a region variable.
    pub fn var<S: Into<String>>(name: S) -> RegionExpr {
        RegionExpr::Var(name.into())
    }
}

/// Atomic and composite formulas of the region-based language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// One of the eight 4-intersection relationships between two regions.
    Rel(Relation4, RegionExpr, RegionExpr),
    /// `connect(p, q)`: the closures intersect (the negation of `disjoint`);
    /// the paper notes this single primitive suffices (Section 4).
    Connect(RegionExpr, RegionExpr),
    /// `subset(p, q)`: `p ⊆ q`. Definable from `connect` (Section 4) but kept
    /// as an atom for convenience; [`Formula::desugar`] eliminates it.
    Subset(RegionExpr, RegionExpr),
    /// Equality of two name terms.
    NameEq(NameTerm, NameTerm),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (empty = true).
    And(Vec<Formula>),
    /// Disjunction (empty = false).
    Or(Vec<Formula>),
    /// Existential quantification of a region variable.
    ExistsRegion(String, Box<Formula>),
    /// Universal quantification of a region variable.
    ForallRegion(String, Box<Formula>),
    /// Existential quantification of a name variable over `names(I)`.
    ExistsName(String, Box<Formula>),
    /// Universal quantification of a name variable over `names(I)`.
    ForallName(String, Box<Formula>),
}

impl Formula {
    /// Negation. (A by-value constructor, intentionally not the `Not`
    /// operator trait.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Conjunction.
    pub fn and(fs: Vec<Formula>) -> Formula {
        Formula::And(fs)
    }

    /// Disjunction.
    pub fn or(fs: Vec<Formula>) -> Formula {
        Formula::Or(fs)
    }

    /// Implication, as `¬a ∨ b`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Or(vec![Formula::not(a), b])
    }

    /// `∃ r . f`.
    pub fn exists_region<S: Into<String>>(var: S, f: Formula) -> Formula {
        Formula::ExistsRegion(var.into(), Box::new(f))
    }

    /// `∀ r . f`.
    pub fn forall_region<S: Into<String>>(var: S, f: Formula) -> Formula {
        Formula::ForallRegion(var.into(), Box::new(f))
    }

    /// `∃ a . f` (name variable).
    pub fn exists_name<S: Into<String>>(var: S, f: Formula) -> Formula {
        Formula::ExistsName(var.into(), Box::new(f))
    }

    /// `∀ a . f` (name variable).
    pub fn forall_name<S: Into<String>>(var: S, f: Formula) -> Formula {
        Formula::ForallName(var.into(), Box::new(f))
    }

    /// A relation atom.
    pub fn rel(r: Relation4, p: RegionExpr, q: RegionExpr) -> Formula {
        Formula::Rel(r, p, q)
    }

    /// `connect(p, q)`.
    pub fn connect(p: RegionExpr, q: RegionExpr) -> Formula {
        Formula::Connect(p, q)
    }

    /// `subset(p, q)`.
    pub fn subset(p: RegionExpr, q: RegionExpr) -> Formula {
        Formula::Subset(p, q)
    }

    /// Number of region quantifiers in the formula (a size measure used by
    /// the query-complexity benchmarks).
    pub fn region_quantifier_count(&self) -> usize {
        match self {
            Formula::Rel(..) | Formula::Connect(..) | Formula::Subset(..) | Formula::NameEq(..) => 0,
            Formula::Not(f) => f.region_quantifier_count(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(|f| f.region_quantifier_count()).sum()
            }
            Formula::ExistsRegion(_, f) | Formula::ForallRegion(_, f) => {
                1 + f.region_quantifier_count()
            }
            Formula::ExistsName(_, f) | Formula::ForallName(_, f) => f.region_quantifier_count(),
        }
    }

    /// Total number of AST nodes (a size measure).
    pub fn size(&self) -> usize {
        match self {
            Formula::Rel(..) | Formula::Connect(..) | Formula::Subset(..) | Formula::NameEq(..) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(|f| f.size()).sum::<usize>(),
            Formula::ExistsRegion(_, f)
            | Formula::ForallRegion(_, f)
            | Formula::ExistsName(_, f)
            | Formula::ForallName(_, f) => 1 + f.size(),
        }
    }

    /// The free *name* variables of the formula, in first-occurrence order.
    ///
    /// A name variable is free when it occurs in a name term (either side of
    /// `=`, or inside `ext(…)`) without an enclosing `existsname`/`forallname`
    /// binder. Free name variables are what turns a formula into a
    /// *set-returning* query: evaluators enumerate the satisfying assignments
    /// of these variables over `names(I)` (see `cell_eval` and the
    /// [`crate::prepared`] module).
    pub fn free_name_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut bound = Vec::new();
        self.collect_free_name_vars(&mut bound, &mut out);
        out
    }

    fn collect_free_name_vars(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        let visit_term = |t: &NameTerm, bound: &[String], out: &mut Vec<String>| {
            if let NameTerm::Var(v) = t {
                if !bound.contains(v) && !out.contains(v) {
                    out.push(v.clone());
                }
            }
        };
        let visit_region = |e: &RegionExpr, bound: &[String], out: &mut Vec<String>| {
            if let RegionExpr::Ext(t) = e {
                visit_term(t, bound, out);
            }
        };
        match self {
            Formula::Rel(_, p, q) | Formula::Connect(p, q) | Formula::Subset(p, q) => {
                visit_region(p, bound, out);
                visit_region(q, bound, out);
            }
            Formula::NameEq(a, b) => {
                visit_term(a, bound, out);
                visit_term(b, bound, out);
            }
            Formula::Not(f) => f.collect_free_name_vars(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free_name_vars(bound, out);
                }
            }
            Formula::ExistsRegion(_, f) | Formula::ForallRegion(_, f) => {
                f.collect_free_name_vars(bound, out)
            }
            Formula::ExistsName(v, f) | Formula::ForallName(v, f) => {
                bound.push(v.clone());
                f.collect_free_name_vars(bound, out);
                bound.pop();
            }
        }
    }

    /// The free *region* variables of the formula, in first-occurrence order.
    ///
    /// A closed (evaluable) formula has none: region variables must be bound
    /// by `exists`/`forall`. [`crate::prepared::PreparedQuery`] rejects
    /// formulas with free region variables at compile time.
    pub fn free_region_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut bound = Vec::new();
        self.collect_free_region_vars(&mut bound, &mut out);
        out
    }

    fn collect_free_region_vars(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        let visit = |e: &RegionExpr, bound: &[String], out: &mut Vec<String>| {
            if let RegionExpr::Var(v) = e {
                if !bound.contains(v) && !out.contains(v) {
                    out.push(v.clone());
                }
            }
        };
        match self {
            Formula::Rel(_, p, q) | Formula::Connect(p, q) | Formula::Subset(p, q) => {
                visit(p, bound, out);
                visit(q, bound, out);
            }
            Formula::NameEq(..) => {}
            Formula::Not(f) => f.collect_free_region_vars(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free_region_vars(bound, out);
                }
            }
            Formula::ExistsRegion(v, f) | Formula::ForallRegion(v, f) => {
                bound.push(v.clone());
                f.collect_free_region_vars(bound, out);
                bound.pop();
            }
            Formula::ExistsName(_, f) | Formula::ForallName(_, f) => {
                f.collect_free_region_vars(bound, out)
            }
        }
    }

    /// Rewrite `Subset` and the eight relation atoms into formulas that use
    /// only the primitive `connect`, following the definitions in Section 4
    /// of the paper. The resulting formula is logically equivalent over every
    /// region domain that is a basis of open sets.
    pub fn desugar(&self) -> Formula {
        match self {
            Formula::Subset(p, q) => desugar_subset(p, q),
            Formula::Rel(r, p, q) => desugar_relation(*r, p, q),
            Formula::Connect(p, q) => Formula::Connect(p.clone(), q.clone()),
            Formula::NameEq(a, b) => Formula::NameEq(a.clone(), b.clone()),
            Formula::Not(f) => Formula::not(f.desugar()),
            Formula::And(fs) => Formula::and(fs.iter().map(|f| f.desugar()).collect()),
            Formula::Or(fs) => Formula::or(fs.iter().map(|f| f.desugar()).collect()),
            Formula::ExistsRegion(v, f) => Formula::exists_region(v.clone(), f.desugar()),
            Formula::ForallRegion(v, f) => Formula::forall_region(v.clone(), f.desugar()),
            Formula::ExistsName(v, f) => Formula::exists_name(v.clone(), f.desugar()),
            Formula::ForallName(v, f) => Formula::forall_name(v.clone(), f.desugar()),
        }
    }
}

/// `p ⊆ q` as `∀ w . connect(p, w) → connect(q, w)` (Section 4).
fn desugar_subset(p: &RegionExpr, q: &RegionExpr) -> Formula {
    let w = fresh_var(p, q);
    Formula::forall_region(
        w.clone(),
        Formula::implies(
            Formula::Connect(p.clone(), RegionExpr::Var(w.clone())),
            Formula::Connect(q.clone(), RegionExpr::Var(w)),
        ),
    )
}

fn desugar_relation(r: Relation4, p: &RegionExpr, q: &RegionExpr) -> Formula {
    use Relation4::*;
    let connect = |a: &RegionExpr, b: &RegionExpr| Formula::Connect(a.clone(), b.clone());
    let subset = |a: &RegionExpr, b: &RegionExpr| desugar_subset(a, b);
    // overlap(p, q): some region inside both, neither contained in the other.
    let overlap = |p: &RegionExpr, q: &RegionExpr| {
        let w = fresh_var(p, q);
        Formula::and(vec![
            Formula::exists_region(
                w.clone(),
                Formula::and(vec![
                    desugar_subset(&RegionExpr::Var(w.clone()), p),
                    desugar_subset(&RegionExpr::Var(w), q),
                ]),
            ),
            Formula::not(subset(p, q)),
            Formula::not(subset(q, p)),
        ])
    };
    match r {
        Disjoint => Formula::not(connect(p, q)),
        Overlap => overlap(p, q),
        Equal => Formula::and(vec![subset(p, q), subset(q, p)]),
        Meet => Formula::and(vec![
            connect(p, q),
            Formula::not(overlap(p, q)),
            Formula::not(subset(p, q)),
            Formula::not(subset(q, p)),
        ]),
        Inside => Formula::and(vec![
            subset(p, q),
            Formula::not(Formula::and(vec![subset(q, p), subset(p, q)])),
            // No boundary contact: every region connected to p is connected to
            // the *interior side* — expressed via: p together with q's
            // complement is not connected, i.e. ¬∃w touching both p and the
            // outside of q... the paper's definition uses the 4-intersection
            // matrix; here we say: p ⊂ q and ∀w (w ⊆ p → ¬ meet-style contact
            // with the complement), rendered as ¬connect-with-complement via
            // "every region containing p's closure neighborhood"... Following
            // the paper we keep it simpler: inside = subset ∧ ¬equal ∧
            // ¬covered_by-contact, where boundary contact is witnessed by a
            // region connected to p but not overlapping q.
            Formula::not(boundary_contact(p, q)),
        ]),
        CoveredBy => Formula::and(vec![
            subset(p, q),
            Formula::not(Formula::and(vec![subset(q, p), subset(p, q)])),
            boundary_contact(p, q),
        ]),
        Contains => desugar_relation(Inside, q, p),
        Covers => desugar_relation(CoveredBy, q, p),
    }
}

/// There is a witness of boundary contact between `p` (a part of `q`) and the
/// boundary of `q`: a region connected to `p` that is not connected to any
/// region inside `q`... rendered as: ∃w. connect(w, p) ∧ ¬overlap-with-q ∧
/// ¬subset(w, q). Intuitively `w` sits outside `q` yet touches `p`, which is
/// only possible if `p` reaches `∂q`.
fn boundary_contact(p: &RegionExpr, q: &RegionExpr) -> Formula {
    let w = fresh_var(p, q);
    Formula::exists_region(
        w.clone(),
        Formula::and(vec![
            Formula::Connect(RegionExpr::Var(w.clone()), p.clone()),
            Formula::not(Formula::exists_region(
                format!("{w}_in"),
                Formula::and(vec![
                    desugar_subset(&RegionExpr::Var(format!("{w}_in")), &RegionExpr::Var(w.clone())),
                    desugar_subset(&RegionExpr::Var(format!("{w}_in")), q),
                ]),
            )),
        ]),
    )
}

fn fresh_var(p: &RegionExpr, q: &RegionExpr) -> String {
    let mut base = String::from("w");
    for e in [p, q] {
        if let RegionExpr::Var(v) = e {
            base.push('_');
            base.push_str(v);
        }
    }
    base
}

/// A query: a sentence of `FO(Region, Region')` together with the class the
/// region quantifiers range over.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    /// The sentence.
    pub formula: Formula,
    /// The region class the quantifiers range over (the first parameter of
    /// `FO(Region, Region')`).
    pub quantifier_class: RegionClass,
}

impl Query {
    /// A query whose quantifiers range over `Disc` (the most general class).
    pub fn over_disc(formula: Formula) -> Query {
        Query { formula, quantifier_class: RegionClass::Disc }
    }

    /// A query whose quantifiers range over rectangles.
    pub fn over_rect(formula: Formula) -> Query {
        Query { formula, quantifier_class: RegionClass::Rect }
    }
}

impl fmt::Display for NameTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameTerm::Var(v) => write!(f, "{v}"),
            NameTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for RegionExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionExpr::Var(v) => write!(f, "{v}"),
            RegionExpr::Ext(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Rel(r, p, q) => write!(f, "{}({p}, {q})", r.name()),
            Formula::Connect(p, q) => write!(f, "connect({p}, {q})"),
            Formula::Subset(p, q) => write!(f, "subset({p}, {q})"),
            Formula::NameEq(a, b) => write!(f, "{a} = {b}"),
            Formula::Not(inner) => write!(f, "not ({inner})"),
            Formula::And(fs) => {
                if fs.is_empty() {
                    return write!(f, "true");
                }
                let parts: Vec<String> = fs.iter().map(|x| format!("({x})")).collect();
                write!(f, "{}", parts.join(" and "))
            }
            Formula::Or(fs) => {
                if fs.is_empty() {
                    return write!(f, "false");
                }
                let parts: Vec<String> = fs.iter().map(|x| format!("({x})")).collect();
                write!(f, "{}", parts.join(" or "))
            }
            Formula::ExistsRegion(v, inner) => write!(f, "exists {v} . {inner}"),
            Formula::ForallRegion(v, inner) => write!(f, "forall {v} . {inner}"),
            Formula::ExistsName(v, inner) => write!(f, "existsname {v} . {inner}"),
            Formula::ForallName(v, inner) => write!(f, "forallname {v} . {inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Formula {
        // ∃r. subset(r, A) ∧ subset(r, B)
        Formula::exists_region(
            "r",
            Formula::and(vec![
                Formula::subset(RegionExpr::var("r"), RegionExpr::named("A")),
                Formula::subset(RegionExpr::var("r"), RegionExpr::named("B")),
            ]),
        )
    }

    #[test]
    fn size_and_quantifier_count() {
        let f = sample();
        assert_eq!(f.region_quantifier_count(), 1);
        assert!(f.size() >= 4);
        let g = Formula::forall_name("a", Formula::exists_region("r", Formula::connect(
            RegionExpr::var("r"), RegionExpr::Ext(NameTerm::Var("a".into())))));
        assert_eq!(g.region_quantifier_count(), 1);
    }

    #[test]
    fn display_round_readable() {
        let f = sample();
        let s = format!("{f}");
        assert!(s.contains("exists r"));
        assert!(s.contains("subset(r, A)"));
        assert_eq!(format!("{}", Formula::And(vec![])), "true");
        assert_eq!(format!("{}", Formula::Or(vec![])), "false");
    }

    #[test]
    fn desugar_removes_sugar() {
        fn has_sugar(f: &Formula) -> bool {
            match f {
                Formula::Rel(..) | Formula::Subset(..) => true,
                Formula::Connect(..) | Formula::NameEq(..) => false,
                Formula::Not(g) => has_sugar(g),
                Formula::And(gs) | Formula::Or(gs) => gs.iter().any(has_sugar),
                Formula::ExistsRegion(_, g)
                | Formula::ForallRegion(_, g)
                | Formula::ExistsName(_, g)
                | Formula::ForallName(_, g) => has_sugar(g),
            }
        }
        let f = Formula::and(vec![
            sample(),
            Formula::rel(Relation4::Overlap, RegionExpr::named("A"), RegionExpr::named("B")),
            Formula::rel(Relation4::Disjoint, RegionExpr::named("A"), RegionExpr::named("C")),
            Formula::rel(Relation4::Equal, RegionExpr::named("A"), RegionExpr::named("A")),
        ]);
        assert!(has_sugar(&f));
        let d = f.desugar();
        assert!(!has_sugar(&d));
        assert!(d.size() > f.size());
    }

    #[test]
    fn query_constructors() {
        let q = Query::over_disc(sample());
        assert_eq!(q.quantifier_class, RegionClass::Disc);
        let q = Query::over_rect(sample());
        assert_eq!(q.quantifier_class, RegionClass::Rect);
    }
}
