//! Derived predicates used in the paper's expressiveness proofs
//! (Theorem 4.4, Proposition 4.5, Theorem 5.8).
//!
//! These are formula *builders*: they produce sentences/sub-formulas of the
//! region-based language that define higher-level notions from the
//! 4-intersection atoms, exactly as in the paper's proofs. The benchmark
//! harness evaluates them on rectilinear instances to demonstrate the
//! corresponding expressiveness claims.

use crate::ast::{Formula, RegionExpr};
use relations::Relation4;

/// `edge(r, s)` — Theorem 4.4's predicate: `r` and `s` meet and share a
/// positive-length piece of boundary (witnessed by a third region overlapping
/// both).
pub fn edge_contact(r: RegionExpr, s: RegionExpr) -> Formula {
    let w = "w_edge";
    Formula::and(vec![
        Formula::rel(Relation4::Meet, r.clone(), s.clone()),
        Formula::exists_region(
            w,
            Formula::and(vec![
                Formula::rel(Relation4::Overlap, RegionExpr::var(w), r),
                Formula::rel(Relation4::Overlap, RegionExpr::var(w), s),
            ]),
        ),
    ])
}

/// `corner(r, s)` — the regions meet at a corner only (they meet, but share
/// no positive-length boundary).
pub fn corner_contact(r: RegionExpr, s: RegionExpr) -> Formula {
    Formula::and(vec![
        Formula::rel(Relation4::Meet, r.clone(), s.clone()),
        Formula::not(edge_contact(r, s)),
    ])
}

/// The query `Q_Region` used throughout Theorem 4.4's incomparability proofs:
/// "the named region equals some quantified region", i.e. the input region
/// belongs to the quantifier class.
pub fn named_region_is_quantifiable(name: &str) -> Formula {
    Formula::exists_region(
        "r",
        Formula::rel(Relation4::Equal, RegionExpr::var("r"), RegionExpr::named(name)),
    )
}

/// Theorem 4.4 (fact (-)): "`r` is a rectangle", expressed in
/// `FO(Rect*, Rect*)` as "`r` has exactly four corners": there are four
/// pairwise disjoint regions cornering `r`, and there are no five.
///
/// The builder returns the sentence stating that the *named* region has
/// exactly four corner contacts among pairwise-disjoint witnesses.
pub fn is_rectangle(name: &str) -> Formula {
    let target = RegionExpr::named(name);
    let witnesses = |k: usize| -> Formula {
        let vars: Vec<String> = (0..k).map(|i| format!("c{i}")).collect();
        let mut clauses = Vec::new();
        for v in &vars {
            clauses.push(corner_contact(RegionExpr::var(v.clone()), target.clone()));
        }
        for i in 0..k {
            for j in (i + 1)..k {
                clauses.push(Formula::rel(
                    Relation4::Disjoint,
                    RegionExpr::var(vars[i].clone()),
                    RegionExpr::var(vars[j].clone()),
                ));
            }
        }
        let mut f = Formula::and(clauses);
        for v in vars.into_iter().rev() {
            f = Formula::exists_region(v, f);
        }
        f
    };
    Formula::and(vec![witnesses(4), Formula::not(witnesses(5))])
}

/// Proposition 4.5's `chain(X)` pattern, instantiated for three named
/// regions: `A`, `B`, `C` form a chain (consecutive ones connect, the ends do
/// not).
pub fn chain3(a: &str, b: &str, c: &str) -> Formula {
    Formula::and(vec![
        Formula::connect(RegionExpr::named(a), RegionExpr::named(b)),
        Formula::connect(RegionExpr::named(b), RegionExpr::named(c)),
        Formula::not(Formula::connect(RegionExpr::named(a), RegionExpr::named(c))),
    ])
}

/// `path(A, r, B)` from Example 4.2: `r` connects `A` and `B` while avoiding
/// every region named in `avoid`.
pub fn path(a: &str, r: &str, b: &str, avoid: &[&str]) -> Formula {
    let mut clauses = vec![
        Formula::connect(RegionExpr::var(r), RegionExpr::named(a)),
        Formula::connect(RegionExpr::var(r), RegionExpr::named(b)),
    ];
    for name in avoid {
        clauses.push(Formula::not(Formula::connect(RegionExpr::var(r), RegionExpr::named(*name))));
    }
    Formula::and(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell_eval::eval_on_instance;
    use spatial_core::prelude::*;

    #[test]
    fn edge_vs_corner_contact() {
        // Two squares sharing an edge. A third region straddling the shared
        // edge gives the cell domain a witness for the overlap clause, so the
        // edge-contact predicate can be established by the evaluator.
        let edge_inst = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 4, 4)),
            ("B", Region::rect_from_ints(4, 0, 8, 4)),
            ("W", Region::rect_from_ints(3, 1, 5, 3)),
        ]);
        let e = edge_contact(RegionExpr::named("A"), RegionExpr::named("B"));
        let c = corner_contact(RegionExpr::named("A"), RegionExpr::named("B"));
        assert_eq!(eval_on_instance(&edge_inst, &e), Ok(true));
        assert_eq!(eval_on_instance(&edge_inst, &c), Ok(false));
        // Regions that do not even meet satisfy neither predicate.
        let far = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 4, 4)),
            ("B", Region::rect_from_ints(10, 0, 14, 4)),
            ("W", Region::rect_from_ints(3, 1, 12, 3)),
        ]);
        assert_eq!(eval_on_instance(&far, &e), Ok(false));
        assert_eq!(eval_on_instance(&far, &c), Ok(false));
    }

    #[test]
    fn chain_and_path() {
        let inst = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 4, 4)),
            ("B", Region::rect_from_ints(4, 0, 8, 4)),
            ("C", Region::rect_from_ints(8, 0, 12, 4)),
        ]);
        assert_eq!(eval_on_instance(&inst, &chain3("A", "B", "C")), Ok(true));
        assert_eq!(eval_on_instance(&inst, &chain3("A", "C", "B")), Ok(false));
        // There is a region connecting A and B avoiding C.
        let p = Formula::exists_region("r", path("A", "r", "B", &["C"]));
        assert_eq!(eval_on_instance(&inst, &p), Ok(true));
        // And one connecting A and C (no avoidance): the middle square works.
        let q = Formula::exists_region("r", path("A", "r", "C", &[]));
        assert_eq!(eval_on_instance(&inst, &q), Ok(true));
    }

    #[test]
    fn quantifiable_region_query_builds() {
        let f = named_region_is_quantifiable("A");
        assert_eq!(f.region_quantifier_count(), 1);
        let r = is_rectangle("A");
        assert!(r.region_quantifier_count() >= 9);
    }
}
