//! Answering topological queries on the thematic relational database
//! (Corollary 3.7).
//!
//! The paper's thematic bridge says: compute `thematic(I)` once (a classical
//! relational instance over the fixed schema `Th`), and from then on answer
//! topological queries with ordinary first-order queries against it — no
//! geometry needed. This module implements the translation for the fragment
//! of the region-based language without region quantifiers (Boolean
//! combinations of 4-intersection atoms between named regions, with name
//! variables and quantifiers), which is the fragment geographic information
//! systems use directly, and the fragment measured by the Corollary 3.7
//! benchmark.

use crate::ast::{Formula, NameTerm, RegionExpr};
use relations::Relation4;
use relstore::fo::{Formula as Fo, Term};
use relstore::Database;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Errors raised when translating a formula to the thematic schema.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ThematicError {
    /// The formula quantifies over regions, which is outside the translated
    /// fragment (use the cell evaluator for those queries).
    RegionQuantifier(String),
    /// A region variable occurred (only named regions are allowed here).
    RegionVariable(String),
}

impl std::fmt::Display for ThematicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThematicError::RegionQuantifier(v) => {
                write!(f, "region quantifier over `{v}` not supported on the thematic database")
            }
            ThematicError::RegionVariable(v) => {
                write!(f, "free region variable `{v}` not supported on the thematic database")
            }
        }
    }
}

impl std::error::Error for ThematicError {}

static FRESH: AtomicUsize = AtomicUsize::new(0);

fn fresh(prefix: &str) -> String {
    format!("{prefix}_{}", FRESH.fetch_add(1, Ordering::Relaxed))
}

/// Translate a region-quantifier-free sentence of the region-based language
/// into a first-order sentence over the thematic schema `Th`.
pub fn translate(formula: &Formula) -> Result<Fo, ThematicError> {
    match formula {
        Formula::Rel(r, p, q) => {
            let a = name_term(p)?;
            let b = name_term(q)?;
            Ok(relation_formula(*r, &a, &b))
        }
        Formula::Connect(p, q) => {
            let a = name_term(p)?;
            let b = name_term(q)?;
            Ok(Fo::not(relation_formula(Relation4::Disjoint, &a, &b)))
        }
        Formula::Subset(p, q) => {
            let a = name_term(p)?;
            let b = name_term(q)?;
            Ok(subset_formula(&a, &b))
        }
        Formula::NameEq(a, b) => Ok(Fo::equals(to_term(a), to_term(b))),
        Formula::Not(f) => Ok(Fo::not(translate(f)?)),
        Formula::And(fs) => Ok(Fo::and(fs.iter().map(translate).collect::<Result<_, _>>()?)),
        Formula::Or(fs) => Ok(Fo::or(fs.iter().map(translate).collect::<Result<_, _>>()?)),
        Formula::ExistsName(v, f) => Ok(Fo::exists(
            v.clone(),
            Fo::and(vec![
                Fo::atom("Regions", vec![Term::var(v.clone())]),
                translate(f)?,
            ]),
        )),
        Formula::ForallName(v, f) => Ok(Fo::forall(
            v.clone(),
            Fo::implies(Fo::atom("Regions", vec![Term::var(v.clone())]), translate(f)?),
        )),
        Formula::ExistsRegion(v, _) | Formula::ForallRegion(v, _) => {
            Err(ThematicError::RegionQuantifier(v.clone()))
        }
    }
}

/// Evaluate a region-quantifier-free sentence against a thematic database.
pub fn eval_on_thematic(db: &Database, formula: &Formula) -> Result<bool, ThematicError> {
    let fo = translate(formula)?;
    Ok(relstore::fo::eval_sentence(db, &fo))
}

/// Evaluate a region-quantifier-free formula with free name variables as a
/// set-returning query against a thematic database: translate once, then
/// enumerate assignments of the variables in `free` over the `Regions`
/// relation and keep the satisfying ones (rows in lexicographic order).
///
/// This is the thematic twin of `cell_eval::CellEvaluator::eval_bindings` —
/// Corollary 3.7 extended from sentences to open formulas: the satisfying
/// name assignments of a topological query are computable from `thematic(I)`
/// alone.
pub fn bindings_on_thematic(
    db: &Database,
    formula: &Formula,
    free: &[String],
) -> Result<Vec<crate::cell_eval::Bindings>, ThematicError> {
    let fo = translate(formula)?;
    let names: Vec<String> = db
        .relation("Regions")
        .map(|r| r.iter().filter_map(|t| t.first().and_then(|v| v.as_sym()).map(String::from)).collect())
        .unwrap_or_default();
    let mut out = Vec::new();
    let mut assignment = relstore::fo::Assignment::new();
    enumerate_bindings(db, &fo, free, &names, &mut assignment, &mut out);
    Ok(out)
}

fn enumerate_bindings(
    db: &Database,
    fo: &Fo,
    free: &[String],
    names: &[String],
    assignment: &mut relstore::fo::Assignment,
    out: &mut Vec<crate::cell_eval::Bindings>,
) {
    match free.split_first() {
        None => {
            if relstore::fo::eval(db, fo, assignment) {
                let row = assignment
                    .iter()
                    .filter_map(|(k, v)| v.as_sym().map(|s| (k.clone(), s.to_string())))
                    .collect();
                out.push(row);
            }
        }
        Some((var, rest)) => {
            for name in names {
                assignment.insert(var.clone(), relstore::Value::sym(name.as_str()));
                enumerate_bindings(db, fo, rest, names, assignment, out);
                assignment.remove(var);
            }
        }
    }
}

fn name_term(e: &RegionExpr) -> Result<Term, ThematicError> {
    match e {
        RegionExpr::Ext(t) => Ok(to_term(t)),
        RegionExpr::Var(v) => Err(ThematicError::RegionVariable(v.clone())),
    }
}

fn to_term(t: &NameTerm) -> Term {
    match t {
        NameTerm::Var(v) => Term::var(v.clone()),
        NameTerm::Const(c) => Term::val(c.as_str()),
    }
}

/// `∃f. RegionFaces(a, f) ∧ RegionFaces(b, f)` — the interiors intersect.
fn interiors_intersect(a: &Term, b: &Term) -> Fo {
    let f = fresh("f");
    Fo::exists(
        f.clone(),
        Fo::and(vec![
            Fo::atom("RegionFaces", vec![a.clone(), Term::var(f.clone())]),
            Fo::atom("RegionFaces", vec![b.clone(), Term::var(f)]),
        ]),
    )
}

/// `a ⊆ b`: every face of `a` is a face of `b`.
fn subset_formula(a: &Term, b: &Term) -> Fo {
    let f = fresh("f");
    Fo::forall(
        f.clone(),
        Fo::implies(
            Fo::atom("RegionFaces", vec![a.clone(), Term::var(f.clone())]),
            Fo::atom("RegionFaces", vec![b.clone(), Term::var(f)]),
        ),
    )
}

/// Is edge `e` on the boundary of region `a`? It is iff its two incident
/// faces disagree about membership in `a`; incidence is read from `FaceEdges`.
fn edge_on_boundary(e: &str, a: &Term) -> Fo {
    let f1 = fresh("f");
    let f2 = fresh("f");
    Fo::exists(
        f1.clone(),
        Fo::exists(
            f2.clone(),
            Fo::and(vec![
                Fo::atom("FaceEdges", vec![Term::var(f1.clone()), Term::var(e)]),
                Fo::atom("FaceEdges", vec![Term::var(f2.clone()), Term::var(e)]),
                Fo::atom("RegionFaces", vec![a.clone(), Term::var(f1)]),
                Fo::not(Fo::atom("RegionFaces", vec![a.clone(), Term::var(f2)])),
            ]),
        ),
    )
}

/// Is edge `e` interior to region `a`? (On no boundary side: some incident
/// face is in `a` and it is not a boundary edge of `a`.)
fn edge_interior(e: &str, a: &Term) -> Fo {
    let f = fresh("f");
    Fo::and(vec![
        Fo::exists(
            f.clone(),
            Fo::and(vec![
                Fo::atom("FaceEdges", vec![Term::var(f.clone()), Term::var(e)]),
                Fo::atom("RegionFaces", vec![a.clone(), Term::var(f)]),
            ]),
        ),
        Fo::not(edge_on_boundary(e, a)),
    ])
}

/// Is vertex `v` on the boundary of `a`? Iff it is an endpoint of an edge on
/// the boundary of `a`.
fn vertex_on_boundary(v: &str, a: &Term) -> Fo {
    let e = fresh("e");
    Fo::exists(e.clone(), Fo::and(vec![endpoint_of(&e, v), edge_on_boundary(&e, a)]))
}

/// `v` is an endpoint of `e` (in either position of the Endpoints relation).
fn endpoint_of(e: &str, v: &str) -> Fo {
    let other = fresh("u");
    Fo::or(vec![
        Fo::exists(
            other.clone(),
            Fo::atom("Endpoints", vec![Term::var(e), Term::var(v), Term::var(other.clone())]),
        ),
        Fo::exists(
            other.clone(),
            Fo::atom("Endpoints", vec![Term::var(e), Term::var(other), Term::var(v)]),
        ),
    ])
}

/// Do the boundaries of `a` and `b` intersect? Either a common boundary edge
/// exists, or a vertex lies on both boundaries.
fn boundaries_intersect(a: &Term, b: &Term) -> Fo {
    let e = fresh("e");
    let v = fresh("v");
    Fo::or(vec![
        Fo::exists(
            e.clone(),
            Fo::and(vec![edge_on_boundary(&e, a), edge_on_boundary(&e, b)]),
        ),
        Fo::exists(
            v.clone(),
            Fo::and(vec![
                Fo::atom("Vertices", vec![Term::var(v.clone())]),
                vertex_on_boundary(&v, a),
                vertex_on_boundary(&v, b),
            ]),
        ),
    ])
}

/// Does the interior of `a` meet the boundary of `b`? Either a boundary edge
/// of `b` is interior to `a`, or a boundary vertex of `b` is "inside" `a`
/// (not on `a`'s boundary but incident to a cell of `a`).
fn interior_meets_boundary(a: &Term, b: &Term) -> Fo {
    let e = fresh("e");
    let v = fresh("v");
    let e2 = fresh("e");
    Fo::or(vec![
        Fo::exists(
            e.clone(),
            Fo::and(vec![edge_on_boundary(&e, b), edge_interior(&e, a)]),
        ),
        Fo::exists(
            v.clone(),
            Fo::and(vec![
                Fo::atom("Vertices", vec![Term::var(v.clone())]),
                vertex_on_boundary(&v, b),
                Fo::not(vertex_on_boundary(&v, a)),
                Fo::exists(
                    e2.clone(),
                    Fo::and(vec![endpoint_of(&e2, &v), edge_interior(&e2, a)]),
                ),
            ]),
        ),
    ])
}

/// The translation of a 4-intersection relation atom between two named
/// regions into a first-order formula over `Th`, following the relation's
/// defining 4-intersection matrix.
fn relation_formula(r: Relation4, a: &Term, b: &Term) -> Fo {
    let m = r.to_matrix();
    let lit = |cond: bool, f: Fo| if cond { f } else { Fo::not(f) };
    Fo::and(vec![
        lit(m.interiors, interiors_intersect(a, b)),
        lit(m.boundaries, boundaries_intersect(a, b)),
        lit(m.interior_a_boundary_b, interior_meets_boundary(a, b)),
        lit(m.boundary_a_interior_b, interior_meets_boundary(b, a)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Formula as F, RegionExpr as R};
    use invariant::thematic::to_database;
    use invariant::Invariant;
    use spatial_core::fixtures;
    use spatial_core::prelude::SpatialInstance;

    fn thematic(inst: &SpatialInstance) -> Database {
        to_database(&Invariant::of_instance(inst))
    }

    #[test]
    fn relation_atoms_answered_on_the_thematic_database() {
        // Corollary 3.7 in action: the relational query gives the same answer
        // as the geometric computation, for every relation and every Fig. 2
        // configuration.
        for (name, inst) in fixtures::fig_2_pairs() {
            let db = thematic(&inst);
            let expected = Relation4::from_name(name).unwrap();
            for r in Relation4::ALL {
                let q = F::rel(r, R::named("A"), R::named("B"));
                assert_eq!(
                    eval_on_thematic(&db, &q),
                    Ok(r == expected),
                    "{name} vs atom {r}"
                );
            }
        }
    }

    #[test]
    fn name_quantifiers_on_thematic() {
        // ∃a ∃b. ¬(a = b) ∧ overlap(a, b)
        let q = F::exists_name(
            "a",
            F::exists_name(
                "b",
                F::and(vec![
                    F::not(F::NameEq(NameTerm::Var("a".into()), NameTerm::Var("b".into()))),
                    F::rel(
                        Relation4::Overlap,
                        R::Ext(NameTerm::Var("a".into())),
                        R::Ext(NameTerm::Var("b".into())),
                    ),
                ]),
            ),
        );
        assert_eq!(eval_on_thematic(&thematic(&fixtures::fig_1a()), &q), Ok(true));
        assert_eq!(eval_on_thematic(&thematic(&fixtures::nested_three()), &q), Ok(false));
    }

    #[test]
    fn subset_and_connect_translation() {
        let db = thematic(&fixtures::nested_three());
        let sub = F::subset(R::named("C"), R::named("A"));
        assert_eq!(eval_on_thematic(&db, &sub), Ok(true));
        let sub2 = F::subset(R::named("A"), R::named("C"));
        assert_eq!(eval_on_thematic(&db, &sub2), Ok(false));
        let con = F::connect(R::named("A"), R::named("B"));
        assert_eq!(eval_on_thematic(&db, &con), Ok(true));
    }

    #[test]
    fn region_quantifiers_are_rejected() {
        let db = thematic(&fixtures::fig_1a());
        let q = F::exists_region("r", F::subset(R::var("r"), R::named("A")));
        assert!(matches!(eval_on_thematic(&db, &q), Err(ThematicError::RegionQuantifier(_))));
        let q2 = F::connect(R::var("r"), R::named("A"));
        assert!(matches!(eval_on_thematic(&db, &q2), Err(ThematicError::RegionVariable(_))));
    }

    #[test]
    fn agreement_with_cell_evaluator_on_pairwise_relations() {
        for inst in [fixtures::fig_1a(), fixtures::shared_boundary()] {
            let db = thematic(&inst);
            let names = inst.names();
            for a in &names {
                for b in &names {
                    if a == b {
                        continue;
                    }
                    for r in Relation4::ALL {
                        let q = F::rel(r, R::named(*a), R::named(*b));
                        let geometric = crate::cell_eval::eval_on_instance(&inst, &q).unwrap();
                        let relational = eval_on_thematic(&db, &q).unwrap();
                        assert_eq!(geometric, relational, "{a} {r} {b}");
                    }
                }
            }
        }
    }
}
