//! Evaluation of region-based queries by quantification over cell unions.
//!
//! This is the effective query evaluator proposed in the conclusion of the
//! paper (Section 7): quantifiers range over the *legitimate regions of the
//! instance's cell complex* — unions of cells of the arrangement that are
//! homeomorphic to a disc. For topological (H-generic) queries this domain is
//! sufficient: by Theorem 3.4 all topological information of the instance is
//! carried by the cell complex, and every topologically distinct witness
//! region can be deformed onto a union of cells.
//!
//! The evaluator represents every region (named or quantified) by the set of
//! *faces* it consists of; interiors, boundaries and closures of such regions
//! are exact unions of cells, so every 4-intersection atom is decided purely
//! combinatorially — this is the reduction of topological queries to the
//! invariant promised by Corollary 3.7, in executable form.

use crate::ast::{Formula, NameTerm, RegionExpr};
use crate::plan::{planner_enabled, Generator, QueryPlan};
use arrangement::{build_complex_view, BBox, ComplexRead, Sign, SpatialIndex};
use relations::{FourIntersectionMatrix, Relation4};
use spatial_core::prelude::SpatialInstance;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A region represented as the set of (bounded) faces it consists of.
pub type FaceSet = BTreeSet<usize>;

/// One satisfying assignment of a query's free name variables: variable →
/// region name. Produced by [`CellEvaluator::eval_bindings`] and carried by
/// `QueryOutput::Bindings` in the [`crate::prepared`] module.
pub type Bindings = BTreeMap<String, String>;

/// Errors raised during evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A name constant does not exist in the instance.
    UnknownName(String),
    /// A variable was used without being bound by a quantifier.
    UnboundVariable(String),
    /// The quantifier domain (all disc-like cell unions) exceeded the
    /// configured cap.
    DomainTooLarge {
        /// Number of candidate regions enumerated before giving up.
        regions_found: usize,
        /// The configured domain cap.
        cap: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownName(n) => write!(f, "unknown region name `{n}`"),
            EvalError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            EvalError::DomainTooLarge { regions_found, cap } => write!(
                f,
                "quantifier domain too large: more than {cap} candidate regions (found {regions_found})"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// The evaluation structure extracted from an instance's cell complex.
#[derive(Clone, Debug)]
pub struct CellEvaluator {
    face_count: usize,
    exterior: usize,
    /// For every face, the faces sharing an edge with it (dual graph).
    dual: Vec<BTreeSet<usize>>,
    /// For every edge, its two incident faces.
    edge_faces: Vec<(usize, usize)>,
    /// For every edge, its endpoint vertices.
    edge_vertices: Vec<(usize, usize)>,
    /// For every vertex, its incident faces.
    vertex_faces: Vec<BTreeSet<usize>>,
    /// Region names in canonical (sorted) order. Name variables bind to
    /// *indices* into this list during enumeration; strings are only
    /// materialized for result rows.
    names: Vec<String>,
    /// Named regions as face sets, aligned with `names`.
    name_sets: Vec<FaceSet>,
    /// Bounding box of every named region's boundary, aligned with `names`
    /// (`None` for a region contributing no boundary edge).
    bboxes: Vec<Option<BBox>>,
    /// The spatial index over `bboxes`, built on first planner use — or
    /// pre-seeded with the snapshot-cached index via
    /// [`CellEvaluator::with_spatial_index`] so all evaluators of one
    /// snapshot share one build.
    index: OnceLock<Arc<SpatialIndex>>,
    /// Number of candidate values tried during binding enumeration (naive
    /// and planned paths both count; shared by clones). See
    /// [`CellEvaluator::assignments_tried`].
    assignments: Arc<AtomicU64>,
    /// Number of `Rel` atoms answered by the bounding-box *disjointness*
    /// short-circuit without touching the complex (shared by clones). See
    /// [`CellEvaluator::rel_shortcuts_by_kind`].
    rel_shortcut_hits: Arc<AtomicU64>,
    /// Number of `Rel` atoms *refuted* by the bounding-box nesting
    /// short-circuit — a containment-implying atom whose operand boxes are
    /// not nested accordingly (shared by clones). See
    /// [`CellEvaluator::rel_shortcuts_by_kind`].
    rel_nesting_hits: Arc<AtomicU64>,
    /// All legitimate quantifier values (disc-like unions of bounded faces),
    /// enumerated lazily on first use. A [`std::sync::OnceLock`] (not a
    /// `Cell`-based cache) so the evaluator is `Sync` and can serve query
    /// traffic from many threads at once — the `topodb::Snapshot` read path
    /// shares one evaluator per snapshot.
    domain: OnceLock<Result<Vec<FaceSet>, EvalError>>,
    /// Cap on the number of candidate regions.
    domain_cap: usize,
}

impl CellEvaluator {
    /// Build the evaluator for an instance (constructs the zero-copy complex
    /// view).
    pub fn new(instance: &SpatialInstance) -> CellEvaluator {
        CellEvaluator::from_complex(&build_complex_view(instance))
    }

    /// Build the evaluator from an existing cell complex — either the flat
    /// [`arrangement::CellComplex`] or the zero-copy
    /// [`arrangement::GlobalComplexView`] (any [`ComplexRead`]
    /// implementation; the two are index-identical, so the evaluator does
    /// not depend on the representation).
    pub fn from_complex<C: ComplexRead>(complex: &C) -> CellEvaluator {
        let face_count = complex.face_count();
        let exterior = complex.exterior_face().0;
        let mut dual = vec![BTreeSet::new(); face_count];
        let mut edge_faces = Vec::with_capacity(complex.edge_count());
        let mut edge_vertices = Vec::with_capacity(complex.edge_count());
        for e in complex.edge_ids() {
            let (l, r) = complex.edge_faces(e);
            edge_faces.push((l.0, r.0));
            let (tail, head) = complex.edge_endpoints(e);
            edge_vertices.push((tail.0, head.0));
            if l != r {
                dual[l.0].insert(r.0);
                dual[r.0].insert(l.0);
            }
        }
        let mut vertex_faces = vec![BTreeSet::new(); complex.vertex_count()];
        for v in complex.vertex_ids() {
            for f in complex.vertex_faces(v) {
                vertex_faces[v.0].insert(f.0);
            }
        }
        let names: Vec<String> = complex.region_names().to_vec();
        debug_assert!(names.windows(2).all(|w| w[0] < w[1]), "region names are sorted");
        let name_sets: Vec<FaceSet> = names
            .iter()
            .map(|name| complex.region_faces(name).into_iter().map(|f| f.0).collect())
            .collect();
        let bboxes = complex.region_bboxes();
        CellEvaluator {
            face_count,
            exterior,
            dual,
            edge_faces,
            edge_vertices,
            vertex_faces,
            names,
            name_sets,
            bboxes,
            index: OnceLock::new(),
            assignments: Arc::new(AtomicU64::new(0)),
            rel_shortcut_hits: Arc::new(AtomicU64::new(0)),
            rel_nesting_hits: Arc::new(AtomicU64::new(0)),
            domain: OnceLock::new(),
            domain_cap: 100_000,
        }
    }

    /// Change the cap on the quantifier domain size.
    pub fn with_domain_cap(mut self, cap: usize) -> CellEvaluator {
        self.domain_cap = cap;
        self
    }

    /// Pre-seed the evaluator's spatial index with an already-built one
    /// (typically the snapshot-cached
    /// `GlobalComplexView::region_bbox_index`), so every evaluator of a
    /// snapshot shares one index build and one probe counter. A no-op if the
    /// evaluator already built its own.
    pub fn with_spatial_index(self, index: Arc<SpatialIndex>) -> CellEvaluator {
        let _ = self.index.set(index);
        self
    }

    /// The spatial index over the named regions' bounding boxes, built on
    /// first use (unless pre-seeded via
    /// [`CellEvaluator::with_spatial_index`]). The query planner draws its
    /// bbox-neighbor candidate generators from it.
    pub fn spatial_index(&self) -> &Arc<SpatialIndex> {
        self.index.get_or_init(|| Arc::new(SpatialIndex::build(&self.bboxes)))
    }

    /// How many candidate values the binding enumerators have tried (naive
    /// and planned paths both count one per variable-value attempt; the
    /// counter is shared by all clones). Together with
    /// [`SpatialIndex::probe_count`] this is the planner-work metric
    /// recorded by the bench snapshot.
    pub fn assignments_tried(&self) -> u64 {
        self.assignments.load(Ordering::Relaxed)
    }

    /// How many `Rel` atoms were answered by a bounding-box short-circuit
    /// (either kind) without computing a 4-intersection matrix. Shared by
    /// all clones; a planner-work metric like
    /// [`CellEvaluator::assignments_tried`]. The split by kind is
    /// [`CellEvaluator::rel_shortcuts_by_kind`].
    pub fn rel_shortcuts(&self) -> u64 {
        let (disjoint, nesting) = self.rel_shortcuts_by_kind();
        disjoint + nesting
    }

    /// The bounding-box short-circuit counts split by kind:
    /// `(disjointness, nesting)`.
    ///
    /// * **Disjointness** — both operands named, boxes not interacting:
    ///   every relation atom is *answered* (`disjoint` holds, the seven
    ///   others don't).
    /// * **Nesting** — both operands named, boxes interacting, but the atom
    ///   implies a containment its boxes refute: `contains`/`covers`
    ///   require the left box to contain the right, `inside`/`covered_by`
    ///   the converse, `equal` requires identical boxes. The atom is
    ///   answered `false`; atoms whose boxes *are* nested accordingly fall
    ///   through to the full classifier (nesting of boxes is necessary,
    ///   not sufficient).
    pub fn rel_shortcuts_by_kind(&self) -> (u64, u64) {
        (self.rel_shortcut_hits.load(Ordering::Relaxed), self.rel_nesting_hits.load(Ordering::Relaxed))
    }

    /// The region names known to the evaluator.
    pub fn names(&self) -> Vec<&str> {
        self.names.iter().map(String::as_str).collect()
    }

    /// The index of a region name in the canonical (sorted) name order.
    fn name_index(&self, name: &str) -> Option<usize> {
        self.names.binary_search_by(|n| n.as_str().cmp(name)).ok()
    }

    /// The face set of a named region.
    pub fn named_region(&self, name: &str) -> Option<&FaceSet> {
        Some(&self.name_sets[self.name_index(name)?])
    }

    /// All legitimate quantifier values: nonempty, dual-connected,
    /// simply-connected unions of bounded faces.
    pub fn quantifier_domain(&self) -> Result<&[FaceSet], EvalError> {
        let result = self.domain.get_or_init(|| self.enumerate_regions());
        match result {
            Ok(v) => Ok(v.as_slice()),
            Err(e) => Err(e.clone()),
        }
    }

    fn enumerate_regions(&self) -> Result<Vec<FaceSet>, EvalError> {
        let bounded: Vec<usize> = (0..self.face_count).filter(|&f| f != self.exterior).collect();
        let mut out: Vec<FaceSet> = Vec::new();
        // Enumerate connected subsets of the dual graph restricted to bounded
        // faces, by the standard "extend with larger-indexed neighbors of the
        // component, anchored at its minimum element" scheme.
        for &start in &bounded {
            let mut current: FaceSet = BTreeSet::from([start]);
            self.extend_regions(start, &mut current, &mut out)?;
        }
        // Keep only simply connected ones (complement connected through the
        // dual graph, exterior face included).
        let out = out.into_iter().filter(|s| self.complement_connected(s)).collect();
        Ok(out)
    }

    fn extend_regions(
        &self,
        anchor: usize,
        current: &mut FaceSet,
        out: &mut Vec<FaceSet>,
    ) -> Result<(), EvalError> {
        if out.len() >= self.domain_cap {
            return Err(EvalError::DomainTooLarge {
                regions_found: out.len(),
                cap: self.domain_cap,
            });
        }
        out.push(current.clone());
        // Candidate extensions: neighbors of the current set, larger than the
        // anchor, not already present.
        let mut candidates: Vec<usize> = Vec::new();
        for &f in current.iter() {
            for &g in &self.dual[f] {
                if g > anchor && g != self.exterior && !current.contains(&g) && !candidates.contains(&g)
                {
                    candidates.push(g);
                }
            }
        }
        candidates.sort();
        for (i, &g) in candidates.iter().enumerate() {
            // To avoid duplicates, only extend with candidates not adjacent to
            // a smaller unused candidate already rejected — the classic
            // enumeration uses an exclusion set; for the modest sizes used in
            // tests and benchmarks a simpler dedup via sorted insertion works:
            // skip if g could have been added before any candidate < g that is
            // also adjacent... Simplest correct approach: recurse excluding
            // previously tried candidates.
            current.insert(g);
            self.extend_regions_excluding(anchor, current, out, &candidates[..i])?;
            current.remove(&g);
        }
        Ok(())
    }

    fn extend_regions_excluding(
        &self,
        anchor: usize,
        current: &mut FaceSet,
        out: &mut Vec<FaceSet>,
        excluded: &[usize],
    ) -> Result<(), EvalError> {
        if out.len() >= self.domain_cap {
            return Err(EvalError::DomainTooLarge {
                regions_found: out.len(),
                cap: self.domain_cap,
            });
        }
        out.push(current.clone());
        let mut candidates: Vec<usize> = Vec::new();
        for &f in current.iter() {
            for &g in &self.dual[f] {
                if g > anchor
                    && g != self.exterior
                    && !current.contains(&g)
                    && !excluded.contains(&g)
                    && !candidates.contains(&g)
                {
                    candidates.push(g);
                }
            }
        }
        candidates.sort();
        for (i, &g) in candidates.iter().enumerate() {
            current.insert(g);
            let mut next_excluded = excluded.to_vec();
            next_excluded.extend_from_slice(&candidates[..i]);
            self.extend_regions_excluding(anchor, current, out, &next_excluded)?;
            current.remove(&g);
        }
        Ok(())
    }

    fn complement_connected(&self, s: &FaceSet) -> bool {
        let complement: Vec<usize> = (0..self.face_count).filter(|f| !s.contains(f)).collect();
        if complement.is_empty() {
            return false;
        }
        let start = self.exterior;
        let mut seen: BTreeSet<usize> = BTreeSet::from([start]);
        let mut stack = vec![start];
        while let Some(f) = stack.pop() {
            for &g in &self.dual[f] {
                if !s.contains(&g) && seen.insert(g) {
                    stack.push(g);
                }
            }
        }
        seen.len() == complement.len()
    }

    // ---- region part computations -------------------------------------

    /// Boundary edges of a face-set region: edges with exactly one incident
    /// face in the set.
    fn boundary_edges(&self, s: &FaceSet) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for (e, &(l, r)) in self.edge_faces.iter().enumerate() {
            if s.contains(&l) != s.contains(&r) {
                out.insert(e);
            }
        }
        out
    }

    /// Interior edges: both incident faces in the set.
    fn interior_edges(&self, s: &FaceSet) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for (e, &(l, r)) in self.edge_faces.iter().enumerate() {
            if s.contains(&l) && s.contains(&r) {
                out.insert(e);
            }
        }
        out
    }

    /// Boundary vertices: vertices with some but not all incident faces in
    /// the set.
    fn boundary_vertices(&self, s: &FaceSet) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for (v, faces) in self.vertex_faces.iter().enumerate() {
            let inside = faces.iter().filter(|f| s.contains(f)).count();
            if inside > 0 && inside < faces.len() {
                out.insert(v);
            }
        }
        out
    }

    /// Interior vertices: all incident faces in the set.
    fn interior_vertices(&self, s: &FaceSet) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for (v, faces) in self.vertex_faces.iter().enumerate() {
            if !faces.is_empty() && faces.iter().all(|f| s.contains(f)) {
                out.insert(v);
            }
        }
        out
    }

    /// Do the closures of two face-set regions intersect (the `connect`
    /// primitive)?
    pub fn connect(&self, a: &FaceSet, b: &FaceSet) -> bool {
        if a.intersection(b).next().is_some() {
            return true;
        }
        // Closure = faces + boundary edges + their endpoints + boundary
        // vertices; two disjoint face sets can only touch along boundary
        // cells.
        let be_a = self.boundary_edges(a);
        let be_b = self.boundary_edges(b);
        if be_a.intersection(&be_b).next().is_some() {
            return true;
        }
        let verts = |edges: &BTreeSet<usize>, faces: &FaceSet| -> BTreeSet<usize> {
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for &e in edges {
                out.insert(self.edge_vertices[e].0);
                out.insert(self.edge_vertices[e].1);
            }
            out.extend(self.boundary_vertices(faces));
            out.extend(self.interior_vertices(faces));
            out
        };
        verts(&be_a, a).intersection(&verts(&be_b, b)).next().is_some()
    }

    /// The exact 4-intersection matrix between two face-set regions.
    pub fn matrix(&self, a: &FaceSet, b: &FaceSet) -> FourIntersectionMatrix {
        let interiors = a.intersection(b).next().is_some();
        let be_a = self.boundary_edges(a);
        let be_b = self.boundary_edges(b);
        let bv_a = self.boundary_vertices(a);
        let bv_b = self.boundary_vertices(b);
        let boundaries = be_a.intersection(&be_b).next().is_some()
            || bv_a.intersection(&bv_b).next().is_some();
        let ie_a = self.interior_edges(a);
        let iv_a = self.interior_vertices(a);
        let ie_b = self.interior_edges(b);
        let iv_b = self.interior_vertices(b);
        // int(A) ∩ ∂B: a boundary cell of B that is an interior cell of A,
        // or a boundary *edge/vertex* of B lying inside a face of A — since
        // cells partition the plane, ∂B's cells are edges/vertices, and they
        // are inside A's interior iff they are interior edges/vertices of A
        // or they bound two faces that both belong to A (already covered) or
        // they are edges/vertices incident only to faces of A (also covered).
        let interior_a_boundary_b = be_b.intersection(&ie_a).next().is_some()
            || bv_b.intersection(&iv_a).next().is_some();
        let boundary_a_interior_b = be_a.intersection(&ie_b).next().is_some()
            || bv_a.intersection(&iv_b).next().is_some();
        FourIntersectionMatrix {
            interiors,
            boundaries,
            interior_a_boundary_b,
            boundary_a_interior_b,
        }
    }

    /// The 4-intersection relation between two face-set regions.
    pub fn relation(&self, a: &FaceSet, b: &FaceSet) -> Option<Relation4> {
        let m = self.matrix(a, b);
        if a == b {
            return Some(Relation4::Equal);
        }
        Relation4::from_matrix(m)
    }

    // ---- formula evaluation ---------------------------------------------

    /// Evaluate a sentence.
    pub fn eval(&self, formula: &Formula) -> Result<bool, EvalError> {
        let mut env = Environment::default();
        self.eval_inner(formula, &mut env)
    }

    /// Evaluate a formula with free name variables as a *set-returning*
    /// query: enumerate every assignment of the variables in `free` to region
    /// names of the instance and return, in lexicographic assignment order,
    /// the assignments under which the formula holds.
    ///
    /// `free` is typically `formula.free_name_vars()`; passing a variable the
    /// formula does not mention is allowed (it ranges over all names and
    /// multiplies the result rows), and passing a closed formula with
    /// `free = []` returns either one empty row (the formula holds) or no
    /// rows — the relational-algebra convention for 0-ary queries.
    pub fn eval_bindings(
        &self,
        formula: &Formula,
        free: &[String],
    ) -> Result<Vec<Bindings>, EvalError> {
        if free.is_empty() || !planner_enabled() {
            return self.eval_bindings_naive(formula, free);
        }
        self.eval_bindings_planned(formula, &QueryPlan::build(formula, free))
    }

    /// The cartesian-product enumerator: every assignment of `free` over
    /// `names(I)` is tried and the formula evaluated on each — `O(n^k)`
    /// evaluations. Kept as the planner's differential oracle (the
    /// `QUERY_PLANNER=off` path); see [`CellEvaluator::eval_bindings`] and
    /// the crate docs' "Planning model" section.
    pub fn eval_bindings_naive(
        &self,
        formula: &Formula,
        free: &[String],
    ) -> Result<Vec<Bindings>, EvalError> {
        let mut env = Environment::default();
        let mut out = Vec::new();
        self.eval_bindings_inner(formula, free, &mut env, &mut out)?;
        Ok(out)
    }

    fn eval_bindings_inner(
        &self,
        formula: &Formula,
        free: &[String],
        env: &mut Environment,
        out: &mut Vec<Bindings>,
    ) -> Result<(), EvalError> {
        match free.split_first() {
            None => {
                if self.eval_inner(formula, env)? {
                    out.push(self.materialize_row(&env.names));
                }
                Ok(())
            }
            Some((var, rest)) => {
                // Bind by *index*, mutating one map slot per candidate — no
                // per-candidate string clones in the hot loop.
                env.names.insert(var.clone(), usize::MAX);
                let mut result = Ok(());
                for idx in 0..self.names.len() {
                    self.assignments.fetch_add(1, Ordering::Relaxed);
                    *env.names.get_mut(var).expect("bound above") = idx;
                    result = self.eval_bindings_inner(formula, rest, env, out);
                    if result.is_err() {
                        break;
                    }
                }
                env.names.remove(var);
                result
            }
        }
    }

    /// Run the semi-join enumerator of a pre-built [`QueryPlan`] (whose
    /// variable list must describe `formula`'s free variables — this is what
    /// [`crate::PreparedQuery`] stores at compile time). See the crate docs'
    /// "Planning model" section for the strategy and its guarantees.
    pub fn eval_bindings_planned(
        &self,
        formula: &Formula,
        plan: &QueryPlan,
    ) -> Result<Vec<Bindings>, EvalError> {
        let k = plan.vars().len();
        if k == 0 {
            return self.eval_bindings_naive(formula, &[]);
        }
        if self.names.is_empty() {
            return Ok(Vec::new());
        }
        let mut ctx = PlanCtx::new(self.names.len());
        let order = self.plan_order_ids(plan, &mut ctx);
        let mut pos_of = vec![0usize; k];
        for (p, &v) in order.iter().enumerate() {
            pos_of[v] = p;
        }

        // Schedule every conjunct at the earliest position where all its
        // plan variables are bound; variable-free conjuncts run up front
        // (pruning the whole enumeration when one is false).
        let mut ready_at: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut env = Environment::default();
        for (ci, conjunct) in plan.conjuncts().iter().enumerate() {
            match conjunct.vars.iter().map(|&v| pos_of[v]).max() {
                Some(last) => ready_at[last].push(ci),
                None => {
                    if !self.eval_inner(&conjunct.formula, &mut env)? {
                        return Ok(Vec::new());
                    }
                }
            }
        }

        let mut assignment: Vec<usize> = vec![usize::MAX; k];
        let mut rows: Vec<Vec<usize>> = Vec::new();
        self.enumerate_planned(
            0,
            &order,
            &ready_at,
            plan,
            &mut ctx,
            &mut env,
            &mut assignment,
            &mut rows,
        )?;
        // The enumeration visits variables in selectivity order; the output
        // contract (matching the naive path) is lexicographic in the *free*
        // variable order, which — names being sorted — is exactly the index
        // order of the assignment vectors.
        rows.sort_unstable();
        Ok(rows
            .into_iter()
            .map(|vals| {
                plan.vars()
                    .iter()
                    .zip(&vals)
                    .map(|(v, &i)| (v.clone(), self.names[i].clone()))
                    .collect()
            })
            .collect())
    }

    /// The planner's variable binding order: greedy smallest-estimated
    /// candidate set first (see [`CellEvaluator::planned_var_order`]).
    fn plan_order_ids(&self, plan: &QueryPlan, ctx: &mut PlanCtx) -> Vec<usize> {
        let k = plan.vars().len();
        let mut order: Vec<usize> = Vec::with_capacity(k);
        let mut placed = vec![false; k];
        for _ in 0..k {
            let mut best: Option<(usize, usize)> = None;
            for v in 0..k {
                if placed[v] {
                    continue;
                }
                let est = self.estimate_candidates(plan.generators(v), &placed, ctx);
                if best.is_none_or(|(be, _)| est < be) {
                    best = Some((est, v));
                }
            }
            let (_, v) = best.expect("an unplaced variable remains");
            placed[v] = true;
            order.push(v);
        }
        order
    }

    /// Estimated candidate-set size of a variable given which variables are
    /// already ordered before it: 1 for an exact pin, the index-reported
    /// neighbor count for a constant contact, the instance's average bbox
    /// degree for a contact with an earlier variable, `n` when
    /// unconstrained. The minimum over the usable generators.
    fn estimate_candidates(
        &self,
        generators: &[Generator],
        placed: &[bool],
        ctx: &mut PlanCtx,
    ) -> usize {
        let n = self.names.len();
        let mut est = n;
        for g in generators {
            let e = match g {
                Generator::ExactConst(c) => self.name_index(c).map(|_| 1),
                Generator::ExactVar(u) => placed[*u].then_some(1),
                Generator::NeighborsOfConst(c) => self
                    .name_index(c)
                    .and_then(|i| self.neighbor_count(i, ctx)),
                Generator::NeighborsOfVar(u) => {
                    placed[*u].then(|| self.average_degree(ctx))
                }
            };
            if let Some(e) = e {
                est = est.min(e);
            }
        }
        est
    }

    /// The planner's variable binding order for a plan, by name — greedy
    /// selectivity ordering, exposed for inspection and tests. The first
    /// variable is the one with the smallest estimated candidate set (ties
    /// broken by plan position, so the order is deterministic).
    pub fn planned_var_order(&self, plan: &QueryPlan) -> Vec<String> {
        let mut ctx = PlanCtx::new(self.names.len());
        self.plan_order_ids(plan, &mut ctx)
            .into_iter()
            .map(|v| plan.vars()[v].clone())
            .collect()
    }

    /// The cached bbox-neighbor list of a named region (`None` when the
    /// region has no box — then nothing can be pruned through it).
    fn neighbor_list<'c>(&self, i: usize, ctx: &'c mut PlanCtx) -> Option<&'c Vec<usize>> {
        self.bboxes[i].as_ref()?;
        Some(ctx.neighbors[i].get_or_insert_with(|| {
            self.spatial_index()
                .bbox_neighbors(self.bboxes[i].as_ref().expect("checked above"))
        }))
    }

    fn neighbor_count(&self, i: usize, ctx: &mut PlanCtx) -> Option<usize> {
        self.neighbor_list(i, ctx).map(Vec::len)
    }

    /// Average bbox-neighbor count over all names (the planner's stand-in
    /// selectivity for contact atoms whose other side is not yet bound),
    /// computed once per evaluation.
    fn average_degree(&self, ctx: &mut PlanCtx) -> usize {
        if let Some(d) = ctx.avg_degree {
            return d;
        }
        let n = self.names.len();
        let total: usize =
            (0..n).map(|i| self.neighbor_count(i, ctx).unwrap_or(n)).sum();
        let d = (total / n.max(1)).max(1);
        ctx.avg_degree = Some(d);
        d
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_planned(
        &self,
        pos: usize,
        order: &[usize],
        ready_at: &[Vec<usize>],
        plan: &QueryPlan,
        ctx: &mut PlanCtx,
        env: &mut Environment,
        assignment: &mut Vec<usize>,
        rows: &mut Vec<Vec<usize>>,
    ) -> Result<(), EvalError> {
        if pos == order.len() {
            rows.push(assignment.clone());
            return Ok(());
        }
        let var_id = order[pos];
        let var = &plan.vars()[var_id];

        // Intersect the candidate sets of every generator usable at this
        // point; no usable generator means the full name range. A generator
        // that fails to resolve (unknown constant, boxless region) is
        // skipped — pruning may only shrink, never decide; the conjunct
        // itself still runs as a filter below.
        let mut candidates: Option<Vec<usize>> = None;
        for g in plan.generators(var_id) {
            let set: Option<Vec<usize>> = match g {
                Generator::ExactConst(c) => self.name_index(c).map(|i| vec![i]),
                Generator::ExactVar(u) => {
                    (assignment[*u] != usize::MAX).then(|| vec![assignment[*u]])
                }
                Generator::NeighborsOfConst(c) => self
                    .name_index(c)
                    .and_then(|i| self.neighbor_list(i, ctx).cloned()),
                Generator::NeighborsOfVar(u) => (assignment[*u] != usize::MAX)
                    .then(|| self.neighbor_list(assignment[*u], ctx).cloned())
                    .flatten(),
            };
            if let Some(set) = set {
                candidates = Some(match candidates {
                    None => set,
                    Some(prev) => intersect_sorted(&prev, &set),
                });
            }
        }
        let candidates =
            candidates.unwrap_or_else(|| (0..self.names.len()).collect());

        env.names.insert(var.clone(), usize::MAX);
        for idx in candidates {
            self.assignments.fetch_add(1, Ordering::Relaxed);
            assignment[var_id] = idx;
            *env.names.get_mut(var).expect("bound above") = idx;
            // Semi-join filters: every conjunct whose last variable is this
            // one is decided now, pruning the whole subtree on failure.
            let mut keep = true;
            for &ci in &ready_at[pos] {
                if !self.eval_inner(&plan.conjuncts()[ci].formula, env)? {
                    keep = false;
                    break;
                }
            }
            if keep {
                self.enumerate_planned(
                    pos + 1,
                    order,
                    ready_at,
                    plan,
                    ctx,
                    env,
                    assignment,
                    rows,
                )?;
            }
        }
        assignment[var_id] = usize::MAX;
        env.names.remove(var);
        Ok(())
    }

    /// Materialize a result row from the interned environment.
    fn materialize_row(&self, names_env: &BTreeMap<String, usize>) -> Bindings {
        names_env
            .iter()
            .map(|(v, &i)| (v.clone(), self.names[i].clone()))
            .collect()
    }

    fn resolve_name(&self, t: &NameTerm, env: &Environment) -> Result<usize, EvalError> {
        match t {
            NameTerm::Const(c) => {
                self.name_index(c).ok_or_else(|| EvalError::UnknownName(c.clone()))
            }
            NameTerm::Var(v) => env
                .names
                .get(v)
                .copied()
                .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
        }
    }

    fn resolve_region(&self, e: &RegionExpr, env: &Environment) -> Result<FaceSet, EvalError> {
        match e {
            RegionExpr::Var(v) => env
                .regions
                .get(v)
                .cloned()
                .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
            RegionExpr::Ext(t) => {
                let idx = self.resolve_name(t, env)?;
                Ok(self.name_sets[idx].clone())
            }
        }
    }

    fn eval_inner(&self, formula: &Formula, env: &mut Environment) -> Result<bool, EvalError> {
        match formula {
            Formula::Rel(r, p, q) => {
                // Bounding-box short-circuits for named operands: a
                // region's closure lies inside its boundary bbox, so (a)
                // two named regions whose boxes don't interact are provably
                // `disjoint`, and (b) a containment-implying atom whose
                // boxes are not nested accordingly is provably false —
                // `contains`/`covers` imply the right closure sits inside
                // the left (so the right box inside the left box),
                // `inside`/`covered_by` the converse, `equal` implies
                // identical boundaries and hence identical boxes. Either
                // way the atom is answered without materializing face sets
                // or intersecting cell sets. Anonymous (quantified)
                // operands have no precomputed box and fall through to the
                // full 4-intersection classifier, as do the degenerate
                // cases (missing box, empty face set — empty regions
                // compare `equal` whatever their boxes).
                if let (RegionExpr::Ext(pt), RegionExpr::Ext(qt)) = (p, q) {
                    let pi = self.resolve_name(pt, env)?;
                    let qi = self.resolve_name(qt, env)?;
                    if let (Some(pb), Some(qb)) = (&self.bboxes[pi], &self.bboxes[qi]) {
                        if !self.name_sets[pi].is_empty() && !self.name_sets[qi].is_empty() {
                            if !pb.intersects(qb) {
                                self.rel_shortcut_hits.fetch_add(1, Ordering::Relaxed);
                                return Ok(*r == Relation4::Disjoint);
                            }
                            let nested = match r {
                                Relation4::Contains | Relation4::Covers => pb.contains_box(qb),
                                Relation4::Inside | Relation4::CoveredBy => qb.contains_box(pb),
                                Relation4::Equal => pb == qb,
                                _ => true,
                            };
                            if !nested {
                                self.rel_nesting_hits.fetch_add(1, Ordering::Relaxed);
                                return Ok(false);
                            }
                        }
                    }
                    let a = self.name_sets[pi].clone();
                    let b = self.name_sets[qi].clone();
                    return Ok(self.relation(&a, &b) == Some(*r));
                }
                let a = self.resolve_region(p, env)?;
                let b = self.resolve_region(q, env)?;
                Ok(self.relation(&a, &b) == Some(*r))
            }
            Formula::Connect(p, q) => {
                let a = self.resolve_region(p, env)?;
                let b = self.resolve_region(q, env)?;
                Ok(self.connect(&a, &b))
            }
            Formula::Subset(p, q) => {
                let a = self.resolve_region(p, env)?;
                let b = self.resolve_region(q, env)?;
                Ok(a.is_subset(&b))
            }
            Formula::NameEq(x, y) => {
                Ok(self.resolve_name(x, env)? == self.resolve_name(y, env)?)
            }
            Formula::Not(f) => Ok(!self.eval_inner(f, env)?),
            Formula::And(fs) => {
                for f in fs {
                    if !self.eval_inner(f, env)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(fs) => {
                for f in fs {
                    if self.eval_inner(f, env)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::ExistsRegion(v, f) => self.quantify_region(v, f, env, true),
            Formula::ForallRegion(v, f) => self.quantify_region(v, f, env, false),
            Formula::ExistsName(v, f) => self.quantify_name(v, f, env, true),
            Formula::ForallName(v, f) => self.quantify_name(v, f, env, false),
        }
    }

    /// Evaluate `body` with `var` bound to every quantifier-domain region in
    /// turn, short-circuiting on the decisive value (`existential`: first
    /// witness; otherwise first counterexample). Any outer binding of the
    /// same variable name — a shadowed quantifier or a free variable being
    /// enumerated by [`CellEvaluator::eval_bindings`] — is restored before
    /// returning.
    fn quantify_region(
        &self,
        var: &str,
        body: &Formula,
        env: &mut Environment,
        existential: bool,
    ) -> Result<bool, EvalError> {
        let domain = self.quantifier_domain()?.to_vec();
        let saved = env.regions.remove(var);
        let mut result = Ok(!existential);
        for value in domain {
            env.regions.insert(var.to_string(), value);
            match self.eval_inner(body, env) {
                Ok(b) if b == existential => {
                    result = Ok(existential);
                    break;
                }
                Ok(_) => {}
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        env.regions.remove(var);
        if let Some(outer) = saved {
            env.regions.insert(var.to_string(), outer);
        }
        result
    }

    /// Name-variable counterpart of [`CellEvaluator::quantify_region`]: the
    /// domain is `names(I)`, with the same shadow-restoring contract.
    fn quantify_name(
        &self,
        var: &str,
        body: &Formula,
        env: &mut Environment,
        existential: bool,
    ) -> Result<bool, EvalError> {
        let saved = env.names.remove(var);
        let mut result = Ok(!existential);
        for idx in 0..self.names.len() {
            env.names.insert(var.to_string(), idx);
            match self.eval_inner(body, env) {
                Ok(b) if b == existential => {
                    result = Ok(existential);
                    break;
                }
                Ok(_) => {}
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        env.names.remove(var);
        if let Some(outer) = saved {
            env.names.insert(var.to_string(), outer);
        }
        result
    }
}

/// Variable bindings during evaluation. Name variables bind to *indices*
/// into the evaluator's sorted name list (interning — the enumeration hot
/// loops never clone a name string); region variables bind to face sets.
#[derive(Default)]
struct Environment {
    regions: BTreeMap<String, FaceSet>,
    names: BTreeMap<String, usize>,
}

/// Per-evaluation planner scratch: lazily-filled bbox-neighbor lists (one
/// probe per region per evaluation at most) and the memoized average degree.
struct PlanCtx {
    neighbors: Vec<Option<Vec<usize>>>,
    avg_degree: Option<usize>,
}

impl PlanCtx {
    fn new(n: usize) -> PlanCtx {
        PlanCtx { neighbors: vec![None; n], avg_degree: None }
    }
}

/// Intersection of two ascending-sorted index lists.
fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Evaluate a sentence on an instance (builds the cell complex and the
/// evaluator internally).
pub fn eval_on_instance(instance: &SpatialInstance, formula: &Formula) -> Result<bool, EvalError> {
    CellEvaluator::new(instance).eval(formula)
}

/// The set of faces of a complex labeled interior to *all* of the given
/// regions (a helper used by example programs).
pub fn common_faces<C: ComplexRead>(complex: &C, regions: &[&str]) -> FaceSet {
    let idxs: Vec<usize> =
        regions.iter().filter_map(|r| complex.region_index(r)).collect();
    complex
        .face_ids()
        .filter(|&f| idxs.iter().all(|&i| complex.face_sign(f, i) == Sign::Interior))
        .map(|f| f.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Formula as F, RegionExpr as R};
    use relations::Relation4::*;
    use spatial_core::fixtures;

    /// The paper's Example 4.1 query: ∃r. r ⊆ A ∧ r ⊆ B ∧ r ⊆ C.
    fn triple_intersection_query() -> Formula {
        F::exists_region(
            "r",
            F::and(vec![
                F::subset(R::var("r"), R::named("A")),
                F::subset(R::var("r"), R::named("B")),
                F::subset(R::var("r"), R::named("C")),
            ]),
        )
    }

    /// The paper's Example 4.2 query (connected intersection):
    /// ∀r ∀r'. (r ⊆ A ∧ r ⊆ B ∧ r' ⊆ A ∧ r' ⊆ B) →
    ///          ∃r''. r'' ⊆ A ∧ r'' ⊆ B ∧ connect(r'', r) ∧ connect(r'', r').
    fn connected_intersection_query() -> Formula {
        let inside_ab = |v: &str| {
            F::and(vec![
                F::subset(R::var(v), R::named("A")),
                F::subset(R::var(v), R::named("B")),
            ])
        };
        F::forall_region(
            "r",
            F::forall_region(
                "s",
                F::implies(
                    F::and(vec![inside_ab("r"), inside_ab("s")]),
                    F::exists_region(
                        "t",
                        F::and(vec![
                            inside_ab("t"),
                            F::connect(R::var("t"), R::var("r")),
                            F::connect(R::var("t"), R::var("s")),
                        ]),
                    ),
                ),
            ),
        )
    }

    #[test]
    fn example_4_1_separates_fig_1a_from_1b() {
        let q = triple_intersection_query();
        assert_eq!(eval_on_instance(&fixtures::fig_1a(), &q), Ok(true));
        assert_eq!(eval_on_instance(&fixtures::fig_1b(), &q), Ok(false));
    }

    #[test]
    fn example_4_2_separates_fig_1c_from_1d() {
        let q = connected_intersection_query();
        assert_eq!(eval_on_instance(&fixtures::fig_1c(), &q), Ok(true));
        assert_eq!(eval_on_instance(&fixtures::fig_1d(), &q), Ok(false));
    }

    #[test]
    fn example_2_1_connected_component_count() {
        // "A ∩ B has one connected component" holds for 1a, 1b, 1c, not 1d.
        let q = connected_intersection_query();
        assert_eq!(eval_on_instance(&fixtures::fig_1a(), &q), Ok(true));
        assert_eq!(eval_on_instance(&fixtures::fig_1b(), &q), Ok(true));
    }

    #[test]
    fn relation_atoms_match_geometric_relations() {
        for (name, inst) in fixtures::fig_2_pairs() {
            let expected = relations::Relation4::from_name(name).unwrap();
            for r in relations::Relation4::ALL {
                let q = F::rel(r, R::named("A"), R::named("B"));
                assert_eq!(
                    eval_on_instance(&inst, &q),
                    Ok(r == expected),
                    "{name} vs atom {r}"
                );
            }
        }
    }

    #[test]
    fn rel_bbox_shortcut_answers_disjoint_and_counts() {
        use spatial_core::prelude::Region;
        let inst = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 2, 2)),
            ("B", Region::rect_from_ints(10, 10, 12, 12)),
        ]);
        let ev = CellEvaluator::new(&inst);
        assert_eq!(ev.rel_shortcuts(), 0);
        for r in relations::Relation4::ALL {
            let q = F::rel(r, R::named("A"), R::named("B"));
            assert_eq!(ev.eval(&q), Ok(r == Disjoint), "atom {r}");
        }
        assert_eq!(
            ev.rel_shortcuts(),
            relations::Relation4::ALL.len() as u64,
            "every named atom over box-disjoint regions short-circuits"
        );
    }

    #[test]
    fn rel_shortcut_falls_through_when_boxes_interact() {
        use spatial_core::prelude::{Polygon, Region};
        // Disjoint regions with *interacting* boxes: the triangle's bbox
        // contains the square, but the square lies beyond the hypotenuse —
        // the full 4-intersection classifier must answer, not the shortcut.
        let tri = Polygon::from_ints(&[(0, 0), (10, 0), (0, 10)]).unwrap();
        let inst = SpatialInstance::from_regions([
            ("A", Region::polygon(tri)),
            ("B", Region::rect_from_ints(7, 7, 9, 9)),
        ]);
        let ev = CellEvaluator::new(&inst);
        let q = F::rel(Disjoint, R::named("A"), R::named("B"));
        assert_eq!(ev.eval(&q), Ok(true));
        assert_eq!(ev.rel_shortcuts(), 0, "interacting boxes must not shortcut");
    }

    #[test]
    fn rel_nesting_shortcut_refutes_containment_atoms() {
        use spatial_core::prelude::Region;
        // Overlapping boxes, neither containing the other, and unequal:
        // every containment-implying atom is refuted by nesting alone,
        // while `disjoint`/`meet`/`overlap` fall through to the classifier.
        let inst = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 6, 6)),
            ("B", Region::rect_from_ints(4, 4, 10, 10)),
        ]);
        let ev = CellEvaluator::new(&inst);
        for r in [
            relations::Relation4::Contains,
            relations::Relation4::Inside,
            relations::Relation4::Covers,
            relations::Relation4::CoveredBy,
            relations::Relation4::Equal,
        ] {
            let q = F::rel(r, R::named("A"), R::named("B"));
            assert_eq!(ev.eval(&q), Ok(false), "atom {r}");
        }
        let (disjoint_hits, nesting_hits) = ev.rel_shortcuts_by_kind();
        assert_eq!(disjoint_hits, 0, "boxes interact, the disjointness kind never fires");
        assert_eq!(nesting_hits, 5, "every containment-implying atom was refuted by nesting");
        assert_eq!(ev.rel_shortcuts(), 5, "the total is the sum of both kinds");
    }

    #[test]
    fn rel_nesting_shortcut_falls_through_when_boxes_nest() {
        use spatial_core::prelude::{Polygon, Region};
        // The triangle's bbox contains the square's, but the square lies
        // beyond the hypotenuse: `contains(A, B)` is false *geometrically*,
        // and only the full classifier can tell — nested boxes are
        // necessary, not sufficient, so the shortcut must not fire.
        let tri = Polygon::from_ints(&[(0, 0), (10, 0), (0, 10)]).unwrap();
        let inst = SpatialInstance::from_regions([
            ("A", Region::polygon(tri)),
            ("B", Region::rect_from_ints(7, 7, 9, 9)),
        ]);
        let ev = CellEvaluator::new(&inst);
        let q = F::rel(relations::Relation4::Contains, R::named("A"), R::named("B"));
        assert_eq!(ev.eval(&q), Ok(false));
        assert_eq!(ev.rel_shortcuts(), 0, "nested boxes must reach the classifier");

        // And a true containment with nested boxes also falls through —
        // the shortcut only ever *refutes*.
        let inst2 = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 10, 10)),
            ("B", Region::rect_from_ints(3, 3, 6, 6)),
        ]);
        let ev2 = CellEvaluator::new(&inst2);
        let q2 = F::rel(relations::Relation4::Contains, R::named("A"), R::named("B"));
        assert_eq!(ev2.eval(&q2), Ok(true));
        assert_eq!(ev2.rel_shortcuts(), 0);
    }

    #[test]
    fn rel_nesting_shortcut_agrees_with_classifier_on_fig_2_pairs() {
        // Differential: on every fig. 2 pair, every atom answered with the
        // shortcuts enabled equals the pure classifier's verdict (the
        // shortcut only fires where the classifier would agree).
        for (name, inst) in fixtures::fig_2_pairs() {
            let expected = relations::Relation4::from_name(name).unwrap();
            let ev = CellEvaluator::new(&inst);
            for r in relations::Relation4::ALL {
                let q = F::rel(r, R::named("A"), R::named("B"));
                assert_eq!(ev.eval(&q), Ok(r == expected), "{name} vs atom {r}");
            }
        }
    }

    #[test]
    fn name_quantifiers() {
        // ∃a ∃b. a ≠ b ∧ overlap(a, b)
        let q = F::exists_name(
            "a",
            F::exists_name(
                "b",
                F::and(vec![
                    F::not(F::NameEq(NameTerm::Var("a".into()), NameTerm::Var("b".into()))),
                    F::rel(Overlap, R::Ext(NameTerm::Var("a".into())), R::Ext(NameTerm::Var("b".into()))),
                ]),
            ),
        );
        assert_eq!(eval_on_instance(&fixtures::fig_1a(), &q), Ok(true));
        assert_eq!(eval_on_instance(&fixtures::nested_three(), &q), Ok(false));
        // ∀a ∀b. a = b ∨ ¬disjoint(a, b)
        let q2 = F::forall_name(
            "a",
            F::forall_name(
                "b",
                F::or(vec![
                    F::NameEq(NameTerm::Var("a".into()), NameTerm::Var("b".into())),
                    F::not(F::rel(Disjoint, R::Ext(NameTerm::Var("a".into())), R::Ext(NameTerm::Var("b".into())))),
                ]),
            ),
        );
        assert_eq!(eval_on_instance(&fixtures::fig_1a(), &q2), Ok(true));
    }

    #[test]
    fn desugared_formulas_agree_with_primitive_ones() {
        // The connect-only rewriting of Section 4 is an equivalence over the
        // full Disc domain; over the impoverished cell domain of a tiny
        // two-region instance only the rewriting of `disjoint` (which is
        // simply ¬connect) remains exact, so that is what is checked here.
        // The richer instances used by the benchmark harness exercise more of
        // the rewriting.
        for (name, inst) in fixtures::fig_2_pairs() {
            let expected = relations::Relation4::from_name(name).unwrap();
            {
                let r = Disjoint;
                let q = F::rel(r, R::named("A"), R::named("B"));
                let desugared = q.desugar();
                assert_eq!(
                    eval_on_instance(&inst, &desugared),
                    Ok(r == expected),
                    "{name} vs desugared {r}"
                );
            }
        }
    }

    #[test]
    fn shadowed_quantifier_variables_are_restored() {
        // The inner `exists r` shadows the outer `r`; the outer binding must
        // be visible again in the conjunct evaluated after the inner
        // quantifier returns.
        let q = F::exists_region(
            "r",
            F::and(vec![
                F::exists_region("r", F::subset(R::var("r"), R::named("B"))),
                F::subset(R::var("r"), R::named("A")),
            ]),
        );
        assert_eq!(eval_on_instance(&fixtures::fig_1c(), &q), Ok(true));
        // Same for name variables.
        let qn = F::exists_name(
            "a",
            F::and(vec![
                F::exists_name("a", F::rel(Overlap, R::Ext(NameTerm::Var("a".into())), R::named("B"))),
                F::rel(Overlap, R::Ext(NameTerm::Var("a".into())), R::named("B"))],
            ),
        );
        assert_eq!(eval_on_instance(&fixtures::fig_1c(), &qn), Ok(true));
    }

    #[test]
    fn unknown_names_and_unbound_variables_error() {
        let inst = fixtures::fig_1c();
        assert_eq!(
            eval_on_instance(&inst, &F::connect(R::named("Z"), R::named("A"))),
            Err(EvalError::UnknownName("Z".into()))
        );
        assert_eq!(
            eval_on_instance(&inst, &F::connect(R::var("r"), R::named("A"))),
            Err(EvalError::UnboundVariable("r".into()))
        );
    }

    #[test]
    fn quantifier_domain_is_reasonable() {
        let ev = CellEvaluator::new(&fixtures::fig_1c());
        let domain = ev.quantifier_domain().unwrap();
        // fig 1c has 3 bounded faces arranged in a path in the dual graph:
        // A-only – lens – B-only. Connected, simply connected subsets:
        // {1}, {2}, {3}, {1,2}, {2,3}, {1,2,3} = 6.
        assert_eq!(domain.len(), 6);
        // A tiny cap triggers the explicit error.
        let capped = CellEvaluator::new(&fixtures::fig_1c()).with_domain_cap(2);
        assert!(matches!(
            capped.quantifier_domain(),
            Err(EvalError::DomainTooLarge { .. })
        ));
    }

    #[test]
    fn named_region_relations_via_cells() {
        let ev = CellEvaluator::new(&fixtures::nested_three());
        let a = ev.named_region("A").unwrap().clone();
        let b = ev.named_region("B").unwrap().clone();
        let c = ev.named_region("C").unwrap().clone();
        assert_eq!(ev.relation(&a, &b), Some(Contains));
        assert_eq!(ev.relation(&b, &a), Some(Inside));
        assert_eq!(ev.relation(&c, &a), Some(Inside));
        assert_eq!(ev.relation(&a, &a), Some(Equal));
        assert!(ev.connect(&a, &b));
    }
}
