//! Compile-time query plans for set-returning (open) queries: candidate
//! generators and semi-join conjunct scheduling.
//!
//! A formula with `k` free name variables is a set-returning query; the
//! textbook evaluation enumerates the full cartesian product `names(I)^k`
//! and tests the formula on every assignment — `O(n^k)` full evaluations.
//! [`QueryPlan`] extracts, *once per query*, everything the evaluator needs
//! to do better (the relational-engine semi-join strategy, grounded
//! spatially):
//!
//! * **Conjunct split.** The formula's top-level conjunction is flattened
//!   into conjuncts, each annotated with the free variables it mentions.
//!   During enumeration a conjunct is checked as soon as its last variable
//!   is bound (a *semi-join filter*), so an assignment prefix that already
//!   fails some conjunct is pruned before the remaining variables multiply
//!   it by `n` each.
//! * **Candidate generators.** A positive top-level atom that relates a free
//!   variable to another term restricts where the variable can range:
//!   `x = C` pins it to one name ([`Generator::ExactConst`]); a
//!   closure-contact-implying atom (every [`relations::Relation4`] except
//!   `disjoint` — see [`relations::Relation4::implies_closure_contact`] — plus `connect` and
//!   `subset`) against a bound term means the variable's region must touch
//!   the bound region's closure, so its bounding box must intersect that
//!   region's box and the variable ranges only over the spatial index's bbox
//!   neighbors ([`Generator::NeighborsOfConst`] /
//!   [`Generator::NeighborsOfVar`]) instead of all `n` names.
//!
//! The plan is pure query-side analysis — it holds no instance data, is
//! built by [`PreparedQuery`](crate::PreparedQuery) at compile time, and is
//! reused across snapshots of any epoch. The data-dependent half (ordering
//! the variables by estimated candidate-set size and running the actual
//! enumeration against a spatial index) lives in
//! [`CellEvaluator`](crate::cell_eval::CellEvaluator); see the crate docs'
//! "Planning model" section for the contract between the two.

use crate::ast::{Formula, NameTerm, RegionExpr};

/// How a free variable's candidate set can be narrowed, extracted from one
/// positive top-level atom. Variables are identified by their index in
/// [`QueryPlan::vars`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Generator {
    /// The variable must equal this name constant (`x = C`).
    ExactConst(String),
    /// The variable must equal another free variable (`x = y`): once either
    /// is bound the other has exactly one candidate.
    ExactVar(usize),
    /// The variable's region must share closure contact with the named
    /// region, so it ranges over the spatial index's bbox neighbors of that
    /// name.
    NeighborsOfConst(String),
    /// As [`Generator::NeighborsOfConst`], against another free variable's
    /// region; usable once that variable is bound.
    NeighborsOfVar(usize),
}

/// One top-level conjunct of the planned formula, with the free variables
/// (as indices into [`QueryPlan::vars`]) it mentions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Conjunct {
    /// The conjunct formula itself (evaluated unchanged as a filter).
    pub formula: Formula,
    /// Indices into [`QueryPlan::vars`] of the free variables occurring in
    /// the conjunct, ascending. A conjunct may also mention variables
    /// *outside* the plan (a misuse the evaluator surfaces as an
    /// `UnboundVariable` error, exactly like the naive path).
    pub vars: Vec<usize>,
}

/// The compile-time plan of a set-returning query: its top-level conjuncts
/// and the candidate generators of every free variable. See the module docs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryPlan {
    /// The free variables, in output (first-occurrence) order.
    vars: Vec<String>,
    /// The flattened top-level conjuncts.
    conjuncts: Vec<Conjunct>,
    /// Candidate generators per variable, aligned with `vars`.
    generators: Vec<Vec<Generator>>,
}

impl QueryPlan {
    /// Analyze a formula against its free-variable list (normally
    /// `formula.free_name_vars()`; extra variables are allowed and simply
    /// have no generators).
    pub fn build(formula: &Formula, free: &[String]) -> QueryPlan {
        let vars: Vec<String> = free.to_vec();
        let mut flat: Vec<Formula> = Vec::new();
        flatten_conjunction(formula, &mut flat);

        let var_id = |name: &str| vars.iter().position(|v| v == name);
        let conjuncts: Vec<Conjunct> = flat
            .into_iter()
            .map(|f| {
                let mut ids: Vec<usize> =
                    f.free_name_vars().iter().filter_map(|v| var_id(v)).collect();
                ids.sort_unstable();
                Conjunct { formula: f, vars: ids }
            })
            .collect();

        let mut generators: Vec<Vec<Generator>> = vec![Vec::new(); vars.len()];
        for conjunct in &conjuncts {
            extract_generators(&conjunct.formula, &var_id, &mut generators);
        }
        QueryPlan { vars, conjuncts, generators }
    }

    /// The free variables, in output (first-occurrence) order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// The flattened top-level conjuncts.
    pub fn conjuncts(&self) -> &[Conjunct] {
        &self.conjuncts
    }

    /// The candidate generators of variable `i` (index into
    /// [`QueryPlan::vars`]).
    pub fn generators(&self, i: usize) -> &[Generator] {
        &self.generators[i]
    }
}

/// Is the semi-join planner enabled? Controlled by the `QUERY_PLANNER`
/// environment variable: `0`, `off`, `naive` or `false` (case-insensitive)
/// select the cartesian-product oracle path; anything else — including the
/// variable being unset — selects the planner. Read per query so a test
/// harness can flip it at run time.
pub fn planner_enabled() -> bool {
    match std::env::var("QUERY_PLANNER") {
        Ok(v) => !matches!(v.to_lowercase().as_str(), "0" | "off" | "naive" | "false"),
        Err(_) => true,
    }
}

/// Flatten nested top-level `And`s into a conjunct list (any other formula
/// is a single conjunct; an empty `And` contributes nothing — it is `true`).
fn flatten_conjunction(formula: &Formula, out: &mut Vec<Formula>) {
    match formula {
        Formula::And(fs) => {
            for f in fs {
                flatten_conjunction(f, out);
            }
        }
        other => out.push(other.clone()),
    }
}

/// Extract candidate generators from one positive top-level conjunct.
///
/// Soundness: a generator may only *over*-approximate the satisfying values
/// of a variable. `x = t` pins the value exactly. A satisfied
/// closure-contact-implying atom between two region extents means the
/// closures share a point; each closure lies inside its region's bounding
/// box, so the boxes intersect and the bbox-neighbor set (a superset of the
/// box-intersecting names) covers every satisfying value. `disjoint` atoms,
/// negations, disjunctions and quantified subformulas generate nothing.
fn extract_generators(
    formula: &Formula,
    var_id: &dyn Fn(&str) -> Option<usize>,
    out: &mut [Vec<Generator>],
) {
    let term_of = |e: &RegionExpr| -> Option<NameTerm> {
        match e {
            RegionExpr::Ext(t) => Some(t.clone()),
            RegionExpr::Var(_) => None,
        }
    };
    let mut contact = |p: &RegionExpr, q: &RegionExpr| {
        let (Some(a), Some(b)) = (term_of(p), term_of(q)) else { return };
        contact_pair(&a, &b, var_id, out);
    };
    match formula {
        Formula::Rel(r, p, q) if r.implies_closure_contact() => contact(p, q),
        Formula::Connect(p, q) => contact(p, q),
        // `subset(p, q)` with p a (nonempty) region extent implies the
        // closures intersect, so it generates like a contact atom.
        Formula::Subset(p, q) => contact(p, q),
        Formula::NameEq(a, b) => {
            match (a, b) {
                (NameTerm::Var(x), NameTerm::Const(c)) => {
                    if let Some(i) = var_id(x) {
                        out[i].push(Generator::ExactConst(c.clone()));
                    }
                }
                (NameTerm::Const(c), NameTerm::Var(x)) => {
                    if let Some(i) = var_id(x) {
                        out[i].push(Generator::ExactConst(c.clone()));
                    }
                }
                (NameTerm::Var(x), NameTerm::Var(y)) => {
                    if let (Some(i), Some(j)) = (var_id(x), var_id(y)) {
                        if i != j {
                            out[i].push(Generator::ExactVar(j));
                            out[j].push(Generator::ExactVar(i));
                        }
                    }
                }
                (NameTerm::Const(_), NameTerm::Const(_)) => {}
            }
        }
        // Everything else — `disjoint` atoms, negations, disjunctions,
        // quantified subformulas — constrains nothing a priori.
        _ => {}
    }
}

/// Record the generators of a satisfied contact atom between two name terms.
fn contact_pair(
    a: &NameTerm,
    b: &NameTerm,
    var_id: &dyn Fn(&str) -> Option<usize>,
    out: &mut [Vec<Generator>],
) {
    match (a, b) {
        (NameTerm::Var(x), NameTerm::Const(c)) => {
            if let Some(i) = var_id(x) {
                out[i].push(Generator::NeighborsOfConst(c.clone()));
            }
        }
        (NameTerm::Const(c), NameTerm::Var(x)) => {
            if let Some(i) = var_id(x) {
                out[i].push(Generator::NeighborsOfConst(c.clone()));
            }
        }
        (NameTerm::Var(x), NameTerm::Var(y)) => {
            if let (Some(i), Some(j)) = (var_id(x), var_id(y)) {
                if i != j {
                    out[i].push(Generator::NeighborsOfVar(j));
                    out[j].push(Generator::NeighborsOfVar(i));
                }
            }
        }
        (NameTerm::Const(_), NameTerm::Const(_)) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Formula as F, NameTerm as N, RegionExpr as R};
    use relations::Relation4::*;

    fn xv(v: &str) -> R {
        R::Ext(N::Var(v.into()))
    }

    #[test]
    fn conjunction_is_flattened_and_vars_assigned() {
        // (overlap(x, A) and (meet(x, y) and connect(y, B))) — nested And.
        let f = F::and(vec![
            F::rel(Overlap, xv("x"), R::named("A")),
            F::and(vec![
                F::rel(Meet, xv("x"), xv("y")),
                F::connect(xv("y"), R::named("B")),
            ]),
        ]);
        let plan = QueryPlan::build(&f, &["x".into(), "y".into()]);
        assert_eq!(plan.conjuncts().len(), 3);
        assert_eq!(plan.conjuncts()[0].vars, vec![0]);
        assert_eq!(plan.conjuncts()[1].vars, vec![0, 1]);
        assert_eq!(plan.conjuncts()[2].vars, vec![1]);
    }

    #[test]
    fn contact_atoms_generate_neighbor_candidates() {
        let f = F::and(vec![
            F::rel(Overlap, xv("x"), R::named("A")),
            F::rel(Meet, xv("x"), xv("y")),
        ]);
        let plan = QueryPlan::build(&f, &["x".into(), "y".into()]);
        assert_eq!(
            plan.generators(0),
            &[
                Generator::NeighborsOfConst("A".into()),
                Generator::NeighborsOfVar(1)
            ]
        );
        assert_eq!(plan.generators(1), &[Generator::NeighborsOfVar(0)]);
    }

    #[test]
    fn disjoint_negation_and_quantified_atoms_generate_nothing() {
        let f = F::and(vec![
            F::rel(Disjoint, xv("x"), R::named("A")),
            F::not(F::rel(Overlap, xv("x"), R::named("A"))),
            F::or(vec![F::rel(Overlap, xv("x"), R::named("A"))]),
            F::exists_name("z", F::rel(Overlap, xv("z"), xv("x"))),
        ]);
        let plan = QueryPlan::build(&f, &["x".into()]);
        assert_eq!(plan.generators(0), &[] as &[Generator]);
    }

    #[test]
    fn name_equality_pins_candidates() {
        let f = F::and(vec![
            F::NameEq(N::Var("x".into()), N::Const("A".into())),
            F::NameEq(N::Var("x".into()), N::Var("y".into())),
        ]);
        let plan = QueryPlan::build(&f, &["x".into(), "y".into()]);
        assert_eq!(
            plan.generators(0),
            &[Generator::ExactConst("A".into()), Generator::ExactVar(1)]
        );
        assert_eq!(plan.generators(1), &[Generator::ExactVar(0)]);
    }

    #[test]
    fn subset_generates_contact_and_region_vars_do_not() {
        // subset with a *region variable* operand generates nothing; with two
        // extents it generates on both sides.
        let f = F::and(vec![
            F::subset(R::var("r"), xv("x")),
            F::subset(xv("x"), R::named("A")),
        ]);
        let plan = QueryPlan::build(&f, &["x".into()]);
        assert_eq!(plan.generators(0), &[Generator::NeighborsOfConst("A".into())]);
    }

    #[test]
    fn shadowed_variables_are_not_conjunct_vars() {
        // The conjunct's `existsname x` binds x locally: the free x of the
        // plan does not occur in it.
        let f = F::and(vec![
            F::exists_name("x", F::rel(Overlap, xv("x"), R::named("A"))),
            F::rel(Overlap, xv("x"), R::named("B")),
        ]);
        let plan = QueryPlan::build(&f, &["x".into()]);
        assert_eq!(plan.conjuncts()[0].vars, &[] as &[usize]);
        assert_eq!(plan.conjuncts()[1].vars, vec![0]);
    }
}
