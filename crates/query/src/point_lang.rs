//! The point-based language `FO(P, <x, <y, Region)` and its relationship to
//! the region-based languages (Proposition 5.7, Theorem 5.8).
//!
//! Variables range over points of the plane; atoms are `a(p)` (the point lies
//! in the named region), `p <x q`, `p =x q`, `p <y q`, `p =y q`. The paper
//! proves that, restricted to `S`-generic queries, this language expresses
//! exactly the same queries as the region-based `FO(Rect, Disc)`
//! (Theorem 5.8), and the same topological queries in particular.
//!
//! Evaluation is implemented for instances of rectangles: answers of such
//! queries depend only on the order type of coordinates, so point quantifiers
//! can range over a finite refined grid with enough representatives per open
//! interval (one per point variable) — the classical finite-model argument
//! for dense orders.

use crate::ast::{Formula as RegionFormula, NameTerm, RegionExpr};
use relations::Relation4;
use spatial_core::prelude::*;
use std::collections::BTreeMap;
use std::fmt;

/// A formula of the point-based language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PointFormula {
    /// `a(p)`: point `p` lies in the (open) named region `a`.
    InRegion(String, String),
    /// `ā(p)`: point `p` lies in the closure of the named region `a`
    /// (a definitional extension used by the Theorem 5.8 translation).
    InClosure(String, String),
    /// Comparison of the x coordinates of two point variables.
    CmpX(String, Ordering2, String),
    /// Comparison of the y coordinates of two point variables.
    CmpY(String, Ordering2, String),
    /// Negation.
    Not(Box<PointFormula>),
    /// Conjunction.
    And(Vec<PointFormula>),
    /// Disjunction.
    Or(Vec<PointFormula>),
    /// Existential point quantifier.
    Exists(String, Box<PointFormula>),
    /// Universal point quantifier.
    Forall(String, Box<PointFormula>),
}

/// The comparison operators of the point language.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ordering2 {
    /// Strictly less.
    Less,
    /// Equal.
    Equal,
}

impl PointFormula {
    /// Negation. (A by-value constructor, intentionally not the `Not`
    /// operator trait.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: PointFormula) -> PointFormula {
        PointFormula::Not(Box::new(f))
    }

    /// Implication.
    pub fn implies(a: PointFormula, b: PointFormula) -> PointFormula {
        PointFormula::Or(vec![PointFormula::not(a), b])
    }

    /// Existential quantifier.
    pub fn exists<S: Into<String>>(v: S, f: PointFormula) -> PointFormula {
        PointFormula::Exists(v.into(), Box::new(f))
    }

    /// Universal quantifier.
    pub fn forall<S: Into<String>>(v: S, f: PointFormula) -> PointFormula {
        PointFormula::Forall(v.into(), Box::new(f))
    }

    /// Number of point quantifiers (used to size the evaluation grid).
    pub fn quantifier_count(&self) -> usize {
        match self {
            PointFormula::InRegion(..)
            | PointFormula::InClosure(..)
            | PointFormula::CmpX(..)
            | PointFormula::CmpY(..) => 0,
            PointFormula::Not(f) => f.quantifier_count(),
            PointFormula::And(fs) | PointFormula::Or(fs) => {
                fs.iter().map(|f| f.quantifier_count()).sum()
            }
            PointFormula::Exists(_, f) | PointFormula::Forall(_, f) => 1 + f.quantifier_count(),
        }
    }
}

/// Errors raised by the point evaluator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PointEvalError {
    /// Inputs must be rectangles for the finite-grid argument to apply.
    NonRectangularInput(String),
    /// Unknown region name.
    UnknownName(String),
    /// Unbound point variable.
    UnboundVariable(String),
}

impl fmt::Display for PointEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointEvalError::NonRectangularInput(n) => write!(f, "region `{n}` is not a rectangle"),
            PointEvalError::UnknownName(n) => write!(f, "unknown region `{n}`"),
            PointEvalError::UnboundVariable(v) => write!(f, "unbound point variable `{v}`"),
        }
    }
}

impl std::error::Error for PointEvalError {}

/// Evaluate a point-language sentence on an instance of rectangles.
pub fn eval_point_sentence(
    instance: &SpatialInstance,
    formula: &PointFormula,
) -> Result<bool, PointEvalError> {
    let mut boxes = BTreeMap::new();
    for (name, region) in instance.iter() {
        if region.class() != RegionClass::Rect {
            return Err(PointEvalError::NonRectangularInput(name.to_string()));
        }
        boxes.insert(name.to_string(), region.bounding_box());
    }
    let reps = formula.quantifier_count().max(1);
    let xs = refined_axis(boxes.values().flat_map(|b| [b.0, b.2]).collect(), reps);
    let ys = refined_axis(boxes.values().flat_map(|b| [b.1, b.3]).collect(), reps);
    let mut env = BTreeMap::new();
    eval_inner(&boxes, &xs, &ys, formula, &mut env)
}

type BoxCoords = (Rational, Rational, Rational, Rational);

fn refined_axis(mut coords: Vec<Rational>, reps: usize) -> Vec<Rational> {
    coords.sort();
    coords.dedup();
    if coords.is_empty() {
        coords = vec![Rational::ZERO];
    }
    let mut out = Vec::new();
    let first = coords[0];
    for k in 0..reps {
        out.push(first - Rational::from_int(1 + k as i64));
    }
    for i in 0..coords.len() {
        out.push(coords[i]);
        if i + 1 < coords.len() {
            // `reps` distinct representatives strictly between consecutive
            // coordinates.
            let gap = coords[i + 1] - coords[i];
            for k in 1..=reps {
                out.push(coords[i] + gap * Rational::new(k as i128, reps as i128 + 1));
            }
        }
    }
    let last = coords[coords.len() - 1];
    for k in 0..reps {
        out.push(last + Rational::from_int(1 + k as i64));
    }
    out
}

fn eval_inner(
    boxes: &BTreeMap<String, BoxCoords>,
    xs: &[Rational],
    ys: &[Rational],
    formula: &PointFormula,
    env: &mut BTreeMap<String, Point>,
) -> Result<bool, PointEvalError> {
    let lookup = |v: &str, env: &BTreeMap<String, Point>| -> Result<Point, PointEvalError> {
        env.get(v).copied().ok_or_else(|| PointEvalError::UnboundVariable(v.to_string()))
    };
    match formula {
        PointFormula::InRegion(name, p) => {
            let b = boxes.get(name).ok_or_else(|| PointEvalError::UnknownName(name.clone()))?;
            let pt = lookup(p, env)?;
            Ok(pt.x > b.0 && pt.x < b.2 && pt.y > b.1 && pt.y < b.3)
        }
        PointFormula::InClosure(name, p) => {
            let b = boxes.get(name).ok_or_else(|| PointEvalError::UnknownName(name.clone()))?;
            let pt = lookup(p, env)?;
            Ok(pt.x >= b.0 && pt.x <= b.2 && pt.y >= b.1 && pt.y <= b.3)
        }
        PointFormula::CmpX(p, op, q) => {
            let a = lookup(p, env)?;
            let b = lookup(q, env)?;
            Ok(match op {
                Ordering2::Less => a.x < b.x,
                Ordering2::Equal => a.x == b.x,
            })
        }
        PointFormula::CmpY(p, op, q) => {
            let a = lookup(p, env)?;
            let b = lookup(q, env)?;
            Ok(match op {
                Ordering2::Less => a.y < b.y,
                Ordering2::Equal => a.y == b.y,
            })
        }
        PointFormula::Not(f) => Ok(!eval_inner(boxes, xs, ys, f, env)?),
        PointFormula::And(fs) => {
            for f in fs {
                if !eval_inner(boxes, xs, ys, f, env)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        PointFormula::Or(fs) => {
            for f in fs {
                if eval_inner(boxes, xs, ys, f, env)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        PointFormula::Exists(v, f) => {
            for &x in xs {
                for &y in ys {
                    env.insert(v.clone(), Point::new(x, y));
                    let holds = eval_inner(boxes, xs, ys, f, env)?;
                    env.remove(v);
                    if holds {
                        return Ok(true);
                    }
                }
            }
            Ok(false)
        }
        PointFormula::Forall(v, f) => {
            for &x in xs {
                for &y in ys {
                    env.insert(v.clone(), Point::new(x, y));
                    let holds = eval_inner(boxes, xs, ys, f, env)?;
                    env.remove(v);
                    if !holds {
                        return Ok(false);
                    }
                }
            }
            Ok(true)
        }
    }
}

/// Translate an `FO(Rect, ·)` sentence into the point language by replacing
/// every rectangle variable `r` with two point variables — its lower-left and
/// upper-right corners — exactly as in the easy direction of Theorem 5.8.
pub fn rect_query_to_point_query(formula: &RegionFormula) -> Option<PointFormula> {
    translate(formula)
}

fn lo(v: &str) -> String {
    format!("{v}__lo")
}
fn hi(v: &str) -> String {
    format!("{v}__hi")
}

/// The corner pair naming for a region expression; named regions keep their
/// name and are handled directly by `in-region` atoms on their corners via
/// fresh auxiliary quantifiers, so we restrict the translation to atoms whose
/// arguments involve at least one variable or are simple enough.
fn translate(f: &RegionFormula) -> Option<PointFormula> {
    match f {
        RegionFormula::ExistsRegion(v, g) => Some(PointFormula::exists(
            lo(v),
            PointFormula::exists(
                hi(v),
                PointFormula::And(vec![corner_wellformed(v), translate(g)?]),
            ),
        )),
        RegionFormula::ForallRegion(v, g) => Some(PointFormula::forall(
            lo(v),
            PointFormula::forall(
                hi(v),
                PointFormula::implies(corner_wellformed(v), translate(g)?),
            ),
        )),
        RegionFormula::Not(g) => Some(PointFormula::not(translate(g)?)),
        RegionFormula::And(gs) => {
            Some(PointFormula::And(gs.iter().map(translate).collect::<Option<_>>()?))
        }
        RegionFormula::Or(gs) => {
            Some(PointFormula::Or(gs.iter().map(translate).collect::<Option<_>>()?))
        }
        RegionFormula::Subset(p, q) => {
            // subset(p, q) for rectangles: every point in p is in q — which for
            // the corner encoding is: both corners' span is inside q's span.
            // We express it pointwise: ∀z. z ∈ p → z ∈ q.
            let z = "z__sub".to_string();
            Some(PointFormula::forall(
                z.clone(),
                PointFormula::implies(point_in(p, &z)?, point_in(q, &z)?),
            ))
        }
        RegionFormula::Connect(p, q) => {
            // Closures intersect: ∃z. z ∈ closure(p) ∧ z ∈ closure(q); over the
            // refined grid it suffices to test shared closure points.
            let z = "z__con".to_string();
            Some(PointFormula::exists(
                z.clone(),
                PointFormula::And(vec![point_in_closure(p, &z)?, point_in_closure(q, &z)?]),
            ))
        }
        RegionFormula::Rel(r, p, q) => {
            // Express the relation through its 4-intersection matrix using
            // pointwise definable parts (interior and closure); the boundary
            // is closure minus interior.
            let m = r.to_matrix();
            let clause = |cond: bool, f: PointFormula| if cond { f } else { PointFormula::not(f) };
            let z1 = "z__ii".to_string();
            let z2 = "z__bb".to_string();
            let z3 = "z__ib".to_string();
            let z4 = "z__bi".to_string();
            let interiors = PointFormula::exists(
                z1.clone(),
                PointFormula::And(vec![point_in(p, &z1)?, point_in(q, &z1)?]),
            );
            let boundaries = PointFormula::exists(
                z2.clone(),
                PointFormula::And(vec![point_on_boundary(p, &z2)?, point_on_boundary(q, &z2)?]),
            );
            let int_bnd = PointFormula::exists(
                z3.clone(),
                PointFormula::And(vec![point_in(p, &z3)?, point_on_boundary(q, &z3)?]),
            );
            let bnd_int = PointFormula::exists(
                z4.clone(),
                PointFormula::And(vec![point_on_boundary(p, &z4)?, point_in(q, &z4)?]),
            );
            let mut parts = vec![
                clause(m.interiors, interiors),
                clause(m.boundaries, boundaries),
                clause(m.interior_a_boundary_b, int_bnd),
                clause(m.boundary_a_interior_b, bnd_int),
            ];
            if *r == Relation4::Equal {
                // Sharpen equality: same point sets.
                let z = "z__eq".to_string();
                parts.push(PointFormula::forall(
                    z.clone(),
                    PointFormula::And(vec![
                        PointFormula::implies(point_in(p, &z)?, point_in(q, &z)?),
                        PointFormula::implies(point_in(q, &z)?, point_in(p, &z)?),
                    ]),
                ));
            }
            Some(PointFormula::And(parts))
        }
        RegionFormula::NameEq(..)
        | RegionFormula::ExistsName(..)
        | RegionFormula::ForallName(..) => None,
    }
}

fn corner_wellformed(v: &str) -> PointFormula {
    PointFormula::And(vec![
        PointFormula::CmpX(lo(v), Ordering2::Less, hi(v)),
        PointFormula::CmpY(lo(v), Ordering2::Less, hi(v)),
    ])
}

/// `z` lies in the interior of the region expression.
fn point_in(e: &RegionExpr, z: &str) -> Option<PointFormula> {
    match e {
        RegionExpr::Ext(NameTerm::Const(name)) => {
            Some(PointFormula::InRegion(name.clone(), z.to_string()))
        }
        RegionExpr::Ext(NameTerm::Var(_)) => None,
        RegionExpr::Var(v) => Some(PointFormula::And(vec![
            PointFormula::CmpX(lo(v), Ordering2::Less, z.to_string()),
            PointFormula::CmpX(z.to_string(), Ordering2::Less, hi(v)),
            PointFormula::CmpY(lo(v), Ordering2::Less, z.to_string()),
            PointFormula::CmpY(z.to_string(), Ordering2::Less, hi(v)),
        ])),
    }
}

/// `z` lies in the closure of the region expression.
fn point_in_closure(e: &RegionExpr, z: &str) -> Option<PointFormula> {
    match e {
        RegionExpr::Var(v) => Some(PointFormula::And(vec![
            PointFormula::not(PointFormula::CmpX(z.to_string(), Ordering2::Less, lo(v))),
            PointFormula::not(PointFormula::CmpX(hi(v), Ordering2::Less, z.to_string())),
            PointFormula::not(PointFormula::CmpY(z.to_string(), Ordering2::Less, lo(v))),
            PointFormula::not(PointFormula::CmpY(hi(v), Ordering2::Less, z.to_string())),
        ])),
        RegionExpr::Ext(NameTerm::Const(name)) => {
            Some(PointFormula::InClosure(name.clone(), z.to_string()))
        }
        RegionExpr::Ext(NameTerm::Var(_)) => None,
    }
}

/// `z` lies on the boundary of the region expression: in the closure but not
/// in the interior.
fn point_on_boundary(e: &RegionExpr, z: &str) -> Option<PointFormula> {
    Some(PointFormula::And(vec![
        point_in_closure(e, z)?,
        PointFormula::not(point_in(e, z)?),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::rect_eval::eval_on_rect_instance;

    fn instance() -> SpatialInstance {
        SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 10, 10)),
            ("B", Region::rect_from_ints(2, 2, 6, 6)),
            ("C", Region::rect_from_ints(12, 0, 16, 4)),
        ])
    }

    #[test]
    fn direct_point_queries() {
        // ∃p. A(p) ∧ B(p)
        let f = PointFormula::exists(
            "p",
            PointFormula::And(vec![
                PointFormula::InRegion("A".into(), "p".into()),
                PointFormula::InRegion("B".into(), "p".into()),
            ]),
        );
        assert_eq!(eval_point_sentence(&instance(), &f), Ok(true));
        // ∃p. B(p) ∧ C(p) — disjoint.
        let g = PointFormula::exists(
            "p",
            PointFormula::And(vec![
                PointFormula::InRegion("B".into(), "p".into()),
                PointFormula::InRegion("C".into(), "p".into()),
            ]),
        );
        assert_eq!(eval_point_sentence(&instance(), &g), Ok(false));
        // ∀p. B(p) → A(p)
        let h = PointFormula::forall(
            "p",
            PointFormula::implies(
                PointFormula::InRegion("B".into(), "p".into()),
                PointFormula::InRegion("A".into(), "p".into()),
            ),
        );
        assert_eq!(eval_point_sentence(&instance(), &h), Ok(true));
    }

    #[test]
    fn coordinate_comparisons_and_errors() {
        // ∃p ∃q. A(p) ∧ C(q) ∧ p <x q (C lies to the right of A's interior).
        let f = PointFormula::exists(
            "p",
            PointFormula::exists(
                "q",
                PointFormula::And(vec![
                    PointFormula::InRegion("A".into(), "p".into()),
                    PointFormula::InRegion("C".into(), "q".into()),
                    PointFormula::CmpX("p".into(), Ordering2::Less, "q".into()),
                ]),
            ),
        );
        assert_eq!(eval_point_sentence(&instance(), &f), Ok(true));
        // And never q <x p with q in C, p in... actually some A points are to
        // the right of nothing in C, so test the universal negation instead:
        let g = PointFormula::forall(
            "p",
            PointFormula::implies(
                PointFormula::InRegion("C".into(), "p".into()),
                PointFormula::not(PointFormula::InRegion("B".into(), "p".into())),
            ),
        );
        assert_eq!(eval_point_sentence(&instance(), &g), Ok(true));
        let bad = PointFormula::InRegion("Z".into(), "p".into());
        assert!(matches!(
            eval_point_sentence(&instance(), &PointFormula::exists("p", bad)),
            Err(PointEvalError::UnknownName(_))
        ));
        assert!(matches!(
            eval_point_sentence(&instance(), &PointFormula::CmpX("p".into(), Ordering2::Equal, "q".into())),
            Err(PointEvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn theorem_5_8_translation_agrees_with_rect_evaluator() {
        // The easy direction of Theorem 5.8: every FO(Rect, ·) sentence has a
        // point-language equivalent (rectangle variable ↦ two corner points).
        let inst = instance();
        // Quantifier-free sentences keep the translated evaluation grid
        // small; quantified sentences translate too (see
        // `translation_handles_quantifiers`) but are exercised by the
        // benchmark harness rather than the unit tests.
        for text in [
            "disjoint(B, C)",
            "inside(B, A)",
            "overlap(A, B)",
            "meet(A, B) or contains(A, B)",
            "not covers(A, B)",
            "equal(A, A) and equal(B, B)",
        ] {
            let rq = parse(text).unwrap();
            let pq = rect_query_to_point_query(&rq).expect("translatable");
            assert_eq!(
                eval_point_sentence(&inst, &pq).unwrap(),
                eval_on_rect_instance(&inst, &rq).unwrap(),
                "{text}"
            );
        }
    }

    #[test]
    fn translation_handles_quantifiers() {
        let rq = parse("exists r . inside(r, A) and inside(r, B)").unwrap();
        let pq = rect_query_to_point_query(&rq).expect("translatable");
        // Each rectangle variable becomes two point variables.
        assert!(pq.quantifier_count() >= 2);
        // Name quantifiers are outside the translated fragment.
        let nq = parse("existsname a . overlap(ext(a), A)").unwrap();
        assert!(rect_query_to_point_query(&nq).is_none());
    }
}
