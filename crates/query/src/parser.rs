//! A small concrete syntax for the region-based languages.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! formula   := quant | implies
//! quant     := ("exists" | "forall") IDENT ("," IDENT)* "." formula
//!            | ("existsname" | "forallname") IDENT "." formula
//! implies   := or ("->" or)*                (right associative)
//! or        := and ("or" and)*
//! and       := unary ("and" unary)*
//! unary     := "not" unary | atom | "(" formula ")"
//! atom      := REL "(" regexpr "," regexpr ")"
//!            | "connect" "(" regexpr "," regexpr ")"
//!            | "subset" "(" regexpr "," regexpr ")"
//!            | nameterm "=" nameterm
//! regexpr   := IDENT | "ext" "(" nameterm ")"
//! REL       := disjoint | meet | overlap | equal | contains | inside
//!            | covers | covered_by
//! ```
//!
//! Following the paper's convention, identifiers starting with an uppercase
//! letter denote region-name constants, lowercase identifiers denote
//! variables; a lowercase identifier appearing in region position is a region
//! variable if it is bound by `exists`/`forall`, and a name variable if bound
//! by `existsname`/`forallname` (inside `ext(…)` it is always a name term).

use crate::ast::{Formula, NameTerm, RegionExpr};
use relations::Relation4;
use std::fmt;

/// A parse error with a human-readable message and the offending position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Explanation of the failure.
    pub message: String,
    /// Byte offset in the input at which the failure occurred.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a sentence of the region-based language.
pub fn parse(input: &str) -> Result<Formula, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let f = parser.formula()?;
    parser.expect_end()?;
    Ok(f)
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Token {
    Ident(String, usize),
    LParen(usize),
    RParen(usize),
    Comma(usize),
    Dot(usize),
    Eq(usize),
    Arrow(usize),
}

impl Token {
    fn position(&self) -> usize {
        match self {
            Token::Ident(_, p)
            | Token::LParen(p)
            | Token::RParen(p)
            | Token::Comma(p)
            | Token::Dot(p)
            | Token::Eq(p)
            | Token::Arrow(p) => *p,
        }
    }
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::LParen(i));
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen(i));
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma(i));
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot(i));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq(i));
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                tokens.push(Token::Arrow(i));
                i += 2;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string(), start));
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{other}`"),
                    position: i,
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let position = self.peek().map(|t| t.position()).unwrap_or(usize::MAX);
        ParseError { message: message.into(), position }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error("trailing input after the formula"))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s, _)) => Ok(s),
            _ => Err(self.error("expected an identifier")),
        }
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if std::mem::discriminant(&t) == std::mem::discriminant(want) => Ok(()),
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        if let Some(Token::Ident(word, _)) = self.peek() {
            let quant = word.clone();
            if ["exists", "forall", "existsname", "forallname"].contains(&quant.as_str()) {
                self.next();
                let mut vars = vec![self.expect_ident()?];
                while matches!(self.peek(), Some(Token::Comma(_))) {
                    self.next();
                    vars.push(self.expect_ident()?);
                }
                self.expect(&Token::Dot(0), "`.` after quantified variables")?;
                let body = self.formula()?;
                let wrap = |var: String, inner: Formula| match quant.as_str() {
                    "exists" => Formula::exists_region(var, inner),
                    "forall" => Formula::forall_region(var, inner),
                    "existsname" => Formula::exists_name(var, inner),
                    _ => Formula::forall_name(var, inner),
                };
                return Ok(vars.into_iter().rev().fold(body, |acc, v| wrap(v, acc)));
            }
        }
        self.implication()
    }

    fn implication(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.disjunction()?;
        if matches!(self.peek(), Some(Token::Arrow(_))) {
            self.next();
            let rhs = self.formula()?;
            return Ok(Formula::implies(lhs, rhs));
        }
        Ok(lhs)
    }

    fn disjunction(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.conjunction()?];
        while let Some(Token::Ident(w, _)) = self.peek() {
            if w == "or" {
                self.next();
                parts.push(self.conjunction()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Formula::Or(parts) })
    }

    fn conjunction(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unary()?];
        while let Some(Token::Ident(w, _)) = self.peek() {
            if w == "and" {
                self.next();
                parts.push(self.unary()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Formula::And(parts) })
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Token::Ident(w, _)) if w == "not" => {
                self.next();
                Ok(Formula::not(self.unary()?))
            }
            Some(Token::Ident(w, _))
                if ["exists", "forall", "existsname", "forallname"].contains(&w.as_str()) =>
            {
                self.formula()
            }
            Some(Token::LParen(_)) => {
                self.next();
                let f = self.formula()?;
                self.expect(&Token::RParen(0), "`)`")?;
                Ok(f)
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        let name = self.expect_ident()?;
        // Predicate atoms.
        if matches!(self.peek(), Some(Token::LParen(_)))
            && (name == "connect" || name == "subset" || Relation4::from_name(&name).is_some())
        {
            self.next(); // (
            let p = self.region_expr()?;
            self.expect(&Token::Comma(0), "`,`")?;
            let q = self.region_expr()?;
            self.expect(&Token::RParen(0), "`)`")?;
            return Ok(match name.as_str() {
                "connect" => Formula::Connect(p, q),
                "subset" => Formula::Subset(p, q),
                rel => Formula::Rel(Relation4::from_name(rel).unwrap(), p, q),
            });
        }
        // Name equality: `a = b`.
        if matches!(self.peek(), Some(Token::Eq(_))) {
            self.next();
            let rhs = self.expect_ident()?;
            return Ok(Formula::NameEq(ident_to_name_term(&name), ident_to_name_term(&rhs)));
        }
        Err(self.error(format!("unknown predicate or dangling identifier `{name}`")))
    }

    fn region_expr(&mut self) -> Result<RegionExpr, ParseError> {
        let id = self.expect_ident()?;
        if id == "ext" && matches!(self.peek(), Some(Token::LParen(_))) {
            self.next();
            let inner = self.expect_ident()?;
            self.expect(&Token::RParen(0), "`)`")?;
            return Ok(RegionExpr::Ext(ident_to_name_term(&inner)));
        }
        if id.chars().next().is_some_and(|c| c.is_uppercase()) {
            Ok(RegionExpr::Ext(NameTerm::Const(id)))
        } else {
            Ok(RegionExpr::Var(id))
        }
    }
}

fn ident_to_name_term(id: &str) -> NameTerm {
    if id.chars().next().is_some_and(|c| c.is_uppercase()) {
        NameTerm::Const(id.to_string())
    } else {
        NameTerm::Var(id.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell_eval::eval_on_instance;
    use spatial_core::fixtures;

    #[test]
    fn parses_example_4_1() {
        let f = parse("exists r . subset(r, A) and subset(r, B) and subset(r, C)").unwrap();
        assert_eq!(f.region_quantifier_count(), 1);
        assert_eq!(eval_on_instance(&fixtures::fig_1a(), &f), Ok(true));
        assert_eq!(eval_on_instance(&fixtures::fig_1b(), &f), Ok(false));
    }

    #[test]
    fn parses_multi_variable_quantifiers_and_implication() {
        let f = parse(
            "forall r, s . (subset(r, A) and subset(r, B) and subset(s, A) and subset(s, B)) \
             -> exists t . subset(t, A) and subset(t, B) and connect(t, r) and connect(t, s)",
        )
        .unwrap();
        assert_eq!(f.region_quantifier_count(), 3);
        assert_eq!(eval_on_instance(&fixtures::fig_1c(), &f), Ok(true));
        assert_eq!(eval_on_instance(&fixtures::fig_1d(), &f), Ok(false));
    }

    #[test]
    fn parses_relations_names_and_equality() {
        let f = parse("existsname a . existsname b . not a = b and overlap(ext(a), ext(b))")
            .unwrap();
        assert_eq!(eval_on_instance(&fixtures::fig_1a(), &f), Ok(true));
        assert_eq!(eval_on_instance(&fixtures::nested_three(), &f), Ok(false));
        let g = parse("contains(A, B) and inside(C, B)").unwrap();
        assert_eq!(eval_on_instance(&fixtures::nested_three(), &g), Ok(true));
    }

    #[test]
    fn parses_not_or_parentheses() {
        let f = parse("not (disjoint(A, B) or meet(A, B))").unwrap();
        assert_eq!(eval_on_instance(&fixtures::fig_1c(), &f), Ok(true));
    }

    #[test]
    fn display_round_trips_through_the_parser() {
        let original =
            parse("exists r . subset(r, A) and not connect(r, B) or equal(A, B)").unwrap();
        let reparsed = parse(&format!("{original}")).unwrap();
        assert_eq!(format!("{original}"), format!("{reparsed}"));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("").is_err());
        assert!(parse("exists . subset(r, A)").is_err());
        assert!(parse("subset(r A)").is_err());
        assert!(parse("foo(A, B)").is_err());
        assert!(parse("subset(A, B) extra").is_err());
        assert!(parse("overlap(A, B) %").is_err());
        let err = parse("overlap(A,").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }
}
