//! Prepared, binding-producing queries: parse + analyze once, evaluate many.
//!
//! The evaluation strategy of the paper's Section 7 (quantify over cell
//! unions) pays a per-*instance* cost — enumerating the quantifier domain —
//! but the per-*query* costs of parsing the concrete syntax and analyzing the
//! formula (free variables, evaluability) are pure query-side work. A
//! [`PreparedQuery`] front-loads all of it: compile a query string once and
//! run it against any number of cell complexes, evaluators or (through
//! `topodb::Snapshot::evaluate`) database snapshots, from any number of
//! threads.
//!
//! Prepared queries also widen the result type beyond `bool`: a formula with
//! free *name* variables is a set-returning query, and running it yields
//! [`QueryOutput::Bindings`] — the satisfying assignments of the free
//! variables over `names(I)`, in the style of a relational `SELECT`. Closed
//! formulas yield [`QueryOutput::Bool`].
//!
//! ```
//! use query::prepared::{PreparedQuery, QueryOutput};
//! use query::cell_eval::CellEvaluator;
//! use spatial_core::fixtures;
//!
//! // Which named regions lie strictly inside A? (free name variable `x`)
//! let q = PreparedQuery::compile("inside(ext(x), A)").unwrap();
//! let ev = CellEvaluator::new(&fixtures::nested_three());
//! match q.run_on(&ev).unwrap() {
//!     QueryOutput::Bindings(rows) => {
//!         let xs: Vec<&str> = rows.iter().map(|r| r["x"].as_str()).collect();
//!         assert_eq!(xs, ["B", "C"]);
//!     }
//!     QueryOutput::Bool(_) => unreachable!("`x` is free, so the query returns rows"),
//! }
//! ```

use crate::ast::Formula;
use crate::cell_eval::{Bindings, CellEvaluator, EvalError};
use crate::parser::{parse, ParseError};
use crate::plan::{planner_enabled, QueryPlan};
use arrangement::ComplexRead;
use std::fmt;

/// The result of running a query: a truth value for closed formulas, or the
/// satisfying assignments of the free name variables for open ones.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueryOutput {
    /// The formula was a sentence (no free variables).
    Bool(bool),
    /// The formula had free name variables; each row maps every free
    /// variable to a region name, rows in lexicographic order.
    Bindings(Vec<Bindings>),
}

impl QueryOutput {
    /// The truth value, if this is a Boolean result.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            QueryOutput::Bool(b) => Some(*b),
            QueryOutput::Bindings(_) => None,
        }
    }

    /// The binding rows, if this is a set-returning result.
    pub fn bindings(&self) -> Option<&[Bindings]> {
        match self {
            QueryOutput::Bool(_) => None,
            QueryOutput::Bindings(rows) => Some(rows),
        }
    }

    /// Uniform truthiness: a Boolean result's value, or "at least one row"
    /// for a set-returning result (the classical ∃-collapse).
    pub fn holds(&self) -> bool {
        match self {
            QueryOutput::Bool(b) => *b,
            QueryOutput::Bindings(rows) => !rows.is_empty(),
        }
    }
}

impl fmt::Display for QueryOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryOutput::Bool(b) => write!(f, "{b}"),
            QueryOutput::Bindings(rows) => {
                write!(f, "{} row(s)", rows.len())?;
                for row in rows {
                    let cells: Vec<String> =
                        row.iter().map(|(k, v)| format!("{k} = {v}")).collect();
                    write!(f, " [{}]", cells.join(", "))?;
                }
                Ok(())
            }
        }
    }
}

/// Errors raised when compiling a prepared query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PrepareError {
    /// The query text could not be parsed; carries the byte position.
    Parse(ParseError),
    /// The formula uses a region variable without binding it with
    /// `exists`/`forall` — region variables range over an infinite class and
    /// cannot be returned as bindings.
    FreeRegionVariable(String),
}

impl fmt::Display for PrepareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrepareError::Parse(e) => write!(f, "{e}"),
            PrepareError::FreeRegionVariable(v) => write!(
                f,
                "free region variable `{v}`: region variables must be bound by exists/forall"
            ),
        }
    }
}

impl std::error::Error for PrepareError {}

impl From<ParseError> for PrepareError {
    fn from(e: ParseError) -> PrepareError {
        PrepareError::Parse(e)
    }
}

/// A query compiled once — parsed, checked for evaluability, and analyzed
/// for free name variables — ready to run against any snapshot of any
/// database.
///
/// The compile-time "plan" is everything that does not depend on the data:
/// the AST, the ordered list of free name variables (which determines the
/// output shape: empty list → [`QueryOutput::Bool`], otherwise
/// [`QueryOutput::Bindings`]), the semi-join [`QueryPlan`] for open queries
/// (conjunct split + candidate generators; see the crate docs' "Planning
/// model" section), and the up-front rejection of formulas that could only
/// fail at run time (free region variables). Running the same
/// `PreparedQuery` against snapshots from different epochs re-uses all of it
/// and answers each snapshot from *its* cell complex — prepared queries hold
/// no instance data and are freely shared across threads.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PreparedQuery {
    text: Option<String>,
    formula: Formula,
    free_names: Vec<String>,
    plan: Option<QueryPlan>,
}

impl PreparedQuery {
    /// Compile a query from the concrete syntax of [`crate::parser`].
    pub fn compile(text: &str) -> Result<PreparedQuery, PrepareError> {
        let formula = parse(text)?;
        let mut q = PreparedQuery::from_formula(formula)?;
        q.text = Some(text.to_string());
        Ok(q)
    }

    /// Compile an already-built AST (no parsing step).
    pub fn from_formula(formula: Formula) -> Result<PreparedQuery, PrepareError> {
        if let Some(v) = formula.free_region_vars().into_iter().next() {
            return Err(PrepareError::FreeRegionVariable(v));
        }
        let free_names = formula.free_name_vars();
        let plan = (!free_names.is_empty())
            .then(|| QueryPlan::build(&formula, &free_names));
        Ok(PreparedQuery { text: None, formula, free_names, plan })
    }

    /// The original query text, when compiled from text.
    pub fn text(&self) -> Option<&str> {
        self.text.as_deref()
    }

    /// The compiled formula.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// The free name variables, in first-occurrence order. Empty iff the
    /// query is Boolean.
    pub fn free_name_vars(&self) -> &[String] {
        &self.free_names
    }

    /// Does running this query produce a [`QueryOutput::Bool`] (no free
    /// variables) rather than binding rows?
    pub fn is_boolean(&self) -> bool {
        self.free_names.is_empty()
    }

    /// The existential closure of the formula: every free name variable
    /// wrapped in `existsname`, turning the open query into the sentence
    /// "some satisfying assignment exists".
    ///
    /// This is the short-circuiting way to answer the Boolean collapse of a
    /// set-returning query ([`QueryOutput::holds`] on the bindings gives the
    /// same answer, but only after materializing every row): evaluating the
    /// closure stops at the first witness.
    pub fn existential_closure(&self) -> Formula {
        self.free_names
            .iter()
            .rev()
            .fold(self.formula.clone(), |acc, v| Formula::exists_name(v.clone(), acc))
    }

    /// The compile-time semi-join plan, present iff the query is open.
    pub fn plan(&self) -> Option<&QueryPlan> {
        self.plan.as_ref()
    }

    /// Run against an existing evaluator (the cheapest path when several
    /// queries hit one snapshot: the evaluator's domain enumeration and
    /// spatial index are shared). Open queries use the stored semi-join
    /// plan unless `QUERY_PLANNER` disables the planner.
    pub fn run_on(&self, evaluator: &CellEvaluator) -> Result<QueryOutput, EvalError> {
        match &self.plan {
            None => evaluator.eval(&self.formula).map(QueryOutput::Bool),
            Some(plan) if planner_enabled() => evaluator
                .eval_bindings_planned(&self.formula, plan)
                .map(QueryOutput::Bindings),
            Some(_) => evaluator
                .eval_bindings_naive(&self.formula, &self.free_names)
                .map(QueryOutput::Bindings),
        }
    }

    /// Run against any cell complex representation (flat
    /// [`arrangement::CellComplex`] or zero-copy
    /// [`arrangement::GlobalComplexView`]); builds a fresh evaluator.
    pub fn run_on_complex<C: ComplexRead>(&self, complex: &C) -> Result<QueryOutput, EvalError> {
        self.run_on(&CellEvaluator::from_complex(complex))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::fixtures;

    #[test]
    fn boolean_queries_stay_boolean() {
        let q = PreparedQuery::compile("overlap(A, B)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.free_name_vars(), &[] as &[String]);
        let ev = CellEvaluator::new(&fixtures::fig_1c());
        assert_eq!(q.run_on(&ev), Ok(QueryOutput::Bool(true)));
        assert_eq!(q.run_on(&ev).unwrap().as_bool(), Some(true));
    }

    #[test]
    fn free_name_variables_produce_bindings() {
        // nested_three: A ⊃ B ⊃ C.
        let q = PreparedQuery::compile("inside(ext(x), A)").unwrap();
        assert!(!q.is_boolean());
        assert_eq!(q.free_name_vars(), ["x"]);
        let ev = CellEvaluator::new(&fixtures::nested_three());
        let out = q.run_on(&ev).unwrap();
        let rows = out.bindings().unwrap();
        let xs: Vec<&str> = rows.iter().map(|r| r["x"].as_str()).collect();
        assert_eq!(xs, ["B", "C"]);
        assert!(out.holds());
        assert_eq!(out.as_bool(), None);
    }

    #[test]
    fn two_free_variables_enumerate_pairs() {
        let q = PreparedQuery::compile("contains(ext(x), ext(y))").unwrap();
        assert_eq!(q.free_name_vars(), ["x", "y"]);
        let ev = CellEvaluator::new(&fixtures::nested_three());
        let rows = q.run_on(&ev).unwrap().bindings().unwrap().to_vec();
        let pairs: Vec<(String, String)> =
            rows.into_iter().map(|r| (r["x"].clone(), r["y"].clone())).collect();
        // A ⊃ B, A ⊃ C, B ⊃ C.
        let want =
            [("A", "B"), ("A", "C"), ("B", "C")].map(|(a, b)| (a.to_string(), b.to_string()));
        assert_eq!(pairs, want);
    }

    #[test]
    fn bound_name_variables_are_not_free() {
        let q = PreparedQuery::compile("existsname x . inside(ext(x), A)").unwrap();
        assert!(q.is_boolean());
        let ev = CellEvaluator::new(&fixtures::nested_three());
        assert_eq!(q.run_on(&ev), Ok(QueryOutput::Bool(true)));
    }

    #[test]
    fn free_region_variables_are_rejected_at_compile_time() {
        let err = PreparedQuery::compile("subset(r, A)").unwrap_err();
        assert!(matches!(err, PrepareError::FreeRegionVariable(ref v) if v == "r"));
        assert!(err.to_string().contains("free region variable"));
        // Parse failures carry the byte position through.
        let err = PreparedQuery::compile("overlap(A,").unwrap_err();
        assert!(matches!(err, PrepareError::Parse(_)));
    }

    #[test]
    fn mixed_quantified_and_free_variables() {
        // Which regions x admit a witness region inside both x and A?
        let q = PreparedQuery::compile("exists r . subset(r, ext(x)) and subset(r, A)").unwrap();
        assert_eq!(q.free_name_vars(), ["x"]);
        let ev = CellEvaluator::new(&fixtures::fig_1c());
        let rows = q.run_on(&ev).unwrap().bindings().unwrap().to_vec();
        // fig_1c: A and B overlap, so both names qualify.
        let xs: Vec<&str> = rows.iter().map(|r| r["x"].as_str()).collect();
        assert_eq!(xs, ["A", "B"]);
    }

    #[test]
    fn shadowed_free_variables_keep_their_outer_binding() {
        // `x` is free in the first conjunct and *shadowed* by the inner
        // `existsname x` in the second: the quantifier must restore the
        // outer binding, so every row still carries the free `x`.
        let q = PreparedQuery::compile(
            "inside(ext(x), A) and existsname x . inside(ext(x), A)",
        )
        .unwrap();
        assert_eq!(q.free_name_vars(), ["x"]);
        let ev = CellEvaluator::new(&fixtures::nested_three());
        let rows = q.run_on(&ev).unwrap().bindings().unwrap().to_vec();
        let xs: Vec<&str> = rows.iter().map(|r| r["x"].as_str()).collect();
        assert_eq!(xs, ["B", "C"], "outer x survives the shadowing quantifier");
    }

    #[test]
    fn display_of_outputs() {
        assert_eq!(format!("{}", QueryOutput::Bool(true)), "true");
        let rows = vec![[("x".to_string(), "A".to_string())].into_iter().collect()];
        let s = format!("{}", QueryOutput::Bindings(rows));
        assert!(s.contains("1 row(s)"));
        assert!(s.contains("x = A"));
    }
}
