//! # query
//!
//! The region-based query languages `FO(Region, Region')` of
//! *"Topological Queries in Spatial Databases"* (Sections 4–6), together with
//! their effective evaluators and the completeness constructions:
//!
//! * [`ast`] / [`parser`] — syntax of the languages: 4-intersection atoms,
//!   name and region variables, Boolean connectives and quantifiers;
//! * [`cell_eval`] — the tractable evaluator of the paper's Section 7:
//!   region quantifiers range over disc-like unions of cells of the
//!   instance's cell complex (this is what answers the paper's Example 4.1 /
//!   4.2 separating queries); formulas with free name variables evaluate as
//!   *set-returning* queries via [`CellEvaluator::eval_bindings`];
//! * [`prepared`] — [`PreparedQuery`]: parse + free-variable analysis once,
//!   run against any snapshot/complex many times, producing
//!   [`QueryOutput::Bool`] for sentences and [`QueryOutput::Bindings`] for
//!   open formulas;
//! * [`thematic_eval`] — Corollary 3.7: answering the quantifier-free
//!   fragment by first-order queries over the thematic relational database;
//! * [`rect_eval`] — Theorem 6.4: effective evaluation of `FO(Rect, Rect)` by
//!   order-type snapping, with polynomial data complexity;
//! * [`point_lang`] — the point-based language `FO(P, <x, <y, ·)` and the
//!   rectangle-to-point translation of Theorem 5.8;
//! * [`derived`] — the derived predicates used in the expressiveness proofs
//!   (Theorem 4.4, Proposition 4.5);
//! * [`complete`] — Proposition 5.1 / Theorem 5.6: the sentence `φ_{T_I}`
//!   defining an instance's homeomorphism class, and the normal form for
//!   computable topological queries.
//!
//! ## Example
//!
//! ```
//! use query::parser::parse;
//! use query::cell_eval::eval_on_instance;
//! use spatial_core::fixtures;
//!
//! // The paper's Example 4.1: is there a region inside A, B and C at once?
//! let q = parse("exists r . subset(r, A) and subset(r, B) and subset(r, C)").unwrap();
//! assert_eq!(eval_on_instance(&fixtures::fig_1a(), &q), Ok(true));
//! assert_eq!(eval_on_instance(&fixtures::fig_1b(), &q), Ok(false));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cell_eval;
pub mod complete;
pub mod derived;
pub mod parser;
pub mod point_lang;
pub mod prepared;
pub mod rect_eval;
pub mod thematic_eval;

pub use ast::{Formula, NameTerm, Query, RegionExpr};
pub use cell_eval::{eval_on_instance, Bindings, CellEvaluator, EvalError};
pub use parser::{parse, ParseError};
pub use prepared::{PrepareError, PreparedQuery, QueryOutput};
