//! # query
//!
//! The region-based query languages `FO(Region, Region')` of
//! *"Topological Queries in Spatial Databases"* (Sections 4–6), together with
//! their effective evaluators and the completeness constructions:
//!
//! * [`ast`] / [`parser`] — syntax of the languages: 4-intersection atoms,
//!   name and region variables, Boolean connectives and quantifiers;
//! * [`cell_eval`] — the tractable evaluator of the paper's Section 7:
//!   region quantifiers range over disc-like unions of cells of the
//!   instance's cell complex (this is what answers the paper's Example 4.1 /
//!   4.2 separating queries); formulas with free name variables evaluate as
//!   *set-returning* queries via [`CellEvaluator::eval_bindings`];
//! * [`plan`] — [`QueryPlan`]: compile-time analysis of an open formula into
//!   top-level conjuncts and per-variable candidate generators, driving the
//!   semi-join enumeration below;
//! * [`prepared`] — [`PreparedQuery`]: parse + free-variable analysis + plan
//!   construction once, run against any snapshot/complex many times,
//!   producing [`QueryOutput::Bool`] for sentences and
//!   [`QueryOutput::Bindings`] for open formulas;
//! * [`thematic_eval`] — Corollary 3.7: answering the quantifier-free
//!   fragment by first-order queries over the thematic relational database;
//! * [`rect_eval`] — Theorem 6.4: effective evaluation of `FO(Rect, Rect)` by
//!   order-type snapping, with polynomial data complexity;
//! * [`point_lang`] — the point-based language `FO(P, <x, <y, ·)` and the
//!   rectangle-to-point translation of Theorem 5.8;
//! * [`derived`] — the derived predicates used in the expressiveness proofs
//!   (Theorem 4.4, Proposition 4.5);
//! * [`complete`] — Proposition 5.1 / Theorem 5.6: the sentence `φ_{T_I}`
//!   defining an instance's homeomorphism class, and the normal form for
//!   computable topological queries.
//!
//! ## Example
//!
//! ```
//! use query::parser::parse;
//! use query::cell_eval::eval_on_instance;
//! use spatial_core::fixtures;
//!
//! // The paper's Example 4.1: is there a region inside A, B and C at once?
//! let q = parse("exists r . subset(r, A) and subset(r, B) and subset(r, C)").unwrap();
//! assert_eq!(eval_on_instance(&fixtures::fig_1a(), &q), Ok(true));
//! assert_eq!(eval_on_instance(&fixtures::fig_1b(), &q), Ok(false));
//! ```
//!
//! ## Planning model
//!
//! An open formula with `k` free name variables is a set-returning query.
//! The baseline evaluation is a cartesian product — every assignment in
//! `names(I)^k` is tried, `O(n^k)` full formula evaluations — and it remains
//! available, both as [`CellEvaluator::eval_bindings_naive`] and as the
//! active path whenever the `QUERY_PLANNER` environment variable is set to
//! `0`/`off`/`naive`/`false` (see [`plan::planner_enabled`]). The planned
//! path layers three ideas on top of it:
//!
//! 1. **Compile-time atom analysis** ([`QueryPlan::build`], stored inside
//!    [`PreparedQuery`]). The top-level conjunction is flattened; each
//!    positive contact-implying atom (`connect`, `subset`, any 4-intersection
//!    relation except `disjoint`) or name equation over region *extents*
//!    contributes a candidate *generator* for the free variables it touches.
//! 2. **Selectivity-ordered enumeration** (in
//!    [`CellEvaluator::eval_bindings_planned`]). Variables are bound
//!    greedily, smallest estimated candidate set first: an exact pin
//!    estimates 1, a constant-contact generator estimates the spatial index's
//!    bbox-neighbor count of that constant, a variable-contact generator the
//!    instance's average bbox degree, and an unconstrained variable `n`. The
//!    chosen order is observable via [`CellEvaluator::planned_var_order`].
//! 3. **Semi-join filtering.** Each conjunct is evaluated at the earliest
//!    position where all its plan variables are bound, so a failing
//!    assignment prefix is pruned before the remaining variables each
//!    multiply the work by `n`. Candidate sets themselves come from the
//!    STR-packed R-tree over exact rational region bounding boxes
//!    ([`arrangement::SpatialIndex`], shared with the snapshot through
//!    `GlobalComplexView::region_bbox_index`): closure contact implies bbox
//!    intersection, so bbox neighborhoods *over*-approximate the satisfying
//!    values and the conjunct filters finish the job — never the other way
//!    around, which is what keeps the planner sound.
//!
//! Both paths produce the same rows in the same (lexicographic) order for
//! every formula whose naive evaluation completes without error; the
//! randomized differential suite in `tests/planner_differential.rs` pins
//! this. On *erroring* formulas the two paths may differ (the planner can
//! prune an assignment before the erroring subformula runs, or meet a
//! different erroring assignment first) — errors are reported faithfully but
//! which error surfaces is unspecified, exactly as subformula evaluation
//! order is unspecified inside one conjunct.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cell_eval;
pub mod complete;
pub mod derived;
pub mod parser;
pub mod plan;
pub mod point_lang;
pub mod prepared;
pub mod rect_eval;
pub mod thematic_eval;

pub use ast::{Formula, NameTerm, Query, RegionExpr};
pub use cell_eval::{eval_on_instance, Bindings, CellEvaluator, EvalError};
pub use parser::{parse, ParseError};
pub use plan::QueryPlan;
pub use prepared::{PrepareError, PreparedQuery, QueryOutput};
