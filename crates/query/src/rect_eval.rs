//! Effective evaluation of `FO(Rect, Rect)` queries (Theorem 6.4).
//!
//! When the input regions are axis-parallel rectangles and quantifiers range
//! over rectangles, queries are `S`-generic at most (Fig. 10): their answers
//! depend only on the *order type* of the rectangle coordinates. Every
//! quantified rectangle can therefore be snapped onto the finite coordinate
//! grid spanned by the input coordinates, their midpoints and one value
//! beyond each end, without changing any 4-intersection relation. This gives
//! a decision procedure with polynomial data complexity for a fixed query —
//! the effective counterpart of the paper's `NC` bound (Theorem 6.4).

use crate::ast::{Formula, NameTerm, RegionExpr};
use relations::Relation4;
use spatial_core::prelude::*;
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised by the rectangle evaluator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RectEvalError {
    /// An input region is not an axis-parallel rectangle.
    NonRectangularInput(String),
    /// An unknown region name was mentioned.
    UnknownName(String),
    /// A variable was used without being bound.
    UnboundVariable(String),
}

impl fmt::Display for RectEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RectEvalError::NonRectangularInput(n) => {
                write!(f, "region `{n}` is not a rectangle; FO(Rect, Rect) requires Rect inputs")
            }
            RectEvalError::UnknownName(n) => write!(f, "unknown region name `{n}`"),
            RectEvalError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
        }
    }
}

impl std::error::Error for RectEvalError {}

/// A rectangle as four exact coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Box2 {
    x1: Rational,
    x2: Rational,
    y1: Rational,
    y2: Rational,
}

/// The 4-intersection relation between two axis-parallel open rectangles,
/// computed in closed form from coordinate comparisons.
fn rect_relation(a: &Box2, b: &Box2) -> Relation4 {
    if a == b {
        return Relation4::Equal;
    }
    // Closed-interval overlap tests per axis.
    let closures_disjoint =
        a.x2 < b.x1 || b.x2 < a.x1 || a.y2 < b.y1 || b.y2 < a.y1;
    if closures_disjoint {
        return Relation4::Disjoint;
    }
    let interiors_intersect =
        a.x2 > b.x1 && b.x2 > a.x1 && a.y2 > b.y1 && b.y2 > a.y1;
    if !interiors_intersect {
        return Relation4::Meet;
    }
    let a_in_b = a.x1 >= b.x1 && a.x2 <= b.x2 && a.y1 >= b.y1 && a.y2 <= b.y2;
    let b_in_a = b.x1 >= a.x1 && b.x2 <= a.x2 && b.y1 >= a.y1 && b.y2 <= a.y2;
    let shares_boundary = |inner: &Box2, outer: &Box2| {
        inner.x1 == outer.x1 || inner.x2 == outer.x2 || inner.y1 == outer.y1 || inner.y2 == outer.y2
    };
    if a_in_b {
        if shares_boundary(a, b) {
            Relation4::CoveredBy
        } else {
            Relation4::Inside
        }
    } else if b_in_a {
        if shares_boundary(b, a) {
            Relation4::Covers
        } else {
            Relation4::Contains
        }
    } else {
        Relation4::Overlap
    }
}

/// The evaluator for `FO(Rect, Rect)` sentences.
pub struct RectEvaluator {
    named: BTreeMap<String, Box2>,
    /// Distinct input coordinates per axis; the evaluation grid is derived
    /// from these with enough representatives per gap for the formula at
    /// hand (two per region quantifier).
    base_xs: Vec<Rational>,
    base_ys: Vec<Rational>,
}

impl RectEvaluator {
    /// Build the evaluator for an instance whose regions are all rectangles.
    pub fn new(instance: &SpatialInstance) -> Result<RectEvaluator, RectEvalError> {
        let mut named = BTreeMap::new();
        for (name, region) in instance.iter() {
            if region.class() != RegionClass::Rect {
                return Err(RectEvalError::NonRectangularInput(name.to_string()));
            }
            let (x1, y1, x2, y2) = region.bounding_box();
            named.insert(name.to_string(), Box2 { x1, x2, y1, y2 });
        }
        let base_xs = base_coords(named.values().flat_map(|b| [b.x1, b.x2]).collect());
        let base_ys = base_coords(named.values().flat_map(|b| [b.y1, b.y2]).collect());
        Ok(RectEvaluator { named, base_xs, base_ys })
    }

    /// The number of candidate rectangles a single quantifier ranges over,
    /// for a query with the given number of region quantifiers.
    pub fn quantifier_domain_size_for(&self, quantifiers: usize) -> usize {
        let reps = (2 * quantifiers).max(1);
        let nx = refine(&self.base_xs, reps).len();
        let ny = refine(&self.base_ys, reps).len();
        (nx * (nx - 1) / 2) * (ny * (ny - 1) / 2)
    }

    /// Evaluate a sentence; region quantifiers range over grid rectangles,
    /// name quantifiers over the instance's names. The grid carries two
    /// representative coordinates per gap and per region quantifier, which by
    /// S-genericity suffices for exactness over rectangle inputs.
    pub fn eval(&self, formula: &Formula) -> Result<bool, RectEvalError> {
        let reps = (2 * formula.region_quantifier_count()).max(1);
        let xs = refine(&self.base_xs, reps);
        let ys = refine(&self.base_ys, reps);
        let mut env = Env {
            candidates: Self::candidate_rectangles(&xs, &ys),
            ..Env::default()
        };
        self.eval_inner(formula, &mut env)
    }

    fn resolve_name(&self, t: &NameTerm, env: &Env) -> Result<String, RectEvalError> {
        match t {
            NameTerm::Const(c) => {
                if self.named.contains_key(c) {
                    Ok(c.clone())
                } else {
                    Err(RectEvalError::UnknownName(c.clone()))
                }
            }
            NameTerm::Var(v) => env
                .names
                .get(v)
                .cloned()
                .ok_or_else(|| RectEvalError::UnboundVariable(v.clone())),
        }
    }

    fn resolve_region(&self, e: &RegionExpr, env: &Env) -> Result<Box2, RectEvalError> {
        match e {
            RegionExpr::Var(v) => env
                .regions
                .get(v)
                .copied()
                .ok_or_else(|| RectEvalError::UnboundVariable(v.clone())),
            RegionExpr::Ext(t) => {
                let name = self.resolve_name(t, env)?;
                Ok(self.named[&name])
            }
        }
    }

    fn candidate_rectangles(xs: &[Rational], ys: &[Rational]) -> Vec<Box2> {
        let mut out = Vec::new();
        for (i, &x1) in xs.iter().enumerate() {
            for &x2 in &xs[i + 1..] {
                for (j, &y1) in ys.iter().enumerate() {
                    for &y2 in &ys[j + 1..] {
                        out.push(Box2 { x1, x2, y1, y2 });
                    }
                }
            }
        }
        out
    }

    fn eval_inner(&self, formula: &Formula, env: &mut Env) -> Result<bool, RectEvalError> {
        match formula {
            Formula::Rel(r, p, q) => {
                let a = self.resolve_region(p, env)?;
                let b = self.resolve_region(q, env)?;
                Ok(rect_relation(&a, &b) == *r)
            }
            Formula::Connect(p, q) => {
                let a = self.resolve_region(p, env)?;
                let b = self.resolve_region(q, env)?;
                Ok(rect_relation(&a, &b) != Relation4::Disjoint)
            }
            Formula::Subset(p, q) => {
                let a = self.resolve_region(p, env)?;
                let b = self.resolve_region(q, env)?;
                Ok(matches!(
                    rect_relation(&a, &b),
                    Relation4::Inside | Relation4::CoveredBy | Relation4::Equal
                ))
            }
            Formula::NameEq(x, y) => Ok(self.resolve_name(x, env)? == self.resolve_name(y, env)?),
            Formula::Not(f) => Ok(!self.eval_inner(f, env)?),
            Formula::And(fs) => {
                for f in fs {
                    if !self.eval_inner(f, env)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(fs) => {
                for f in fs {
                    if self.eval_inner(f, env)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::ExistsRegion(v, f) => {
                for idx in 0..env.candidates.len() {
                    let value = env.candidates[idx];
                    env.regions.insert(v.clone(), value);
                    let holds = self.eval_inner(f, env)?;
                    env.regions.remove(v);
                    if holds {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::ForallRegion(v, f) => {
                for idx in 0..env.candidates.len() {
                    let value = env.candidates[idx];
                    env.regions.insert(v.clone(), value);
                    let holds = self.eval_inner(f, env)?;
                    env.regions.remove(v);
                    if !holds {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::ExistsName(v, f) => {
                for name in self.named.keys().cloned().collect::<Vec<_>>() {
                    env.names.insert(v.clone(), name);
                    let holds = self.eval_inner(f, env)?;
                    env.names.remove(v);
                    if holds {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::ForallName(v, f) => {
                for name in self.named.keys().cloned().collect::<Vec<_>>() {
                    env.names.insert(v.clone(), name);
                    let holds = self.eval_inner(f, env)?;
                    env.names.remove(v);
                    if !holds {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }
}

#[derive(Default)]
struct Env {
    regions: BTreeMap<String, Box2>,
    names: BTreeMap<String, String>,
    candidates: Vec<Box2>,
}

/// Sort and deduplicate the input coordinates of one axis.
fn base_coords(mut coords: Vec<Rational>) -> Vec<Rational> {
    coords.sort();
    coords.dedup();
    if coords.is_empty() {
        coords.push(Rational::ZERO);
    }
    coords
}

/// Refine a coordinate axis: `reps` evenly spaced representatives strictly
/// inside every gap between consecutive input coordinates, plus `reps` values
/// beyond each end.
fn refine(coords: &[Rational], reps: usize) -> Vec<Rational> {
    let mut out = Vec::with_capacity(coords.len() * (reps + 1) + 2 * reps);
    for k in 0..reps {
        out.push(coords[0] - Rational::from_int(1 + k as i64));
    }
    for i in 0..coords.len() {
        out.push(coords[i]);
        if i + 1 < coords.len() {
            let gap = coords[i + 1] - coords[i];
            for k in 1..=reps {
                out.push(coords[i] + gap * Rational::new(k as i128, reps as i128 + 1));
            }
        }
    }
    for k in 0..reps {
        out.push(coords[coords.len() - 1] + Rational::from_int(1 + k as i64));
    }
    out.sort();
    out
}

/// Evaluate an `FO(Rect, Rect)` sentence on an instance of rectangles.
pub fn eval_on_rect_instance(
    instance: &SpatialInstance,
    formula: &Formula,
) -> Result<bool, RectEvalError> {
    RectEvaluator::new(instance)?.eval(formula)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Formula as F, RegionExpr as R};
    use crate::parser::parse;
    use spatial_core::fixtures;

    fn rect_instance() -> SpatialInstance {
        SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 10, 10)),
            ("B", Region::rect_from_ints(2, 2, 6, 6)),
            ("C", Region::rect_from_ints(8, 8, 14, 14)),
        ])
    }

    #[test]
    fn closed_form_rect_relations() {
        let b = |x1, y1, x2, y2| Box2 {
            x1: Rational::from_int(x1),
            x2: Rational::from_int(x2),
            y1: Rational::from_int(y1),
            y2: Rational::from_int(y2),
        };
        assert_eq!(rect_relation(&b(0, 0, 2, 2), &b(4, 0, 6, 2)), Relation4::Disjoint);
        assert_eq!(rect_relation(&b(0, 0, 2, 2), &b(2, 0, 4, 2)), Relation4::Meet);
        assert_eq!(rect_relation(&b(0, 0, 4, 4), &b(2, 2, 6, 6)), Relation4::Overlap);
        assert_eq!(rect_relation(&b(0, 0, 4, 4), &b(0, 0, 4, 4)), Relation4::Equal);
        assert_eq!(rect_relation(&b(0, 0, 10, 10), &b(2, 2, 6, 6)), Relation4::Contains);
        assert_eq!(rect_relation(&b(2, 2, 6, 6), &b(0, 0, 10, 10)), Relation4::Inside);
        assert_eq!(rect_relation(&b(0, 0, 10, 10), &b(0, 2, 6, 6)), Relation4::Covers);
        assert_eq!(rect_relation(&b(0, 2, 6, 6), &b(0, 0, 10, 10)), Relation4::CoveredBy);
        // Corner-touching rectangles meet.
        assert_eq!(rect_relation(&b(0, 0, 2, 2), &b(2, 2, 4, 4)), Relation4::Meet);
    }

    #[test]
    fn rect_relations_agree_with_the_geometric_engine() {
        for (name, inst) in fixtures::fig_2_pairs() {
            let a = inst.ext("A").unwrap();
            let b = inst.ext("B").unwrap();
            let (ax1, ay1, ax2, ay2) = a.bounding_box();
            let (bx1, by1, bx2, by2) = b.bounding_box();
            let ra = Box2 { x1: ax1, x2: ax2, y1: ay1, y2: ay2 };
            let rb = Box2 { x1: bx1, x2: bx2, y1: by1, y2: by2 };
            assert_eq!(
                rect_relation(&ra, &rb),
                relations::relation_between(a, b),
                "{name}"
            );
        }
    }

    #[test]
    fn quantified_queries_over_rectangles() {
        let inst = rect_instance();
        // Some rectangle is inside both A and C (they overlap at (8..10)^2).
        let q = parse("exists r . inside(r, A) and inside(r, C)").unwrap();
        assert_eq!(eval_on_rect_instance(&inst, &q), Ok(true));
        // No rectangle is inside both B and C (they are disjoint).
        let q2 = parse("exists r . inside(r, B) and inside(r, C)").unwrap();
        assert_eq!(eval_on_rect_instance(&inst, &q2), Ok(false));
        // Every rectangle inside B is inside A.
        let q3 = parse("forall r . inside(r, B) -> inside(r, A)").unwrap();
        assert_eq!(eval_on_rect_instance(&inst, &q3), Ok(true));
        // The converse fails.
        let q4 = parse("forall r . inside(r, A) -> inside(r, B)").unwrap();
        assert_eq!(eval_on_rect_instance(&inst, &q4), Ok(false));
    }

    #[test]
    fn rejects_non_rectangular_inputs() {
        assert!(matches!(
            RectEvaluator::new(&fixtures::fig_1d()),
            Err(RectEvalError::NonRectangularInput(_))
        ));
    }

    #[test]
    fn s_genericity_snapping_is_sound() {
        // Applying a monotone per-axis rescaling (an element of S) to the
        // instance does not change any quantified query answer.
        let inst = rect_instance();
        let rho = MonotoneMap::from_ints(&[(0, 0), (4, 2), (10, 40), (20, 45)]).unwrap();
        let s = PlaneTransform::Symmetry(Symmetry { rho1: rho.clone(), rho2: rho, swap: false });
        let image = s.apply_instance(&inst).unwrap();
        for text in [
            "exists r . inside(r, A) and inside(r, C)",
            "exists r . inside(r, B) and inside(r, C)",
            "forall r . inside(r, B) -> inside(r, A)",
            "exists r . covers(A, r) and overlap(r, B)",
        ] {
            let q = parse(text).unwrap();
            assert_eq!(
                eval_on_rect_instance(&inst, &q),
                eval_on_rect_instance(&image, &q),
                "{text}"
            );
        }
    }

    #[test]
    fn name_equality_and_quantifiers() {
        let inst = rect_instance();
        let q = F::exists_name(
            "a",
            F::rel(Relation4::Inside, R::named("B"), R::Ext(NameTerm::Var("a".into()))),
        );
        assert_eq!(RectEvaluator::new(&inst).unwrap().eval(&q), Ok(true));
    }

    #[test]
    fn domain_size_is_polynomial() {
        let ev = RectEvaluator::new(&rect_instance()).unwrap();
        let d1 = ev.quantifier_domain_size_for(1);
        let d2 = ev.quantifier_domain_size_for(2);
        assert!(d1 > 0);
        assert!(d2 > d1);
        assert!(d2 < 1_000_000);
    }
}
