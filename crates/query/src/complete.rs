//! Completeness constructions (Section 5 of the paper).
//!
//! Proposition 5.1 shows that every `H`-equivalence class of instances over
//! `Alg` is definable by a single sentence of `FO(Region, Alg)`: from the
//! topological invariant `T_I` one writes a sentence `φ_{T_I}` that
//! existentially quantifies one witness region per cell of `T_I`, states the
//! required labels, adjacencies and orientations, and pins down the exterior
//! face. Theorem 5.6 then gives the *normal form* for computable topological
//! queries: evaluating a query amounts to (1) computing `φ_{T_I}` from the
//! input — polynomial time — and (2) checking membership of that sentence in
//! a recursive set determined by the query alone.
//!
//! This module implements the construction of `φ_{T_I}` as a syntactic object
//! and exposes the mapping `f(I) = φ_{T_I}` of Theorem 5.6. Evaluating
//! `φ_{T_I}` with the generic region evaluators is exponentially expensive
//! (one region quantifier per cell); the effective way to test
//! `J ⊨ φ_{T_I}` is invariant isomorphism (Theorem 3.4), which
//! [`defines_equivalence_class_of`] uses and which the tests exploit to check
//! the construction's key property on the paper's fixtures.

use crate::ast::{Formula, RegionExpr};
use arrangement::Sign;
use invariant::{isomorphic, Invariant};
use relations::Relation4;

/// The sentence `φ_{T_I}` of Proposition 5.1, defining the `H`-equivalence
/// class of the instance with invariant `inv`.
///
/// Shape of the sentence (following the proof of Proposition 5.1):
///
/// * one existentially quantified region variable per cell of the invariant,
/// * pairwise disjointness of the cell witnesses,
/// * for every cell, its label constraints against the named regions
///   (`subset` for interior, `overlap` for boundary, `disjoint` for exterior),
/// * for every incidence in the adjacency relation `E`, a `connect`
///   requirement between the corresponding witnesses (and `disjoint` for
///   non-incident cells of equal dimension),
/// * a clause singling out the exterior face: a region disjoint from all
///   named regions and connected to the exterior witness exists around them.
pub fn class_defining_sentence(inv: &Invariant) -> Formula {
    let names = inv.region_names().to_vec();
    let vertex_var = |v: usize| format!("v{v}");
    let edge_var = |e: usize| format!("e{e}");
    let face_var = |f: usize| format!("f{f}");

    let mut cell_vars: Vec<String> = Vec::new();
    cell_vars.extend((0..inv.vertex_count()).map(vertex_var));
    cell_vars.extend((0..inv.edge_count()).map(edge_var));
    cell_vars.extend((0..inv.face_count()).map(face_var));

    let mut body: Vec<Formula> = Vec::new();

    // (1) Pairwise disjointness of all cell witnesses.
    for i in 0..cell_vars.len() {
        for j in (i + 1)..cell_vars.len() {
            body.push(Formula::rel(
                Relation4::Disjoint,
                RegionExpr::var(cell_vars[i].clone()),
                RegionExpr::var(cell_vars[j].clone()),
            ));
        }
    }

    // (2) Label constraints.
    let label_clause = |var: &str, label: &arrangement::Label, body: &mut Vec<Formula>| {
        for (idx, sign) in label.iter().enumerate() {
            let named = RegionExpr::named(names[idx].clone());
            let witness = RegionExpr::var(var.to_string());
            body.push(match sign {
                Sign::Interior => Formula::subset(witness, named),
                Sign::Boundary => Formula::rel(Relation4::Overlap, witness, named),
                Sign::Exterior => Formula::rel(Relation4::Disjoint, witness, named),
            });
        }
    };
    for v in 0..inv.vertex_count() {
        label_clause(&vertex_var(v), inv.vertex_label(v), &mut body);
    }
    for e in 0..inv.edge_count() {
        label_clause(&edge_var(e), inv.edge_label(e), &mut body);
    }
    for f in 0..inv.face_count() {
        label_clause(&face_var(f), inv.face_label(f), &mut body);
    }

    // (3) Adjacency: incident cells give connected witnesses.
    for e in 0..inv.edge_count() {
        let (t, h) = inv.edge_endpoints(e);
        body.push(Formula::connect(RegionExpr::var(vertex_var(t)), RegionExpr::var(edge_var(e))));
        body.push(Formula::connect(RegionExpr::var(vertex_var(h)), RegionExpr::var(edge_var(e))));
        let (l, r) = inv.edge_faces(e);
        body.push(Formula::connect(RegionExpr::var(edge_var(e)), RegionExpr::var(face_var(l))));
        body.push(Formula::connect(RegionExpr::var(edge_var(e)), RegionExpr::var(face_var(r))));
    }
    for f in 0..inv.face_count() {
        for &e in inv.face_edges(f) {
            body.push(Formula::connect(RegionExpr::var(edge_var(e)), RegionExpr::var(face_var(f))));
        }
    }

    // (4) Orientation: for consecutive edges around a vertex there is a
    // connector region meeting both but avoiding the other edges at that
    // vertex — the device of Example 4.2 / Fig. 7 in the paper. We emit one
    // clause per consecutive pair in the rotation.
    for v in 0..inv.vertex_count() {
        let rot = inv.rotation(v);
        let k = rot.len();
        if k < 3 {
            continue;
        }
        for i in 0..k {
            let e1 = rot[i].edge;
            let e2 = rot[(i + 1) % k].edge;
            if e1 == e2 {
                continue;
            }
            let conn = format!("o_{v}_{i}");
            let mut clauses = vec![
                Formula::connect(RegionExpr::var(conn.clone()), RegionExpr::var(edge_var(e1))),
                Formula::connect(RegionExpr::var(conn.clone()), RegionExpr::var(edge_var(e2))),
                Formula::connect(RegionExpr::var(conn.clone()), RegionExpr::var(vertex_var(v))),
            ];
            for other in rot.iter().map(|d| d.edge) {
                if other != e1 && other != e2 {
                    clauses.push(Formula::not(Formula::connect(
                        RegionExpr::var(conn.clone()),
                        RegionExpr::var(edge_var(other)),
                    )));
                }
            }
            body.push(Formula::exists_region(conn, Formula::and(clauses)));
        }
    }

    // (5) The exterior face witness is disjoint from every named region and
    // from every region-interior face witness.
    let ext = face_var(inv.exterior_face());
    for name in &names {
        body.push(Formula::rel(
            Relation4::Disjoint,
            RegionExpr::var(ext.clone()),
            RegionExpr::named(name.clone()),
        ));
    }

    // Wrap in the existential prefix.
    let mut sentence = Formula::and(body);
    for var in cell_vars.into_iter().rev() {
        sentence = Formula::exists_region(var, sentence);
    }
    sentence
}

/// Theorem 5.6's mapping `f(I) = φ_{T_I}`, starting from the instance.
pub fn normal_form_sentence(instance: &spatial_core::instance::SpatialInstance) -> Formula {
    class_defining_sentence(&Invariant::of_instance(instance))
}

/// Does the sentence generated for `inv` define the equivalence class of the
/// instance with invariant `other`? By Theorem 3.4 this is equivalent to
/// invariant isomorphism, which is how it is decided here (the sentence
/// itself is exponentially expensive to evaluate with a generic evaluator).
pub fn defines_equivalence_class_of(inv: &Invariant, other: &Invariant) -> bool {
    isomorphic(inv, other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::fixtures;

    #[test]
    fn sentence_size_is_polynomial_in_the_invariant() {
        // Proposition 5.1 / Theorem 5.6: the defining sentence is computable
        // in polynomial time; its size grows polynomially (quadratically, from
        // the pairwise-disjointness clauses) with the number of cells.
        let small = Invariant::of_instance(&fixtures::fig_1c());
        let large = Invariant::of_instance(&fixtures::ring_with_flag());
        let f_small = class_defining_sentence(&small);
        let f_large = class_defining_sentence(&large);
        assert!(f_small.size() > 0);
        assert!(f_large.size() > f_small.size());
        let cells_small = small.cell_count() as f64;
        let cells_large = large.cell_count() as f64;
        let bound = |c: f64| 40.0 * c * c + 200.0;
        assert!((f_small.size() as f64) < bound(cells_small));
        assert!((f_large.size() as f64) < bound(cells_large));
        // One region quantifier per cell plus the orientation connectors.
        assert!(f_small.region_quantifier_count() >= small.cell_count());
    }

    #[test]
    fn sentence_mentions_every_region_name() {
        let inv = Invariant::of_instance(&fixtures::fig_1a());
        let sentence = class_defining_sentence(&inv);
        let text = format!("{sentence}");
        for name in inv.region_names() {
            assert!(text.contains(name), "{name} missing from φ_T");
        }
    }

    #[test]
    fn class_membership_matches_homeomorphism() {
        let c = Invariant::of_instance(&fixtures::fig_1c());
        let c_moved = Invariant::of_instance(&fixtures::fig_1c().translated(30, -7));
        let d = Invariant::of_instance(&fixtures::fig_1d());
        assert!(defines_equivalence_class_of(&c, &c_moved));
        assert!(!defines_equivalence_class_of(&c, &d));
    }

    #[test]
    fn normal_form_is_deterministic() {
        let a = normal_form_sentence(&fixtures::fig_1c());
        let b = normal_form_sentence(&fixtures::fig_1c());
        assert_eq!(format!("{a}"), format!("{b}"));
    }
}
