//! Randomized differential suite: the semi-join planner must produce exactly
//! the same binding rows, in the same order, as the cartesian-product oracle
//! (`eval_bindings_naive`) on every formula whose naive evaluation completes
//! without error.
//!
//! Formulas are drawn pseudo-randomly (deterministic seeds) over 1–3 free
//! name variables, with all name constants taken from the instance under
//! test, and run against the three planner-relevant workloads: the uniform
//! `clustered_map`, the single-component crossing-heavy
//! `jittered_overlap_map`, and the skewed `zipf_clustered_map`.

use datagen::{clustered_map, jittered_overlap_map, zipf_clustered_map};
use query::ast::{Formula, NameTerm, RegionExpr};
use query::plan::QueryPlan;
use query::CellEvaluator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relations::Relation4;
use spatial_core::prelude::SpatialInstance;

/// A pseudo-random name term: one of the free variables or an instance name.
fn random_name_term(rng: &mut StdRng, free: &[String], names: &[String]) -> NameTerm {
    if rng.gen_bool(0.55) {
        NameTerm::Var(free[rng.gen_range(0..free.len())].clone())
    } else {
        NameTerm::Const(names[rng.gen_range(0..names.len())].clone())
    }
}

fn random_region(rng: &mut StdRng, free: &[String], names: &[String]) -> RegionExpr {
    RegionExpr::Ext(random_name_term(rng, free, names))
}

/// A pseudo-random atom over region extents.
fn random_atom(rng: &mut StdRng, free: &[String], names: &[String]) -> Formula {
    match rng.gen_range(0..4) {
        0 => {
            let r = Relation4::ALL[rng.gen_range(0..Relation4::ALL.len())];
            Formula::Rel(r, random_region(rng, free, names), random_region(rng, free, names))
        }
        1 => Formula::Connect(random_region(rng, free, names), random_region(rng, free, names)),
        2 => Formula::Subset(random_region(rng, free, names), random_region(rng, free, names)),
        _ => Formula::NameEq(
            random_name_term(rng, free, names),
            random_name_term(rng, free, names),
        ),
    }
}

/// A pseudo-random formula of bounded depth: conjunctions dominate (so the
/// planner has conjuncts to split and atoms to draw generators from), with
/// disjunctions, negations and shadowing name quantifiers mixed in.
fn random_formula(rng: &mut StdRng, depth: usize, free: &[String], names: &[String]) -> Formula {
    if depth == 0 {
        return random_atom(rng, free, names);
    }
    match rng.gen_range(0..10) {
        0..=4 => {
            let n = rng.gen_range(2..=3);
            Formula::And(
                (0..n).map(|_| random_formula(rng, depth - 1, free, names)).collect(),
            )
        }
        5..=6 => {
            let n = rng.gen_range(2..=3);
            Formula::Or(
                (0..n).map(|_| random_formula(rng, depth - 1, free, names)).collect(),
            )
        }
        7 => Formula::Not(Box::new(random_formula(rng, depth - 1, free, names))),
        8 => {
            // Shadow one of the free variables with a quantifier — the
            // planner must keep treating the outer occurrence correctly.
            let v = free[rng.gen_range(0..free.len())].clone();
            Formula::ExistsName(v, Box::new(random_formula(rng, depth - 1, free, names)))
        }
        _ => random_atom(rng, free, names),
    }
}

/// Run `rounds` random formulas with `k` free variables against the instance
/// and assert planner ≡ naive (rows and order).
fn differential(instance: &SpatialInstance, k: usize, rounds: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ev = CellEvaluator::new(instance);
    let names: Vec<String> = ev.names().iter().map(|s| s.to_string()).collect();
    let free: Vec<String> = ["x", "y", "z"][..k].iter().map(|s| s.to_string()).collect();
    for round in 0..rounds {
        let f = random_formula(&mut rng, 2, &free, &names);
        let naive = ev.eval_bindings_naive(&f, &free);
        let planned = ev.eval_bindings_planned(&f, &QueryPlan::build(&f, &free));
        // The contract covers error-free formulas; the generator never
        // produces unknown constants or unbound variables, so evaluation
        // errors cannot occur here and any mismatch is a planner bug.
        assert_eq!(
            planned, naive,
            "planner diverged from naive oracle (round {round}, k={k}, seed {seed}) on {f:?}"
        );
    }
}

#[test]
fn planner_matches_naive_on_clustered_map() {
    let inst = clustered_map(3, 4, 42);
    differential(&inst, 1, 12, 1);
    differential(&inst, 2, 8, 2);
    differential(&inst, 3, 4, 3);
}

#[test]
fn planner_matches_naive_on_jittered_overlap_map() {
    let inst = jittered_overlap_map(3, 3, 6, 7);
    differential(&inst, 1, 12, 4);
    differential(&inst, 2, 8, 5);
    differential(&inst, 3, 4, 6);
}

#[test]
fn planner_matches_naive_on_zipf_clustered_map() {
    let inst = zipf_clustered_map(4, 12, 9);
    differential(&inst, 1, 12, 7);
    differential(&inst, 2, 8, 8);
    differential(&inst, 3, 4, 9);
}

#[test]
fn selectivity_ordering_prefers_pinned_and_indexed_variables() {
    // On a clustered instance, `y = <name>` pins y (estimate 1) while x is
    // only contact-constrained (estimate = bbox degree) and z is free
    // (estimate n): the greedy order must be y, x, z.
    let inst = clustered_map(3, 4, 42);
    let ev = CellEvaluator::new(&inst);
    let names: Vec<String> = ev.names().iter().map(|s| s.to_string()).collect();
    let f = Formula::And(vec![
        Formula::Connect(
            RegionExpr::Ext(NameTerm::Var("x".into())),
            RegionExpr::Ext(NameTerm::Const(names[0].clone())),
        ),
        Formula::NameEq(NameTerm::Var("y".into()), NameTerm::Const(names[1].clone())),
    ]);
    let free: Vec<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
    let plan = QueryPlan::build(&f, &free);
    assert_eq!(ev.planned_var_order(&plan), ["y", "x", "z"]);
}

#[test]
fn planned_enumeration_prunes_assignments() {
    // The work-counter evidence that the planner is sub-linear per variable:
    // the same open query tried naively and planned, the planned run must
    // try strictly fewer candidate assignments.
    let inst = clustered_map(4, 5, 11);
    let f = Formula::And(vec![
        Formula::Connect(
            RegionExpr::Ext(NameTerm::Var("x".into())),
            RegionExpr::Ext(NameTerm::Const("C000_R000".into())),
        ),
        Formula::Connect(
            RegionExpr::Ext(NameTerm::Var("x".into())),
            RegionExpr::Ext(NameTerm::Var("y".into())),
        ),
    ]);
    let free: Vec<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();

    let naive_ev = CellEvaluator::new(&inst);
    let naive_rows = naive_ev.eval_bindings_naive(&f, &free).unwrap();
    let naive_work = naive_ev.assignments_tried();

    let planned_ev = CellEvaluator::new(&inst);
    let plan = QueryPlan::build(&f, &free);
    let planned_rows = planned_ev.eval_bindings_planned(&f, &plan).unwrap();
    let planned_work = planned_ev.assignments_tried();

    assert_eq!(planned_rows, naive_rows);
    assert!(!planned_rows.is_empty(), "query has witnesses by construction");
    assert!(
        planned_work < naive_work / 2,
        "planner tried {planned_work} assignments vs naive {naive_work}"
    );
    assert!(planned_ev.spatial_index().probe_count() > 0, "the planner probed the index");
}
