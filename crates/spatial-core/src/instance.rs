//! Spatial database instances.
//!
//! Following Section 2 of the paper, an instance `I` consists of a finite set
//! of region names `names(I)` together with a mapping `ext(I, ·)` assigning to
//! each name a region of the plane.

use crate::point::Point;
use crate::polygon::Location;
use crate::rational::Rational;
use crate::region::{Region, RegionClass};
use std::collections::BTreeMap;
use std::fmt;

/// A spatial database instance: a finite map from region names to extents.
///
/// Names are kept in a `BTreeMap` so iteration order (and therefore every
/// derived combinatorial structure) is deterministic.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SpatialInstance {
    regions: BTreeMap<String, Region>,
}

impl SpatialInstance {
    /// The empty instance.
    pub fn new() -> Self {
        SpatialInstance { regions: BTreeMap::new() }
    }

    /// Build an instance from `(name, region)` pairs.
    pub fn from_regions<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, Region)>,
        S: Into<String>,
    {
        let mut inst = SpatialInstance::new();
        for (name, region) in pairs {
            inst.insert(name, region);
        }
        inst
    }

    /// Insert (or replace) a named region.
    pub fn insert<S: Into<String>>(&mut self, name: S, region: Region) -> Option<Region> {
        self.regions.insert(name.into(), region)
    }

    /// Remove a named region.
    pub fn remove(&mut self, name: &str) -> Option<Region> {
        self.regions.remove(name)
    }

    /// The set of names, in sorted order (the paper's `names(I)`).
    pub fn names(&self) -> Vec<&str> {
        self.regions.keys().map(String::as_str).collect()
    }

    /// The extent of a named region (the paper's `ext(I, r)`).
    pub fn ext(&self, name: &str) -> Option<&Region> {
        self.regions.get(name)
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Iterate over `(name, region)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Region)> {
        self.regions.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Do all regions of the instance belong to the given class?
    pub fn is_over_class(&self, class: RegionClass) -> bool {
        self.regions.values().all(|r| r.is_in_class(class))
    }

    /// The most specific common class of all regions (or `Disc` if empty).
    pub fn common_class(&self) -> RegionClass {
        for class in RegionClass::all() {
            if self.is_over_class(class) {
                return class;
            }
        }
        RegionClass::Disc
    }

    /// Do two instances have the same name set? (A precondition for
    /// G-equivalence in the paper.)
    pub fn same_names(&self, other: &SpatialInstance) -> bool {
        self.names() == other.names()
    }

    /// Locate a point with respect to every region: returns, per region name,
    /// whether the point is in the interior, boundary or exterior.
    pub fn locate_point(&self, p: &Point) -> BTreeMap<&str, Location> {
        self.iter().map(|(name, region)| (name, region.locate(p))).collect()
    }

    /// Axis-aligned bounding box of all regions, if any.
    pub fn bounding_box(&self) -> Option<(Rational, Rational, Rational, Rational)> {
        let mut it = self.regions.values();
        let first = it.next()?;
        let mut bb = first.bounding_box();
        for r in it {
            let (x0, y0, x1, y1) = r.bounding_box();
            bb = (bb.0.min(x0), bb.1.min(y0), bb.2.max(x1), bb.3.max(y1));
        }
        Some(bb)
    }

    /// A translated copy of the whole instance.
    pub fn translated(&self, dx: i64, dy: i64) -> SpatialInstance {
        SpatialInstance {
            regions: self
                .regions
                .iter()
                .map(|(k, v)| (k.clone(), v.translated(dx, dy)))
                .collect(),
        }
    }

    /// A copy with regions renamed via the provided map; names not in the map
    /// are kept. (Useful for testing that queries mentioning names explicitly
    /// are not name-generic, cf. Section 2.)
    pub fn renamed(&self, mapping: &BTreeMap<String, String>) -> SpatialInstance {
        SpatialInstance {
            regions: self
                .regions
                .iter()
                .map(|(k, v)| (mapping.get(k).cloned().unwrap_or_else(|| k.clone()), v.clone()))
                .collect(),
        }
    }
}

impl fmt::Display for SpatialInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SpatialInstance with {} region(s):", self.len())?;
        for (name, region) in self.iter() {
            writeln!(
                f,
                "  {name}: class {}, {} boundary vertices, area {}",
                region.class(),
                region.boundary().len(),
                region.area()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;

    fn sample() -> SpatialInstance {
        SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 4, 4)),
            ("B", Region::rect_from_ints(2, 2, 6, 6)),
        ])
    }

    #[test]
    fn names_are_sorted() {
        let mut inst = SpatialInstance::new();
        inst.insert("Zeta", Region::rect_from_ints(0, 0, 1, 1));
        inst.insert("Alpha", Region::rect_from_ints(2, 2, 3, 3));
        assert_eq!(inst.names(), vec!["Alpha", "Zeta"]);
    }

    #[test]
    fn ext_and_len() {
        let inst = sample();
        assert_eq!(inst.len(), 2);
        assert!(!inst.is_empty());
        assert!(inst.ext("A").is_some());
        assert!(inst.ext("C").is_none());
    }

    #[test]
    fn class_checks() {
        let inst = sample();
        assert!(inst.is_over_class(RegionClass::Rect));
        assert_eq!(inst.common_class(), RegionClass::Rect);
        let mut inst2 = inst.clone();
        inst2.insert("C", Region::polygon_from_ints(&[(0, 0), (3, 0), (1, 2)]).unwrap());
        assert!(!inst2.is_over_class(RegionClass::Rect));
        assert!(inst2.is_over_class(RegionClass::Poly));
        assert_eq!(inst2.common_class(), RegionClass::Poly);
    }

    #[test]
    fn locate_point_per_region() {
        let inst = sample();
        let locs = inst.locate_point(&pt(3, 3));
        assert_eq!(locs["A"], Location::Inside);
        assert_eq!(locs["B"], Location::Inside);
        let locs = inst.locate_point(&pt(1, 1));
        assert_eq!(locs["A"], Location::Inside);
        assert_eq!(locs["B"], Location::Outside);
    }

    #[test]
    fn bounding_box_and_translation() {
        let inst = sample();
        let bb = inst.bounding_box().unwrap();
        assert_eq!(
            bb,
            (
                Rational::from_int(0),
                Rational::from_int(0),
                Rational::from_int(6),
                Rational::from_int(6)
            )
        );
        let t = inst.translated(10, 0);
        assert_eq!(
            t.bounding_box().unwrap().0,
            Rational::from_int(10)
        );
        assert!(SpatialInstance::new().bounding_box().is_none());
    }

    #[test]
    fn same_names_and_renaming() {
        let a = sample();
        let b = sample().translated(1, 1);
        assert!(a.same_names(&b));
        let mut map = BTreeMap::new();
        map.insert("A".to_string(), "Z".to_string());
        let renamed = a.renamed(&map);
        assert_eq!(renamed.names(), vec!["B", "Z"]);
        assert!(!a.same_names(&renamed));
    }
}
