//! Points and direction vectors in the rational plane.

use crate::rational::Rational;
use std::cmp::Ordering;
use std::fmt;

/// A point in `Q^2` (the plane with exact rational coordinates).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Point {
    /// x coordinate.
    pub x: Rational,
    /// y coordinate.
    pub y: Rational,
}

impl Point {
    /// Construct a point from rational coordinates.
    pub fn new(x: Rational, y: Rational) -> Self {
        Point { x, y }
    }

    /// Construct a point from integer coordinates.
    pub fn from_ints(x: i64, y: i64) -> Self {
        Point { x: Rational::from_int(x), y: Rational::from_int(y) }
    }

    /// The displacement vector `other - self`.
    pub fn vector_to(&self, other: &Point) -> Vector {
        Vector { dx: other.x - self.x, dy: other.y - self.y }
    }

    /// Translate the point by a vector.
    pub fn translate(&self, v: &Vector) -> Point {
        Point { x: self.x + v.dx, y: self.y + v.dy }
    }

    /// Midpoint of two points.
    pub fn midpoint(a: &Point, b: &Point) -> Point {
        Point { x: Rational::midpoint(a.x, b.x), y: Rational::midpoint(a.y, b.y) }
    }

    /// Squared Euclidean distance (exact).
    pub fn dist2(&self, other: &Point) -> Rational {
        let v = self.vector_to(other);
        v.dx * v.dx + v.dy * v.dy
    }
}

impl PartialOrd for Point {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lexicographic order: by `x`, then by `y`. Used to canonicalize vertices of
/// an arrangement deterministically.
impl Ord for Point {
    fn cmp(&self, other: &Self) -> Ordering {
        self.x.cmp(&other.x).then_with(|| self.y.cmp(&other.y))
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A direction / displacement vector in the rational plane.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Vector {
    /// x component.
    pub dx: Rational,
    /// y component.
    pub dy: Rational,
}

impl Vector {
    /// Construct from rational components.
    pub fn new(dx: Rational, dy: Rational) -> Self {
        Vector { dx, dy }
    }

    /// Construct from integer components.
    pub fn from_ints(dx: i64, dy: i64) -> Self {
        Vector { dx: Rational::from_int(dx), dy: Rational::from_int(dy) }
    }

    /// The zero vector.
    pub fn zero() -> Self {
        Vector { dx: Rational::ZERO, dy: Rational::ZERO }
    }

    /// Is this the zero vector?
    pub fn is_zero(&self) -> bool {
        self.dx.is_zero() && self.dy.is_zero()
    }

    /// Cross product `self.dx * other.dy - self.dy * other.dx`.
    pub fn cross(&self, other: &Vector) -> Rational {
        self.dx * other.dy - self.dy * other.dx
    }

    /// Dot product.
    pub fn dot(&self, other: &Vector) -> Rational {
        self.dx * other.dx + self.dy * other.dy
    }

    /// Vector negation.
    pub fn neg(&self) -> Vector {
        Vector { dx: -self.dx, dy: -self.dy }
    }

    /// Scale by a rational factor.
    pub fn scale(&self, s: Rational) -> Vector {
        Vector { dx: self.dx * s, dy: self.dy * s }
    }

    /// The half-plane index used for sorting directions by angle without
    /// trigonometry: directions in the upper half-plane (including the
    /// positive x axis) come before directions in the lower half-plane
    /// (including the negative x axis).
    ///
    /// Returns `0` for the upper half (angle in `[0, pi)`), `1` for the lower
    /// half (angle in `[pi, 2*pi)`).
    pub fn half_plane(&self) -> u8 {
        debug_assert!(!self.is_zero(), "half_plane of zero vector");
        if self.dy.signum() > 0 || (self.dy.is_zero() && self.dx.signum() > 0) {
            0
        } else {
            1
        }
    }

    /// Compare two non-zero vectors by counter-clockwise angle from the
    /// positive x axis, in `[0, 2*pi)`. Collinear same-direction vectors
    /// compare equal.
    pub fn angle_cmp(&self, other: &Vector) -> Ordering {
        let ha = self.half_plane();
        let hb = other.half_plane();
        ha.cmp(&hb).then_with(|| {
            // Same half plane: compare by cross product sign.
            let c = self.cross(other);
            match c.signum() {
                1 => Ordering::Less,
                -1 => Ordering::Greater,
                _ => Ordering::Equal,
            }
        })
    }
}

/// Orientation of the ordered triple `(a, b, c)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Orientation {
    /// Counter-clockwise turn (positive cross product).
    CounterClockwise,
    /// Clockwise turn (negative cross product).
    Clockwise,
    /// The three points are collinear.
    Collinear,
}

/// Exact orientation predicate for the triple `(a, b, c)`.
pub fn orient(a: &Point, b: &Point, c: &Point) -> Orientation {
    let ab = a.vector_to(b);
    let ac = a.vector_to(c);
    match ab.cross(&ac).signum() {
        1 => Orientation::CounterClockwise,
        -1 => Orientation::Clockwise,
        _ => Orientation::Collinear,
    }
}

/// Convenience constructor for integer points.
pub fn pt(x: i64, y: i64) -> Point {
    Point::from_ints(x, y)
}

/// Convenience constructor for rational points given as (num, den) pairs.
pub fn ptr(x: (i64, i64), y: (i64, i64)) -> Point {
    Point::new(Rational::from(x), Rational::from(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_predicate() {
        assert_eq!(orient(&pt(0, 0), &pt(1, 0), &pt(1, 1)), Orientation::CounterClockwise);
        assert_eq!(orient(&pt(0, 0), &pt(1, 0), &pt(1, -1)), Orientation::Clockwise);
        assert_eq!(orient(&pt(0, 0), &pt(1, 1), &pt(2, 2)), Orientation::Collinear);
    }

    #[test]
    fn lexicographic_order() {
        assert!(pt(0, 5) < pt(1, 0));
        assert!(pt(1, 0) < pt(1, 1));
        assert_eq!(pt(2, 3), pt(2, 3));
    }

    #[test]
    fn vector_ops() {
        let v = Vector::from_ints(3, 4);
        let w = Vector::from_ints(-4, 3);
        assert_eq!(v.dot(&w), Rational::ZERO);
        assert_eq!(v.cross(&w), Rational::from_int(25));
        assert_eq!(v.neg(), Vector::from_ints(-3, -4));
        assert_eq!(v.scale(Rational::from_int(2)), Vector::from_ints(6, 8));
    }

    #[test]
    fn angle_ordering() {
        // Directions sorted counter-clockwise starting at positive x axis.
        let dirs = [
            Vector::from_ints(1, 0),
            Vector::from_ints(1, 1),
            Vector::from_ints(0, 1),
            Vector::from_ints(-1, 1),
            Vector::from_ints(-1, 0),
            Vector::from_ints(-1, -1),
            Vector::from_ints(0, -1),
            Vector::from_ints(1, -1),
        ];
        for i in 0..dirs.len() {
            for j in 0..dirs.len() {
                let expected = i.cmp(&j);
                assert_eq!(dirs[i].angle_cmp(&dirs[j]), expected, "{i} vs {j}");
            }
        }
    }

    #[test]
    fn angle_equal_for_parallel_same_direction() {
        let a = Vector::from_ints(2, 4);
        let b = Vector::from_ints(1, 2);
        assert_eq!(a.angle_cmp(&b), Ordering::Equal);
        // Opposite directions are not equal.
        assert_ne!(a.angle_cmp(&b.neg()), Ordering::Equal);
    }

    #[test]
    fn midpoint_and_distance() {
        let m = Point::midpoint(&pt(0, 0), &pt(2, 4));
        assert_eq!(m, pt(1, 2));
        assert_eq!(pt(0, 0).dist2(&pt(3, 4)), Rational::from_int(25));
    }
}
