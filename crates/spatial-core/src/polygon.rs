//! Simple polygons with exact rational vertices.
//!
//! A [`Polygon`] models the *closed polygonal curve* bounding one of the
//! paper's `Poly` regions: the region itself is the open, bounded, simply
//! connected set enclosed by the curve. The curve must be simple
//! (non-self-intersecting) and have non-zero area.

use crate::point::{orient, Orientation, Point};
use crate::rational::Rational;
use crate::segment::{Segment, SegmentIntersection};
use std::fmt;

/// Where a point lies relative to a region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Location {
    /// In the topological interior.
    Inside,
    /// On the topological boundary.
    Boundary,
    /// In the exterior.
    Outside,
}

/// A simple polygon given by its vertex cycle.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Polygon {
    vertices: Vec<Point>,
}

/// Errors raised when constructing a polygon.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PolygonError {
    /// Fewer than three vertices were supplied.
    TooFewVertices,
    /// Two consecutive vertices coincide.
    RepeatedVertex(usize),
    /// The boundary curve intersects itself.
    SelfIntersection(usize, usize),
    /// The polygon has zero area (all vertices collinear).
    ZeroArea,
}

impl fmt::Display for PolygonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolygonError::TooFewVertices => write!(f, "polygon needs at least 3 vertices"),
            PolygonError::RepeatedVertex(i) => write!(f, "repeated consecutive vertex at {i}"),
            PolygonError::SelfIntersection(i, j) => {
                write!(f, "polygon boundary self-intersects (edges {i} and {j})")
            }
            PolygonError::ZeroArea => write!(f, "polygon has zero area"),
        }
    }
}

impl std::error::Error for PolygonError {}

impl Polygon {
    /// Construct a simple polygon, validating simplicity and non-degeneracy.
    pub fn new(vertices: Vec<Point>) -> Result<Self, PolygonError> {
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        let n = vertices.len();
        for i in 0..n {
            if vertices[i] == vertices[(i + 1) % n] {
                return Err(PolygonError::RepeatedVertex(i));
            }
        }
        let poly = Polygon { vertices };
        if let Some((i, j)) = poly.find_self_intersection() {
            return Err(PolygonError::SelfIntersection(i, j));
        }
        if poly.signed_area().is_zero() {
            return Err(PolygonError::ZeroArea);
        }
        Ok(poly)
    }

    /// Construct from integer coordinate pairs.
    pub fn from_ints(coords: &[(i64, i64)]) -> Result<Self, PolygonError> {
        Polygon::new(coords.iter().map(|&(x, y)| Point::from_ints(x, y)).collect())
    }

    /// The vertex cycle.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always false: a valid polygon has at least three vertices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterator over the boundary edges, in vertex-cycle order.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Twice the signed area (positive iff counter-clockwise).
    pub fn signed_area_doubled(&self) -> Rational {
        let n = self.vertices.len();
        let mut acc = Rational::ZERO;
        for i in 0..n {
            let p = &self.vertices[i];
            let q = &self.vertices[(i + 1) % n];
            acc += p.x * q.y - q.x * p.y;
        }
        acc
    }

    /// The signed area (positive iff counter-clockwise).
    pub fn signed_area(&self) -> Rational {
        self.signed_area_doubled() / Rational::TWO
    }

    /// The (unsigned) area.
    pub fn area(&self) -> Rational {
        self.signed_area().abs()
    }

    /// Is the vertex cycle counter-clockwise?
    pub fn is_ccw(&self) -> bool {
        self.signed_area_doubled().signum() > 0
    }

    /// A copy with the vertex cycle oriented counter-clockwise.
    pub fn oriented_ccw(&self) -> Polygon {
        if self.is_ccw() {
            self.clone()
        } else {
            let mut v = self.vertices.clone();
            v.reverse();
            Polygon { vertices: v }
        }
    }

    /// Exact point location with respect to the closed region bounded by the
    /// polygon: interior, boundary, or exterior.
    pub fn locate(&self, p: &Point) -> Location {
        // Boundary check first.
        for e in self.edges() {
            if e.contains_point(p) {
                return Location::Boundary;
            }
        }
        // Ray casting with exact arithmetic: shoot a ray in the +x direction
        // and count proper crossings, handling vertices on the ray by the
        // standard "count an edge iff it straddles the ray's y level
        // half-open" rule.
        let mut crossings = 0usize;
        let n = self.vertices.len();
        for i in 0..n {
            let a = &self.vertices[i];
            let b = &self.vertices[(i + 1) % n];
            let (lo, hi) = if a.y <= b.y { (a, b) } else { (b, a) };
            // Half-open in y: [lo.y, hi.y)
            if p.y >= lo.y && p.y < hi.y {
                // Edge straddles the horizontal line through p; does the
                // crossing lie strictly to the right of p?
                // x at level p.y: lo.x + (hi.x - lo.x) * (p.y - lo.y)/(hi.y - lo.y)
                let t = (p.y - lo.y) / (hi.y - lo.y);
                let x = lo.x + (hi.x - lo.x) * t;
                if x > p.x {
                    crossings += 1;
                }
            }
        }
        if crossings % 2 == 1 {
            Location::Inside
        } else {
            Location::Outside
        }
    }

    /// Axis-aligned bounding box `(xmin, ymin, xmax, ymax)`.
    pub fn bounding_box(&self) -> (Rational, Rational, Rational, Rational) {
        let mut xmin = self.vertices[0].x;
        let mut xmax = xmin;
        let mut ymin = self.vertices[0].y;
        let mut ymax = ymin;
        for v in &self.vertices[1..] {
            xmin = xmin.min(v.x);
            xmax = xmax.max(v.x);
            ymin = ymin.min(v.y);
            ymax = ymax.max(v.y);
        }
        (xmin, ymin, xmax, ymax)
    }

    /// A point guaranteed to lie in the interior of the polygon.
    ///
    /// Uses the classical "leftmost-lowest vertex + diagonal" construction,
    /// which is exact and needs no epsilon.
    pub fn interior_point(&self) -> Point {
        let poly = self.oriented_ccw();
        let n = poly.vertices.len();
        // Find the lowest-leftmost (convex) vertex.
        let vi = (0..n)
            .min_by(|&i, &j| {
                let a = &poly.vertices[i];
                let b = &poly.vertices[j];
                a.y.cmp(&b.y).then_with(|| a.x.cmp(&b.x))
            })
            .unwrap();
        let prev = poly.vertices[(vi + n - 1) % n];
        let v = poly.vertices[vi];
        let next = poly.vertices[(vi + 1) % n];
        // Among all other vertices strictly inside triangle (prev, v, next),
        // pick the one closest to v; the midpoint of (v, that vertex) is
        // interior. If none, the centroid of the triangle is interior.
        let mut best: Option<Point> = None;
        for (i, q) in poly.vertices.iter().enumerate() {
            if i == vi || *q == prev || *q == next {
                continue;
            }
            if point_in_triangle(q, &prev, &v, &next) {
                match &best {
                    Some(b) if q.dist2(&v) >= b.dist2(&v) => {}
                    _ => best = Some(*q),
                }
            }
        }
        match best {
            Some(q) => Point::midpoint(&v, &q),
            None => Point::new(
                (prev.x + v.x + next.x) / Rational::from_int(3),
                (prev.y + v.y + next.y) / Rational::from_int(3),
            ),
        }
    }

    /// Check whether the boundary of another polygon intersects this one's
    /// boundary at all (shared points included).
    pub fn boundary_intersects(&self, other: &Polygon) -> bool {
        for e in self.edges() {
            for f in other.edges() {
                if e.intersect(&f) != SegmentIntersection::None {
                    return true;
                }
            }
        }
        false
    }

    /// Translate all vertices by integer offsets.
    pub fn translated(&self, dx: i64, dy: i64) -> Polygon {
        let d = crate::point::Vector::from_ints(dx, dy);
        Polygon { vertices: self.vertices.iter().map(|p| p.translate(&d)).collect() }
    }

    fn find_self_intersection(&self) -> Option<(usize, usize)> {
        let edges: Vec<Segment> = self.edges().collect();
        let n = edges.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let adjacent = j == i + 1 || (i == 0 && j == n - 1);
                match edges[i].intersect(&edges[j]) {
                    SegmentIntersection::None => {}
                    SegmentIntersection::Point(p) => {
                        if adjacent {
                            // Adjacent edges must only share their common vertex.
                            let shared = if j == i + 1 { edges[i].b } else { edges[i].a };
                            if p != shared {
                                return Some((i, j));
                            }
                        } else {
                            return Some((i, j));
                        }
                    }
                    SegmentIntersection::Overlap(_) => return Some((i, j)),
                }
            }
        }
        None
    }
}

fn point_in_triangle(p: &Point, a: &Point, b: &Point, c: &Point) -> bool {
    let d1 = orient(a, b, p);
    let d2 = orient(b, c, p);
    let d3 = orient(c, a, p);
    let has_cw = [d1, d2, d3].contains(&Orientation::Clockwise);
    let has_ccw = [d1, d2, d3].contains(&Orientation::CounterClockwise);
    let all_collinear = [d1, d2, d3].iter().all(|&o| o == Orientation::Collinear);
    !(all_collinear || (has_cw && has_ccw))
}

impl fmt::Debug for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polygon{:?}", self.vertices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;

    fn unit_square() -> Polygon {
        Polygon::from_ints(&[(0, 0), (4, 0), (4, 4), (0, 4)]).unwrap()
    }

    #[test]
    fn area_and_orientation() {
        let sq = unit_square();
        assert_eq!(sq.area(), Rational::from_int(16));
        assert!(sq.is_ccw());
        let cw = Polygon::from_ints(&[(0, 0), (0, 4), (4, 4), (4, 0)]).unwrap();
        assert!(!cw.is_ccw());
        assert_eq!(cw.area(), Rational::from_int(16));
        assert!(cw.oriented_ccw().is_ccw());
    }

    #[test]
    fn locate_points() {
        let sq = unit_square();
        assert_eq!(sq.locate(&pt(2, 2)), Location::Inside);
        assert_eq!(sq.locate(&pt(0, 2)), Location::Boundary);
        assert_eq!(sq.locate(&pt(4, 4)), Location::Boundary);
        assert_eq!(sq.locate(&pt(5, 2)), Location::Outside);
        assert_eq!(sq.locate(&pt(-1, -1)), Location::Outside);
    }

    #[test]
    fn locate_in_concave_polygon() {
        // A "U" shape: the notch is outside.
        let u = Polygon::from_ints(&[
            (0, 0),
            (6, 0),
            (6, 6),
            (4, 6),
            (4, 2),
            (2, 2),
            (2, 6),
            (0, 6),
        ])
        .unwrap();
        assert_eq!(u.locate(&pt(1, 5)), Location::Inside);
        assert_eq!(u.locate(&pt(5, 5)), Location::Inside);
        assert_eq!(u.locate(&pt(3, 5)), Location::Outside);
        assert_eq!(u.locate(&pt(3, 1)), Location::Inside);
        assert_eq!(u.locate(&pt(3, 2)), Location::Boundary);
    }

    #[test]
    fn rejects_bad_polygons() {
        assert_eq!(Polygon::from_ints(&[(0, 0), (1, 1)]), Err(PolygonError::TooFewVertices));
        assert!(matches!(
            Polygon::from_ints(&[(0, 0), (0, 0), (1, 1)]),
            Err(PolygonError::RepeatedVertex(_))
        ));
        // Bowtie.
        assert!(matches!(
            Polygon::from_ints(&[(0, 0), (4, 4), (4, 0), (0, 4)]),
            Err(PolygonError::SelfIntersection(_, _))
        ));
        // Collinear (rejected either as zero area or as overlapping edges).
        assert!(Polygon::from_ints(&[(0, 0), (2, 0), (4, 0)]).is_err());
    }

    #[test]
    fn interior_point_is_inside() {
        let polys = [
            unit_square(),
            Polygon::from_ints(&[(0, 0), (6, 0), (6, 6), (4, 6), (4, 2), (2, 2), (2, 6), (0, 6)])
                .unwrap(),
            Polygon::from_ints(&[(0, 0), (10, 1), (3, 3), (9, 8), (0, 7)]).unwrap(),
        ];
        for p in &polys {
            assert_eq!(p.locate(&p.interior_point()), Location::Inside, "{p:?}");
        }
    }

    #[test]
    fn bounding_box() {
        let p = Polygon::from_ints(&[(1, 2), (5, 3), (4, 9)]).unwrap();
        let (x0, y0, x1, y1) = p.bounding_box();
        assert_eq!(
            (x0, y0, x1, y1),
            (
                Rational::from_int(1),
                Rational::from_int(2),
                Rational::from_int(5),
                Rational::from_int(9)
            )
        );
    }

    #[test]
    fn boundary_intersection() {
        let a = unit_square();
        let b = a.translated(2, 2);
        let c = a.translated(10, 10);
        assert!(a.boundary_intersects(&b));
        assert!(!a.boundary_intersects(&c));
    }

    #[test]
    fn edges_count() {
        assert_eq!(unit_square().edges().count(), 4);
    }
}
