//! Exact rational arithmetic backed by `i128`.
//!
//! All geometric computation in this workspace is exact: the topological
//! invariant of an instance (the paper's `T_I`) is a purely combinatorial
//! object, and a single misclassified intersection or orientation would change
//! it. We therefore avoid floating point entirely in the construction path.
//!
//! The representation is a normalized fraction `num / den` with `den > 0` and
//! `gcd(|num|, den) == 1`, both stored as `i128`. Every arithmetic operation
//! uses checked `i128` arithmetic and panics with a descriptive message on
//! overflow; with input coordinates bounded by roughly `10^6` in magnitude
//! (far beyond anything the test suite or benchmark harness produces) no
//! intermediate value can overflow. The limit is documented on
//! [`Rational::MAX_RECOMMENDED_COORD`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A rational number with exact `i128` numerator and denominator.
///
/// Invariants: `den > 0` and `gcd(|num|, den) == 1`. The value `0` is
/// represented as `0 / 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor of two non-negative integers.
fn gcd(mut a: i128, mut b: i128) -> i128 {
    debug_assert!(a >= 0 && b >= 0);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cold]
#[inline(never)]
fn overflow(op: &str) -> ! {
    panic!(
        "exact rational arithmetic overflowed i128 during `{op}`; \
         input coordinates must stay within Rational::MAX_RECOMMENDED_COORD"
    );
}

macro_rules! checked {
    ($e:expr, $op:literal) => {
        match $e {
            Some(v) => v,
            None => overflow($op),
        }
    };
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };
    /// Two.
    pub const TWO: Rational = Rational { num: 2, den: 1 };

    /// Largest input-coordinate magnitude for which all arrangement
    /// computations are guaranteed not to overflow the internal `i128`
    /// representation (with a comfortable safety margin).
    pub const MAX_RECOMMENDED_COORD: i64 = 1_000_000;

    /// Construct a rational from a numerator and denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let (mut num, mut den) = (num, den);
        if den < 0 {
            num = checked!(num.checked_neg(), "new");
            den = checked!(den.checked_neg(), "new");
        }
        // Fast path: already an integer (the overwhelmingly common case in
        // arrangement construction, where most coordinates are grid points).
        if den == 1 || num == 0 {
            return Rational { num, den: if num == 0 { 1 } else { den } };
        }
        let g = gcd(num.unsigned_abs() as i128, den);
        if g > 1 {
            num /= g;
            den /= g;
        }
        Rational { num, den }
    }

    /// Construct from an integer.
    pub fn from_int(v: i64) -> Self {
        Rational { num: v as i128, den: 1 }
    }

    /// Numerator (after normalization).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Is this value zero?
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Is this value an integer?
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Sign of the value: `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        match self.num.cmp(&0) {
            Ordering::Less => -1,
            Ordering::Equal => 0,
            Ordering::Greater => 1,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational { num: checked!(self.num.checked_abs(), "abs"), den: self.den }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Approximate conversion to `f64` (used only for diagnostics and for the
    /// floating-point Tutte solver whose output is re-verified exactly).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The floor of the value as an integer.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            // Round toward negative infinity.
            let q = self.num / self.den;
            if self.num % self.den == 0 {
                q
            } else {
                q - 1
            }
        }
    }

    /// The ceiling of the value as an integer.
    pub fn ceil(&self) -> i128 {
        -((-*self).floor())
    }

    /// Midpoint of two rationals.
    pub fn midpoint(a: Self, b: Self) -> Self {
        (a + b) / Rational::TWO
    }

    /// Compare without materializing the difference (avoids overflow in the
    /// common comparison path and keeps ordering total).
    fn cmp_impl(&self, other: &Self) -> Ordering {
        // Fast path: two integers (or equal denominators) compare directly.
        if self.den == other.den {
            return self.num.cmp(&other.num);
        }
        // a/b ? c/d  <=>  a*d ? c*b  (b, d > 0)
        let lhs = checked!(self.num.checked_mul(other.den), "cmp");
        let rhs = checked!(other.num.checked_mul(self.den), "cmp");
        lhs.cmp(&rhs)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational::from_int(v as i64)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_impl(other)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Self) -> Self {
        // Short circuits: adding zero is free, and integer + integer needs no
        // gcd at all. These dominate the sweep comparator's workload, where
        // most coordinates are integers.
        if self.num == 0 {
            return rhs;
        }
        if rhs.num == 0 {
            return self;
        }
        if self.den == 1 && rhs.den == 1 {
            return Rational { num: checked!(self.num.checked_add(rhs.num), "add"), den: 1 };
        }
        // a/b + c/d = (a*d + c*b) / (b*d), reduced by gcd(b, d) first to keep
        // intermediates small.
        let g = gcd(self.den, rhs.den);
        let bd = self.den / g;
        let dd = rhs.den / g;
        let num = checked!(
            checked!(self.num.checked_mul(dd), "add").checked_add(checked!(
                rhs.num.checked_mul(bd),
                "add"
            )),
            "add"
        );
        let den = checked!(self.den.checked_mul(dd), "add");
        Rational::new(num, den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Self) -> Self {
        // Mirror of `add`'s short circuits, avoiding the negate-then-add
        // round trip in the common cases.
        if rhs.num == 0 {
            return self;
        }
        if self.den == 1 && rhs.den == 1 {
            return Rational { num: checked!(self.num.checked_sub(rhs.num), "sub"), den: 1 };
        }
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Self) -> Self {
        // Short circuits: zero annihilates, ±1 passes through (no gcd, no
        // multiplication, no renormalization).
        if self.num == 0 || rhs.num == 0 {
            return Rational::ZERO;
        }
        if self.den == 1 {
            if self.num == 1 {
                return rhs;
            }
            if self.num == -1 {
                return -rhs;
            }
        }
        if rhs.den == 1 {
            if rhs.num == 1 {
                return self;
            }
            if rhs.num == -1 {
                return -self;
            }
            // Integer * integer: no cross-reduction possible against den 1.
            if self.den == 1 {
                return Rational { num: checked!(self.num.checked_mul(rhs.num), "mul"), den: 1 };
            }
        }
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num.unsigned_abs() as i128, rhs.den);
        let g2 = gcd(rhs.num.unsigned_abs() as i128, self.den);
        let num = checked!((self.num / g1).checked_mul(rhs.num / g2), "mul");
        let den = checked!((self.den / g2).checked_mul(rhs.den / g1), "mul");
        Rational::new(num, den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Self) -> Self {
        assert!(rhs.num != 0, "division by zero rational");
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Self {
        Rational { num: checked!(self.num.checked_neg(), "neg"), den: self.den }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}
impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Convenience constructor: `rat(3)` or `rat((3, 4))`.
pub fn rat<T: Into<Rational>>(v: T) -> Rational {
    v.into()
}

impl From<(i64, i64)> for Rational {
    fn from((n, d): (i64, i64)) -> Self {
        Rational::new(n as i128, d as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
        assert_eq!(Rational::new(0, 5).denom(), 1);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::from_int(2));
        assert_eq!(-a, Rational::new(-1, 3));
    }

    #[test]
    fn ordering() {
        let a = Rational::new(1, 3);
        let b = Rational::new(2, 5);
        assert!(a < b);
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::from_int(5).floor(), 5);
        assert_eq!(Rational::from_int(5).ceil(), 5);
    }

    #[test]
    fn signum_abs_recip() {
        assert_eq!(Rational::new(-3, 7).signum(), -1);
        assert_eq!(Rational::ZERO.signum(), 0);
        assert_eq!(Rational::new(3, 7).signum(), 1);
        assert_eq!(Rational::new(-3, 7).abs(), Rational::new(3, 7));
        assert_eq!(Rational::new(-3, 7).recip(), Rational::new(-7, 3));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Rational::new(3, 6)), "1/2");
        assert_eq!(format!("{}", Rational::from_int(-4)), "-4");
    }

    #[test]
    fn midpoint() {
        assert_eq!(
            Rational::midpoint(Rational::from_int(1), Rational::from_int(2)),
            Rational::new(3, 2)
        );
    }

    #[test]
    fn fast_paths_agree_with_general_paths() {
        // Exercise every short-circuit branch against values that also take
        // the general path, over a small exhaustive grid.
        let values: Vec<Rational> = [
            (0, 1), (1, 1), (-1, 1), (2, 1), (-2, 1), (7, 1), (1, 2), (-1, 2), (3, 2),
            (-3, 2), (2, 3), (-5, 3), (7, 6), (-7, 6),
        ]
        .into_iter()
        .map(|(n, d)| Rational::new(n, d))
        .collect();
        // Reference implementations with no short circuits.
        let ref_add = |a: Rational, b: Rational| {
            Rational::new(a.num * b.den + b.num * a.den, a.den * b.den)
        };
        let ref_mul = |a: Rational, b: Rational| Rational::new(a.num * b.num, a.den * b.den);
        for &a in &values {
            for &b in &values {
                assert_eq!(a + b, ref_add(a, b), "{a} + {b}");
                assert_eq!(a - b, ref_add(a, -b), "{a} - {b}");
                assert_eq!(a * b, ref_mul(a, b), "{a} * {b}");
                let expected = (a.num * b.den).cmp(&(b.num * a.den));
                assert_eq!(a.cmp(&b), expected, "{a} <=> {b}");
            }
        }
    }

    #[test]
    fn fast_path_results_stay_normalized() {
        // Every constructor and short circuit must preserve den > 0 and
        // gcd(|num|, den) == 1 so that Eq/Hash remain canonical.
        let check = |r: Rational| {
            assert!(r.denom() > 0);
            let g = {
                let (mut a, mut b) = (r.numer().unsigned_abs(), r.denom().unsigned_abs());
                while b != 0 {
                    let t = a % b;
                    a = b;
                    b = t;
                }
                a
            };
            assert!(r.numer() == 0 || g == 1, "{r} not normalized");
        };
        check(Rational::new(0, 7));
        check(Rational::new(4, 2));
        check(Rational::from_int(3) + Rational::from_int(5));
        check(Rational::new(1, 2) * Rational::from_int(-1));
        check(Rational::from_int(0) * Rational::new(3, 7));
        check(Rational::new(3, 7) - Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divide_by_zero_panics() {
        let _ = Rational::ONE / Rational::ZERO;
    }

    #[test]
    fn assign_ops() {
        let mut a = Rational::new(1, 2);
        a += Rational::new(1, 4);
        assert_eq!(a, Rational::new(3, 4));
        a -= Rational::new(1, 4);
        assert_eq!(a, Rational::new(1, 2));
        a *= Rational::from_int(4);
        assert_eq!(a, Rational::from_int(2));
        a /= Rational::from_int(4);
        assert_eq!(a, Rational::new(1, 2));
    }
}
