//! Exact, hand-rolled wire serialization for the geometric core types.
//!
//! The durability subsystem (`crates/wal`) logs committed operation batches
//! to disk and must reproduce the recovered instance **bit-for-bit**: a
//! single perturbed coordinate would change the arrangement, the invariant
//! and every query answer. Coordinates are therefore serialized as their
//! exact [`Rational`] numerator/denominator pairs — no floating point, no
//! decimal strings — in a fixed little-endian framing with explicit length
//! prefixes. The format is self-contained and dependency-free, consistent
//! with the offline-vendor constraint of this workspace (no serde).
//!
//! Every decoder validates what the encoder's type invariants guarantee, so
//! a corrupted or adversarial byte stream can never smuggle a non-canonical
//! value into the exact-arithmetic kernel:
//!
//! * [`Rational`]: the denominator must be positive (zero and negative
//!   denominators are rejected) and the fraction must be in lowest terms
//!   with `0` represented as `0/1` — the canonical form `Eq`/`Hash` rely on;
//! * [`Segment`]: the endpoints must be distinct;
//! * [`Polygon`] / [`Region`]: the vertex cycle must form a valid simple
//!   polygon (revalidated through [`Polygon::new`]); a region's class is
//!   re-derived from its boundary, which is exactly how every [`Region`]
//!   constructor assigns it, so round-trips preserve class without
//!   serializing it.
//!
//! Encoding reference (all integers little-endian):
//!
//! | type              | encoding                                         |
//! |-------------------|--------------------------------------------------|
//! | `u32` / `u64`     | 4 / 8 bytes                                      |
//! | `i128`            | 16 bytes, two's complement                       |
//! | `str`             | `u32` byte length + UTF-8 bytes                  |
//! | [`Rational`]      | numerator `i128` + denominator `i128`            |
//! | [`Point`]         | `x` + `y` rationals                              |
//! | [`Segment`]       | endpoint `a` + endpoint `b`                      |
//! | [`Polygon`]       | `u32` vertex count + vertices                    |
//! | [`Region`]        | boundary polygon                                 |
//! | [`SpatialInstance`] | `u32` region count + (`str` name, region) pairs |

use crate::instance::SpatialInstance;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::rational::Rational;
use crate::region::Region;
use crate::segment::Segment;
use std::fmt;

/// A decode failure: the offset of the offending bytes plus a description.
///
/// Offsets are relative to the start of the buffer handed to the
/// [`WireReader`], so callers embedding a wire value inside a larger frame
/// (as the WAL record format does) can translate them to absolute file
/// offsets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What was wrong with the bytes there.
    pub detail: String,
}

impl WireError {
    fn new(offset: usize, detail: impl Into<String>) -> WireError {
        WireError { offset, detail: detail.into() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error at byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for WireError {}

/// Cursor over a byte buffer being decoded.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Current position (the offset the next read starts at).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has the whole buffer been consumed?
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::new(
                self.pos,
                format!("truncated {what}: need {n} bytes, {} remain", self.remaining()),
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a `u8`.
    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Read a little-endian two's-complement `i128`.
    pub fn read_i128(&mut self) -> Result<i128, WireError> {
        let b = self.take(16, "i128")?;
        Ok(i128::from_le_bytes(b.try_into().expect("16-byte slice")))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn read_string(&mut self) -> Result<String, WireError> {
        let at = self.pos;
        let len = self.read_u32()? as usize;
        let bytes = self.take(len, "string payload")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::new(at, format!("invalid UTF-8 in string: {e}")))
    }
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i128`.
pub fn put_i128(out: &mut Vec<u8>, v: i128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Exact binary round-trip: `to_wire` appends the canonical encoding,
/// `from_wire` parses and *validates* it (rejecting any byte sequence that
/// does not denote a canonical value of the type).
///
/// The round-trip law, pinned by the proptest suite in this module: for
/// every value `v`, `from_wire` of `to_wire(v)` yields exactly `v` (by
/// `Eq`) and consumes exactly the bytes `to_wire` produced.
pub trait Wire: Sized {
    /// Append this value's canonical wire encoding to `out`.
    fn to_wire(&self, out: &mut Vec<u8>);

    /// Decode a value from the reader, validating canonicality.
    fn from_wire(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Convenience: encode into a fresh buffer.
    fn to_wire_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.to_wire(&mut out);
        out
    }

    /// Convenience: decode a value that must occupy the whole buffer.
    fn from_wire_exact(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::from_wire(&mut r)?;
        if !r.is_exhausted() {
            return Err(WireError::new(
                r.position(),
                format!("{} trailing bytes after value", r.remaining()),
            ));
        }
        Ok(v)
    }
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Wire for Rational {
    fn to_wire(&self, out: &mut Vec<u8>) {
        put_i128(out, self.numer());
        put_i128(out, self.denom());
    }

    fn from_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let at = r.position();
        let num = r.read_i128()?;
        let den = r.read_i128()?;
        if den == 0 {
            return Err(WireError::new(at, "rational with zero denominator"));
        }
        if den < 0 {
            return Err(WireError::new(
                at,
                format!("non-canonical rational: negative denominator {den}"),
            ));
        }
        if num == 0 && den != 1 {
            return Err(WireError::new(
                at,
                format!("non-canonical rational: zero as 0/{den} (must be 0/1)"),
            ));
        }
        if gcd_u128(num.unsigned_abs(), den.unsigned_abs()) > 1 {
            return Err(WireError::new(
                at,
                format!("non-canonical rational: {num}/{den} is not in lowest terms"),
            ));
        }
        Ok(Rational::new(num, den))
    }
}

impl Wire for Point {
    fn to_wire(&self, out: &mut Vec<u8>) {
        self.x.to_wire(out);
        self.y.to_wire(out);
    }

    fn from_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let x = Rational::from_wire(r)?;
        let y = Rational::from_wire(r)?;
        Ok(Point::new(x, y))
    }
}

impl Wire for Segment {
    fn to_wire(&self, out: &mut Vec<u8>) {
        self.a.to_wire(out);
        self.b.to_wire(out);
    }

    fn from_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let at = r.position();
        let a = Point::from_wire(r)?;
        let b = Point::from_wire(r)?;
        if a == b {
            return Err(WireError::new(at, format!("degenerate segment: both endpoints are {a}")));
        }
        Ok(Segment::new(a, b))
    }
}

impl Wire for Polygon {
    fn to_wire(&self, out: &mut Vec<u8>) {
        put_u32(out, self.vertices().len() as u32);
        for v in self.vertices() {
            v.to_wire(out);
        }
    }

    fn from_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let at = r.position();
        let n = r.read_u32()? as usize;
        let mut vertices = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            vertices.push(Point::from_wire(r)?);
        }
        Polygon::new(vertices).map_err(|e| WireError::new(at, format!("invalid polygon: {e}")))
    }
}

impl Wire for Region {
    fn to_wire(&self, out: &mut Vec<u8>) {
        // The class is not serialized: every `Region` constructor derives it
        // from the boundary geometry, so re-deriving on decode reproduces it
        // exactly (pinned by `region_class_survives_round_trip`).
        self.boundary().to_wire(out);
    }

    fn from_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Region::polygon(Polygon::from_wire(r)?))
    }
}

impl Wire for SpatialInstance {
    fn to_wire(&self, out: &mut Vec<u8>) {
        put_u32(out, self.len() as u32);
        for (name, region) in self.iter() {
            put_string(out, name);
            region.to_wire(out);
        }
    }

    fn from_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.read_u32()? as usize;
        let mut inst = SpatialInstance::new();
        for _ in 0..n {
            let at = r.position();
            let name = r.read_string()?;
            let region = Region::from_wire(r)?;
            if inst.insert(name.clone(), region).is_some() {
                return Err(WireError::new(at, format!("duplicate region name `{name}`")));
            }
        }
        Ok(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::region::Rect;

    fn round_trip<T: Wire + PartialEq + fmt::Debug>(v: &T) {
        let bytes = v.to_wire_vec();
        let back = T::from_wire_exact(&bytes).expect("canonical encoding decodes");
        assert_eq!(&back, v);
    }

    #[test]
    fn rational_round_trips() {
        for r in [
            Rational::ZERO,
            Rational::ONE,
            Rational::new(-7, 3),
            Rational::new(1, 2),
            Rational::new(i128::from(i64::MAX), 1),
            Rational::new(-1, i128::from(u32::MAX)),
        ] {
            round_trip(&r);
        }
    }

    #[test]
    fn rational_rejects_zero_denominator() {
        let mut bytes = Vec::new();
        put_i128(&mut bytes, 3);
        put_i128(&mut bytes, 0);
        let err = Rational::from_wire_exact(&bytes).unwrap_err();
        assert!(err.detail.contains("zero denominator"), "{err}");
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn rational_rejects_non_canonical_forms() {
        // Negative denominator.
        let mut bytes = Vec::new();
        put_i128(&mut bytes, 1);
        put_i128(&mut bytes, -2);
        assert!(Rational::from_wire_exact(&bytes).unwrap_err().detail.contains("negative"));
        // Not in lowest terms.
        let mut bytes = Vec::new();
        put_i128(&mut bytes, 2);
        put_i128(&mut bytes, 4);
        assert!(Rational::from_wire_exact(&bytes).unwrap_err().detail.contains("lowest terms"));
        // Zero with a non-1 denominator.
        let mut bytes = Vec::new();
        put_i128(&mut bytes, 0);
        put_i128(&mut bytes, 5);
        assert!(Rational::from_wire_exact(&bytes).unwrap_err().detail.contains("0/1"));
    }

    #[test]
    fn truncated_input_reports_offset() {
        let bytes = Rational::new(1, 3).to_wire_vec();
        let err = Rational::from_wire_exact(&bytes[..20]).unwrap_err();
        assert_eq!(err.offset, 16, "the denominator read starts at byte 16");
        assert!(err.detail.contains("truncated"), "{err}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Rational::ONE.to_wire_vec();
        bytes.push(0);
        let err = Rational::from_wire_exact(&bytes).unwrap_err();
        assert!(err.detail.contains("trailing"), "{err}");
    }

    #[test]
    fn segment_round_trips_and_rejects_degenerate() {
        round_trip(&Segment::new(pt(0, 0), pt(3, 4)));
        round_trip(&Segment::new(
            Point::new(Rational::new(1, 3), Rational::new(-5, 7)),
            Point::new(Rational::new(2, 3), Rational::ZERO),
        ));
        let mut bytes = Vec::new();
        pt(1, 1).to_wire(&mut bytes);
        pt(1, 1).to_wire(&mut bytes);
        let err = Segment::from_wire_exact(&bytes).unwrap_err();
        assert!(err.detail.contains("degenerate"), "{err}");
    }

    #[test]
    fn polygon_rejects_invalid_geometry() {
        // A self-intersecting bowtie is structurally well-formed bytes but
        // not a valid polygon.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 4);
        for p in [pt(0, 0), pt(4, 4), pt(4, 0), pt(0, 4)] {
            p.to_wire(&mut bytes);
        }
        let err = Polygon::from_wire_exact(&bytes).unwrap_err();
        assert!(err.detail.contains("invalid polygon"), "{err}");
    }

    #[test]
    fn region_class_survives_round_trip() {
        let rect = Region::rect_from_ints(0, 0, 4, 2);
        let l_shape = Region::rect_union(&[Rect::from_ints(0, 0, 4, 2), Rect::from_ints(0, 0, 2, 4)])
            .unwrap();
        let tri = Region::polygon_from_ints(&[(0, 0), (4, 0), (2, 3)]).unwrap();
        for region in [rect, l_shape, tri] {
            let back = Region::from_wire_exact(&region.to_wire_vec()).unwrap();
            assert_eq!(back, region);
            assert_eq!(back.class(), region.class());
        }
    }

    mod prop_round_trip {
        use super::*;
        use proptest::prelude::*;

        fn rational(num: i64, den: i64) -> Rational {
            Rational::new(i128::from(num), i128::from(den))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn rational_identity(num in -1_000_000i64..1_000_000, den in 1i64..10_000) {
                let v = rational(num, den);
                prop_assert_eq!(Rational::from_wire_exact(&v.to_wire_vec()), Ok(v));
            }

            #[test]
            fn point_identity(coords in (-500i64..500, 1i64..64, -500i64..500, 1i64..64)) {
                let (xn, xd, yn, yd) = coords;
                let v = Point::new(rational(xn, xd), rational(yn, yd));
                prop_assert_eq!(Point::from_wire_exact(&v.to_wire_vec()), Ok(v));
            }

            #[test]
            fn segment_identity(c in (-500i64..500, -500i64..500, -500i64..500, -500i64..500)) {
                let (ax, ay, bx, by) = c;
                let (a, b) = (pt(ax, ay), pt(bx, by));
                if a != b {
                    let v = Segment::new(a, b);
                    prop_assert_eq!(Segment::from_wire_exact(&v.to_wire_vec()), Ok(v));
                }
            }

            #[test]
            fn rect_region_identity(c in (-200i64..200, -200i64..200, 1i64..100, 1i64..100)) {
                let (x, y, w, h) = c;
                let v = Region::rect_from_ints(x, y, x + w, y + h);
                prop_assert_eq!(Region::from_wire_exact(&v.to_wire_vec()), Ok(v.clone()));
                let poly_back = Polygon::from_wire_exact(&v.boundary().to_wire_vec());
                prop_assert_eq!(poly_back.as_ref(), Ok(v.boundary()));
            }

            #[test]
            fn instance_identity(rects in prop::collection::vec(
                (-200i64..200, -200i64..200, 1i64..100, 1i64..100), 1..12))
            {
                let mut inst = SpatialInstance::new();
                for (i, (x, y, w, h)) in rects.iter().enumerate() {
                    inst.insert(format!("r{i}"), Region::rect_from_ints(*x, *y, x + w, y + h));
                }
                let back = SpatialInstance::from_wire_exact(&inst.to_wire_vec());
                prop_assert_eq!(back, Ok(inst));
            }
        }
    }

    #[test]
    fn instance_round_trips_and_rejects_duplicates() {
        let inst = crate::fixtures::fig_1c();
        round_trip(&inst);
        round_trip(&SpatialInstance::new());

        let mut bytes = Vec::new();
        put_u32(&mut bytes, 2);
        for _ in 0..2 {
            put_string(&mut bytes, "A");
            Region::rect_from_ints(0, 0, 1, 1).to_wire(&mut bytes);
        }
        let err = SpatialInstance::from_wire_exact(&bytes).unwrap_err();
        assert!(err.detail.contains("duplicate"), "{err}");
    }
}
