//! Spatial regions and the paper's region classes.
//!
//! The paper considers regions that are open, bounded(-or-not), simply
//! connected subsets of the plane with connected boundary, stratified into
//! the classes `Rect ⊂ Rect* ⊂ Disc` and `Poly ⊂ Alg ⊂ Disc` (Section 2,
//! Fig. 3). This crate represents every region by its polygonal boundary
//! curve:
//!
//! * [`Rect`] — an open axis-parallel rectangle (the paper's `Rect`);
//! * a *rectilinear* polygon built from a union of rectangles — the paper's
//!   `Rect*` (finite unions of rectangles that form a disc);
//! * an arbitrary simple polygon — the paper's `Poly`.
//!
//! Per the substitution documented in `DESIGN.md`, the classes `Alg` and
//! `Disc` are represented by their polygonal representatives, which the
//! paper's own Theorem 3.5 shows is sufficient for all topological queries.

use crate::point::Point;
use crate::polygon::{Location, Polygon, PolygonError};
use crate::rational::Rational;
use std::collections::BTreeSet;
use std::fmt;

/// The region classes of the paper (Section 2, Fig. 3).
///
/// `Alg` and `Disc` appear for completeness of the class lattice; concrete
/// extents are always polygonal (see `DESIGN.md`, substitution table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RegionClass {
    /// Open axis-parallel rectangles.
    Rect,
    /// Discs that are finite unions of rectangles (rectilinear discs).
    RectStar,
    /// Simple polygons.
    Poly,
    /// Semi-algebraic discs (represented polygonally).
    Alg,
    /// Arbitrary discs (represented polygonally).
    Disc,
}

impl RegionClass {
    /// Does membership in `self` imply membership in `other`?
    ///
    /// Encodes the paper's inclusions `Rect ⊂ Rect* ⊂ Disc` and
    /// `Poly ⊂ Alg ⊂ Disc`.
    pub fn is_subclass_of(self, other: RegionClass) -> bool {
        use RegionClass::*;
        if self == other || other == Disc {
            return true;
        }
        matches!(
            (self, other),
            (Rect, RectStar) | (Rect, Poly) | (Rect, Alg) | (RectStar, Poly) | (RectStar, Alg) | (Poly, Alg)
        )
    }

    /// All classes, smallest first.
    pub fn all() -> [RegionClass; 5] {
        [
            RegionClass::Rect,
            RegionClass::RectStar,
            RegionClass::Poly,
            RegionClass::Alg,
            RegionClass::Disc,
        ]
    }
}

impl fmt::Display for RegionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegionClass::Rect => "Rect",
            RegionClass::RectStar => "Rect*",
            RegionClass::Poly => "Poly",
            RegionClass::Alg => "Alg",
            RegionClass::Disc => "Disc",
        };
        write!(f, "{s}")
    }
}

/// An open axis-parallel rectangle `(x1, x2) x (y1, y2)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rect {
    /// Left edge.
    pub x1: Rational,
    /// Right edge (`x1 < x2`).
    pub x2: Rational,
    /// Bottom edge.
    pub y1: Rational,
    /// Top edge (`y1 < y2`).
    pub y2: Rational,
}

impl Rect {
    /// Construct a rectangle; panics unless `x1 < x2` and `y1 < y2`.
    pub fn new(x1: Rational, y1: Rational, x2: Rational, y2: Rational) -> Self {
        assert!(x1 < x2 && y1 < y2, "rectangle must have positive extent");
        Rect { x1, x2, y1, y2 }
    }

    /// Construct from integer coordinates `(x1, y1, x2, y2)`.
    pub fn from_ints(x1: i64, y1: i64, x2: i64, y2: i64) -> Self {
        Rect::new(
            Rational::from_int(x1),
            Rational::from_int(y1),
            Rational::from_int(x2),
            Rational::from_int(y2),
        )
    }

    /// The boundary as a counter-clockwise polygon.
    pub fn to_polygon(&self) -> Polygon {
        Polygon::new(vec![
            Point::new(self.x1, self.y1),
            Point::new(self.x2, self.y1),
            Point::new(self.x2, self.y2),
            Point::new(self.x1, self.y2),
        ])
        .expect("rectangle polygon is always valid")
    }

    /// Width of the rectangle.
    pub fn width(&self) -> Rational {
        self.x2 - self.x1
    }

    /// Height of the rectangle.
    pub fn height(&self) -> Rational {
        self.y2 - self.y1
    }

    /// Do two open rectangles intersect?
    pub fn intersects_open(&self, other: &Rect) -> bool {
        self.x1 < other.x2 && other.x1 < self.x2 && self.y1 < other.y2 && other.y1 < self.y2
    }
}

/// Errors raised when constructing regions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RegionError {
    /// The supplied polygon is invalid.
    BadPolygon(PolygonError),
    /// A union of rectangles is not a disc (disconnected, has a hole, or is
    /// pinched at a point).
    NotADisc(&'static str),
    /// No rectangles were supplied to a `Rect*` construction.
    EmptyUnion,
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::BadPolygon(e) => write!(f, "invalid polygon: {e}"),
            RegionError::NotADisc(why) => write!(f, "rectangle union is not a disc: {why}"),
            RegionError::EmptyUnion => write!(f, "empty rectangle union"),
        }
    }
}

impl std::error::Error for RegionError {}

impl From<PolygonError> for RegionError {
    fn from(e: PolygonError) -> Self {
        RegionError::BadPolygon(e)
    }
}

/// A spatial region: an open, bounded, simply connected subset of the plane
/// represented by its polygonal boundary, together with the most specific
/// paper class it is known to belong to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Region {
    boundary: Polygon,
    declared_class: RegionClass,
}

impl Region {
    /// A rectangle region (class `Rect`).
    pub fn rect(r: Rect) -> Self {
        Region { boundary: r.to_polygon(), declared_class: RegionClass::Rect }
    }

    /// A rectangle region from integer coordinates.
    pub fn rect_from_ints(x1: i64, y1: i64, x2: i64, y2: i64) -> Self {
        Region::rect(Rect::from_ints(x1, y1, x2, y2))
    }

    /// A polygonal region (class `Poly`).
    pub fn polygon(p: Polygon) -> Self {
        let class = classify_polygon(&p);
        Region { boundary: p, declared_class: class }
    }

    /// A polygonal region from integer vertex coordinates.
    pub fn polygon_from_ints(coords: &[(i64, i64)]) -> Result<Self, RegionError> {
        Ok(Region::polygon(Polygon::from_ints(coords)?))
    }

    /// A `Rect*` region: the union of the given rectangles, which must form a
    /// disc (connected, simply connected, not pinched).
    pub fn rect_union(rects: &[Rect]) -> Result<Self, RegionError> {
        let boundary = union_of_rectangles(rects)?;
        let class = classify_polygon(&boundary);
        Ok(Region { boundary, declared_class: class })
    }

    /// The boundary polygon.
    pub fn boundary(&self) -> &Polygon {
        &self.boundary
    }

    /// The most specific region class this region belongs to
    /// (`Rect`, `Rect*` or `Poly`), determined from its geometry.
    pub fn class(&self) -> RegionClass {
        self.declared_class
    }

    /// Does this region belong to the given (possibly larger) class?
    pub fn is_in_class(&self, class: RegionClass) -> bool {
        self.class().is_subclass_of(class)
    }

    /// Exact location of a point relative to the region.
    pub fn locate(&self, p: &Point) -> Location {
        self.boundary.locate(p)
    }

    /// The area of the region.
    pub fn area(&self) -> Rational {
        self.boundary.area()
    }

    /// A point in the interior of the region.
    pub fn interior_point(&self) -> Point {
        self.boundary.interior_point()
    }

    /// Axis-aligned bounding box.
    pub fn bounding_box(&self) -> (Rational, Rational, Rational, Rational) {
        self.boundary.bounding_box()
    }

    /// A translated copy of the region (same class).
    pub fn translated(&self, dx: i64, dy: i64) -> Region {
        Region { boundary: self.boundary.translated(dx, dy), declared_class: self.declared_class }
    }
}

/// Determine the most specific class of a polygon's enclosed region.
fn classify_polygon(p: &Polygon) -> RegionClass {
    if is_axis_rectangle(p) {
        RegionClass::Rect
    } else if is_rectilinear(p) {
        RegionClass::RectStar
    } else {
        RegionClass::Poly
    }
}

/// Is the polygon an axis-parallel rectangle (possibly with redundant
/// collinear vertices)?
pub fn is_axis_rectangle(p: &Polygon) -> bool {
    if !is_rectilinear(p) {
        return false;
    }
    // A rectilinear polygon is a rectangle iff it has exactly 4 corners
    // (vertices where the direction actually turns).
    count_corners(p) == 4
}

/// Is every edge of the polygon axis-parallel?
pub fn is_rectilinear(p: &Polygon) -> bool {
    p.edges().all(|e| {
        let d = e.direction();
        d.dx.is_zero() || d.dy.is_zero()
    })
}

fn count_corners(p: &Polygon) -> usize {
    let vs = p.vertices();
    let n = vs.len();
    let mut corners = 0;
    for i in 0..n {
        let prev = &vs[(i + n - 1) % n];
        let cur = &vs[i];
        let next = &vs[(i + 1) % n];
        let d1 = prev.vector_to(cur);
        let d2 = cur.vector_to(next);
        if !d1.cross(&d2).is_zero() {
            corners += 1;
        }
    }
    corners
}

/// Compute the boundary polygon of a union of axis-parallel rectangles,
/// requiring the union to be an (open) disc.
///
/// The construction rasterizes onto the grid induced by the rectangles'
/// coordinates, collects the boundary edges of the covered cells, chains them
/// into a cycle and rejects unions that are disconnected, have holes, or are
/// pinched at a point (all of which fall outside the paper's `Rect*` class).
pub fn union_of_rectangles(rects: &[Rect]) -> Result<Polygon, RegionError> {
    if rects.is_empty() {
        return Err(RegionError::EmptyUnion);
    }
    // Grid coordinates.
    let xs: BTreeSet<Rational> = rects.iter().flat_map(|r| [r.x1, r.x2]).collect();
    let ys: BTreeSet<Rational> = rects.iter().flat_map(|r| [r.y1, r.y2]).collect();
    let xs: Vec<Rational> = xs.into_iter().collect();
    let ys: Vec<Rational> = ys.into_iter().collect();
    let nx = xs.len() - 1;
    let ny = ys.len() - 1;

    // Mark covered cells.
    let mut covered = vec![vec![false; ny]; nx];
    for (i, covered_col) in covered.iter_mut().enumerate() {
        for (j, cell) in covered_col.iter_mut().enumerate() {
            let cx = Rational::midpoint(xs[i], xs[i + 1]);
            let cy = Rational::midpoint(ys[j], ys[j + 1]);
            *cell = rects.iter().any(|r| cx > r.x1 && cx < r.x2 && cy > r.y1 && cy < r.y2);
        }
    }

    // Collect directed boundary edges (counter-clockwise around the covered
    // set: covered cell on the left of the directed edge).
    let mut boundary_edges: Vec<(Point, Point)> = Vec::new();
    for i in 0..nx {
        for j in 0..ny {
            if !covered[i][j] {
                continue;
            }
            let x0 = xs[i];
            let x1 = xs[i + 1];
            let y0 = ys[j];
            let y1 = ys[j + 1];
            // Bottom side: neighbor below uncovered -> directed left-to-right.
            if j == 0 || !covered[i][j - 1] {
                boundary_edges.push((Point::new(x0, y0), Point::new(x1, y0)));
            }
            // Right side: directed bottom-to-top.
            if i == nx - 1 || !covered[i + 1][j] {
                boundary_edges.push((Point::new(x1, y0), Point::new(x1, y1)));
            }
            // Top side: directed right-to-left.
            if j == ny - 1 || !covered[i][j + 1] {
                boundary_edges.push((Point::new(x1, y1), Point::new(x0, y1)));
            }
            // Left side: directed top-to-bottom.
            if i == 0 || !covered[i - 1][j] {
                boundary_edges.push((Point::new(x0, y1), Point::new(x0, y0)));
            }
        }
    }
    if boundary_edges.is_empty() {
        return Err(RegionError::NotADisc("no covered area"));
    }

    // Detect pinch points: a vertex with more than one outgoing boundary edge.
    use std::collections::BTreeMap;
    let mut outgoing: BTreeMap<Point, Vec<usize>> = BTreeMap::new();
    for (idx, (a, _)) in boundary_edges.iter().enumerate() {
        outgoing.entry(*a).or_default().push(idx);
    }
    if outgoing.values().any(|v| v.len() > 1) {
        return Err(RegionError::NotADisc("union is pinched at a point"));
    }

    // Chain the edges into a single cycle.
    let mut used = vec![false; boundary_edges.len()];
    let start = 0usize;
    let mut cycle: Vec<Point> = vec![boundary_edges[start].0];
    let mut cur = start;
    loop {
        used[cur] = true;
        let end = boundary_edges[cur].1;
        if end == boundary_edges[start].0 {
            break;
        }
        cycle.push(end);
        let next = outgoing.get(&end).and_then(|v| v.first()).copied();
        match next {
            Some(n) if !used[n] => cur = n,
            _ => return Err(RegionError::NotADisc("boundary does not close into one cycle")),
        }
    }
    if used.iter().any(|&u| !u) {
        return Err(RegionError::NotADisc(
            "union has more than one boundary cycle (disconnected or has a hole)",
        ));
    }

    // Remove collinear intermediate vertices.
    let simplified = simplify_collinear(&cycle);
    Polygon::new(simplified).map_err(RegionError::from)
}

fn simplify_collinear(cycle: &[Point]) -> Vec<Point> {
    let n = cycle.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let prev = &cycle[(i + n - 1) % n];
        let cur = &cycle[i];
        let next = &cycle[(i + 1) % n];
        let d1 = prev.vector_to(cur);
        let d2 = cur.vector_to(next);
        if !d1.cross(&d2).is_zero() {
            out.push(*cur);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;

    #[test]
    fn class_lattice() {
        use RegionClass::*;
        assert!(Rect.is_subclass_of(RectStar));
        assert!(Rect.is_subclass_of(Poly));
        assert!(RectStar.is_subclass_of(Disc));
        assert!(Poly.is_subclass_of(Alg));
        assert!(Alg.is_subclass_of(Disc));
        assert!(!Poly.is_subclass_of(RectStar));
        assert!(!Disc.is_subclass_of(Alg));
        assert!(!RectStar.is_subclass_of(Rect));
    }

    #[test]
    fn rect_region_classification() {
        let r = Region::rect_from_ints(0, 0, 4, 2);
        assert_eq!(r.class(), RegionClass::Rect);
        assert!(r.is_in_class(RegionClass::RectStar));
        assert!(r.is_in_class(RegionClass::Alg));
        assert_eq!(r.area(), Rational::from_int(8));
        assert_eq!(r.locate(&pt(1, 1)), Location::Inside);
        assert_eq!(r.locate(&pt(0, 1)), Location::Boundary);
        assert_eq!(r.locate(&pt(5, 5)), Location::Outside);
    }

    #[test]
    fn polygon_region_classification() {
        let tri = Region::polygon_from_ints(&[(0, 0), (4, 0), (2, 3)]).unwrap();
        assert_eq!(tri.class(), RegionClass::Poly);
        assert!(!tri.is_in_class(RegionClass::RectStar));
        assert!(tri.is_in_class(RegionClass::Alg));
        // An axis-parallel L-shape is recognized as Rect*.
        let l = Region::polygon_from_ints(&[(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)]).unwrap();
        assert_eq!(l.class(), RegionClass::RectStar);
        // A rectangle given as a polygon is recognized as Rect.
        let r = Region::polygon_from_ints(&[(0, 0), (4, 0), (4, 2), (0, 2)]).unwrap();
        assert_eq!(r.class(), RegionClass::Rect);
    }

    #[test]
    fn union_l_shape() {
        let r = Region::rect_union(&[Rect::from_ints(0, 0, 4, 2), Rect::from_ints(0, 0, 2, 4)])
            .unwrap();
        assert_eq!(r.class(), RegionClass::RectStar);
        assert_eq!(r.area(), Rational::from_int(12));
        assert_eq!(r.locate(&pt(1, 3)), Location::Inside);
        assert_eq!(r.locate(&pt(3, 1)), Location::Inside);
        assert_eq!(r.locate(&pt(3, 3)), Location::Outside);
        assert_eq!(r.boundary().vertices().len(), 6);
    }

    #[test]
    fn union_overlapping_rectangles_is_rect() {
        // Two overlapping rectangles forming one bigger rectangle.
        let r = Region::rect_union(&[Rect::from_ints(0, 0, 3, 2), Rect::from_ints(2, 0, 5, 2)])
            .unwrap();
        assert_eq!(r.class(), RegionClass::Rect);
        assert_eq!(r.area(), Rational::from_int(10));
    }

    #[test]
    fn union_rejects_non_discs() {
        // Disconnected.
        assert!(matches!(
            Region::rect_union(&[Rect::from_ints(0, 0, 1, 1), Rect::from_ints(3, 3, 4, 4)]),
            Err(RegionError::NotADisc(_))
        ));
        // Ring with a hole.
        assert!(matches!(
            Region::rect_union(&[
                Rect::from_ints(0, 0, 6, 2),
                Rect::from_ints(0, 4, 6, 6),
                Rect::from_ints(0, 0, 2, 6),
                Rect::from_ints(4, 0, 6, 6),
            ]),
            Err(RegionError::NotADisc(_))
        ));
        // Pinched at a corner.
        assert!(matches!(
            Region::rect_union(&[Rect::from_ints(0, 0, 2, 2), Rect::from_ints(2, 2, 4, 4)]),
            Err(RegionError::NotADisc(_))
        ));
        // Empty.
        assert_eq!(Region::rect_union(&[]), Err(RegionError::EmptyUnion));
    }

    #[test]
    fn union_staircase() {
        let r = Region::rect_union(&[
            Rect::from_ints(0, 0, 2, 2),
            Rect::from_ints(1, 1, 3, 3),
            Rect::from_ints(2, 2, 4, 4),
        ])
        .unwrap();
        assert_eq!(r.class(), RegionClass::RectStar);
        assert_eq!(r.locate(&pt(1, 1)), Location::Inside);
        // A point in the staircase's lower-right notch is outside.
        assert_eq!(r.locate(&pt(3, 0)), Location::Outside);
    }

    #[test]
    fn translation_preserves_class_and_area() {
        let r = Region::rect_union(&[Rect::from_ints(0, 0, 4, 2), Rect::from_ints(0, 0, 2, 4)])
            .unwrap();
        let t = r.translated(10, -5);
        assert_eq!(t.class(), r.class());
        assert_eq!(t.area(), r.area());
        assert_eq!(t.locate(&pt(11, -2)), Location::Inside);
    }

    #[test]
    fn rect_helpers() {
        let r = Rect::from_ints(0, 0, 4, 2);
        assert_eq!(r.width(), Rational::from_int(4));
        assert_eq!(r.height(), Rational::from_int(2));
        assert!(r.intersects_open(&Rect::from_ints(3, 1, 6, 5)));
        assert!(!r.intersects_open(&Rect::from_ints(4, 0, 6, 2)));
    }

    #[test]
    fn interior_point_inside() {
        let r = Region::rect_union(&[Rect::from_ints(0, 0, 4, 2), Rect::from_ints(0, 0, 2, 4)])
            .unwrap();
        assert_eq!(r.locate(&r.interior_point()), Location::Inside);
    }
}
