//! # spatial-core
//!
//! Geometric and model-level substrate for the reproduction of
//! *"Topological Queries in Spatial Databases"* (Papadimitriou, Suciu, Vianu;
//! PODS 1996 / JCSS 1999).
//!
//! This crate provides:
//!
//! * exact rational arithmetic ([`rational`]),
//! * exact planar geometry: points, segments and simple polygons
//!   ([`point`], [`segment`], [`polygon`]),
//! * the paper's spatial data model: regions stratified into the classes
//!   `Rect ⊂ Rect* ⊂ Disc` and `Poly ⊂ Alg ⊂ Disc` ([`region`]) and spatial
//!   database instances mapping names to regions ([`instance`]),
//! * the permutation groups `S`, `L`, `H` used to define `G`-genericity
//!   ([`transform`]),
//! * fixture instances reproducing the paper's figures ([`fixtures`]).
//!
//! Everything downstream — the planar arrangement (`arrangement` crate), the
//! topological invariant `T_I` (`invariant` crate), the 4-intersection
//! relations (`relations` crate) and the query languages (`query` crate) — is
//! built on these types.
//!
//! ## Example
//!
//! ```
//! use spatial_core::prelude::*;
//!
//! // The paper's Fig. 1c: two overlapping regions.
//! let inst = spatial_core::fixtures::fig_1c();
//! assert_eq!(inst.names(), vec!["A", "B"]);
//! assert_eq!(inst.common_class(), RegionClass::Rect);
//!
//! // Regions answer exact point-location queries.
//! let a = inst.ext("A").unwrap();
//! assert_eq!(a.locate(&pt(1, 1)), Location::Inside);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixtures;
pub mod instance;
pub mod point;
pub mod polygon;
pub mod rational;
pub mod region;
pub mod segment;
pub mod transform;
pub mod wire;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::instance::SpatialInstance;
    pub use crate::point::{orient, pt, ptr, Orientation, Point, Vector};
    pub use crate::polygon::{Location, Polygon};
    pub use crate::rational::{rat, Rational};
    pub use crate::region::{Rect, Region, RegionClass};
    pub use crate::segment::{seg, Segment, SegmentIntersection};
    pub use crate::transform::{
        class_invariant_under, genericity_group, AffineMap, Group, MonotoneMap, PlaneTransform,
        Symmetry, TwoPieceLinear,
    };
}
