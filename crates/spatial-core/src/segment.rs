//! Line segments, exact segment intersection, and the exact predicates used
//! by the plane-sweep arrangement construction.
//!
//! The sweep predicates ([`Segment::cmp_at_sweep`], [`Segment::slope_cmp`],
//! [`Segment::sweep_source`] / [`Segment::sweep_target`]) define the order of
//! active segments along a vertical sweep line that advances through event
//! points in lexicographic `(x, y)` order. All of them are division-free sign
//! computations on `Rational` cross products, so they are exact for any
//! rational input. ([`Segment::y_at`] evaluates the supporting line
//! explicitly; it is a diagnostic companion, not used by the sweep itself.)

use crate::point::{orient, Orientation, Point, Vector};
use crate::rational::Rational;
use std::cmp::Ordering;

/// A closed line segment between two distinct points.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

/// The result of intersecting two segments.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SegmentIntersection {
    /// The segments do not intersect.
    None,
    /// The segments intersect in exactly one point.
    Point(Point),
    /// The segments are collinear and overlap in a (non-degenerate) segment.
    Overlap(Segment),
}

impl Segment {
    /// Construct a segment. Panics if the endpoints coincide.
    pub fn new(a: Point, b: Point) -> Self {
        assert!(a != b, "degenerate segment");
        Segment { a, b }
    }

    /// The direction vector `b - a`.
    pub fn direction(&self) -> Vector {
        self.a.vector_to(&self.b)
    }

    /// Does the closed segment contain the point `p`?
    pub fn contains_point(&self, p: &Point) -> bool {
        if orient(&self.a, &self.b, p) != Orientation::Collinear {
            return false;
        }
        // Collinear: check that p is within the bounding range along both axes.
        let (xmin, xmax) = minmax(self.a.x, self.b.x);
        let (ymin, ymax) = minmax(self.a.y, self.b.y);
        p.x >= xmin && p.x <= xmax && p.y >= ymin && p.y <= ymax
    }

    /// Does the open segment (excluding endpoints) contain the point `p`?
    pub fn interior_contains_point(&self, p: &Point) -> bool {
        self.contains_point(p) && *p != self.a && *p != self.b
    }

    /// Exact intersection of two closed segments.
    pub fn intersect(&self, other: &Segment) -> SegmentIntersection {
        let r = self.direction();
        let s = other.direction();
        let qp = self.a.vector_to(&other.a);
        let rxs = r.cross(&s);
        let qpxr = qp.cross(&r);

        if rxs.is_zero() && qpxr.is_zero() {
            // Collinear. Project onto the dominant axis of r and compute the
            // parameter range of `other` relative to `self`.
            let denom = r.dot(&r);
            let t0 = qp.dot(&r) / denom;
            let t1 = t0 + s.dot(&r) / denom;
            let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
            let lo = lo.max(Rational::ZERO);
            let hi = hi.min(Rational::ONE);
            if lo > hi {
                return SegmentIntersection::None;
            }
            let p0 = self.point_at(lo);
            let p1 = self.point_at(hi);
            if p0 == p1 {
                SegmentIntersection::Point(p0)
            } else {
                SegmentIntersection::Overlap(Segment::new(p0, p1))
            }
        } else if rxs.is_zero() {
            // Parallel, non-collinear.
            SegmentIntersection::None
        } else {
            let t = qp.cross(&s) / rxs;
            let u = qp.cross(&r) / rxs;
            if t >= Rational::ZERO && t <= Rational::ONE && u >= Rational::ZERO && u <= Rational::ONE
            {
                SegmentIntersection::Point(self.point_at(t))
            } else {
                SegmentIntersection::None
            }
        }
    }

    /// The point `a + t * (b - a)`.
    pub fn point_at(&self, t: Rational) -> Point {
        let d = self.direction();
        Point::new(self.a.x + d.dx * t, self.a.y + d.dy * t)
    }

    /// The parameter of a point known to lie on the supporting line.
    pub fn param_of(&self, p: &Point) -> Rational {
        let d = self.direction();
        if !d.dx.is_zero() {
            (p.x - self.a.x) / d.dx
        } else {
            (p.y - self.a.y) / d.dy
        }
    }

    /// Reverse the segment.
    pub fn reversed(&self) -> Segment {
        Segment { a: self.b, b: self.a }
    }

    /// Is the segment vertical (both endpoints share their `x` coordinate)?
    pub fn is_vertical(&self) -> bool {
        self.a.x == self.b.x
    }

    /// The lexicographically smaller endpoint — where a left-to-right sweep
    /// first meets the segment.
    pub fn sweep_source(&self) -> Point {
        if self.a <= self.b {
            self.a
        } else {
            self.b
        }
    }

    /// The lexicographically larger endpoint — where a left-to-right sweep
    /// leaves the segment.
    pub fn sweep_target(&self) -> Point {
        if self.a <= self.b {
            self.b
        } else {
            self.a
        }
    }

    /// The `y` coordinate of the supporting line at abscissa `x`.
    ///
    /// # Panics
    /// Panics if the segment is vertical.
    pub fn y_at(&self, x: Rational) -> Rational {
        let d = self.direction();
        assert!(!d.dx.is_zero(), "y_at of a vertical segment");
        self.a.y + (x - self.a.x) * d.dy / d.dx
    }

    /// Position of this segment relative to the sweep point `p`, for a
    /// segment whose `x`-span contains `p.x`:
    ///
    /// * `Less` — the segment passes strictly below `p`,
    /// * `Equal` — the segment contains `p` (for a non-vertical active
    ///   segment, its supporting line passes through `p`),
    /// * `Greater` — the segment passes strictly above `p`.
    ///
    /// Division-free: for a non-vertical segment this is the sign of the
    /// cross product of the left-to-right direction with `p - source`; for a
    /// vertical segment it compares `p.y` against the segment's `y`-range.
    pub fn cmp_at_sweep(&self, p: &Point) -> Ordering {
        let src = self.sweep_source();
        let dst = self.sweep_target();
        if self.is_vertical() {
            debug_assert!(self.a.x == p.x, "vertical segment compared off its abscissa");
            if dst.y < p.y {
                return Ordering::Less;
            }
            if src.y > p.y {
                return Ordering::Greater;
            }
            return Ordering::Equal;
        }
        // p above the directed line src -> dst (positive cross) means the
        // segment runs below p.
        let d = src.vector_to(&dst);
        let to_p = src.vector_to(p);
        match d.cross(&to_p).signum() {
            1 => Ordering::Less,
            -1 => Ordering::Greater,
            _ => Ordering::Equal,
        }
    }

    /// Compare two segments by the slope of their left-to-right directions,
    /// with vertical counting as `+infinity` (greatest). For two segments
    /// through a common sweep point this is their status order immediately
    /// after the sweep passes that point; `Equal` means the supporting lines
    /// are parallel (for segments sharing a point: identical).
    pub fn slope_cmp(&self, other: &Segment) -> Ordering {
        let d1 = self.sweep_source().vector_to(&self.sweep_target());
        let d2 = other.sweep_source().vector_to(&other.sweep_target());
        match (d1.dx.is_zero(), d2.dx.is_zero()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            // dy1/dx1 ? dy2/dx2  <=>  dy1*dx2 ? dy2*dx1  (dx1, dx2 > 0)
            (false, false) => (d1.dy * d2.dx).cmp(&(d2.dy * d1.dx)),
        }
    }
}

fn minmax(a: Rational, b: Rational) -> (Rational, Rational) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Convenience constructor from integer coordinates.
pub fn seg(ax: i64, ay: i64, bx: i64, by: i64) -> Segment {
    Segment::new(Point::from_ints(ax, ay), Point::from_ints(bx, by))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;

    #[test]
    fn proper_crossing() {
        let s1 = seg(0, 0, 4, 4);
        let s2 = seg(0, 4, 4, 0);
        assert_eq!(s1.intersect(&s2), SegmentIntersection::Point(pt(2, 2)));
    }

    #[test]
    fn crossing_at_rational_point() {
        let s1 = seg(0, 0, 3, 1);
        let s2 = seg(0, 1, 3, 0);
        match s1.intersect(&s2) {
            SegmentIntersection::Point(p) => {
                assert_eq!(p, Point::new(Rational::new(3, 2), Rational::new(1, 2)));
            }
            other => panic!("expected point intersection, got {other:?}"),
        }
    }

    #[test]
    fn endpoint_touch() {
        let s1 = seg(0, 0, 2, 2);
        let s2 = seg(2, 2, 4, 0);
        assert_eq!(s1.intersect(&s2), SegmentIntersection::Point(pt(2, 2)));
    }

    #[test]
    fn no_intersection() {
        let s1 = seg(0, 0, 1, 1);
        let s2 = seg(2, 2, 3, 2);
        assert_eq!(s1.intersect(&s2), SegmentIntersection::None);
        // Parallel, non-collinear.
        let s3 = seg(0, 0, 2, 0);
        let s4 = seg(0, 1, 2, 1);
        assert_eq!(s3.intersect(&s4), SegmentIntersection::None);
        // Lines would cross but segments do not reach.
        let s5 = seg(0, 0, 1, 1);
        let s6 = seg(3, 0, 2, 1);
        assert_eq!(s5.intersect(&s6), SegmentIntersection::None);
    }

    #[test]
    fn collinear_overlap() {
        let s1 = seg(0, 0, 4, 0);
        let s2 = seg(2, 0, 6, 0);
        assert_eq!(
            s1.intersect(&s2),
            SegmentIntersection::Overlap(Segment::new(pt(2, 0), pt(4, 0)))
        );
        // Collinear but disjoint.
        let s3 = seg(5, 0, 6, 0);
        assert_eq!(seg(0, 0, 4, 0).intersect(&s3), SegmentIntersection::None);
        // Collinear touching at a single point.
        let s4 = seg(4, 0, 6, 0);
        assert_eq!(s1.intersect(&s4), SegmentIntersection::Point(pt(4, 0)));
    }

    #[test]
    fn overlap_is_symmetric() {
        let s1 = seg(0, 0, 4, 4);
        let s2 = seg(1, 1, 6, 6);
        let i1 = s1.intersect(&s2);
        let i2 = s2.intersect(&s1);
        match (&i1, &i2) {
            (SegmentIntersection::Overlap(a), SegmentIntersection::Overlap(b)) => {
                assert!(
                    (a.a == b.a && a.b == b.b) || (a.a == b.b && a.b == b.a),
                    "overlaps differ: {a:?} vs {b:?}"
                );
            }
            _ => panic!("expected overlaps, got {i1:?} and {i2:?}"),
        }
    }

    #[test]
    fn contains_point() {
        let s = seg(0, 0, 4, 2);
        assert!(s.contains_point(&pt(2, 1)));
        assert!(s.contains_point(&pt(0, 0)));
        assert!(!s.interior_contains_point(&pt(0, 0)));
        assert!(s.interior_contains_point(&pt(2, 1)));
        assert!(!s.contains_point(&pt(6, 3)));
        assert!(!s.contains_point(&pt(2, 2)));
    }

    #[test]
    fn param_roundtrip() {
        let s = seg(1, 1, 5, 3);
        let p = s.point_at(Rational::new(1, 4));
        assert_eq!(s.param_of(&p), Rational::new(1, 4));
        let v = seg(2, 0, 2, 8);
        let q = v.point_at(Rational::new(3, 4));
        assert_eq!(v.param_of(&q), Rational::new(3, 4));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_segment_panics() {
        let _ = Segment::new(pt(1, 1), pt(1, 1));
    }

    #[test]
    fn sweep_endpoints_and_verticality() {
        let s = seg(4, 1, 0, 3);
        assert_eq!(s.sweep_source(), pt(0, 3));
        assert_eq!(s.sweep_target(), pt(4, 1));
        assert!(!s.is_vertical());
        let v = seg(2, 5, 2, -1);
        assert!(v.is_vertical());
        assert_eq!(v.sweep_source(), pt(2, -1));
        assert_eq!(v.sweep_target(), pt(2, 5));
    }

    #[test]
    fn y_at_interpolates_exactly() {
        let s = seg(0, 0, 4, 2);
        assert_eq!(s.y_at(Rational::from_int(2)), Rational::from_int(1));
        assert_eq!(s.y_at(Rational::from_int(3)), Rational::new(3, 2));
        // Orientation of endpoints does not matter.
        assert_eq!(s.reversed().y_at(Rational::from_int(3)), Rational::new(3, 2));
    }

    #[test]
    fn cmp_at_sweep_nonvertical() {
        let s = seg(0, 0, 4, 4);
        assert_eq!(s.cmp_at_sweep(&pt(2, 3)), Ordering::Less, "segment below the point");
        assert_eq!(s.cmp_at_sweep(&pt(2, 1)), Ordering::Greater, "segment above the point");
        assert_eq!(s.cmp_at_sweep(&pt(2, 2)), Ordering::Equal);
        assert_eq!(s.cmp_at_sweep(&pt(0, 0)), Ordering::Equal, "at an endpoint");
        // A rational sweep point.
        let p = Point::new(Rational::new(1, 2), Rational::new(1, 2));
        assert_eq!(s.cmp_at_sweep(&p), Ordering::Equal);
    }

    #[test]
    fn cmp_at_sweep_vertical() {
        let v = seg(2, 1, 2, 5);
        assert_eq!(v.cmp_at_sweep(&pt(2, 0)), Ordering::Greater);
        assert_eq!(v.cmp_at_sweep(&pt(2, 6)), Ordering::Less);
        assert_eq!(v.cmp_at_sweep(&pt(2, 1)), Ordering::Equal);
        assert_eq!(v.cmp_at_sweep(&pt(2, 3)), Ordering::Equal);
        assert_eq!(v.cmp_at_sweep(&pt(2, 5)), Ordering::Equal);
    }

    #[test]
    fn slope_order_around_a_point() {
        // Segments through the origin, sorted by the order in which a sweep
        // line just right of the origin meets them bottom-to-top.
        let down_steep = seg(0, 0, 1, -3);
        let down = seg(0, 0, 2, -1);
        let flat = seg(0, 0, 3, 0);
        let up = seg(0, 0, 2, 1);
        let up_steep = seg(0, 0, 1, 3);
        let vertical = seg(0, 0, 0, 4);
        let ordered = [down_steep, down, flat, up, up_steep, vertical];
        for i in 0..ordered.len() {
            for j in 0..ordered.len() {
                assert_eq!(ordered[i].slope_cmp(&ordered[j]), i.cmp(&j), "{i} vs {j}");
            }
        }
        // Collinear segments compare equal regardless of endpoint order.
        assert_eq!(seg(0, 0, 2, 2).slope_cmp(&seg(5, 5, 3, 3)), Ordering::Equal);
    }
}
