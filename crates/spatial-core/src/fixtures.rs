//! Named fixture instances reproducing the figures of the paper.
//!
//! The paper's figures are drawings of small spatial database instances; the
//! fixtures here are polygonal instances with the same topological structure,
//! used throughout the test suites and the benchmark harness. Where we could
//! not reproduce the exact drawing (the paper's figures are only described in
//! prose), the fixture realizes the *property* the figure is used to
//! demonstrate; `EXPERIMENTS.md` records the correspondence.

use crate::instance::SpatialInstance;
use crate::region::{Rect, Region};

/// Fig. 1a: three regions `A`, `B`, `C`, pairwise overlapping, with
/// `A ∩ B ∩ C ≠ ∅`.
pub fn fig_1a() -> SpatialInstance {
    SpatialInstance::from_regions([
        ("A", Region::rect_from_ints(0, 0, 4, 4)),
        ("B", Region::rect_from_ints(2, 2, 6, 6)),
        ("C", Region::rect_from_ints(1, 3, 5, 5)),
    ])
}

/// Fig. 1b: three regions `A`, `B`, `C`, pairwise overlapping, with
/// `A ∩ B ∩ C = ∅`.
///
/// Fig. 1a and Fig. 1b are 4-intersection equivalent (every pair overlaps)
/// but not topologically equivalent — the paper's motivating example for why
/// the binary relations are not complete (Section 2, Example 4.1).
pub fn fig_1b() -> SpatialInstance {
    SpatialInstance::from_regions([
        ("A", Region::rect_from_ints(0, 0, 10, 3)),
        ("B", Region::rect_from_ints(-1, -1, 3, 12)),
        (
            "C",
            Region::polygon_from_ints(&[(7, 1), (9, 1), (2, 8), (0, 8)])
                .expect("fig 1b strip is a valid polygon"),
        ),
    ])
}

/// Fig. 1c: two overlapping regions whose intersection has one connected
/// component. Its invariant is worked out in Examples 3.1 and 3.3 of the
/// paper: 2 vertices, 4 edges, 4 faces.
pub fn fig_1c() -> SpatialInstance {
    SpatialInstance::from_regions([
        ("A", Region::rect_from_ints(0, 0, 4, 4)),
        ("B", Region::rect_from_ints(2, 1, 6, 3)),
    ])
}

/// Fig. 1d: two overlapping regions whose intersection has two connected
/// components (`A` is U-shaped, `B` is a bar crossing both arms).
///
/// Fig. 1c and Fig. 1d are 4-intersection equivalent (both pairs overlap) but
/// not topologically equivalent (Example 2.1 / Example 4.2).
pub fn fig_1d() -> SpatialInstance {
    SpatialInstance::from_regions([
        (
            "A",
            Region::polygon_from_ints(&[
                (0, 0),
                (6, 0),
                (6, 6),
                (4, 6),
                (4, 2),
                (2, 2),
                (2, 6),
                (0, 6),
            ])
            .expect("fig 1d U-shape is a valid polygon"),
        ),
        ("B", Region::rect_from_ints(-1, 3, 7, 5)),
    ])
}

/// All four Fig. 1 instances, labeled.
pub fn fig_1_all() -> Vec<(&'static str, SpatialInstance)> {
    vec![("1a", fig_1a()), ("1b", fig_1b()), ("1c", fig_1c()), ("1d", fig_1d())]
}

/// Canonical witness pairs for the eight 4-intersection relations of Fig. 2.
///
/// Each entry is `(relation name, instance with regions "A" and "B" standing
/// in that relation)`.
pub fn fig_2_pairs() -> Vec<(&'static str, SpatialInstance)> {
    let pair = |a: Region, b: Region| SpatialInstance::from_regions([("A", a), ("B", b)]);
    vec![
        (
            "disjoint",
            pair(Region::rect_from_ints(0, 0, 2, 2), Region::rect_from_ints(4, 4, 6, 6)),
        ),
        (
            "meet",
            pair(Region::rect_from_ints(0, 0, 2, 2), Region::rect_from_ints(2, 0, 4, 2)),
        ),
        (
            "overlap",
            pair(Region::rect_from_ints(0, 0, 4, 4), Region::rect_from_ints(2, 2, 6, 6)),
        ),
        (
            "equal",
            pair(Region::rect_from_ints(0, 0, 4, 4), Region::rect_from_ints(0, 0, 4, 4)),
        ),
        (
            "contains",
            pair(Region::rect_from_ints(0, 0, 10, 10), Region::rect_from_ints(3, 3, 6, 6)),
        ),
        (
            "inside",
            pair(Region::rect_from_ints(3, 3, 6, 6), Region::rect_from_ints(0, 0, 10, 10)),
        ),
        (
            "covers",
            pair(Region::rect_from_ints(0, 0, 10, 10), Region::rect_from_ints(0, 3, 6, 6)),
        ),
        (
            "covered_by",
            pair(Region::rect_from_ints(0, 3, 6, 6), Region::rect_from_ints(0, 0, 10, 10)),
        ),
    ]
}

/// The "ring" instance: two C-shaped regions `A` (opening right) and `B`
/// (opening left) that overlap in two separate lens faces and enclose a
/// bounded hole labeled exterior-to-both.
///
/// Its cell complex has two faces with the all-exterior label (the hole and
/// the unbounded face), which is exactly the situation Fig. 6 of the paper
/// uses to show that the designated exterior face is an essential part of the
/// invariant.
pub fn ring() -> SpatialInstance {
    SpatialInstance::from_regions([
        (
            "A",
            Region::polygon_from_ints(&[
                (0, 0),
                (16, 0),
                (16, 6),
                (4, 6),
                (4, 14),
                (16, 14),
                (16, 20),
                (0, 20),
            ])
            .expect("ring region A is a valid polygon"),
        ),
        (
            "B",
            Region::polygon_from_ints(&[
                (2, 2),
                (18, 2),
                (18, 18),
                (2, 18),
                (2, 12),
                (14, 12),
                (14, 8),
                (2, 8),
            ])
            .expect("ring region B is a valid polygon"),
        ),
    ])
}

/// The ring of [`ring`] plus a third region `D` overlapping region `A`
/// across its *outer* boundary arc only.
///
/// The extra region breaks the inside/outside symmetry of the plain ring: the
/// unbounded face and the hole face still carry the same (all-exterior)
/// label, but they are no longer exchangeable by any automorphism of the
/// labeled graph. This is the fixture used to reproduce the point of the
/// paper's Fig. 6: re-designating the hole as the exterior face yields a
/// structure that is isomorphic to the original *as a labeled graph* but not
/// *as an invariant*, and the corresponding instances are not homeomorphic.
pub fn ring_with_flag() -> SpatialInstance {
    let mut inst = ring();
    inst.insert("D", Region::rect_from_ints(-2, 9, 2, 11));
    inst
}

/// Fig. 7a analogue: the ring of [`ring`] plus a third region `C` placed in
/// the unbounded face (variant `false`) or inside the ring's hole
/// (variant `true`).
///
/// The two variants have isomorphic *connected-component* structures; they are
/// distinguished only by which face of the ring the component `C` is embedded
/// in — the paper's point that for disconnected instances the placement of
/// components matters.
pub fn ring_with_island(inside_hole: bool) -> SpatialInstance {
    let mut inst = ring();
    let c = if inside_hole {
        // The hole is the open box (4, 14) x (8, 12).
        Region::rect_from_ints(6, 9, 8, 11)
    } else {
        Region::rect_from_ints(22, 2, 24, 4)
    };
    inst.insert("C", c);
    inst
}

/// Fig. 7b analogue: four triangular "petals" `A`, `B`, `C`, `D` sharing a
/// single common point (the origin) and otherwise disjoint, in a given
/// counter-clockwise cyclic order around that point.
///
/// [`petals_abcd`] and [`petals_acbd`] have isomorphic cell-complex graphs
/// `G_I` (same cells, labels, adjacencies, exterior face) but different
/// rotation systems `O`, and are not topologically equivalent — the paper's
/// demonstration that the orientation relation is an essential part of `T_I`.
pub fn petals(order: [&str; 4]) -> SpatialInstance {
    let east = Region::polygon_from_ints(&[(0, 0), (8, 2), (8, -2)]).expect("east petal");
    let north = Region::polygon_from_ints(&[(0, 0), (2, 8), (-2, 8)]).expect("north petal");
    let west = Region::polygon_from_ints(&[(0, 0), (-8, 2), (-8, -2)]).expect("west petal");
    let south = Region::polygon_from_ints(&[(0, 0), (2, -8), (-2, -8)]).expect("south petal");
    let slots = [east, north, west, south];
    SpatialInstance::from_regions(
        order.iter().zip(slots).map(|(name, region)| (name.to_string(), region)),
    )
}

/// Petals in counter-clockwise order `A, B, C, D`.
pub fn petals_abcd() -> SpatialInstance {
    petals(["A", "B", "C", "D"])
}

/// Petals in counter-clockwise order `A, C, B, D`.
pub fn petals_acbd() -> SpatialInstance {
    petals(["A", "C", "B", "D"])
}

/// Three nested regions `A ⊃ B ⊃ C` (concentric squares); useful for testing
/// contains/inside relations and nested invariants.
pub fn nested_three() -> SpatialInstance {
    SpatialInstance::from_regions([
        ("A", Region::rect_from_ints(0, 0, 12, 12)),
        ("B", Region::rect_from_ints(2, 2, 10, 10)),
        ("C", Region::rect_from_ints(4, 4, 8, 8)),
    ])
}

/// Two regions related by `meet` along a shared boundary segment plus a third
/// overlapping both — exercises collinear shared boundaries in the
/// arrangement.
pub fn shared_boundary() -> SpatialInstance {
    SpatialInstance::from_regions([
        ("A", Region::rect_from_ints(0, 0, 4, 4)),
        ("B", Region::rect_from_ints(4, 0, 8, 4)),
        ("C", Region::rect_from_ints(2, 2, 6, 6)),
    ])
}

/// A small Rect*-only instance (an L-shaped region and a rectangle).
pub fn rectilinear_pair() -> SpatialInstance {
    SpatialInstance::from_regions([
        (
            "A",
            Region::rect_union(&[Rect::from_ints(0, 0, 6, 2), Rect::from_ints(0, 0, 2, 6)])
                .expect("L-shaped union is a disc"),
        ),
        ("B", Region::rect_from_ints(1, 1, 3, 3)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::polygon::Location;
    use crate::region::RegionClass;

    #[test]
    fn fig1a_has_triple_intersection() {
        let inst = fig_1a();
        // (3, 7/2) is interior to all three regions.
        let p = crate::point::ptr((3, 1), (7, 2));
        for name in ["A", "B", "C"] {
            assert_eq!(inst.ext(name).unwrap().locate(&p), Location::Inside, "{name}");
        }
    }

    #[test]
    fn fig1b_has_no_triple_intersection_but_pairwise_overlaps() {
        let inst = fig_1b();
        let a = inst.ext("A").unwrap();
        let b = inst.ext("B").unwrap();
        let c = inst.ext("C").unwrap();
        // Pairwise witnesses.
        assert_eq!(a.locate(&pt(1, 1)), Location::Inside);
        assert_eq!(b.locate(&pt(1, 1)), Location::Inside);
        assert_eq!(a.locate(&pt(7, 2)), Location::Inside);
        assert_eq!(c.locate(&pt(7, 2)), Location::Inside);
        assert_eq!(b.locate(&pt(2, 7)), Location::Inside);
        assert_eq!(c.locate(&pt(2, 7)), Location::Inside);
        // No triple point: the triple intersection would need x<=3, y<=3 (to be
        // in A and B) and x+y>=8 (to be in C), which is impossible. Spot-check
        // a grid of candidate points.
        for x in -2..=12 {
            for y in -2..=13 {
                let p = pt(x, y);
                let all_in = [a, b, c].iter().all(|r| r.locate(&p) == Location::Inside);
                assert!(!all_in, "unexpected triple intersection at {p:?}");
            }
        }
    }

    #[test]
    fn fig1c_intersection_connected_fig1d_disconnected() {
        let c = fig_1c();
        let a = c.ext("A").unwrap();
        let b = c.ext("B").unwrap();
        assert_eq!(a.locate(&pt(3, 2)), Location::Inside);
        assert_eq!(b.locate(&pt(3, 2)), Location::Inside);

        let d = fig_1d();
        let a = d.ext("A").unwrap();
        let b = d.ext("B").unwrap();
        // Two separate witnesses, one per arm.
        assert_eq!(a.locate(&pt(1, 4)), Location::Inside);
        assert_eq!(b.locate(&pt(1, 4)), Location::Inside);
        assert_eq!(a.locate(&pt(5, 4)), Location::Inside);
        assert_eq!(b.locate(&pt(5, 4)), Location::Inside);
        // The corridor between the arms is outside A.
        assert_eq!(a.locate(&pt(3, 4)), Location::Outside);
        assert_eq!(b.locate(&pt(3, 4)), Location::Inside);
    }

    #[test]
    fn fig2_pairs_are_eight() {
        let pairs = fig_2_pairs();
        assert_eq!(pairs.len(), 8);
        for (name, inst) in &pairs {
            assert_eq!(inst.len(), 2, "{name}");
        }
    }

    #[test]
    fn ring_encloses_a_hole() {
        let inst = ring();
        let a = inst.ext("A").unwrap();
        let b = inst.ext("B").unwrap();
        // Center of the hole: outside both regions.
        let hole = pt(9, 10);
        assert_eq!(a.locate(&hole), Location::Outside);
        assert_eq!(b.locate(&hole), Location::Outside);
        // Two separate overlap witnesses (the lenses).
        assert_eq!(a.locate(&pt(8, 4)), Location::Inside);
        assert_eq!(b.locate(&pt(8, 4)), Location::Inside);
        assert_eq!(a.locate(&pt(8, 16)), Location::Inside);
        assert_eq!(b.locate(&pt(8, 16)), Location::Inside);
    }

    #[test]
    fn ring_with_flag_overlaps_a_only() {
        let inst = ring_with_flag();
        let d = inst.ext("D").unwrap();
        let a = inst.ext("A").unwrap();
        let b = inst.ext("B").unwrap();
        // D straddles ∂A: one witness inside A, one outside.
        assert_eq!(a.locate(&pt(1, 10)), Location::Inside);
        assert_eq!(d.locate(&pt(1, 10)), Location::Inside);
        assert_eq!(a.locate(&pt(-1, 10)), Location::Outside);
        assert_eq!(d.locate(&pt(-1, 10)), Location::Inside);
        // D is disjoint from B.
        assert_eq!(b.locate(&d.interior_point()), Location::Outside);
        assert_eq!(b.locate(&pt(1, 10)), Location::Outside);
    }

    #[test]
    fn ring_island_variants() {
        let out = ring_with_island(false);
        let inn = ring_with_island(true);
        assert_eq!(out.names(), vec!["A", "B", "C"]);
        assert_eq!(inn.names(), vec!["A", "B", "C"]);
        // The island inside the hole is not inside A or B.
        let c = inn.ext("C").unwrap();
        let p = c.interior_point();
        assert_eq!(inn.ext("A").unwrap().locate(&p), Location::Outside);
        assert_eq!(inn.ext("B").unwrap().locate(&p), Location::Outside);
    }

    #[test]
    fn petals_touch_only_at_origin() {
        let inst = petals_abcd();
        assert_eq!(inst.len(), 4);
        let names = inst.names();
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                let ri = inst.ext(names[i]).unwrap();
                let rj = inst.ext(names[j]).unwrap();
                // Interiors are disjoint: the interior point of each is outside
                // the other.
                assert_eq!(rj.locate(&ri.interior_point()), Location::Outside);
                assert_eq!(ri.locate(&rj.interior_point()), Location::Outside);
                // They share the origin on their boundaries.
                assert_eq!(ri.locate(&pt(0, 0)), Location::Boundary);
                assert_eq!(rj.locate(&pt(0, 0)), Location::Boundary);
            }
        }
    }

    #[test]
    fn petal_orders_differ() {
        let p1 = petals_abcd();
        let p2 = petals_acbd();
        assert!(p1.same_names(&p2));
        // In ABCD the region B is the north petal; in ACBD it is the west one.
        assert_eq!(p1.ext("B").unwrap().locate(&pt(0, 6)), Location::Inside);
        assert_eq!(p2.ext("B").unwrap().locate(&pt(0, 6)), Location::Outside);
        assert_eq!(p2.ext("B").unwrap().locate(&pt(-6, 0)), Location::Inside);
    }

    #[test]
    fn nested_and_shared_fixtures() {
        let nested = nested_three();
        assert_eq!(nested.common_class(), RegionClass::Rect);
        let p = pt(6, 6);
        for name in ["A", "B", "C"] {
            assert_eq!(nested.ext(name).unwrap().locate(&p), Location::Inside);
        }
        let shared = shared_boundary();
        assert_eq!(shared.ext("A").unwrap().locate(&pt(4, 1)), Location::Boundary);
        assert_eq!(shared.ext("B").unwrap().locate(&pt(4, 1)), Location::Boundary);
        let rp = rectilinear_pair();
        assert_eq!(rp.ext("A").unwrap().class(), RegionClass::RectStar);
        assert_eq!(rp.common_class(), RegionClass::RectStar);
    }
}
