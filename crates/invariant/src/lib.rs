//! # invariant
//!
//! The topological invariant `T_I` of a spatial database instance — the core
//! contribution of *"Topological Queries in Spatial Databases"*
//! (Papadimitriou, Suciu, Vianu; PODS 1996 / JCSS 1999), Section 3.
//!
//! * [`Invariant`] — the finite structure `T_I = (V, E, δ, f0, l, O)`
//!   extracted from the planar cell complex of an instance.
//! * [`isomorphism`] — Theorem 3.4: two instances are topologically
//!   equivalent iff their invariants are isomorphic (identity on region
//!   names); plus the relaxed comparisons showing that the exterior face and
//!   the orientation relation are both essential (Figs. 6 and 7).
//! * [`validate`](mod@validate) — Theorem 3.8 / Lemma 3.9: deciding whether a candidate
//!   structure is the invariant of some instance (labeled planar graphs).
//! * [`thematic`] — Example 3.6 / Corollary 3.7: storing the invariant as a
//!   classical relational database over the fixed schema `Th`.
//!
//! Theorem 3.5's *representation* statement — every (semi-algebraic)
//! instance has a polygonal representative with the same invariant — is
//! reflected in this reproduction by working with polygonal regions
//! throughout (see `DESIGN.md`); an explicit re-drawing algorithm from a bare
//! invariant is not included.
//!
//! ## Example
//!
//! ```
//! use invariant::{Invariant, isomorphism};
//! use spatial_core::fixtures;
//!
//! // Fig. 1c and Fig. 1d are 4-intersection equivalent but not homeomorphic:
//! let c = Invariant::of_instance(&fixtures::fig_1c());
//! let d = Invariant::of_instance(&fixtures::fig_1d());
//! assert!(!isomorphism::isomorphic(&c, &d));
//!
//! // Translations are homeomorphisms:
//! let c2 = Invariant::of_instance(&fixtures::fig_1c().translated(10, 10));
//! assert!(isomorphism::isomorphic(&c, &c2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod isomorphism;
mod structure;
pub mod thematic;
pub mod validate;

pub use isomorphism::{find_isomorphism, homeomorphic, isomorphic, IsoOptions, Isomorphism};
pub use structure::{Dart, Invariant};
pub use validate::{is_valid, validate, ValidationError};
