//! Isomorphism of topological invariants (Theorem 3.4).
//!
//! Two spatial instances over `Alg` (here: polygonal regions) with the same
//! names are topologically equivalent — related by a homeomorphism of the
//! plane — if and only if their invariants `T_I` are isomorphic via an
//! isomorphism that is the identity on region names (Theorem 3.4). The
//! isomorphism may globally exchange clockwise and counter-clockwise (a
//! reflection of the plane is a homeomorphism).
//!
//! The matcher below also supports relaxed comparisons used for the paper's
//! Fig. 6 / Fig. 7 experiments and for the ablation benchmarks: the
//! orientation relation `O` and/or the designated exterior face can be
//! ignored, which yields the weaker structure `G_I` whose insufficiency the
//! paper demonstrates.

use crate::structure::{Dart, Invariant};

/// Which parts of the invariant the isomorphism must respect.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IsoOptions {
    /// Respect the orientation relation `O` (up to a global reflection).
    pub use_orientation: bool,
    /// Require the exterior face to map to the exterior face.
    pub use_exterior: bool,
}

impl Default for IsoOptions {
    fn default() -> Self {
        IsoOptions { use_orientation: true, use_exterior: true }
    }
}

impl IsoOptions {
    /// The full invariant `T_I` (Theorem 3.4).
    pub fn full() -> Self {
        IsoOptions::default()
    }

    /// The labeled graph `G_I` without the orientation relation (used to
    /// reproduce Fig. 7: `G_I` does not determine the instance).
    pub fn without_orientation() -> Self {
        IsoOptions { use_orientation: false, use_exterior: true }
    }

    /// Ignore the designated exterior face (used to reproduce Fig. 6: the
    /// exterior face is essential information).
    pub fn without_exterior() -> Self {
        IsoOptions { use_orientation: true, use_exterior: false }
    }

    /// Only the labeled incidence structure.
    pub fn labeled_graph_only() -> Self {
        IsoOptions { use_orientation: false, use_exterior: false }
    }
}

/// A witness isomorphism between two invariants.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Isomorphism {
    /// Image of each vertex.
    pub vertex_map: Vec<usize>,
    /// Image of each edge.
    pub edge_map: Vec<usize>,
    /// Image of each face.
    pub face_map: Vec<usize>,
    /// Whether the isomorphism reverses orientation (maps ↻ to ↺). Only
    /// meaningful when the orientation relation was taken into account.
    pub orientation_reversed: bool,
}

/// Are two invariants isomorphic as full invariants `T_I` (identity on region
/// names)? By Theorem 3.4 this holds iff the underlying instances are
/// topologically equivalent.
pub fn isomorphic(a: &Invariant, b: &Invariant) -> bool {
    find_isomorphism(a, b, IsoOptions::full()).is_some()
}

/// Convenience: are two spatial instances topologically equivalent
/// (H-equivalent)? Computes both invariants and compares them, per
/// Theorem 3.4.
pub fn homeomorphic(
    a: &spatial_core::instance::SpatialInstance,
    b: &spatial_core::instance::SpatialInstance,
) -> bool {
    if a.names() != b.names() {
        return false;
    }
    isomorphic(&Invariant::of_instance(a), &Invariant::of_instance(b))
}

/// Find an isomorphism between two invariants under the given options.
pub fn find_isomorphism(a: &Invariant, b: &Invariant, opts: IsoOptions) -> Option<Isomorphism> {
    // Region names must coincide exactly (the isomorphism is the identity on
    // names).
    if a.region_names != b.region_names {
        return None;
    }
    if a.vertex_count() != b.vertex_count()
        || a.edge_count() != b.edge_count()
        || a.face_count() != b.face_count()
    {
        return None;
    }
    // Label multisets must agree per dimension.
    if sorted(&a.vertex_labels) != sorted(&b.vertex_labels)
        || sorted(&a.edge_labels) != sorted(&b.edge_labels)
        || sorted(&a.face_labels) != sorted(&b.face_labels)
    {
        return None;
    }
    if opts.use_exterior && a.face_labels[a.exterior_face] != b.face_labels[b.exterior_face] {
        return None;
    }

    // Degenerate case: no edges at all.
    if a.edge_count() == 0 {
        let face_map = vec![0; a.face_count().min(1)];
        return Some(Isomorphism {
            vertex_map: vec![],
            edge_map: vec![],
            face_map,
            orientation_reversed: false,
        });
    }

    // Candidate edges in `b` for every edge of `a`, filtered by signature.
    let sig_a: Vec<_> = (0..a.edge_count()).map(|e| edge_signature(a, e, opts)).collect();
    let sig_b: Vec<_> = (0..b.edge_count()).map(|e| edge_signature(b, e, opts)).collect();
    let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(a.edge_count());
    for sa in &sig_a {
        let cs: Vec<usize> =
            (0..b.edge_count()).filter(|&eb| &sig_b[eb] == sa).collect();
        if cs.is_empty() {
            return None;
        }
        candidates.push(cs);
    }

    // Process edges in order of increasing candidate count, but prefer edges
    // adjacent to already-processed ones so assignments propagate.
    let order = processing_order(a, &candidates);

    let mut state = State {
        vmap: vec![usize::MAX; a.vertex_count()],
        emap: vec![usize::MAX; a.edge_count()],
        fmap: vec![usize::MAX; a.face_count()],
        vused: vec![false; b.vertex_count()],
        eused: vec![false; b.edge_count()],
        fused: vec![false; b.face_count()],
    };
    search(a, b, opts, &order, 0, &candidates, &mut state)
}

fn sorted<T: Ord + Clone>(v: &[T]) -> Vec<T> {
    let mut out = v.to_vec();
    out.sort();
    out
}

type EdgeSignature = (Vec<arrangement::Sign>, Vec<Vec<arrangement::Sign>>, Vec<(Vec<arrangement::Sign>, bool)>, bool);

fn edge_signature(inv: &Invariant, e: usize, opts: IsoOptions) -> EdgeSignature {
    let (t, h) = inv.edge_endpoints(e);
    let (l, r) = inv.edge_faces(e);
    let mut vlabels = vec![inv.vertex_label(t).clone(), inv.vertex_label(h).clone()];
    vlabels.sort();
    let mut flabels = vec![
        (inv.face_label(l).clone(), opts.use_exterior && l == inv.exterior_face()),
        (inv.face_label(r).clone(), opts.use_exterior && r == inv.exterior_face()),
    ];
    flabels.sort();
    (inv.edge_label(e).clone(), vlabels, flabels, inv.is_loop(e))
}

fn processing_order(a: &Invariant, candidates: &[Vec<usize>]) -> Vec<usize> {
    let n = a.edge_count();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    // Adjacency between edges of `a` (shared endpoint or shared face).
    let mut adjacent: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e1 in 0..n {
        for e2 in (e1 + 1)..n {
            let (t1, h1) = a.edge_endpoints(e1);
            let (t2, h2) = a.edge_endpoints(e2);
            let (l1, r1) = a.edge_faces(e1);
            let (l2, r2) = a.edge_faces(e2);
            if t1 == t2 || t1 == h2 || h1 == t2 || h1 == h2 || l1 == l2 || l1 == r2 || r1 == l2 || r1 == r2 {
                adjacent[e1].push(e2);
                adjacent[e2].push(e1);
            }
        }
    }
    while order.len() < n {
        // Seed: unplaced edge with fewest candidates.
        let seed = (0..n)
            .filter(|&e| !placed[e])
            .min_by_key(|&e| candidates[e].len())
            .expect("some edge unplaced");
        placed[seed] = true;
        order.push(seed);
        // Grow through adjacency (BFS) to keep propagation tight.
        let mut queue = std::collections::VecDeque::from([seed]);
        while let Some(e) = queue.pop_front() {
            let mut next: Vec<usize> =
                adjacent[e].iter().copied().filter(|&x| !placed[x]).collect();
            next.sort_by_key(|&x| candidates[x].len());
            for x in next {
                if !placed[x] {
                    placed[x] = true;
                    order.push(x);
                    queue.push_back(x);
                }
            }
        }
    }
    order
}

struct State {
    vmap: Vec<usize>,
    emap: Vec<usize>,
    fmap: Vec<usize>,
    vused: Vec<bool>,
    eused: Vec<bool>,
    fused: Vec<bool>,
}

/// Try to bind `x -> y` in a map, respecting prior bindings and injectivity.
/// Returns `None` on conflict, `Some(changed)` on success where `changed`
/// records whether a new binding was added (for backtracking).
fn bind(map: &mut [usize], used: &mut [bool], x: usize, y: usize) -> Option<bool> {
    if map[x] == y {
        return Some(false);
    }
    if map[x] != usize::MAX || used[y] {
        return None;
    }
    map[x] = y;
    used[y] = true;
    Some(true)
}

fn unbind(map: &mut [usize], used: &mut [bool], x: usize) {
    let y = map[x];
    map[x] = usize::MAX;
    used[y] = false;
}

#[allow(clippy::too_many_arguments)]
fn search(
    a: &Invariant,
    b: &Invariant,
    opts: IsoOptions,
    order: &[usize],
    idx: usize,
    candidates: &[Vec<usize>],
    state: &mut State,
) -> Option<Isomorphism> {
    if idx == order.len() {
        return finalize(a, b, opts, state);
    }
    let ea = order[idx];
    for &eb in &candidates[ea] {
        if state.eused[eb] {
            continue;
        }
        // Labels already match via the signature. Try the (up to) four ways of
        // matching endpoints and faces.
        let (ta, ha) = a.edge_endpoints(ea);
        let (tb, hb) = b.edge_endpoints(eb);
        let (la, ra) = a.edge_faces(ea);
        let (lb, rb) = b.edge_faces(eb);
        let vertex_pairings: Vec<[(usize, usize); 2]> = if ta == ha {
            vec![[(ta, tb), (ta, tb)]]
        } else {
            vec![[(ta, tb), (ha, hb)], [(ta, hb), (ha, tb)]]
        };
        let face_pairings: Vec<[(usize, usize); 2]> = if la == ra {
            vec![[(la, lb), (la, lb)]]
        } else {
            vec![[(la, lb), (ra, rb)], [(la, rb), (ra, lb)]]
        };
        for vp in &vertex_pairings {
            for fp in &face_pairings {
                // Labels of the forced cells must match.
                if vp.iter().any(|&(x, y)| a.vertex_label(x) != b.vertex_label(y))
                    || fp.iter().any(|&(x, y)| a.face_label(x) != b.face_label(y))
                {
                    continue;
                }
                if opts.use_exterior
                    && fp.iter().any(|&(x, y)| {
                        (x == a.exterior_face()) != (y == b.exterior_face())
                    })
                {
                    continue;
                }
                let mut undo_v = Vec::new();
                let mut undo_f = Vec::new();
                let mut ok = true;
                state.emap[ea] = eb;
                state.eused[eb] = true;
                for &(x, y) in vp {
                    match bind(&mut state.vmap, &mut state.vused, x, y) {
                        Some(true) => undo_v.push(x),
                        Some(false) => {}
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    for &(x, y) in fp {
                        match bind(&mut state.fmap, &mut state.fused, x, y) {
                            Some(true) => undo_f.push(x),
                            Some(false) => {}
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                }
                if ok {
                    if let Some(result) = search(a, b, opts, order, idx + 1, candidates, state) {
                        return Some(result);
                    }
                }
                // Backtrack.
                for x in undo_f {
                    unbind(&mut state.fmap, &mut state.fused, x);
                }
                for x in undo_v {
                    unbind(&mut state.vmap, &mut state.vused, x);
                }
                state.emap[ea] = usize::MAX;
                state.eused[eb] = false;
            }
        }
    }
    None
}

fn finalize(a: &Invariant, b: &Invariant, opts: IsoOptions, state: &State) -> Option<Isomorphism> {
    // Every vertex and face must have been forced (they are all incident to
    // at least one edge when edges exist).
    if state.vmap.contains(&usize::MAX) || state.fmap.contains(&usize::MAX) {
        return None;
    }
    // Exterior face.
    if opts.use_exterior && state.fmap[a.exterior_face()] != b.exterior_face() {
        return None;
    }
    // Face boundary-edge sets (this captures which components are embedded in
    // which faces).
    for f in 0..a.face_count() {
        let mut img: Vec<usize> = a.face_edges(f).iter().map(|&e| state.emap[e]).collect();
        img.sort();
        let mut expect = b.face_edges(state.fmap[f]).to_vec();
        expect.sort();
        if img != expect {
            return None;
        }
    }
    // Orientation: there must be a single global chirality under which every
    // vertex's cyclic edge sequence is preserved.
    let mut orientation_reversed = false;
    if opts.use_orientation {
        let check = |flip: bool| -> bool {
            (0..a.vertex_count()).all(|v| {
                let seq_a: Vec<usize> =
                    a.rotation(v).iter().map(|d: &Dart| state.emap[d.edge]).collect();
                let seq_b: Vec<usize> =
                    b.rotation(state.vmap[v]).iter().map(|d| d.edge).collect();
                cyclically_equal(&seq_a, &seq_b, flip)
            })
        };
        if check(false) {
            orientation_reversed = false;
        } else if check(true) {
            orientation_reversed = true;
        } else {
            return None;
        }
    }
    Some(Isomorphism {
        vertex_map: state.vmap.clone(),
        edge_map: state.emap.clone(),
        face_map: state.fmap.clone(),
        orientation_reversed,
    })
}

/// Is `a` a cyclic rotation of `b` (or of `b` reversed, when `flip`)?
fn cyclically_equal(a: &[usize], b: &[usize], flip: bool) -> bool {
    if a.len() != b.len() {
        return false;
    }
    if a.is_empty() {
        return true;
    }
    let b: Vec<usize> = if flip { b.iter().rev().copied().collect() } else { b.to_vec() };
    let n = a.len();
    (0..n).any(|shift| (0..n).all(|i| a[i] == b[(i + shift) % n]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Invariant;
    use spatial_core::fixtures;
    use spatial_core::prelude::*;

    fn inv(inst: &SpatialInstance) -> Invariant {
        Invariant::of_instance(inst)
    }

    #[test]
    fn identity_and_translation_are_isomorphic() {
        let a = inv(&fixtures::fig_1c());
        assert!(isomorphic(&a, &a));
        let b = inv(&fixtures::fig_1c().translated(100, -50));
        assert!(isomorphic(&a, &b));
        // Scaling is also a homeomorphism.
        let scaled = PlaneTransform::Affine(AffineMap::scaling(rat(3), rat(2)))
            .apply_instance(&fixtures::fig_1c())
            .unwrap();
        assert!(isomorphic(&a, &inv(&scaled)));
    }

    #[test]
    fn mirror_image_is_isomorphic_with_reversed_orientation() {
        let a = inv(&fixtures::fig_1a());
        let mirrored_inst = PlaneTransform::Affine(AffineMap::reflect_x())
            .apply_instance(&fixtures::fig_1a())
            .unwrap();
        let b = inv(&mirrored_inst);
        let iso = find_isomorphism(&a, &b, IsoOptions::full()).expect("mirror is isomorphic");
        assert!(iso.orientation_reversed);
        // The abstract mirror operation agrees.
        assert!(isomorphic(&a, &a.mirrored()));
    }

    #[test]
    fn fig_1a_vs_1b_not_isomorphic() {
        // Same pairwise 4-intersection relations, different topology.
        let a = inv(&fixtures::fig_1a());
        let b = inv(&fixtures::fig_1b());
        assert!(!isomorphic(&a, &b));
        assert!(homeomorphic(&fixtures::fig_1a(), &fixtures::fig_1a().translated(7, 7)));
        assert!(!homeomorphic(&fixtures::fig_1a(), &fixtures::fig_1b()));
    }

    #[test]
    fn fig_1c_vs_1d_not_isomorphic() {
        let c = inv(&fixtures::fig_1c());
        let d = inv(&fixtures::fig_1d());
        assert!(!isomorphic(&c, &d));
        // Different names are never isomorphic.
        assert!(!homeomorphic(&fixtures::fig_1c(), &fixtures::fig_1a()));
    }

    #[test]
    fn petal_orders_distinguished_only_by_orientation() {
        // Fig. 7 of the paper: the labeled graph G_I does not determine the
        // instance; the orientation relation O does.
        let p1 = inv(&fixtures::petals_abcd());
        let p2 = inv(&fixtures::petals_acbd());
        assert!(
            find_isomorphism(&p1, &p2, IsoOptions::without_orientation()).is_some(),
            "G_I (without O) cannot tell the two cyclic orders apart"
        );
        assert!(
            find_isomorphism(&p1, &p2, IsoOptions::full()).is_none(),
            "T_I (with O) distinguishes them"
        );
        // Each is of course isomorphic to itself and to its mirror image
        // (reflections are homeomorphisms): ACBD is ABCD read clockwise...
        assert!(isomorphic(&p1, &p1));
        assert!(isomorphic(&p2, &p2));
    }

    #[test]
    fn exterior_face_is_essential_information() {
        // Fig. 6 of the paper: same labeled graph, different exterior face,
        // different homeomorphism type.
        let t = inv(&fixtures::ring_with_flag());
        let hole = (0..t.face_count())
            .find(|&f| {
                f != t.exterior_face()
                    && t.face_label(f).iter().all(|&s| s == arrangement::Sign::Exterior)
            })
            .expect("ring_with_flag has a bounded all-exterior face");
        let swapped = t.with_exterior(hole);
        assert!(
            find_isomorphism(&t, &swapped, IsoOptions::without_exterior()).is_some(),
            "identical except for the exterior designation"
        );
        assert!(
            find_isomorphism(&t, &swapped, IsoOptions::full()).is_none(),
            "the exterior face designation distinguishes them"
        );
    }

    #[test]
    fn plain_ring_is_inside_outside_symmetric() {
        // The unadorned ring has a labeled-graph automorphism exchanging the
        // hole and the unbounded face (a reflection of the sphere through the
        // annulus), so re-designating the exterior face yields an isomorphic
        // invariant. This is why `ring_with_flag` (which breaks the symmetry)
        // is used for the Fig. 6 experiment.
        let t = inv(&fixtures::ring());
        let hole = (0..t.face_count())
            .find(|&f| {
                f != t.exterior_face()
                    && t.face_label(f).iter().all(|&s| s == arrangement::Sign::Exterior)
            })
            .unwrap();
        let swapped = t.with_exterior(hole);
        assert!(find_isomorphism(&t, &swapped, IsoOptions::full()).is_some());
    }

    #[test]
    fn embedding_of_components_matters() {
        // The island inside the ring's hole vs. outside: identical cell
        // counts and labels, different face/edge incidence.
        let inside = inv(&fixtures::ring_with_island(true));
        let outside = inv(&fixtures::ring_with_island(false));
        assert_eq!(inside.vertex_count(), outside.vertex_count());
        assert_eq!(inside.edge_count(), outside.edge_count());
        assert_eq!(inside.face_count(), outside.face_count());
        assert!(!isomorphic(&inside, &outside));
        assert!(!homeomorphic(
            &fixtures::ring_with_island(true),
            &fixtures::ring_with_island(false)
        ));
    }

    #[test]
    fn nested_vs_side_by_side() {
        let nested = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 10, 10)),
            ("B", Region::rect_from_ints(2, 2, 6, 6)),
        ]);
        let side = SpatialInstance::from_regions([
            ("A", Region::rect_from_ints(0, 0, 10, 10)),
            ("B", Region::rect_from_ints(20, 0, 26, 6)),
        ]);
        assert!(!homeomorphic(&nested, &side));
        // Two differently-drawn nested configurations are homeomorphic.
        let nested2 = SpatialInstance::from_regions([
            ("A", Region::polygon_from_ints(&[(0, 0), (30, 0), (17, 29)]).unwrap()),
            ("B", Region::rect_from_ints(10, 3, 14, 9)),
        ]);
        assert!(homeomorphic(&nested, &nested2));
    }

    #[test]
    fn four_intersection_witness_pairs_are_pairwise_distinct() {
        // The eight Fig. 2 configurations are pairwise non-homeomorphic,
        // except that `contains`/`covers` pairs differ from their inverses
        // only by the direction of the relation (still non-isomorphic because
        // region names are fixed).
        let invs: Vec<(String, Invariant)> = fixtures::fig_2_pairs()
            .into_iter()
            .map(|(name, inst)| (name.to_string(), inv(&inst)))
            .collect();
        for i in 0..invs.len() {
            for j in (i + 1)..invs.len() {
                assert!(
                    !isomorphic(&invs[i].1, &invs[j].1),
                    "{} vs {} should differ",
                    invs[i].0,
                    invs[j].0
                );
            }
        }
    }

    #[test]
    fn empty_invariants_are_isomorphic() {
        let a = inv(&SpatialInstance::new());
        let b = inv(&SpatialInstance::new());
        assert!(isomorphic(&a, &b));
    }
}
