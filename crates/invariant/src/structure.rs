//! The topological invariant `T_I` as a purely combinatorial structure.
//!
//! Following Section 3 of the paper, the invariant of a spatial instance `I`
//! is the finite structure `T_I = (V, E, δ, f0, l, O)`:
//!
//! * the cells of the maximal cell complex of `I` (vertices, edges, faces)
//!   with their dimensions `δ`,
//! * the adjacency (closure-containment) relation `E` between cells, here
//!   stored as edge endpoints, edge↔face sides and face boundary-edge sets,
//! * the designated exterior face `f0`,
//! * the labeling `l` assigning to every cell its sign (`o`, `∂`, `−`) with
//!   respect to every region,
//! * the orientation relation `O`: the cyclic order of edge-ends (darts)
//!   around every vertex.
//!
//! The structure is purely combinatorial — it contains no coordinates — and
//! by Theorem 3.4 it characterizes the instance up to homeomorphism of the
//! plane.

use arrangement::{ComplexRead, Label, Sign};
use spatial_core::prelude::SpatialInstance;
use std::collections::BTreeSet;
use std::fmt;

/// A dart (edge-end) of the invariant: an edge together with a traversal
/// direction. The forward dart starts at the edge's tail.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Dart {
    /// The edge index.
    pub edge: usize,
    /// Forward (tail → head) or backward.
    pub forward: bool,
}

impl Dart {
    /// The forward dart of an edge.
    pub fn forward(edge: usize) -> Dart {
        Dart { edge, forward: true }
    }

    /// The backward dart of an edge.
    pub fn backward(edge: usize) -> Dart {
        Dart { edge, forward: false }
    }

    /// The opposite dart of the same edge.
    pub fn twin(self) -> Dart {
        Dart { edge: self.edge, forward: !self.forward }
    }
}

/// The topological invariant `T_I` of a spatial database instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Invariant {
    pub(crate) region_names: Vec<String>,
    pub(crate) vertex_labels: Vec<Label>,
    pub(crate) edge_labels: Vec<Label>,
    pub(crate) face_labels: Vec<Label>,
    /// Tail and head vertex of every edge (equal for a loop).
    pub(crate) edge_endpoints: Vec<(usize, usize)>,
    /// Left and right face of every edge (left of the forward dart).
    pub(crate) edge_faces: Vec<(usize, usize)>,
    /// For every face, the sorted set of edges on its boundary, including the
    /// outer boundaries of components embedded in the face.
    pub(crate) face_edges: Vec<Vec<usize>>,
    /// For every vertex, the counter-clockwise cyclic order of outgoing darts.
    pub(crate) rotation: Vec<Vec<Dart>>,
    /// The designated exterior face `f0`.
    pub(crate) exterior_face: usize,
}

impl Invariant {
    /// Extract the invariant from a geometric cell complex — either the flat
    /// [`arrangement::CellComplex`] or the zero-copy
    /// [`arrangement::GlobalComplexView`] (any [`ComplexRead`]
    /// implementation; the two are index-identical, so the extracted
    /// invariant does not depend on the representation).
    pub fn from_complex<C: ComplexRead>(complex: &C) -> Invariant {
        use arrangement::DartId;
        let region_names = complex.region_names().to_vec();
        let vertex_labels = complex.vertex_ids().map(|v| complex.vertex_label(v)).collect();
        let edge_labels = complex.edge_ids().map(|e| complex.edge_label(e)).collect();
        let face_labels = complex.face_ids().map(|f| complex.face_label(f)).collect();
        let edge_endpoints = complex
            .edge_ids()
            .map(|e| {
                let (t, h) = complex.edge_endpoints(e);
                (t.0, h.0)
            })
            .collect();
        let edge_faces = complex
            .edge_ids()
            .map(|e| {
                let (l, r) = complex.edge_faces(e);
                (l.0, r.0)
            })
            .collect();
        let face_edges = complex
            .face_ids()
            .map(|f| complex.face_boundary(f).iter().map(|e| e.0).collect())
            .collect();
        let to_dart = |d: &DartId| Dart { edge: d.edge().0, forward: d.is_forward() };
        let rotation = complex
            .vertex_ids()
            .map(|v| complex.vertex_rotation(v).iter().map(to_dart).collect())
            .collect();
        Invariant {
            region_names,
            vertex_labels,
            edge_labels,
            face_labels,
            edge_endpoints,
            edge_faces,
            face_edges,
            rotation,
            exterior_face: complex.exterior_face().0,
        }
    }

    /// Compute the invariant of a spatial instance (builds the zero-copy
    /// complex view internally). This is the paper's Theorem 3.5
    /// construction, restricted to polygonal inputs.
    pub fn of_instance(instance: &SpatialInstance) -> Invariant {
        Invariant::from_complex(&arrangement::build_complex_view(instance))
    }

    /// The region names, in label order.
    pub fn region_names(&self) -> &[String] {
        &self.region_names
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_labels.len()
    }

    /// Number of faces (including the exterior face).
    pub fn face_count(&self) -> usize {
        self.face_labels.len()
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.vertex_count() + self.edge_count() + self.face_count()
    }

    /// The label of a vertex.
    pub fn vertex_label(&self, v: usize) -> &Label {
        &self.vertex_labels[v]
    }

    /// The label of an edge.
    pub fn edge_label(&self, e: usize) -> &Label {
        &self.edge_labels[e]
    }

    /// The label of a face.
    pub fn face_label(&self, f: usize) -> &Label {
        &self.face_labels[f]
    }

    /// The endpoints (tail, head) of an edge.
    pub fn edge_endpoints(&self, e: usize) -> (usize, usize) {
        self.edge_endpoints[e]
    }

    /// The (left, right) faces of an edge.
    pub fn edge_faces(&self, e: usize) -> (usize, usize) {
        self.edge_faces[e]
    }

    /// The boundary edges of a face.
    pub fn face_edges(&self, f: usize) -> &[usize] {
        &self.face_edges[f]
    }

    /// The counter-clockwise rotation of darts around a vertex.
    pub fn rotation(&self, v: usize) -> &[Dart] {
        &self.rotation[v]
    }

    /// The exterior face.
    pub fn exterior_face(&self) -> usize {
        self.exterior_face
    }

    /// Is the edge a loop?
    pub fn is_loop(&self, e: usize) -> bool {
        let (t, h) = self.edge_endpoints[e];
        t == h
    }

    /// The tail vertex of a dart.
    pub fn dart_tail(&self, d: Dart) -> usize {
        let (t, h) = self.edge_endpoints[d.edge];
        if d.forward {
            t
        } else {
            h
        }
    }

    /// The head vertex of a dart.
    pub fn dart_head(&self, d: Dart) -> usize {
        self.dart_tail(d.twin())
    }

    /// The face to the left of a dart.
    pub fn dart_left_face(&self, d: Dart) -> usize {
        let (l, r) = self.edge_faces[d.edge];
        if d.forward {
            l
        } else {
            r
        }
    }

    /// The next dart counter-clockwise around the tail vertex of `d`.
    pub fn rot_next(&self, d: Dart) -> Dart {
        let v = self.dart_tail(d);
        let rot = &self.rotation[v];
        let pos = rot.iter().position(|&x| x == d).expect("dart present in its tail's rotation");
        rot[(pos + 1) % rot.len()]
    }

    /// The previous dart counter-clockwise (i.e. next clockwise) around the
    /// tail vertex of `d`.
    pub fn rot_prev(&self, d: Dart) -> Dart {
        let v = self.dart_tail(d);
        let rot = &self.rotation[v];
        let pos = rot.iter().position(|&x| x == d).expect("dart present in its tail's rotation");
        rot[(pos + rot.len() - 1) % rot.len()]
    }

    /// The faces making up a region (the faces labeled `Interior` for it).
    pub fn region_faces(&self, region: &str) -> Vec<usize> {
        match self.region_names.iter().position(|n| n == region) {
            None => vec![],
            Some(idx) => (0..self.face_count())
                .filter(|&f| self.face_labels[f][idx] == Sign::Interior)
                .collect(),
        }
    }

    /// The skeleton components: a component index for every vertex.
    pub fn vertex_components(&self) -> Vec<usize> {
        let n = self.vertex_count();
        let mut comp = vec![usize::MAX; n];
        let mut next = 0;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                for d in &self.rotation[v] {
                    let w = self.dart_head(*d);
                    if comp[w] == usize::MAX {
                        comp[w] = next;
                        stack.push(w);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// Number of skeleton components.
    pub fn component_count(&self) -> usize {
        self.vertex_components().iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Is the skeleton connected (the paper's *connected* instances)?
    pub fn is_connected(&self) -> bool {
        self.component_count() <= 1
    }

    /// Does the Euler relation hold (`|F| = |E| − |V| + 1 + C`)?
    pub fn euler_formula_holds(&self) -> bool {
        let c = self.component_count();
        if c == 0 {
            return self.face_count() == 1;
        }
        self.face_count() == self.edge_count() + 1 + c - self.vertex_count()
    }

    /// A copy of the invariant with a different face designated as exterior.
    ///
    /// Used to reproduce the paper's Fig. 6: the resulting structure can be
    /// isomorphic to the original as a labeled graph yet represent a
    /// different homeomorphism class.
    pub fn with_exterior(&self, face: usize) -> Invariant {
        assert!(face < self.face_count(), "no such face");
        let mut out = self.clone();
        out.exterior_face = face;
        out
    }

    /// A copy with the orientation (rotation system) of every vertex
    /// reversed. The result describes the mirror image of the instance and is
    /// always isomorphic to the original (reflections are homeomorphisms).
    pub fn mirrored(&self) -> Invariant {
        let mut out = self.clone();
        for rot in &mut out.rotation {
            rot.reverse();
        }
        // Mirroring also swaps the side of every edge.
        for lr in &mut out.edge_faces {
            *lr = (lr.1, lr.0);
        }
        out
    }

    /// The paper's orientation relation `O`: tuples
    /// `(clockwise?, vertex, edge, edge)` listing consecutive incident edges
    /// around every vertex in both directions.
    pub fn orientation_relation(&self) -> Vec<(bool, usize, usize, usize)> {
        let mut out = Vec::new();
        for (v, rot) in self.rotation.iter().enumerate() {
            let k = rot.len();
            for i in 0..k {
                let e1 = rot[i].edge;
                let e2 = rot[(i + 1) % k].edge;
                out.push((false, v, e1, e2));
                out.push((true, v, e2, e1));
            }
        }
        out
    }

    /// The distinct labels appearing on faces (useful for enumerating the
    /// realized sign classes).
    pub fn distinct_face_labels(&self) -> BTreeSet<Label> {
        self.face_labels.iter().cloned().collect()
    }

    /// A short human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "T_I: {} vertices, {} edges, {} faces, {} regions, exterior f{}",
            self.vertex_count(),
            self.edge_count(),
            self.face_count(),
            self.region_names.len(),
            self.exterior_face
        )
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for (i, l) in self.face_labels.iter().enumerate() {
            let signs: Vec<String> = self
                .region_names
                .iter()
                .zip(l.iter())
                .map(|(n, s)| format!("{n}:{s}"))
                .collect();
            let ext = if i == self.exterior_face { " (exterior)" } else { "" };
            writeln!(f, "  f{i}{ext}: [{}] edges {:?}", signs.join(", "), self.face_edges[i])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::fixtures;

    #[test]
    fn fig_1c_structure_matches_examples_3_1_and_3_3() {
        // Examples 3.1 / 3.3 of the paper: two vertices, four edges, four
        // faces; every vertex has four incident darts.
        let inv = Invariant::of_instance(&fixtures::fig_1c());
        assert_eq!(inv.vertex_count(), 2);
        assert_eq!(inv.edge_count(), 4);
        assert_eq!(inv.face_count(), 4);
        assert!(inv.euler_formula_holds());
        assert!(inv.is_connected());
        for v in 0..inv.vertex_count() {
            assert_eq!(inv.rotation(v).len(), 4);
        }
        // The orientation relation has 2 * (4 + 4) entries, matching the
        // sixteen tuples listed in Example 3.3.
        assert_eq!(inv.orientation_relation().len(), 16);
        // Four distinct face labels.
        assert_eq!(inv.distinct_face_labels().len(), 4);
    }

    #[test]
    fn dart_navigation() {
        let inv = Invariant::of_instance(&fixtures::fig_1c());
        for e in 0..inv.edge_count() {
            let d = Dart::forward(e);
            assert_eq!(d.twin().twin(), d);
            assert_eq!(inv.dart_head(d), inv.dart_tail(d.twin()));
            // rot_next and rot_prev are inverse.
            assert_eq!(inv.rot_prev(inv.rot_next(d)), d);
        }
    }

    #[test]
    fn region_faces_and_components() {
        let inv = Invariant::of_instance(&fixtures::nested_three());
        assert_eq!(inv.component_count(), 3);
        assert!(!inv.is_connected());
        assert!(inv.euler_formula_holds());
        assert_eq!(inv.region_faces("A").len(), 3);
        assert_eq!(inv.region_faces("B").len(), 2);
        assert_eq!(inv.region_faces("C").len(), 1);
        assert_eq!(inv.region_faces("Z").len(), 0);
    }

    #[test]
    fn exterior_swap_and_mirror() {
        let inv = Invariant::of_instance(&fixtures::ring());
        let other_ext = (0..inv.face_count())
            .find(|&f| {
                f != inv.exterior_face() && inv.face_label(f).iter().all(|&s| s == Sign::Exterior)
            })
            .expect("the ring has a hole face");
        let swapped = inv.with_exterior(other_ext);
        assert_ne!(swapped.exterior_face(), inv.exterior_face());
        assert_eq!(swapped.face_count(), inv.face_count());

        let mirrored = inv.mirrored();
        assert_eq!(mirrored.vertex_count(), inv.vertex_count());
        assert_ne!(mirrored.rotation(0), inv.rotation(0));
    }

    #[test]
    fn empty_instance_invariant() {
        let inv = Invariant::of_instance(&SpatialInstance::new());
        assert_eq!(inv.vertex_count(), 0);
        assert_eq!(inv.edge_count(), 0);
        assert_eq!(inv.face_count(), 1);
        assert!(inv.euler_formula_holds());
        assert_eq!(inv.component_count(), 0);
    }
}
