//! Validation of candidate invariants (Theorem 3.8 / Lemma 3.9).
//!
//! If the topological invariant is used as a *data model* — updates are made
//! directly to the combinatorial structure, with no underlying geometry —
//! then an integrity check is needed: which structures over the schema are
//! actual invariants of spatial instances? The paper characterizes them as
//! *labeled planar graphs* (Lemma 3.9) via conditions (1)–(7) and shows the
//! check is effective (Theorem 3.8). This module implements that check for
//! the [`Invariant`] structure.

use crate::structure::{Dart, Invariant};
use arrangement::Sign;
use std::collections::{BTreeMap, BTreeSet};

/// A reason why a candidate structure is not a valid invariant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidationError {
    /// An index referenced a non-existent cell.
    DanglingReference(String),
    /// A label has the wrong arity or an impossible sign.
    BadLabel(String),
    /// The rotation system is not a proper cyclic arrangement of the incident
    /// darts (condition (4)).
    BadRotation(String),
    /// A face's boundary is inconsistent with the rotation system
    /// (condition (5)).
    BadFaceStructure(String),
    /// The Euler relation fails for some component (condition (6)):
    /// the rotation system does not describe a planar embedding.
    NotPlanar(String),
    /// The exterior face is missing, duplicated or mislabeled.
    BadExteriorFace(String),
    /// A region violates condition (7): its faces (or their complement) are
    /// not connected in the dual graph, it is empty, or it contains the
    /// exterior face.
    BadRegion(String),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::DanglingReference(m) => write!(f, "dangling reference: {m}"),
            ValidationError::BadLabel(m) => write!(f, "bad label: {m}"),
            ValidationError::BadRotation(m) => write!(f, "bad rotation system: {m}"),
            ValidationError::BadFaceStructure(m) => write!(f, "bad face structure: {m}"),
            ValidationError::NotPlanar(m) => write!(f, "not planar: {m}"),
            ValidationError::BadExteriorFace(m) => write!(f, "bad exterior face: {m}"),
            ValidationError::BadRegion(m) => write!(f, "bad region: {m}"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check whether the structure is a valid topological invariant — i.e., a
/// labeled planar graph in the sense of Lemma 3.9, and hence (by the paper's
/// Theorem 3.8) the invariant of some spatial instance.
///
/// Returns all violations found (empty means valid).
pub fn validate(inv: &Invariant) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    check_references(inv, &mut errors);
    if !errors.is_empty() {
        // Index errors make the remaining checks unsafe to run.
        return errors;
    }
    check_labels(inv, &mut errors);
    check_rotation(inv, &mut errors);
    check_faces_and_planarity(inv, &mut errors);
    check_exterior(inv, &mut errors);
    check_regions(inv, &mut errors);
    errors
}

/// Convenience wrapper: is the structure a valid invariant?
pub fn is_valid(inv: &Invariant) -> bool {
    validate(inv).is_empty()
}

fn check_references(inv: &Invariant, errors: &mut Vec<ValidationError>) {
    let nv = inv.vertex_count();
    let nf = inv.face_count();
    for e in 0..inv.edge_count() {
        let (t, h) = inv.edge_endpoints(e);
        if t >= nv || h >= nv {
            errors.push(ValidationError::DanglingReference(format!(
                "edge {e} has endpoint out of range"
            )));
        }
        let (l, r) = inv.edge_faces(e);
        if l >= nf || r >= nf {
            errors.push(ValidationError::DanglingReference(format!(
                "edge {e} has face out of range"
            )));
        }
    }
    for f in 0..nf {
        for &e in inv.face_edges(f) {
            if e >= inv.edge_count() {
                errors.push(ValidationError::DanglingReference(format!(
                    "face {f} lists unknown edge {e}"
                )));
            }
        }
    }
    if inv.exterior_face() >= nf && nf > 0 {
        errors.push(ValidationError::DanglingReference("exterior face out of range".into()));
    }
}

fn check_labels(inv: &Invariant, errors: &mut Vec<ValidationError>) {
    let k = inv.region_names().len();
    for v in 0..inv.vertex_count() {
        if inv.vertex_label(v).len() != k {
            errors.push(ValidationError::BadLabel(format!("vertex {v} label arity")));
        }
    }
    for e in 0..inv.edge_count() {
        if inv.edge_label(e).len() != k {
            errors.push(ValidationError::BadLabel(format!("edge {e} label arity")));
        }
    }
    for f in 0..inv.face_count() {
        let l = inv.face_label(f);
        if l.len() != k {
            errors.push(ValidationError::BadLabel(format!("face {f} label arity")));
        }
        if l.contains(&Sign::Boundary) {
            errors.push(ValidationError::BadLabel(format!(
                "face {f} is labeled as lying on a region boundary"
            )));
        }
    }
    // Consistency between edge labels and the labels of the incident faces:
    // an edge lies on ∂R exactly when its two sides disagree about membership
    // in R; otherwise it carries the common side label.
    for e in 0..inv.edge_count() {
        let (l, r) = inv.edge_faces(e);
        if l >= inv.face_count() || r >= inv.face_count() {
            continue;
        }
        for (idx, &sign) in inv.edge_label(e).iter().enumerate() {
            let sl = inv.face_label(l).get(idx).copied();
            let sr = inv.face_label(r).get(idx).copied();
            let (Some(sl), Some(sr)) = (sl, sr) else { continue };
            match sign {
                Sign::Boundary => {
                    if sl == sr {
                        errors.push(ValidationError::BadLabel(format!(
                            "edge {e} claims to be on region {idx}'s boundary but both sides agree"
                        )));
                    }
                }
                s => {
                    if sl != s || sr != s {
                        errors.push(ValidationError::BadLabel(format!(
                            "edge {e} label for region {idx} disagrees with its sides"
                        )));
                    }
                }
            }
        }
        // At least one region's boundary passes through every edge.
        if !inv.edge_label(e).contains(&Sign::Boundary) {
            errors.push(ValidationError::BadLabel(format!(
                "edge {e} lies on no region boundary"
            )));
        }
    }
    // Vertices: a vertex lies on ∂R iff one of its incident edges does.
    for v in 0..inv.vertex_count() {
        let incident_edges: BTreeSet<usize> = inv.rotation(v).iter().map(|d| d.edge).collect();
        for (idx, &sign) in inv.vertex_label(v).iter().enumerate() {
            let any_boundary = incident_edges
                .iter()
                .any(|&e| inv.edge_label(e).get(idx) == Some(&Sign::Boundary));
            if (sign == Sign::Boundary) != any_boundary {
                errors.push(ValidationError::BadLabel(format!(
                    "vertex {v} label for region {idx} inconsistent with incident edges"
                )));
            }
        }
    }
}

fn check_rotation(inv: &Invariant, errors: &mut Vec<ValidationError>) {
    // Every dart must appear exactly once in the rotation of its tail vertex.
    let mut expected: BTreeMap<usize, Vec<Dart>> = BTreeMap::new();
    for e in 0..inv.edge_count() {
        let (t, h) = inv.edge_endpoints(e);
        expected.entry(t).or_default().push(Dart::forward(e));
        expected.entry(h).or_default().push(Dart::backward(e));
    }
    for v in 0..inv.vertex_count() {
        let mut listed: Vec<Dart> = inv.rotation(v).to_vec();
        listed.sort();
        let mut expect = expected.remove(&v).unwrap_or_default();
        expect.sort();
        if listed != expect {
            errors.push(ValidationError::BadRotation(format!(
                "vertex {v}: rotation does not list each incident dart exactly once"
            )));
        }
        if inv.rotation(v).is_empty() {
            errors.push(ValidationError::BadRotation(format!("vertex {v} is isolated")));
        }
    }
}

/// Recompute the face walks from the rotation system alone and check the
/// planarity (Euler) condition and consistency with the declared faces.
fn check_faces_and_planarity(inv: &Invariant, errors: &mut Vec<ValidationError>) {
    if inv.edge_count() == 0 {
        if inv.face_count() != 1 {
            errors.push(ValidationError::BadFaceStructure(
                "an invariant with no edges must have exactly one face".into(),
            ));
        }
        return;
    }
    // Walks: orbits of next(d) = rot_prev(twin(d)) at the head of d.
    let mut walk_of_dart: BTreeMap<Dart, usize> = BTreeMap::new();
    let mut walks: Vec<Vec<Dart>> = Vec::new();
    let all_darts: Vec<Dart> = (0..inv.edge_count())
        .flat_map(|e| [Dart::forward(e), Dart::backward(e)])
        .collect();
    for &start in &all_darts {
        if walk_of_dart.contains_key(&start) {
            continue;
        }
        let id = walks.len();
        let mut walk = Vec::new();
        let mut d = start;
        loop {
            walk_of_dart.insert(d, id);
            walk.push(d);
            d = inv.rot_prev(d.twin());
            if d == start {
                break;
            }
            if walk.len() > 2 * inv.edge_count() {
                errors.push(ValidationError::BadRotation(
                    "face walk does not close (corrupt rotation)".into(),
                ));
                return;
            }
        }
        walks.push(walk);
    }

    // Per-component Euler formula: for each skeleton component,
    // #walks = #edges - #vertices + 2.
    let comp_of_vertex = inv.vertex_components();
    let comp_count = comp_of_vertex.iter().copied().max().map_or(0, |m| m + 1);
    let mut v_per = vec![0usize; comp_count];
    let mut e_per = vec![0usize; comp_count];
    let mut w_per = vec![0usize; comp_count];
    for v in 0..inv.vertex_count() {
        v_per[comp_of_vertex[v]] += 1;
    }
    for e in 0..inv.edge_count() {
        e_per[comp_of_vertex[inv.edge_endpoints(e).0]] += 1;
    }
    for walk in &walks {
        w_per[comp_of_vertex[inv.dart_tail(walk[0])]] += 1;
    }
    for c in 0..comp_count {
        if w_per[c] + v_per[c] != e_per[c] + 2 {
            errors.push(ValidationError::NotPlanar(format!(
                "component {c}: {} walks, {} vertices, {} edges violate Euler's formula",
                w_per[c], v_per[c], e_per[c]
            )));
        }
    }

    // Every walk must lie in a single declared face, every face must consist
    // of walks from distinct components, and the global face count must be
    // #walks - #components + 1.
    let mut walks_per_face: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (wid, walk) in walks.iter().enumerate() {
        let faces: BTreeSet<usize> =
            walk.iter().map(|&d| inv.dart_left_face(d)).collect();
        if faces.len() != 1 {
            errors.push(ValidationError::BadFaceStructure(format!(
                "walk {wid} spans {} declared faces",
                faces.len()
            )));
            continue;
        }
        walks_per_face.entry(*faces.iter().next().unwrap()).or_default().push(wid);
    }
    for f in 0..inv.face_count() {
        match walks_per_face.get(&f) {
            None => errors.push(ValidationError::BadFaceStructure(format!(
                "face {f} has no boundary walk"
            ))),
            Some(ws) => {
                let comps: BTreeSet<usize> = ws
                    .iter()
                    .map(|&w| comp_of_vertex[inv.dart_tail(walks[w][0])])
                    .collect();
                if comps.len() != ws.len() {
                    errors.push(ValidationError::BadFaceStructure(format!(
                        "face {f} has two boundary walks from the same component"
                    )));
                }
            }
        }
    }
    if comp_count > 0 && inv.face_count() + comp_count != walks.len() + 1 {
        errors.push(ValidationError::BadFaceStructure(format!(
            "{} faces, {} walks, {} components are mutually inconsistent",
            inv.face_count(),
            walks.len(),
            comp_count
        )));
    }

    // The declared face boundary-edge sets must match the edges of the walks
    // assigned to each face.
    for f in 0..inv.face_count() {
        let mut from_walks: BTreeSet<usize> = BTreeSet::new();
        if let Some(ws) = walks_per_face.get(&f) {
            for &w in ws {
                from_walks.extend(walks[w].iter().map(|d| d.edge));
            }
        }
        let declared: BTreeSet<usize> = inv.face_edges(f).iter().copied().collect();
        if from_walks != declared {
            errors.push(ValidationError::BadFaceStructure(format!(
                "face {f}: declared boundary edges do not match its walks"
            )));
        }
    }
}

fn check_exterior(inv: &Invariant, errors: &mut Vec<ValidationError>) {
    if inv.face_count() == 0 {
        errors.push(ValidationError::BadExteriorFace("no faces at all".into()));
        return;
    }
    let f0 = inv.exterior_face();
    if inv.face_label(f0).iter().any(|&s| s != Sign::Exterior) {
        errors.push(ValidationError::BadExteriorFace(
            "the exterior face must be exterior to every region".into(),
        ));
    }
}

fn check_regions(inv: &Invariant, errors: &mut Vec<ValidationError>) {
    // Dual graph: faces adjacent iff they share an edge.
    let nf = inv.face_count();
    let mut dual: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nf];
    for e in 0..inv.edge_count() {
        let (l, r) = inv.edge_faces(e);
        if l != r {
            dual[l].insert(r);
            dual[r].insert(l);
        }
    }
    let connected_in_dual = |faces: &BTreeSet<usize>| -> bool {
        if faces.is_empty() {
            return true;
        }
        let start = *faces.iter().next().unwrap();
        let mut seen = BTreeSet::from([start]);
        let mut stack = vec![start];
        while let Some(f) = stack.pop() {
            for &g in &dual[f] {
                if faces.contains(&g) && seen.insert(g) {
                    stack.push(g);
                }
            }
        }
        seen.len() == faces.len()
    };
    for (idx, name) in inv.region_names().iter().enumerate() {
        let faces: BTreeSet<usize> = (0..nf)
            .filter(|&f| inv.face_label(f).get(idx) == Some(&Sign::Interior))
            .collect();
        if faces.is_empty() {
            errors.push(ValidationError::BadRegion(format!("region {name} has no faces")));
            continue;
        }
        if faces.contains(&inv.exterior_face()) {
            errors.push(ValidationError::BadRegion(format!(
                "region {name} contains the exterior face"
            )));
        }
        if !connected_in_dual(&faces) {
            errors.push(ValidationError::BadRegion(format!(
                "region {name}'s faces are not connected"
            )));
        }
        let complement: BTreeSet<usize> = (0..nf).filter(|f| !faces.contains(f)).collect();
        if !connected_in_dual(&complement) {
            errors.push(ValidationError::BadRegion(format!(
                "the complement of region {name} is not connected (the region has a hole)"
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Invariant;
    use spatial_core::fixtures;
    use spatial_core::prelude::*;

    #[test]
    fn all_fixture_invariants_are_valid() {
        let fixtures: Vec<(&str, SpatialInstance)> = vec![
            ("fig1a", fixtures::fig_1a()),
            ("fig1b", fixtures::fig_1b()),
            ("fig1c", fixtures::fig_1c()),
            ("fig1d", fixtures::fig_1d()),
            ("ring", fixtures::ring()),
            ("ring_flag", fixtures::ring_with_flag()),
            ("island_in", fixtures::ring_with_island(true)),
            ("island_out", fixtures::ring_with_island(false)),
            ("petals", fixtures::petals_abcd()),
            ("nested", fixtures::nested_three()),
            ("shared", fixtures::shared_boundary()),
            ("rectilinear", fixtures::rectilinear_pair()),
        ];
        for (name, inst) in fixtures {
            let inv = Invariant::of_instance(&inst);
            let errs = validate(&inv);
            assert!(errs.is_empty(), "{name}: {errs:?}");
        }
    }

    #[test]
    fn fig2_invariants_are_valid() {
        for (name, inst) in fixtures::fig_2_pairs() {
            let inv = Invariant::of_instance(&inst);
            assert!(is_valid(&inv), "{name}");
        }
    }

    #[test]
    fn corrupting_the_rotation_is_detected() {
        let mut inv = Invariant::of_instance(&fixtures::fig_1c());
        // Swap two darts in one vertex's rotation: still lists every dart once
        // but describes a different (here: non-planar) embedding.
        inv.rotation[0].swap(0, 1);
        let errs = validate(&inv);
        assert!(!errs.is_empty());
    }

    #[test]
    fn dropping_a_face_breaks_euler() {
        let mut inv = Invariant::of_instance(&fixtures::fig_1c());
        // Remove a (non-exterior) face and redirect references to face 0:
        // Euler's formula and the face structure both break.
        let victim = inv.face_count() - 1;
        inv.face_labels.remove(victim);
        inv.face_edges.remove(victim);
        for lr in &mut inv.edge_faces {
            if lr.0 == victim {
                lr.0 = 0;
            }
            if lr.1 == victim {
                lr.1 = 0;
            }
        }
        if inv.exterior_face == victim {
            inv.exterior_face = 0;
        }
        let errs = validate(&inv);
        assert!(!errs.is_empty());
    }

    #[test]
    fn mislabeled_exterior_is_detected() {
        let inv = Invariant::of_instance(&fixtures::fig_1c());
        // Designate a face interior to region A as the exterior face.
        let a_face = inv.region_faces("A")[0];
        let bad = inv.with_exterior(a_face);
        let errs = validate(&bad);
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::BadExteriorFace(_) | ValidationError::BadRegion(_)
        )));
    }

    #[test]
    fn valid_exterior_swap_remains_valid() {
        // Swapping the exterior designation to the ring's hole face yields a
        // *different* but still valid invariant (it is realizable — by the
        // "inverted" ring).
        let inv = Invariant::of_instance(&fixtures::ring());
        let hole = (0..inv.face_count())
            .find(|&f| {
                f != inv.exterior_face() && inv.face_label(f).iter().all(|&s| s == Sign::Exterior)
            })
            .unwrap();
        assert!(is_valid(&inv.with_exterior(hole)));
    }

    #[test]
    fn corrupting_labels_is_detected() {
        let mut inv = Invariant::of_instance(&fixtures::fig_1c());
        // Flip one face's membership in region A.
        let f = inv.region_faces("A")[0];
        inv.face_labels[f][0] = Sign::Exterior;
        assert!(!is_valid(&inv));

        // Mark an edge as lying on no boundary at all.
        let mut inv2 = Invariant::of_instance(&fixtures::fig_1c());
        inv2.edge_labels[0] = vec![Sign::Exterior, Sign::Exterior];
        assert!(!is_valid(&inv2));
    }

    #[test]
    fn region_with_disconnected_faces_is_detected() {
        // Take fig 1d (A ∩ B has two components) and relabel so that a fake
        // region's faces are exactly the two lens faces: not connected in the
        // dual graph restricted to them... actually the two lenses ARE
        // connected through other faces, so restrict instead: create a region
        // whose faces are the two lenses only.
        let mut inv = Invariant::of_instance(&fixtures::fig_1d());
        let lenses: Vec<usize> = (0..inv.face_count())
            .filter(|&f| inv.face_label(f).iter().all(|&s| s == Sign::Interior))
            .collect();
        assert_eq!(lenses.len(), 2);
        // Add a new region "Z" present exactly on the two lens faces.
        inv.region_names.push("Z".to_string());
        for f in 0..inv.face_count() {
            let sign = if lenses.contains(&f) { Sign::Interior } else { Sign::Exterior };
            inv.face_labels[f].push(sign);
        }
        for e in 0..inv.edge_count() {
            let (l, r) = inv.edge_faces(e);
            let sl = inv.face_labels[l].last().copied().unwrap();
            let sr = inv.face_labels[r].last().copied().unwrap();
            let sign = if sl != sr { Sign::Boundary } else { sl };
            inv.edge_labels[e].push(sign);
        }
        for v in 0..inv.vertex_count() {
            let incident: Vec<usize> = inv.rotation[v].iter().map(|d| d.edge).collect();
            let any_boundary =
                incident.iter().any(|&e| *inv.edge_labels[e].last().unwrap() == Sign::Boundary);
            let sign = if any_boundary {
                Sign::Boundary
            } else {
                let f = inv.dart_left_face(inv.rotation[v][0]);
                inv.face_labels[f].last().copied().unwrap()
            };
            inv.vertex_labels[v].push(sign);
        }
        let errs = validate(&inv);
        assert!(
            errs.iter().any(|e| matches!(e, ValidationError::BadRegion(_))),
            "expected a BadRegion error, got {errs:?}"
        );
    }

    #[test]
    fn empty_invariant_is_valid() {
        let inv = Invariant::of_instance(&SpatialInstance::new());
        assert!(is_valid(&inv));
    }
}
