//! The thematic mapping: storing the invariant as a classical relational
//! database (Section 3, Example 3.6, Corollary 3.7).
//!
//! The paper defines a fixed relational schema `Th` and a mapping
//! `thematic(·)` from spatial instances to relational instances over `Th`
//! such that all topological queries on `I` can be answered by classical
//! queries on `thematic(I)`. The schema is:
//!
//! 1. `Regions`, `Vertices`, `Edges`, `Faces`, `ExteriorFace` — unary
//!    relations listing the region names and the cells by dimension;
//! 2. `Endpoints(edge, v1, v2)` — the endpoint(s) of every edge;
//! 3. `FaceEdges(face, edge)` — the edges on each face's boundary;
//! 4. `RegionFaces(region, face)` — the faces making up each region;
//! 5. `Orientation(dir, vertex, edge, edge)` — consecutive edges around each
//!    vertex, clockwise (`cw`) and counter-clockwise (`ccw`).
//!
//! Cell identifiers are `v0, v1, …`, `e0, …`, `f0, …` with `f0`-style naming
//! chosen so the exterior face reads like the paper's `f0` in examples.

use crate::structure::Invariant;
use relstore::{Database, Value};
use std::collections::BTreeSet;

/// Names of the relations in the thematic schema `Th`.
pub const TH_RELATIONS: [&str; 9] = [
    "Regions",
    "Vertices",
    "Edges",
    "Faces",
    "ExteriorFace",
    "Endpoints",
    "FaceEdges",
    "RegionFaces",
    "Orientation",
];

/// The identifier used for a vertex in the thematic database.
pub fn vertex_id(v: usize) -> String {
    format!("v{v}")
}

/// The identifier used for an edge in the thematic database.
pub fn edge_id(e: usize) -> String {
    format!("e{e}")
}

/// The identifier used for a face in the thematic database.
pub fn face_id(f: usize) -> String {
    format!("f{f}")
}

/// Compute `thematic(I)` from the invariant of `I`.
pub fn to_database(inv: &Invariant) -> Database {
    let mut db = Database::new();
    for name in TH_RELATIONS {
        let arity = match name {
            "Endpoints" => 3,
            "FaceEdges" | "RegionFaces" => 2,
            "Orientation" => 4,
            _ => 1,
        };
        db.create_relation(name, arity);
    }
    for name in inv.region_names() {
        db.insert("Regions", vec![Value::sym(name.clone())]);
    }
    for v in 0..inv.vertex_count() {
        db.insert("Vertices", vec![Value::sym(vertex_id(v))]);
    }
    for e in 0..inv.edge_count() {
        db.insert("Edges", vec![Value::sym(edge_id(e))]);
        let (t, h) = inv.edge_endpoints(e);
        db.insert(
            "Endpoints",
            vec![Value::sym(edge_id(e)), Value::sym(vertex_id(t)), Value::sym(vertex_id(h))],
        );
    }
    for f in 0..inv.face_count() {
        db.insert("Faces", vec![Value::sym(face_id(f))]);
        for &e in inv.face_edges(f) {
            db.insert("FaceEdges", vec![Value::sym(face_id(f)), Value::sym(edge_id(e))]);
        }
    }
    db.insert("ExteriorFace", vec![Value::sym(face_id(inv.exterior_face()))]);
    for name in inv.region_names() {
        for f in inv.region_faces(name) {
            db.insert("RegionFaces", vec![Value::sym(name.clone()), Value::sym(face_id(f))]);
        }
    }
    for (cw, v, e1, e2) in inv.orientation_relation() {
        let dir = if cw { "cw" } else { "ccw" };
        db.insert(
            "Orientation",
            vec![
                Value::sym(dir),
                Value::sym(vertex_id(v)),
                Value::sym(edge_id(e1)),
                Value::sym(edge_id(e2)),
            ],
        );
    }
    db
}

/// Corollary 3.7(ii): two thematic instances represent topologically
/// equivalent spatial instances iff they are isomorphic by an isomorphism
/// that is the identity on region names (and on the two orientation tags).
///
/// This compares the relational instances directly; for large instances the
/// invariant-level comparison ([`crate::isomorphism::isomorphic`]) is much
/// faster and equivalent.
pub fn thematic_isomorphic(a: &Database, b: &Database) -> bool {
    let mut fixed: BTreeSet<Value> = BTreeSet::new();
    fixed.insert(Value::sym("cw"));
    fixed.insert(Value::sym("ccw"));
    if let Some(regions) = a.relation("Regions") {
        for t in regions.iter() {
            fixed.insert(t[0].clone());
        }
    }
    a.isomorphic_fixing(b, &fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Invariant;
    use spatial_core::fixtures;

    #[test]
    fn fig_1c_thematic_matches_example_3_6() {
        // The paper's Fig. 9 lists the thematic instance of Fig. 1c:
        // 2 regions, 2 vertices, 4 edges, 4 faces, 1 exterior face,
        // 4 Endpoints tuples, 8 Face-Edges tuples, 4 Region-Faces tuples
        // (faces f1..f3 distributed over A and B: A has 2 faces, B has 2),
        // and 16 Orientation tuples (Example 3.3).
        let inv = Invariant::of_instance(&fixtures::fig_1c());
        let db = to_database(&inv);
        assert_eq!(db.relation("Regions").unwrap().len(), 2);
        assert_eq!(db.relation("Vertices").unwrap().len(), 2);
        assert_eq!(db.relation("Edges").unwrap().len(), 4);
        assert_eq!(db.relation("Faces").unwrap().len(), 4);
        assert_eq!(db.relation("ExteriorFace").unwrap().len(), 1);
        assert_eq!(db.relation("Endpoints").unwrap().len(), 4);
        assert_eq!(db.relation("FaceEdges").unwrap().len(), 8);
        assert_eq!(db.relation("RegionFaces").unwrap().len(), 4);
        assert_eq!(db.relation("Orientation").unwrap().len(), 16);
    }

    #[test]
    fn thematic_isomorphism_tracks_homeomorphism() {
        let a = to_database(&Invariant::of_instance(&fixtures::fig_1c()));
        let b = to_database(&Invariant::of_instance(&fixtures::fig_1c().translated(50, 3)));
        assert!(thematic_isomorphic(&a, &b));
        let d = to_database(&Invariant::of_instance(&fixtures::fig_1d()));
        assert!(!thematic_isomorphic(&a, &d));
    }

    #[test]
    fn schema_relations_all_present() {
        let db = to_database(&Invariant::of_instance(&fixtures::nested_three()));
        for name in TH_RELATIONS {
            assert!(db.relation(name).is_some(), "{name} missing");
        }
        // The exterior face is listed among the faces.
        let ext = db.relation("ExteriorFace").unwrap().iter().next().unwrap()[0].clone();
        assert!(db.holds("Faces", &[ext]));
    }
}
