//! Shared configuration for the benchmark harness reproducing the paper's
//! figures and complexity claims. Every Criterion group uses a short,
//! deterministic configuration so `cargo bench --workspace` finishes in
//! minutes while still producing stable relative numbers; `EXPERIMENTS.md`
//! maps each benchmark to the paper artifact it reproduces.

/// The instance sizes (number of regions) used by the scaling sweeps.
pub const SCALING_SIZES: [usize; 4] = [4, 16, 36, 64];

/// A larger sweep used by the construction benchmarks. Sized so the naive
/// `O(n^2)` splitter is still measurable at the top of the range while the
/// plane sweep's `O((n + k) log n)` advantage is unmistakable (two orders of
/// magnitude at 400 regions).
pub const CONSTRUCTION_SIZES: [usize; 6] = [4, 16, 64, 144, 256, 400];
