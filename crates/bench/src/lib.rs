//! Shared configuration for the benchmark harness reproducing the paper's
//! figures and complexity claims. Every Criterion group uses a short,
//! deterministic configuration so `cargo bench --workspace` finishes in
//! minutes while still producing stable relative numbers; `EXPERIMENTS.md`
//! maps each benchmark to the paper artifact it reproduces.

/// The instance sizes (number of regions) used by the scaling sweeps.
pub const SCALING_SIZES: [usize; 4] = [4, 16, 36, 64];

/// A larger sweep used only by the invariant-construction benchmark.
pub const CONSTRUCTION_SIZES: [usize; 5] = [4, 16, 36, 64, 100];
