//! The cost of durability: commit latency with the write-ahead log in the
//! loop, per sync policy, against the in-memory baseline.
//!
//! One effective commit (alternating insert/remove of a single region in a
//! 256-region clustered map) is timed per sample on four databases that
//! differ only in where the log sits:
//!
//! * `wal_commit/inmem/{p50,p99}_ns` — no log attached
//!   ([`TopoDatabase::from_instance`]): the pure epoch-chain commit
//!   (out-of-lock build + publish), the baseline the log's overhead is
//!   measured against. Run this bench without `TOPODB_WAL` set, or the
//!   baseline silently grows an env-attached log of its own.
//! * `wal_commit/percommit/...` — [`SyncPolicy::PerCommit`]: append +
//!   fsync inside every commit, the full durability guarantee. This is
//!   the policy `scripts/bench_snapshot.sh` gates: its p50 must stay
//!   within 20x of the in-memory commit p50.
//! * `wal_commit/interval/...` — [`SyncPolicy::Interval`] (5 ms): the
//!   group-commit compromise — every record is written, at most one
//!   fsync per window — expected to recover most of the per-commit
//!   fsync cost.
//! * `wal_commit/none/...` — [`SyncPolicy::None`]: append without any
//!   fsync, isolating the serialization + page-cache-write cost from the
//!   disk-flush cost.
//!
//! `--test` smoke mode also runs a crash-recovery smoke: create a durable
//! database, commit a `datagen::op_trace` workload, "crash" (leak the
//! database mid-flight), reopen, and verify the recovered instance is
//! byte-identical to an in-memory oracle — the end-to-end
//! log-before-publish → replay loop exercised once per CI run from the
//! bench harness too, not just from the differential suite.

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use topodb::spatial_core::instance::SpatialInstance;
use topodb::spatial_core::prelude::*;
use topodb::spatial_core::wire::Wire;
use topodb::{SyncPolicy, TopoDatabase, WalConfig};

const CLUSTERS: usize = 16;
const PER_CLUSTER: usize = 16; // 256 base regions

/// Nearest-rank percentile over an already-sorted sample vector.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A throwaway log directory, deleted on drop.
struct LogDir(PathBuf);

impl LogDir {
    fn new(tag: &str) -> LogDir {
        let dir = std::env::temp_dir().join(format!("wal-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        LogDir(dir)
    }
}

impl Drop for LogDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Time `samples` effective commits on `db`, returning sorted latencies.
fn commit_latencies(db: &TopoDatabase, samples: usize) -> Vec<u64> {
    let mut latencies = Vec::with_capacity(samples);
    let mut present = false;
    for _ in 0..samples {
        let t0 = Instant::now();
        let mut txn = db.begin_shared();
        if present {
            txn.remove("Churn");
        } else {
            txn.insert("Churn", Region::rect_from_ints(2, 2, 10, 10));
        }
        present = !present;
        txn.commit();
        latencies.push(t0.elapsed().as_nanos() as u64);
    }
    latencies.sort_unstable();
    latencies
}

fn wal_commit(_c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let samples = if smoke { 20 } else { 400 };
    let base = datagen::clustered_map(CLUSTERS, PER_CLUSTER, 0xD0);

    let variants: [(&str, Option<SyncPolicy>); 4] = [
        ("inmem", None),
        ("percommit", Some(SyncPolicy::PerCommit)),
        ("interval", Some(SyncPolicy::Interval(Duration::from_millis(5)))),
        ("none", Some(SyncPolicy::None)),
    ];
    for (label, sync) in variants {
        let guard; // keeps the log directory alive across the sample loop
        let db = match sync {
            None => TopoDatabase::from_instance(base.clone()),
            Some(sync) => {
                guard = LogDir::new(label);
                // A high checkpoint cadence keeps snapshot writes out of
                // the measured window: this benchmark isolates the
                // append + sync cost.
                let cfg = WalConfig::default().with_sync(sync).with_checkpoint_every(1 << 20);
                TopoDatabase::create_with_config(&guard.0, base.clone(), cfg)
                    .expect("create durable bench database")
            }
        };
        db.snapshot(); // warm the first build outside the samples
        let latencies = commit_latencies(&db, samples);
        let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
        record_metric(format!("wal_commit/{label}/p50_ns"), p50 as f64);
        record_metric(format!("wal_commit/{label}/p99_ns"), p99 as f64);
        eprintln!(
            "wal_commit/{label}: {samples} commits over {} regions (p50 {p50} ns, p99 {p99} ns)",
            base.len()
        );
    }
    println!("test wal_commit ... ok");
}

fn recovery_smoke(_c: &mut Criterion) {
    let trace = datagen::op_trace(8, 0x5E);
    let guard = LogDir::new("recovery-smoke");

    let mut oracle = TopoDatabase::new();
    let mut db = TopoDatabase::create(&guard.0, SpatialInstance::new())
        .expect("create durable smoke database");
    for batch in &trace {
        for target in [&mut db, &mut oracle] {
            let mut txn = target.begin();
            for op in batch {
                match op {
                    datagen::TraceOp::Insert(name, region) => {
                        txn.insert(name.clone(), region.clone());
                    }
                    datagen::TraceOp::Remove(name) => {
                        txn.remove(name.clone());
                    }
                }
            }
            txn.commit();
        }
    }
    // "Crash": leak the database so nothing tidies up on the way out.
    std::mem::forget(db);

    let recovered = TopoDatabase::open(&guard.0).expect("reopen after crash");
    assert_eq!(recovered.update_epoch(), trace.len() as u64, "epoch numbering resumes");
    assert_eq!(
        recovered.instance().to_wire_vec(),
        oracle.instance().to_wire_vec(),
        "recovered instance is byte-identical to the oracle"
    );
    assert_eq!(
        recovered.relation_matrix(),
        oracle.relation_matrix(),
        "recovered topology matches the oracle"
    );
    println!("test wal_recovery_smoke ... ok");
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = wal_commit, recovery_smoke
}
criterion_main!(benches);
