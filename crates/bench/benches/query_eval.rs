//! E10/E12/E13/E15 — query evaluation experiments: the thematic bridge of
//! Corollary 3.7 (relational vs. geometric answering), the expressiveness
//! demonstrations of Theorem 4.4 / Proposition 4.5, and the point-based vs.
//! region-based comparison of Theorem 5.8.

use criterion::{criterion_group, criterion_main, Criterion};
use invariant::Invariant;
use query::ast::{Formula, RegionExpr};
use query::cell_eval::CellEvaluator;
use query::point_lang::{eval_point_sentence, rect_query_to_point_query};
use query::prepared::PreparedQuery;
use query::rect_eval::eval_on_rect_instance;
use query::thematic_eval::eval_on_thematic;
use relations::Relation4;
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

/// E10 — Corollary 3.7: answering all pairwise relation atoms of a grid map
/// (a) geometrically from the cell complex and (b) relationally on
/// thematic(I). The point being reproduced: once thematic(I) is computed, no
/// geometry is needed, at a measurable (and acceptable) interpretation cost.
fn cor37_thematic_vs_geometric(c: &mut Criterion) {
    let inst = datagen::grid_map(3, 2, 5);
    let complex = arrangement::build_complex(&inst);
    let thematic = invariant::thematic::to_database(&Invariant::from_complex(&complex));
    let evaluator = CellEvaluator::from_complex(&complex);
    let names: Vec<String> = inst.names().into_iter().map(String::from).collect();
    let atoms: Vec<Formula> = names
        .iter()
        .flat_map(|a| {
            names.iter().filter(move |b| *b > a).map(move |b| {
                Formula::rel(Relation4::Meet, RegionExpr::named(a.clone()), RegionExpr::named(b.clone()))
            })
        })
        .collect();

    let mut group = c.benchmark_group("cor37_thematic_bridge");
    group.bench_function("geometric_cell_evaluation", |b| {
        b.iter(|| {
            let mut hits = 0;
            for atom in &atoms {
                if evaluator.eval(atom).unwrap() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("relational_thematic_evaluation", |b| {
        b.iter(|| {
            let mut hits = 0;
            for atom in &atoms {
                if eval_on_thematic(&thematic, atom).unwrap() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("thematic_construction", |b| {
        b.iter(|| black_box(invariant::thematic::to_database(&Invariant::from_complex(&complex))))
    });
    group.finish();
}

/// E12/E13 — Theorem 4.4 / Proposition 4.5: evaluating the derived
/// expressiveness predicates (edge contact, chains) on rectilinear instances.
fn fig11_expressiveness(c: &mut Criterion) {
    let chain = datagen::overlapping_chain(5);
    let shared = spatial_core::fixtures::shared_boundary();
    let mut group = c.benchmark_group("fig11_expressiveness");
    group.bench_function("edge_contact_predicate", |b| {
        let f = query::derived::edge_contact(RegionExpr::named("A"), RegionExpr::named("B"));
        b.iter(|| black_box(query::cell_eval::eval_on_instance(&shared, &f).unwrap()))
    });
    group.bench_function("chain_query_on_overlapping_chain", |b| {
        let f = query::derived::chain3("C000", "C001", "C002");
        b.iter(|| black_box(query::cell_eval::eval_on_instance(&chain, &f).unwrap()))
    });
    group.finish();
}

/// E15 — Theorem 5.8: the same (quantifier-free) sentences evaluated in the
/// region-based rectangle language and in the translated point language.
fn thm58_point_vs_region(c: &mut Criterion) {
    let inst = datagen::random_rectangles(5, 30, 3);
    let names: Vec<String> = inst.names().into_iter().map(String::from).collect();
    let sentences: Vec<Formula> = vec![
        Formula::rel(Relation4::Disjoint, RegionExpr::named(names[0].clone()), RegionExpr::named(names[1].clone())),
        Formula::rel(Relation4::Overlap, RegionExpr::named(names[1].clone()), RegionExpr::named(names[2].clone())),
        Formula::rel(Relation4::Inside, RegionExpr::named(names[2].clone()), RegionExpr::named(names[3].clone())),
    ];
    let mut group = c.benchmark_group("thm58_point_vs_region");
    group.bench_function("region_based_rect_evaluation", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for s in &sentences {
                out.push(eval_on_rect_instance(&inst, s).unwrap());
            }
            black_box(out)
        })
    });
    group.bench_function("translated_point_language_evaluation", |b| {
        let translated: Vec<_> =
            sentences.iter().map(|s| rect_query_to_point_query(s).unwrap()).collect();
        b.iter(|| {
            let mut out = Vec::new();
            for p in &translated {
                out.push(eval_point_sentence(&inst, p).unwrap());
            }
            black_box(out)
        })
    });
    group.finish();
}

/// The parse/plan-once claim of the prepared-query API: running a compiled
/// [`PreparedQuery`] against a shared evaluator, versus re-parsing and
/// re-analyzing the text on every evaluation (the old `db.query(text)`
/// idiom), plus the cost of a set-returning (free-variable) query that
/// enumerates its bindings.
fn prepared_queries(c: &mut Criterion) {
    let inst = datagen::grid_map(3, 2, 5);
    let complex = arrangement::build_complex(&inst);
    let evaluator = CellEvaluator::from_complex(&complex);
    let text = "existsname a . existsname b . not a = b and meet(ext(a), ext(b))";
    let prepared = PreparedQuery::compile(text).unwrap();
    let open_text = "meet(ext(x), ext(y))";
    let open_prepared = PreparedQuery::compile(open_text).unwrap();

    let mut group = c.benchmark_group("prepared_query");
    group.bench_function("parse_each_evaluation", |b| {
        b.iter(|| {
            let q = PreparedQuery::compile(text).unwrap();
            black_box(q.run_on(&evaluator).unwrap())
        })
    });
    group.bench_function("prepared_reused", |b| {
        b.iter(|| black_box(prepared.run_on(&evaluator).unwrap()))
    });
    group.bench_function("prepared_bindings", |b| {
        b.iter(|| black_box(open_prepared.run_on(&evaluator).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = cor37_thematic_vs_geometric, fig11_expressiveness, thm58_point_vs_region,
        prepared_queries
}
criterion_main!(benches);
