//! The incremental-maintenance claim of the component-partitioned pipeline:
//! on a multi-cluster map, an update touching one cluster followed by a read
//! costs `O(affected cluster)` re-sweeping plus a cheap re-assembly in a
//! [`TopoDatabase`], against an `O(whole map)` re-sweep for the
//! pre-partitioning full rebuild.
//!
//! Every measured iteration performs one `insert` into cluster 0 (alternating
//! between two geometries so the sweep can never be skipped) followed by a
//! `complex_view()` read — the database's primary read path, which
//! re-sweeps the affected cluster and re-assembles the global complex *by
//! view*: untouched `Arc<ComponentComplex>`es are shared, no cell is copied,
//! so the update→read cost no longer scales with the untouched-component
//! cell count. The `incremental` series keeps one long-lived database whose
//! component cache carries the 15 untouched clusters across the update; the
//! `full_rebuild` series re-sweeps the whole updated instance with the
//! monolithic oracle, which is exactly the pre-component-cache behavior of
//! `TopoDatabase::insert`. Acceptance: `incremental` is at least 5x cheaper
//! at 256+ regions (`scripts/bench_snapshot.sh` records both series in
//! `BENCH_arrangement.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spatial_core::region::Region;
use std::hint::black_box;
use std::time::Duration;
use topodb::TopoDatabase;

const CLUSTERS: usize = 16;
/// Total region counts; with 16 clusters these are 4 / 16 regions per
/// cluster. 256 is the acceptance point.
const TOTAL_REGIONS: [usize; 2] = [64, 256];

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

/// The two alternating update geometries, both inside cluster 0's area.
fn update_region(flip: bool) -> Region {
    let (ox, oy) = datagen::cluster_origin(0, CLUSTERS);
    let span = datagen::CLUSTER_SPAN;
    if flip {
        Region::rect_from_ints(ox + 2, oy + 2, ox + span - 4, oy + span - 4)
    } else {
        Region::rect_from_ints(ox + 3, oy + 1, ox + span - 6, oy + span - 3)
    }
}

fn incremental_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_update");
    for n in TOTAL_REGIONS {
        let inst = datagen::clustered_map(CLUSTERS, n / CLUSTERS, 1234);

        // Long-lived database: the component cache survives across updates.
        let mut db = TopoDatabase::from_instance(inst.clone());
        let _ = db.complex_view(); // warm: all clusters swept once
        let mut flip = false;
        group.bench_with_input(BenchmarkId::new("incremental", n), &(), |b, _| {
            b.iter(|| {
                flip = !flip;
                db.insert("Update", update_region(flip));
                black_box(db.complex_view())
            })
        });

        // Pre-component-cache behavior: every update invalidates everything,
        // so the read re-sweeps the whole map in one monolithic pass.
        let mut full_inst = inst.clone();
        let mut flip = false;
        group.bench_with_input(BenchmarkId::new("full_rebuild", n), &(), |b, _| {
            b.iter(|| {
                flip = !flip;
                full_inst.insert("Update", update_region(flip));
                black_box(arrangement::build_complex_monolithic(&full_inst))
            })
        });
    }
    group.finish();
}

/// The batched-write claim of the transactional API: committing `k` inserts
/// as one [`TopoDatabase::begin`] transaction costs one epoch bump and —
/// at the read that follows — one global assembly plus one *parallel*
/// re-sweep of the union of the affected clusters, whereas `k` bare
/// `insert` calls each followed by a read pay `k` assemblies and `k`
/// serialized one-cluster re-sweeps. Both series leave the database in the
/// same state at the end of every iteration (the same `k` regions,
/// alternating between two geometries so no sweep can ever be skipped);
/// only the batching differs. Acceptance: `batch` beats `sequential` at the
/// largest size (`scripts/bench_snapshot.sh` gates on it).
fn batch_update(c: &mut Criterion) {
    // Number of mutations per transaction, each targeting its own cluster.
    const BATCH: usize = 8;
    let mut group = c.benchmark_group("batch_update");
    for n in TOTAL_REGIONS {
        let inst = datagen::clustered_map(CLUSTERS, n / CLUSTERS, 1234);

        let batch_region = |k: usize, flip: bool| {
            let (ox, oy) = datagen::cluster_origin(k, CLUSTERS);
            let span = datagen::CLUSTER_SPAN;
            if flip {
                Region::rect_from_ints(ox + 2, oy + 2, ox + span - 4, oy + span - 4)
            } else {
                Region::rect_from_ints(ox + 3, oy + 1, ox + span - 6, oy + span - 3)
            }
        };

        // One transaction for the whole batch: one epoch, one read.
        let mut db = TopoDatabase::from_instance(inst.clone());
        let _ = db.complex_view();
        let mut flip = false;
        group.bench_with_input(BenchmarkId::new("batch", n), &(), |b, _| {
            b.iter(|| {
                flip = !flip;
                let mut txn = db.begin();
                for k in 0..BATCH {
                    txn.insert(format!("U{k}"), batch_region(k, flip));
                }
                txn.commit();
                black_box(db.complex_view())
            })
        });

        // The same mutations as bare inserts, each followed by a read — the
        // pre-transaction write path (k epochs, k assemblies).
        let mut db = TopoDatabase::from_instance(inst.clone());
        let _ = db.complex_view();
        let mut flip = false;
        group.bench_with_input(BenchmarkId::new("sequential", n), &(), |b, _| {
            b.iter(|| {
                flip = !flip;
                for k in 0..BATCH {
                    db.insert(format!("U{k}"), batch_region(k, flip));
                    black_box(db.complex_view());
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = incremental_update, batch_update
}
criterion_main!(benches);
