//! The performance claim of the intra-component parallel sweep: on a dense,
//! crossing-heavy map that forms **one** interaction component — exactly the
//! workload where `parallel_cold_build`'s component-level fan-out shows no
//! speedup, because there is only one component to fan out — decomposing the
//! Bentley–Ottmann splitting phase into concurrent x-strips
//! ([`arrangement::strip::split_segments_striped`]) makes wall time drop
//! with the thread count while the output stays sub-segment-identical to the
//! monolithic sweep (pinned by `tests/strip_differential.rs` and
//! `tests/thread_determinism.rs`).
//!
//! Series, all over the same `datagen::dense_overlap_map` instance (asserted
//! single-component):
//!
//! * `serial` — the monolithic sweep ([`split_segments`]), the pre-strip
//!   production path;
//! * `threads1` / `threads2` / `threadsmax` — the strip decomposition at a
//!   fixed strip count (the machine's available parallelism, at least 2, so
//!   the decomposition work is identical across the series) on 1, 2 and all
//!   worker threads. `threads1` isolates the decomposition overhead
//!   (clipping + seam events + stitching) without any parallelism.
//!
//! `scripts/bench_snapshot.sh` records the group into
//! `BENCH_arrangement.json`, gates `threadsmax` beating `serial` by >1.5x on
//! hosts with 4+ cores (on 2-3 cores it must simply win; on a single-core
//! host every series measures overhead, so the gate is skipped there), and
//! tracks `serial` in the regression gate.

use arrangement::partition_instance;
use arrangement::split::{instance_segments, split_segments};
use arrangement::strip::split_segments_striped;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Grid side lengths of the dense single-component maps (`side²` regions).
/// The largest size is the gated data point; it is deliberately big enough
/// (1024 segments, ~2k crossings) that the fixed decomposition cost
/// (clipping + seam events + stitching, ~10-15% of the serial sweep) is
/// well amortized, so the multi-core speedup gate measures scaling rather
/// than overhead.
const DENSE_SIDES: [usize; 2] = [12, 16];

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

fn strip_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("strip_sweep");
    let max = arrangement::parallel::available_threads();
    let strips = max.max(2);
    for side in DENSE_SIDES {
        let n = side * side;
        let inst = datagen::dense_overlap_map(side, side, 4);
        assert_eq!(
            partition_instance(&inst).len(),
            1,
            "dense_overlap_map must be one interaction component"
        );
        let segments = instance_segments(&inst);

        group.bench_with_input(BenchmarkId::new("serial", n), &(), |b, _| {
            b.iter(|| black_box(split_segments(&segments)))
        });
        for (label, threads) in [("threads1", 1), ("threads2", 2), ("threadsmax", max)] {
            group.bench_with_input(BenchmarkId::new(label, n), &(), |b, _| {
                b.iter(|| black_box(split_segments_striped(&segments, strips, threads)))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = strip_sweep
}
criterion_main!(benches);
