//! The performance claim of the intra-component parallel sweep: on a dense,
//! crossing-heavy map that forms **one** interaction component — exactly the
//! workload where `parallel_cold_build`'s component-level fan-out shows no
//! speedup, because there is only one component to fan out — decomposing the
//! Bentley–Ottmann splitting phase into concurrent x-strips
//! ([`arrangement::strip::split_segments_striped`]) makes wall time drop
//! with the thread count while the output stays sub-segment-identical to the
//! monolithic sweep (pinned by `tests/strip_differential.rs` and
//! `tests/thread_determinism.rs`).
//!
//! Series, all over the same `datagen::dense_overlap_map` instance (asserted
//! single-component):
//!
//! * `serial` — the monolithic sweep ([`split_segments`]), the pre-strip
//!   production path;
//! * `threads1` / `threads2` / `threadsmax` — the strip decomposition at a
//!   fixed strip count (the machine's available parallelism, at least 2, so
//!   the decomposition work is identical across the series) on 1, 2 and all
//!   worker threads. `threads1` isolates the decomposition overhead
//!   (clipping + seam events + stitching) without any parallelism.
//!
//! `scripts/bench_snapshot.sh` records the group into
//! `BENCH_arrangement.json`, gates `threadsmax` beating `serial` by >1.5x on
//! hosts with 4+ cores (on 2-3 cores it must simply win; on a single-core
//! host every series measures overhead, so the gate is skipped there), and
//! tracks `serial` in the regression gate.
//!
//! Alongside the timing series the group records seam-placement *balance*
//! metrics per size ({id, value} records): the per-strip processed-event
//! maximum, mean and skew (max/mean, 1.0 = perfectly balanced) under the
//! production crossing-density cost model ([`strip_event_counts`]) and
//! under the retired endpoint-quantile baseline
//! ([`strip_event_counts_quantile`]). The strip count of the slowest strip
//! bounds the parallel sweep's wall time, so the skew ratio is the
//! quantity the cost model exists to minimize.
//!
//! The second group, `phase_build`, carries the perf claim of the
//! phase-parallel pipeline: on the dense 256-region single-component map,
//! `build_complex_phased` with the parallel chain-merge / face-walk /
//! label phases (`phase_parallel`) must beat the same build with strips
//! only (`strips_only`, the pre-phase production path) — >1.3x on 4+
//! cores, a simple win on 2-3, skipped single-core (gated by
//! `scripts/bench_snapshot.sh`). Its per-phase work counters
//! ([`arrangement::counters`]) are recorded as `phase_build/<phase>/<n>`
//! metrics so parallel-efficiency regressions (duplicated walks) stay
//! visible even on a single-core bench host.

use arrangement::partition_instance;
use arrangement::split::{instance_segments, split_segments};
use arrangement::strip::{split_segments_striped, strip_event_counts, strip_event_counts_quantile};
use criterion::{criterion_group, criterion_main, record_metric, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Grid side lengths of the dense single-component maps (`side²` regions).
/// The largest size is the gated data point; it is deliberately big enough
/// (1024 segments, ~2k crossings) that the fixed decomposition cost
/// (clipping + seam events + stitching, ~10-15% of the serial sweep) is
/// well amortized, so the multi-core speedup gate measures scaling rather
/// than overhead.
const DENSE_SIDES: [usize; 2] = [12, 16];

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

fn strip_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("strip_sweep");
    let max = arrangement::parallel::available_threads();
    let strips = max.max(2);
    for side in DENSE_SIDES {
        let n = side * side;
        let inst = datagen::dense_overlap_map(side, side, 4);
        assert_eq!(
            partition_instance(&inst).len(),
            1,
            "dense_overlap_map must be one interaction component"
        );
        let segments = instance_segments(&inst);

        group.bench_with_input(BenchmarkId::new("serial", n), &(), |b, _| {
            b.iter(|| black_box(split_segments(&segments)))
        });
        for (label, threads) in [("threads1", 1), ("threads2", 2), ("threadsmax", max)] {
            group.bench_with_input(BenchmarkId::new(label, n), &(), |b, _| {
                b.iter(|| black_box(split_segments_striped(&segments, strips, threads)))
            });
        }

        // Seam-balance diagnostics: per-strip event mass under both seam
        // policies, at the strip count the timing series run with.
        for (policy, counts) in [
            ("cost", strip_event_counts(&segments, strips)),
            ("quantile", strip_event_counts_quantile(&segments, strips)),
        ] {
            let total: u64 = counts.iter().sum();
            let max_events = counts.iter().copied().max().unwrap_or(0);
            let mean = total as f64 / counts.len().max(1) as f64;
            let skew = if mean > 0.0 { max_events as f64 / mean } else { 1.0 };
            record_metric(format!("strip_sweep/events_total_{policy}/{n}"), total as f64);
            record_metric(format!("strip_sweep/events_max_{policy}/{n}"), max_events as f64);
            record_metric(format!("strip_sweep/seam_skew_{policy}/{n}"), skew);
        }
    }
    group.finish();
}

/// Wall time of the full per-component pipeline (split + chain merge + face
/// walks + labels + cell assembly) on the dense single-component map, with
/// and without the phase-parallel post-split phases. Also records the
/// per-phase work counters of one phase-parallel build.
fn phase_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_build");
    let max = arrangement::parallel::available_threads();
    let side = 16;
    let n = side * side;
    let inst = datagen::dense_overlap_map(side, side, 4);
    assert_eq!(
        partition_instance(&inst).len(),
        1,
        "dense_overlap_map must be one interaction component"
    );

    group.bench_with_input(BenchmarkId::new("serial", n), &(), |b, _| {
        b.iter(|| black_box(arrangement::build_complex_phased(&inst, 1, false)))
    });
    group.bench_with_input(BenchmarkId::new("strips_only", n), &(), |b, _| {
        b.iter(|| black_box(arrangement::build_complex_phased(&inst, max, false)))
    });
    group.bench_with_input(BenchmarkId::new("phase_parallel", n), &(), |b, _| {
        b.iter(|| black_box(arrangement::build_complex_phased(&inst, max, true)))
    });

    // One instrumented build outside the timing loops: the per-phase work of
    // a phase-parallel build must match the serial build's (pinned relative
    // to each other by the differential tests; recorded here so the absolute
    // trajectory is visible in the snapshot).
    let before = arrangement::counters::phase_counters();
    black_box(arrangement::build_complex_phased(&inst, max, true));
    let work = arrangement::counters::phase_counters().delta_since(&before);
    record_metric(format!("phase_build/events_processed/{n}"), work.events_processed as f64);
    record_metric(format!("phase_build/chains_merged/{n}"), work.chains_merged as f64);
    record_metric(format!("phase_build/cells_walked/{n}"), work.cells_walked as f64);
    record_metric(format!("phase_build/labels_propagated/{n}"), work.labels_propagated as f64);
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = strip_sweep, phase_build
}
criterion_main!(benches);
