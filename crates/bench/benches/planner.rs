//! The semi-join query planner vs. the cartesian-product enumerator on open
//! (binding-producing) queries.
//!
//! The workload is an anchored 2-free-variable contact query over a
//! clustered map — `connect(ext(x), C000_R000) and connect(ext(x), ext(y))`
//! ("which regions x touch the anchor, and which regions y touch such an
//! x?"). The naive path tries all `n²` assignments; the planner binds `x`
//! from the spatial index's bbox neighbors of the anchor and `y` from the
//! neighbors of each `x`, checking each conjunct as soon as its variables
//! are bound, so the work tracks the anchor's cluster size rather than `n²`.
//!
//! Besides wall-clock timings the bench records the *work counters* behind
//! the speedup (candidate assignments tried by either path and spatial-index
//! probes issued by the planner) via `criterion::record_metric`, so the
//! benchmark snapshot (`BENCH_arrangement.json`) tracks the planner's
//! pruning power, not just its timing, across commits.

use criterion::{criterion_group, criterion_main, record_metric, BenchmarkId, Criterion};
use query::ast::{Formula, NameTerm, RegionExpr};
use query::cell_eval::CellEvaluator;
use query::plan::QueryPlan;
use spatial_core::prelude::SpatialInstance;
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    // The naive path at 256 regions runs 65k full formula evaluations per
    // iteration; keep the sample count low so the group stays tractable.
    Criterion::default()
        .sample_size(3)
        .warm_up_time(Duration::from_millis(50))
        .measurement_time(Duration::from_millis(300))
}

/// The benchmark query: an anchored two-variable contact join.
fn open_query() -> (Formula, Vec<String>) {
    let f = Formula::And(vec![
        Formula::Connect(
            RegionExpr::Ext(NameTerm::Var("x".into())),
            RegionExpr::Ext(NameTerm::Const("C000_R000".into())),
        ),
        Formula::Connect(
            RegionExpr::Ext(NameTerm::Var("x".into())),
            RegionExpr::Ext(NameTerm::Var("y".into())),
        ),
    ]);
    (f, vec!["x".into(), "y".into()])
}

fn instance(n: usize) -> SpatialInstance {
    // 16 clusters, n/16 regions each: 144 and 256 regions at the benched
    // sizes, anchor cluster C000 always present.
    datagen::clustered_map(16, n / 16, 42)
}

fn planner_bindings(c: &mut Criterion) {
    let (formula, free) = open_query();
    let mut group = c.benchmark_group("planner_bindings");
    for n in [144usize, 256] {
        let inst = instance(n);
        let ev = CellEvaluator::new(&inst);
        let plan = QueryPlan::build(&formula, &free);
        // Pre-build the index outside the timed region, as Snapshot does.
        ev.spatial_index();
        let planned_rows = ev.eval_bindings_planned(&formula, &plan).unwrap();
        let naive_rows = ev.eval_bindings_naive(&formula, &free).unwrap();
        assert_eq!(planned_rows, naive_rows, "planner must agree with naive at n={n}");
        assert!(!planned_rows.is_empty(), "the anchored query has witnesses");

        group.bench_with_input(BenchmarkId::new("planned", n), &ev, |b, ev| {
            b.iter(|| black_box(ev.eval_bindings_planned(&formula, &plan).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &ev, |b, ev| {
            b.iter(|| black_box(ev.eval_bindings_naive(&formula, &free).unwrap()))
        });

        // Work counters, from one clean run per path on fresh evaluators.
        let planned_ev = CellEvaluator::new(&inst);
        planned_ev.eval_bindings_planned(&formula, &plan).unwrap();
        record_metric(
            format!("planner_bindings/assignments_planned/{n}"),
            planned_ev.assignments_tried() as f64,
        );
        record_metric(
            format!("planner_bindings/index_probes/{n}"),
            planned_ev.spatial_index().probe_count() as f64,
        );
        let naive_ev = CellEvaluator::new(&inst);
        naive_ev.eval_bindings_naive(&formula, &free).unwrap();
        record_metric(
            format!("planner_bindings/assignments_naive/{n}"),
            naive_ev.assignments_tried() as f64,
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = planner_bindings
}
criterion_main!(benches);
