//! Open-loop traffic harness for the `topodb` facade: many client threads
//! replay a mixed snapshot-read / prepared-query / write-transaction
//! workload against one shared database at a configured per-client arrival
//! rate, and the harness records p50/p99 latency per operation class into
//! the benchmark snapshot.
//!
//! **Open loop** means every operation has a *scheduled* arrival time
//! (`start + i / rate`) and its latency is measured from that scheduled
//! instant, not from when the client got around to issuing it. A client
//! that falls behind accumulates queueing delay in its latency numbers
//! instead of silently throttling the offered load — the
//! coordinated-omission trap of closed-loop harnesses, where a slow server
//! makes its own tail latencies look better by slowing the clients down.
//!
//! All clients share one `&TopoDatabase` directly — no outer lock. Reads
//! and queries acquire snapshots (wait-free on the epoch-chain backend);
//! transactions commit through [`TopoDatabase::begin_shared`], so
//! concurrent writers build their epochs outside any lock and serialize
//! only at the publish compare-exchange. Setting `TOPODB_EPOCH_CHAIN=off`
//! runs the same workload against the legacy `RwLock`-cache backend for
//! comparison.
//!
//! The per-operation mix, drawn from each client's seeded RNG, is selected
//! by `TRAFFIC_MIX`:
//!
//! * `read-heavy` (default) — 60% reads / 30% queries / 10% transactions;
//! * `txn-heavy` — 30% reads / 30% queries / 40% transactions, the commit
//!   pipeline under pressure: most scheduled arrivals are epoch publishes,
//!   and the read p99 exposes how well snapshot acquisition holds up while
//!   writers continuously re-sweep and publish.
//!
//! The operation classes:
//!
//! * **reads** — `snapshot()` + `Snapshot::relation` between two
//!   pseudo-random base regions (the warm path: one `Arc` bump plus a
//!   cached 4-intersection classification);
//! * **queries** — `Snapshot::evaluate` of a pre-compiled anchored open
//!   query `overlap(ext(x), C{c}_R000)` (the semi-join planner path);
//! * **transactions** — insert of a pseudo-random rectangle under a
//!   thread-local name into the client's home cluster (or removal of a
//!   previously inserted one), which publishes a new epoch re-sweeping the
//!   dirtied cluster.
//!
//! The base map is selected by `TRAFFIC_MAP`: `small` (default, 8 clusters
//! of 4 regions) or `clustered4096` (64 clusters of 64 regions — 4096
//! base regions, the scale where per-commit re-sweep locality and
//! wait-free reads actually matter).
//!
//! `TRAFFIC_WAL=on` runs the same workload against a *durable* database
//! (a throwaway log directory under the temp dir, deleted afterwards), so
//! the transaction-class percentiles include the write-ahead-log append —
//! the txn p99 with durability is the number that matters for sizing a
//! real deployment. `TRAFFIC_SYNC` picks the policy: `percommit` (default,
//! an fsync inside every commit) or `interval` (group commit, at most one
//! fsync per 5 ms window).
//!
//! `TRAFFIC_FAULT_RATE=<0.0..1.0>` injects storage chaos into the run:
//! the database moves onto the in-memory fault-injecting [`wal::SimFs`]
//! (implying a durable, write-ahead-logged run), every log write fails
//! transiently (`EINTR`-style) with the given probability, and commits go
//! through [`topodb::Transaction::try_commit`] so the retry/backoff
//! machinery — not a panic — absorbs the faults. The txn percentiles then
//! include retry backoff, and the recorded `traffic/wal/*` metrics report
//! what the retry machinery actually did.
//!
//! Knobs: `TRAFFIC_CLIENTS` (threads), `TRAFFIC_RATE` (ops/s per client),
//! `TRAFFIC_OPS` (ops per client), `TRAFFIC_MIX`, `TRAFFIC_MAP`,
//! `TRAFFIC_WAL`, `TRAFFIC_SYNC`, `TRAFFIC_FAULT_RATE`. `--test` smoke
//! mode shrinks the volume knobs so CI merely exercises every path once
//! per class.
//!
//! Recorded metrics (`{id, value}` records in `BENCH_JSON`, merged into
//! `BENCH_arrangement.json` by `scripts/bench_snapshot.sh`):
//! `traffic/<class>/p50_ns`, `traffic/<class>/p99_ns` and
//! `traffic/<class>/ops` for each class in `mixed`/`read`/`query`/`txn`,
//! plus `traffic/offered_ops_per_s`, `traffic/achieved_ops_per_s` and
//! `traffic/durable` (1 when the run went through a write-ahead log). A
//! faulted run additionally records `traffic/fault_rate`,
//! `traffic/wal/transient_retries`, `traffic/wal/retries_exhausted`,
//! `traffic/wal/degraded` and `traffic/wal/degraded_rejections`.

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use topodb::query::PreparedQuery;
use topodb::{SyncPolicy, TopoDatabase, WalConfig};

/// Operation classes, indexed by the discriminant stored per sample.
const READ: usize = 0;
const QUERY: usize = 1;
const TXN: usize = 2;
const CLASS_NAMES: [&str; 3] = ["read", "query", "txn"];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

/// The workload shape: out of every 10 scheduled operations, how many are
/// reads / queries / transactions.
fn mix_weights() -> ([usize; 3], &'static str) {
    match std::env::var("TRAFFIC_MIX").unwrap_or_default().trim().to_ascii_lowercase().as_str() {
        "txn-heavy" | "txn_heavy" | "write-heavy" => ([3, 3, 4], "txn-heavy"),
        _ => ([6, 3, 1], "read-heavy"),
    }
}

/// The base map: `(clusters, regions per cluster, label)`.
fn map_shape() -> (usize, usize, &'static str) {
    match std::env::var("TRAFFIC_MAP").unwrap_or_default().trim().to_ascii_lowercase().as_str() {
        "clustered4096" | "large" | "4096" => (64, 64, "clustered4096"),
        _ => (8, 4, "small"),
    }
}

/// Should the run commit through a write-ahead log? `TRAFFIC_WAL=on` (or
/// `1`/`true`/`yes`) says yes.
fn wal_enabled() -> bool {
    matches!(
        std::env::var("TRAFFIC_WAL").unwrap_or_default().trim().to_ascii_lowercase().as_str(),
        "1" | "on" | "true" | "yes"
    )
}

/// Sync policy for a `TRAFFIC_WAL=on` run: `percommit` (default) or
/// `interval` (group commit, 5 ms window).
fn wal_sync() -> (SyncPolicy, &'static str) {
    match std::env::var("TRAFFIC_SYNC").unwrap_or_default().trim().to_ascii_lowercase().as_str() {
        "interval" | "group" => (SyncPolicy::Interval(Duration::from_millis(5)), "interval"),
        _ => (SyncPolicy::PerCommit, "percommit"),
    }
}

/// Probability (0.0–1.0) that any individual log write fails transiently,
/// from `TRAFFIC_FAULT_RATE`. Non-zero implies a durable run on the
/// fault-injecting in-memory backend.
fn fault_rate() -> f64 {
    std::env::var("TRAFFIC_FAULT_RATE")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|r| (0.0..=1.0).contains(r))
        .unwrap_or(0.0)
}

/// The throwaway log directory of a `TRAFFIC_WAL=on` run, deleted on drop.
struct LogDir(std::path::PathBuf);

impl Drop for LogDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Nearest-rank percentile over an already-sorted sample vector.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One client's replay: issue `ops` operations on the open-loop schedule,
/// returning `(class, latency_ns)` per operation.
#[allow(clippy::too_many_arguments)]
fn run_client(
    db: &TopoDatabase,
    queries: &[PreparedQuery],
    names: &[String],
    mix: [usize; 3],
    clusters: usize,
    tid: usize,
    ops: usize,
    period: Duration,
    start: Instant,
) -> Vec<(usize, u64)> {
    let mut rng = StdRng::seed_from_u64(0x7af1c + tid as u64);
    let mut inserted: Vec<String> = Vec::new();
    let mut serial = 0usize;
    let mut samples = Vec::with_capacity(ops);
    for i in 0..ops {
        let scheduled = period * (i as u32);
        // Sleep only if ahead of schedule; when behind, fire immediately so
        // the backlog shows up as queueing delay in the measured latency.
        let now = start.elapsed();
        if now < scheduled {
            std::thread::sleep(scheduled - now);
        }
        let roll = rng.gen_range(0..10usize);
        let class = if roll < mix[READ] {
            let a = &names[rng.gen_range(0..names.len())];
            let b = &names[rng.gen_range(0..names.len())];
            let snap = db.snapshot();
            std::hint::black_box(snap.relation(a, b).expect("base regions exist"));
            READ
        } else if roll < mix[READ] + mix[QUERY] {
            let q = &queries[rng.gen_range(0..queries.len())];
            let snap = db.snapshot();
            std::hint::black_box(snap.evaluate(q).expect("anchored query evaluates"));
            QUERY
        } else {
            let cluster = tid % clusters;
            let mut txn = db.begin_shared();
            if inserted.len() >= 4 {
                // Keep the thread-local working set bounded: retire the
                // oldest extra region instead of growing forever.
                txn.remove(inserted.remove(0));
            } else {
                let name = format!("T{tid:02}_N{serial:04}");
                serial += 1;
                txn.insert(name.clone(), datagen::cluster_rect(&mut rng, cluster, clusters));
                inserted.push(name);
            }
            // Under TRAFFIC_FAULT_RATE the commit may fail typed (retries
            // exhausted → degraded, then fail-fast rejections); the
            // latency of the failure path is as real as the success path,
            // and the health counters report what happened.
            let _ = txn.try_commit();
            TXN
        };
        samples.push((class, (start.elapsed() - scheduled).as_nanos() as u64));
    }
    samples
}

fn traffic(_c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let default_clients =
        if smoke { 2 } else { arrangement::parallel::available_threads().clamp(2, 8) };
    let clients = env_usize("TRAFFIC_CLIENTS", default_clients);
    let rate = env_usize("TRAFFIC_RATE", if smoke { 1000 } else { 200 });
    let ops = env_usize("TRAFFIC_OPS", if smoke { 30 } else { 400 });
    let (mix, mix_label) = mix_weights();
    let (clusters, per_cluster, map_label) = map_shape();
    let period = Duration::from_secs(1).div_f64(rate as f64);

    let map = datagen::clustered_map(clusters, per_cluster, 4242);
    let (sync, sync_label) = wal_sync();
    let faults = fault_rate();
    let mut _log_dir = None;
    let db = if faults > 0.0 {
        // Chaos run: the log lives on an in-memory SimFs whose writes fail
        // transiently at the configured rate. Deterministic in the seed,
        // nothing on disk to clean up.
        use topodb::wal::{FaultPlan, SimFs};
        let sim = SimFs::new();
        let opts = topodb::StorageOptions::from_wal_config(WalConfig::default().with_sync(sync))
            .with_vfs(std::sync::Arc::new(sim.clone()));
        let db = TopoDatabase::create_with_storage("/traffic-wal", map, opts)
            .expect("create durable traffic database on SimFs");
        // Arm the faults only once the log exists: creation is setup, the
        // measured run is what the chaos targets.
        sim.set_plan(FaultPlan::none().transient_write_rate(faults, 0x7af1c));
        db
    } else if wal_enabled() {
        let dir = std::env::temp_dir().join(format!("traffic-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = WalConfig::default().with_sync(sync);
        let db = TopoDatabase::create_with_config(&dir, map, cfg)
            .expect("create durable traffic database");
        _log_dir = Some(LogDir(dir));
        db
    } else {
        TopoDatabase::from_instance(map)
    };
    let names: Vec<String> = db.names();
    // Warm the initial snapshot outside the measured window so the first
    // scheduled read does not pay the cold build.
    db.snapshot();
    let queries: Vec<PreparedQuery> = (0..clusters)
        .map(|c| {
            PreparedQuery::compile(&format!("overlap(ext(x), C{c:03}_R000)"))
                .expect("anchored open query compiles")
        })
        .collect();

    eprintln!(
        "traffic: {clients} clients x {ops} ops at {rate} ops/s each \
         (offered {} ops/s total, {mix_label} mix, {map_label} map, {} backend, {}{})",
        clients * rate,
        if db.epoch_chain_enabled() { "epoch-chain" } else { "legacy rwlock" },
        if faults > 0.0 {
            format!("simfs wal {sync_label}, fault rate {faults}")
        } else if db.durable() {
            format!("wal {sync_label}")
        } else {
            "no wal".to_string()
        },
        if smoke { ", smoke mode" } else { "" }
    );

    let start = Instant::now();
    let per_client: Vec<Vec<(usize, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|tid| {
                let db = &db;
                let queries = &queries;
                let names = &names;
                scope.spawn(move || {
                    run_client(db, queries, names, mix, clusters, tid, ops, period, start)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall = start.elapsed();

    let mut by_class: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut mixed: Vec<u64> = Vec::with_capacity(clients * ops);
    for samples in &per_client {
        for &(class, ns) in samples {
            by_class[class].push(ns);
            mixed.push(ns);
        }
    }
    mixed.sort_unstable();
    let achieved = mixed.len() as f64 / wall.as_secs_f64();
    record_metric("traffic/offered_ops_per_s", (clients * rate) as f64);
    record_metric("traffic/achieved_ops_per_s", achieved);
    record_metric("traffic/durable", if db.durable() { 1.0 } else { 0.0 });
    record_metric("traffic/mixed/ops", mixed.len() as f64);
    record_metric("traffic/mixed/p50_ns", percentile(&mixed, 0.50) as f64);
    record_metric("traffic/mixed/p99_ns", percentile(&mixed, 0.99) as f64);
    for (class, lat) in by_class.iter_mut().enumerate() {
        lat.sort_unstable();
        record_metric(format!("traffic/{}/ops", CLASS_NAMES[class]), lat.len() as f64);
        record_metric(format!("traffic/{}/p50_ns", CLASS_NAMES[class]), percentile(lat, 0.50) as f64);
        record_metric(format!("traffic/{}/p99_ns", CLASS_NAMES[class]), percentile(lat, 0.99) as f64);
    }
    if faults > 0.0 {
        // What the retry machinery did under the injected fault rate: how
        // many transients it absorbed, and whether any commit exhausted
        // its budget (degrading the database for the rest of the run).
        let h = db.health();
        record_metric("traffic/fault_rate", faults);
        record_metric("traffic/wal/transient_retries", h.transient_retries as f64);
        record_metric("traffic/wal/retries_exhausted", h.retries_exhausted as f64);
        record_metric("traffic/wal/degraded", if h.degraded.is_some() { 1.0 } else { 0.0 });
        record_metric("traffic/wal/degraded_rejections", h.degraded_commit_rejections as f64);
        eprintln!(
            "traffic: fault rate {faults}: {} transient retries, {} exhausted, degraded: {}",
            h.transient_retries,
            h.retries_exhausted,
            h.degraded.is_some()
        );
    }
    if !smoke {
        assert!(
            by_class.iter().all(|lat| !lat.is_empty()),
            "every operation class must appear in a full traffic run"
        );
    }
    println!("test traffic ... ok");
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = traffic
}
criterion_main!(benches);
