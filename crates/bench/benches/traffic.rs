//! Open-loop traffic harness for the `topodb` facade: many client threads
//! replay a mixed snapshot-read / prepared-query / write-transaction
//! workload against one shared database at a configured per-client arrival
//! rate, and the harness records p50/p99 latency per operation class into
//! the benchmark snapshot.
//!
//! **Open loop** means every operation has a *scheduled* arrival time
//! (`start + i / rate`) and its latency is measured from that scheduled
//! instant, not from when the client got around to issuing it. A client
//! that falls behind accumulates queueing delay in its latency numbers
//! instead of silently throttling the offered load — the
//! coordinated-omission trap of closed-loop harnesses, where a slow server
//! makes its own tail latencies look better by slowing the clients down.
//!
//! The database is a `clustered_map(8, 4)` behind an outer `RwLock` (reads
//! and queries go through `&TopoDatabase`, which is `Sync`; only
//! `TopoDatabase::begin` needs `&mut`). The per-operation mix, drawn from
//! each client's seeded RNG:
//!
//! * **60% reads** — `snapshot()` + `Snapshot::relation` between two
//!   pseudo-random base regions (the warm path: one `Arc` bump plus a
//!   cached 4-intersection classification);
//! * **30% queries** — `Snapshot::evaluate` of a pre-compiled anchored
//!   open query `overlap(ext(x), C{c}_R000)` (the semi-join planner path);
//! * **10% transactions** — insert of a pseudo-random rectangle under a
//!   thread-local name into a pseudo-random cluster (or removal of a
//!   previously inserted one), which bumps the epoch and forces the next
//!   snapshot to re-sweep the dirtied cluster.
//!
//! Knobs: `TRAFFIC_CLIENTS` (threads), `TRAFFIC_RATE` (ops/s per client),
//! `TRAFFIC_OPS` (ops per client). `--test` smoke mode shrinks all three
//! so CI merely exercises every path once per class.
//!
//! Recorded metrics (`{id, value}` records in `BENCH_JSON`, merged into
//! `BENCH_arrangement.json` by `scripts/bench_snapshot.sh`):
//! `traffic/<class>/p50_ns`, `traffic/<class>/p99_ns` and
//! `traffic/<class>/ops` for each class in `mixed`/`read`/`query`/`txn`,
//! plus `traffic/offered_ops_per_s` and `traffic/achieved_ops_per_s`.

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::RwLock;
use std::time::{Duration, Instant};
use topodb::query::PreparedQuery;
use topodb::TopoDatabase;

/// Cluster count of the base map; transactions target `tid % CLUSTERS`.
const CLUSTERS: usize = 8;
/// Base regions per cluster (never touched by the write mix, so reads and
/// anchored queries always resolve).
const PER_CLUSTER: usize = 4;

/// Operation classes, indexed by the discriminant stored per sample.
const READ: usize = 0;
const QUERY: usize = 1;
const TXN: usize = 2;
const CLASS_NAMES: [&str; 3] = ["read", "query", "txn"];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

/// Nearest-rank percentile over an already-sorted sample vector.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One client's replay: issue `ops` operations on the open-loop schedule,
/// returning `(class, latency_ns)` per operation.
fn run_client(
    db: &RwLock<TopoDatabase>,
    queries: &[PreparedQuery],
    names: &[String],
    tid: usize,
    ops: usize,
    period: Duration,
    start: Instant,
) -> Vec<(usize, u64)> {
    let mut rng = StdRng::seed_from_u64(0x7af1c + tid as u64);
    let mut inserted: Vec<String> = Vec::new();
    let mut serial = 0usize;
    let mut samples = Vec::with_capacity(ops);
    for i in 0..ops {
        let scheduled = period * (i as u32);
        // Sleep only if ahead of schedule; when behind, fire immediately so
        // the backlog shows up as queueing delay in the measured latency.
        let now = start.elapsed();
        if now < scheduled {
            std::thread::sleep(scheduled - now);
        }
        let class = match rng.gen_range(0..10usize) {
            0..=5 => {
                let a = &names[rng.gen_range(0..names.len())];
                let b = &names[rng.gen_range(0..names.len())];
                let snap = db.read().expect("db lock").snapshot();
                std::hint::black_box(snap.relation(a, b).expect("base regions exist"));
                READ
            }
            6..=8 => {
                let q = &queries[rng.gen_range(0..queries.len())];
                let snap = db.read().expect("db lock").snapshot();
                std::hint::black_box(snap.evaluate(q).expect("anchored query evaluates"));
                QUERY
            }
            _ => {
                let cluster = tid % CLUSTERS;
                let mut guard = db.write().expect("db lock");
                let mut txn = guard.begin();
                if inserted.len() >= 4 {
                    // Keep the thread-local working set bounded: retire the
                    // oldest extra region instead of growing forever.
                    txn.remove(inserted.remove(0));
                } else {
                    let name = format!("T{tid:02}_N{serial:04}");
                    serial += 1;
                    txn.insert(name.clone(), datagen::cluster_rect(&mut rng, cluster, CLUSTERS));
                    inserted.push(name);
                }
                txn.commit();
                TXN
            }
        };
        samples.push((class, (start.elapsed() - scheduled).as_nanos() as u64));
    }
    samples
}

fn traffic(_c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let default_clients =
        if smoke { 2 } else { arrangement::parallel::available_threads().clamp(2, 8) };
    let clients = env_usize("TRAFFIC_CLIENTS", default_clients);
    let rate = env_usize("TRAFFIC_RATE", if smoke { 1000 } else { 200 });
    let ops = env_usize("TRAFFIC_OPS", if smoke { 30 } else { 400 });
    let period = Duration::from_secs(1).div_f64(rate as f64);

    let db = RwLock::new(TopoDatabase::from_instance(datagen::clustered_map(
        CLUSTERS, PER_CLUSTER, 4242,
    )));
    let names: Vec<String> = db.read().expect("db lock").names();
    // Warm the initial snapshot outside the measured window so the first
    // scheduled read does not pay the cold build.
    db.read().expect("db lock").snapshot();
    let queries: Vec<PreparedQuery> = (0..CLUSTERS)
        .map(|c| {
            PreparedQuery::compile(&format!("overlap(ext(x), C{c:03}_R000)"))
                .expect("anchored open query compiles")
        })
        .collect();

    eprintln!(
        "traffic: {clients} clients x {ops} ops at {rate} ops/s each \
         (offered {} ops/s total{})",
        clients * rate,
        if smoke { ", smoke mode" } else { "" }
    );

    let start = Instant::now();
    let per_client: Vec<Vec<(usize, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|tid| {
                let db = &db;
                let queries = &queries;
                let names = &names;
                scope.spawn(move || run_client(db, queries, names, tid, ops, period, start))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall = start.elapsed();

    let mut by_class: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut mixed: Vec<u64> = Vec::with_capacity(clients * ops);
    for samples in &per_client {
        for &(class, ns) in samples {
            by_class[class].push(ns);
            mixed.push(ns);
        }
    }
    mixed.sort_unstable();
    let achieved = mixed.len() as f64 / wall.as_secs_f64();
    record_metric("traffic/offered_ops_per_s", (clients * rate) as f64);
    record_metric("traffic/achieved_ops_per_s", achieved);
    record_metric("traffic/mixed/ops", mixed.len() as f64);
    record_metric("traffic/mixed/p50_ns", percentile(&mixed, 0.50) as f64);
    record_metric("traffic/mixed/p99_ns", percentile(&mixed, 0.99) as f64);
    for (class, lat) in by_class.iter_mut().enumerate() {
        lat.sort_unstable();
        record_metric(format!("traffic/{}/ops", CLASS_NAMES[class]), lat.len() as f64);
        record_metric(format!("traffic/{}/p50_ns", CLASS_NAMES[class]), percentile(lat, 0.50) as f64);
        record_metric(format!("traffic/{}/p99_ns", CLASS_NAMES[class]), percentile(lat, 0.99) as f64);
    }
    if !smoke {
        assert!(
            by_class.iter().all(|lat| !lat.is_empty()),
            "every operation class must appear in a full traffic run"
        );
    }
    println!("test traffic ... ok");
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = traffic
}
criterion_main!(benches);
