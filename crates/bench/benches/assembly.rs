//! The two performance claims of the zero-copy read-path refactor:
//!
//! * `assemble_view_vs_copy` — assembling the global complex *by view*
//!   ([`GlobalComplexView::new`], `O(components)`) versus *by copy*
//!   ([`assemble_components`], `O(total cells)`), over pre-built component
//!   sub-complexes of a many-small-component `wide_map`. The view's
//!   advantage is exactly the per-cell copying it skips, and it is what
//!   every `TopoDatabase` update→read pays after the affected cluster is
//!   re-swept.
//! * `parallel_cold_build` — the per-component sweep fan-out of a
//!   16-cluster map on 1, 2 and all available worker threads
//!   (`threadsmax`). The instance is partitioned once outside the measured
//!   loop (partitioning is inherently serial and identical for every
//!   series), so the series isolate exactly the phase the worker pool
//!   parallelizes. Components share nothing, so wall time should drop with
//!   the thread count on multi-core hosts while the output stays
//!   fingerprint-identical (pinned by `tests/thread_determinism.rs`). On a
//!   **single-core host** the extra-thread series instead measure the pool's
//!   scheduling overhead (a few percent); the speedup claim is only
//!   validated where it can hold, which is why the snapshot script's
//!   parallel gate checks the core count first.
//!
//! Both groups are recorded into `BENCH_arrangement.json` by
//! `scripts/bench_snapshot.sh`, which gates on the view beating the copy and
//! (on multi-core hosts) on the parallel build beating the serial one.

use arrangement::parallel::map_indexed;
use arrangement::{
    assemble_components, build_component_complexes, build_group_component, partition_instance,
    GlobalComplexView,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Component counts for the view-vs-copy comparison (two regions each).
const WIDE_COMPONENTS: [usize; 2] = [64, 256];

const COLD_CLUSTERS: usize = 16;
const COLD_REGIONS_PER_CLUSTER: usize = 16;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

fn assemble_view_vs_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("assemble_view_vs_copy");
    for n in WIDE_COMPONENTS {
        let inst = datagen::wide_map(n, 77);
        let names: Vec<String> = inst.names().iter().map(|s| s.to_string()).collect();
        let components = build_component_complexes(&inst, 1);
        assert_eq!(components.len(), n, "wide_map yields one component per pair");

        group.bench_with_input(BenchmarkId::new("copy", n), &(), |b, _| {
            b.iter(|| black_box(assemble_components(names.clone(), &components)))
        });
        group.bench_with_input(BenchmarkId::new("view", n), &(), |b, _| {
            b.iter(|| black_box(GlobalComplexView::new(names.clone(), components.clone())))
        });
    }
    group.finish();
}

fn parallel_cold_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_cold_build");
    let n = COLD_CLUSTERS * COLD_REGIONS_PER_CLUSTER;
    let inst = datagen::clustered_map(COLD_CLUSTERS, COLD_REGIONS_PER_CLUSTER, 4321);
    let groups = partition_instance(&inst);
    assert!(groups.len() >= COLD_CLUSTERS, "one component per cluster at least");
    let max = arrangement::parallel::available_threads();
    for (label, threads) in [("threads1", 1), ("threads2", 2), ("threadsmax", max)] {
        group.bench_with_input(BenchmarkId::new(label, n), &(), |b, _| {
            b.iter(|| {
                black_box(map_indexed(groups.len(), threads, |i| {
                    build_group_component(&inst, &groups[i])
                }))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = assemble_view_vs_copy, parallel_cold_build
}
criterion_main!(benches);
