//! The performance claim of the epoch-chain backend: **snapshot acquisition
//! is wait-free**, so readers neither lock nor wait on writers.
//!
//! Three measurements, each run against both backends
//! ([`TopoDatabase::from_instance_with_epoch_chain`] with `true`/`false`,
//! so one process holds them side by side regardless of
//! `TOPODB_EPOCH_CHAIN`):
//!
//! * `epoch_publish/snapshot_uncontended/{chain,rwlock}` — bare
//!   `snapshot()` on a warm database with no writer in sight. The chain
//!   path is one atomic load plus an `Arc` refcount bump; the legacy path
//!   additionally takes the cache read lock.
//! * `epoch_publish/commit_and_read/{chain,rwlock}` — one effective
//!   insert-commit followed by a snapshot read. On the chain the build
//!   happens inside the commit (epochs publish fully built); on the legacy
//!   backend the commit is an invalidation and the *read* pays the
//!   re-sweep — the pair is measured together so both backends account for
//!   the same work.
//! * `epoch_publish/<backend>/read_under_write_{p50,p99}_ns` — the
//!   headline: snapshot-acquisition latency sampled while a background
//!   writer commits continuously. On the chain, readers should be
//!   oblivious to the writer (they load whichever epoch is published); on
//!   the `RwLock` they serialize behind the writer's cache lock and
//!   periodically pay a whole re-sweep inline. `scripts/bench_snapshot.sh`
//!   gates chain-p99 ≤ rwlock-p99 on multi-core hosts (on a single core
//!   the "background" writer interleaves on the same CPU and the
//!   comparison measures the scheduler, not the lock structure).
//!
//! `epoch_publish/chain/publish_conflicts` records how many publish
//! compare-exchanges lost to a concurrent commit during the contended
//! phase (informational; with one writer it is 0).

use criterion::{criterion_group, criterion_main, record_metric, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use topodb::spatial_core::prelude::*;
use topodb::TopoDatabase;

const CLUSTERS: usize = 16;
const PER_CLUSTER: usize = 4;

const BACKENDS: [(&str, bool); 2] = [("chain", true), ("rwlock", false)];

fn warm_db(chain: bool) -> TopoDatabase {
    let db = TopoDatabase::from_instance_with_epoch_chain(
        datagen::clustered_map(CLUSTERS, PER_CLUSTER, 91),
        chain,
    );
    db.snapshot();
    db
}

/// Nearest-rank percentile over an already-sorted sample vector.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn snapshot_uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_publish");
    for (label, chain) in BACKENDS {
        let db = warm_db(chain);
        group.bench_with_input(BenchmarkId::new("snapshot_uncontended", label), &(), |b, _| {
            b.iter(|| black_box(db.snapshot()))
        });
    }
    group.finish();
}

fn commit_and_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_publish");
    for (label, chain) in BACKENDS {
        let db = warm_db(chain);
        // One effective commit (alternating insert/remove of one name in
        // one cluster) plus the read that observes it: the chain builds in
        // the commit, the legacy backend on the read, so the pair is the
        // comparable unit.
        let mut present = false;
        group.bench_with_input(BenchmarkId::new("commit_and_read", label), &(), |b, _| {
            b.iter(|| {
                let mut txn = db.begin_shared();
                if present {
                    txn.remove("Churn");
                } else {
                    txn.insert("Churn", Region::rect_from_ints(2, 2, 10, 10));
                }
                present = !present;
                txn.commit();
                black_box(db.snapshot())
            })
        });
    }
    group.finish();
}

fn read_under_write(_c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let samples = if smoke { 50 } else { 5000 };
    for (label, chain) in BACKENDS {
        let db = warm_db(chain);
        let stop = AtomicBool::new(false);
        let mut latencies: Vec<u64> = Vec::with_capacity(samples);
        let mut commits = 0u64;
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut present = false;
                let mut commits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let mut txn = db.begin_shared();
                    if present {
                        txn.remove("Churn");
                    } else {
                        txn.insert("Churn", Region::rect_from_ints(2, 2, 10, 10));
                    }
                    present = !present;
                    txn.commit();
                    commits += 1;
                }
                commits
            });
            // Let the writer actually get going before sampling.
            std::thread::sleep(Duration::from_millis(if smoke { 1 } else { 20 }));
            for _ in 0..samples {
                let t0 = Instant::now();
                black_box(db.snapshot());
                latencies.push(t0.elapsed().as_nanos() as u64);
            }
            stop.store(true, Ordering::Relaxed);
            commits = writer.join().expect("writer thread");
        });
        latencies.sort_unstable();
        record_metric(
            format!("epoch_publish/{label}/read_under_write_p50_ns"),
            percentile(&latencies, 0.50) as f64,
        );
        record_metric(
            format!("epoch_publish/{label}/read_under_write_p99_ns"),
            percentile(&latencies, 0.99) as f64,
        );
        eprintln!(
            "epoch_publish/{label}: {commits} commits interleaved with {samples} reads \
             (p50 {} ns, p99 {} ns)",
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.99)
        );
        if chain {
            record_metric(
                "epoch_publish/chain/publish_conflicts",
                db.publish_conflict_count() as f64,
            );
        }
    }
    println!("test read_under_write ... ok");
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = snapshot_uncontended, commit_and_read, read_under_write
}
criterion_main!(benches);
