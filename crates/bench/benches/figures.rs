//! E01/E02/E04/E05/E06/E09 — reproduction of the paper's figures as measured
//! pipelines: building the cell complex, computing the invariant, checking
//! the relaxed/full isomorphisms, computing the 4-intersection relations and
//! the thematic database for each figure fixture.

use criterion::{criterion_group, criterion_main, Criterion};
use invariant::{find_isomorphism, IsoOptions, Invariant};
use query::cell_eval::eval_on_instance;
use spatial_core::fixtures;
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

/// E01 — Fig. 1: the Example 4.1 / 4.2 separating queries on all four
/// instances (the headline "binary relations are not enough" experiment).
fn fig01_four_instances(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig01_four_instances");
    let q41 = query::parse("exists r . subset(r, A) and subset(r, B) and subset(r, C)").unwrap();
    let q42 = query::parse(
        "forall r, s . (subset(r, A) and subset(r, B) and subset(s, A) and subset(s, B)) -> \
         exists t . subset(t, A) and subset(t, B) and connect(t, r) and connect(t, s)",
    )
    .unwrap();
    group.bench_function("example_4_1_on_1a_and_1b", |b| {
        b.iter(|| {
            let a = eval_on_instance(&fixtures::fig_1a(), &q41).unwrap();
            let bb = eval_on_instance(&fixtures::fig_1b(), &q41).unwrap();
            assert!(a && !bb);
            black_box((a, bb))
        })
    });
    group.bench_function("example_4_2_on_1c_and_1d", |b| {
        b.iter(|| {
            let c1 = eval_on_instance(&fixtures::fig_1c(), &q42).unwrap();
            let d = eval_on_instance(&fixtures::fig_1d(), &q42).unwrap();
            assert!(c1 && !d);
            black_box((c1, d))
        })
    });
    group.bench_function("four_intersection_equivalence_1a_1b", |b| {
        b.iter(|| {
            black_box(relations::four_intersection_equivalent(
                &fixtures::fig_1a(),
                &fixtures::fig_1b(),
            ))
        })
    });
    group.finish();
}

/// E02 — Fig. 2: computing all eight relations from geometry.
fn fig02_four_intersection(c: &mut Criterion) {
    let pairs = fixtures::fig_2_pairs();
    c.benchmark_group("fig02_four_intersection").bench_function("all_eight_relations", |b| {
        b.iter(|| {
            for (name, inst) in &pairs {
                let complex = arrangement::build_complex(inst);
                let r = relations::relation_in_complex(&complex, "A", "B").unwrap();
                assert_eq!(r.name(), *name);
            }
        })
    });
}

/// E04/E09 — Fig. 5 / Fig. 9: invariant and thematic database of Fig. 1c.
fn fig05_invariant_and_thematic(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig05_fig09_invariant_of_fig1c");
    group.bench_function("invariant", |b| {
        b.iter(|| {
            let inv = Invariant::of_instance(&fixtures::fig_1c());
            assert_eq!((inv.vertex_count(), inv.edge_count(), inv.face_count()), (2, 4, 4));
            black_box(inv)
        })
    });
    group.bench_function("thematic_database", |b| {
        let inv = Invariant::of_instance(&fixtures::fig_1c());
        b.iter(|| black_box(invariant::thematic::to_database(&inv)))
    });
    group.finish();
}

/// E05 — Fig. 6: exterior-face sensitivity of the invariant.
fn fig06_exterior_face(c: &mut Criterion) {
    let t = Invariant::of_instance(&fixtures::ring_with_flag());
    let hole = (0..t.face_count())
        .find(|&f| {
            f != t.exterior_face()
                && t.face_label(f).iter().all(|&s| s == arrangement::Sign::Exterior)
        })
        .unwrap();
    let swapped = t.with_exterior(hole);
    let mut group = c.benchmark_group("fig06_exterior_face");
    group.bench_function("labeled_graph_isomorphism_ignoring_exterior", |b| {
        b.iter(|| {
            assert!(find_isomorphism(&t, &swapped, IsoOptions::without_exterior()).is_some());
        })
    });
    group.bench_function("full_invariant_isomorphism", |b| {
        b.iter(|| {
            assert!(find_isomorphism(&t, &swapped, IsoOptions::full()).is_none());
        })
    });
    group.finish();
}

/// E06 — Fig. 7: orientation-relation sensitivity of the invariant.
fn fig07_orientation(c: &mut Criterion) {
    let p1 = Invariant::of_instance(&fixtures::petals_abcd());
    let p2 = Invariant::of_instance(&fixtures::petals_acbd());
    let mut group = c.benchmark_group("fig07_orientation");
    group.bench_function("graph_isomorphism_without_orientation", |b| {
        b.iter(|| {
            assert!(find_isomorphism(&p1, &p2, IsoOptions::without_orientation()).is_some());
        })
    });
    group.bench_function("full_invariant_isomorphism", |b| {
        b.iter(|| {
            assert!(find_isomorphism(&p1, &p2, IsoOptions::full()).is_none());
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig01_four_instances, fig02_four_intersection, fig05_invariant_and_thematic,
              fig06_exterior_face, fig07_orientation
}
criterion_main!(benches);
