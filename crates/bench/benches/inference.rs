//! E11/E17/E18 — invariant validation (Theorem 3.8), topological inference
//! over the existential fragment ([GPP95], Proposition 6.2 context), and the
//! ablation of the invariant's components (exterior face / orientation) in
//! the isomorphism test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use invariant::{find_isomorphism, IsoOptions, Invariant};
use relations::{ConstraintNetwork, Relation4, RelationSet};
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

/// E11 — Theorem 3.8: checking whether a structure is a valid invariant
/// (labeled planar graph), on valid and corrupted inputs of growing size.
fn thm38_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm38_validation");
    for (n, inst) in datagen::scaling_sweep(&bench::SCALING_SIZES) {
        let inv = Invariant::of_instance(&inst);
        group.bench_with_input(BenchmarkId::new("valid", n), &inv, |b, inv| {
            b.iter(|| assert!(invariant::validate(inv).is_empty()))
        });
        let corrupted = inv.with_exterior(inv.region_faces(inst.names()[0])[0]);
        group.bench_with_input(BenchmarkId::new("corrupted", n), &corrupted, |b, inv| {
            b.iter(|| assert!(!invariant::validate(inv).is_empty()))
        });
    }
    group.finish();
}

/// E17 — topological inference: satisfiability of constraint networks built
/// from real instances (satisfiable) and of adversarial networks
/// (unsatisfiable), as a function of the number of variables.
fn prop62_satisfiability(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpp95_topological_inference");
    for n in [4usize, 6, 8] {
        let inst = datagen::random_rectangles(n, 40, 17);
        let net = relations::network_of_instance(&inst);
        group.bench_with_input(BenchmarkId::new("from_instance", n), &net, |b, net| {
            b.iter(|| assert!(net.is_satisfiable()))
        });
        // An unsatisfiable network: a containment cycle plus a disjointness.
        let mut bad = ConstraintNetwork::unconstrained(n);
        for i in 0..n - 1 {
            bad.constrain_base(i, i + 1, Relation4::Inside);
        }
        bad.constrain(0, n - 1, RelationSet::from_slice(&[Relation4::Disjoint, Relation4::Meet]));
        group.bench_with_input(BenchmarkId::new("unsatisfiable", n), &bad, |b, bad| {
            b.iter(|| assert!(!bad.is_satisfiable()))
        });
    }
    group.finish();
}

/// E18 — ablation: how much of the isomorphism decision is carried by each
/// component of the invariant (full, without orientation, without exterior,
/// labeled graph only), measured on the flower workload whose instances
/// differ only in the rotation system.
fn ablation_invariant_components(c: &mut Criterion) {
    let a = Invariant::of_instance(&datagen::flower(8, 1));
    let b = Invariant::of_instance(&datagen::flower(8, 2));
    let configurations = [
        ("full", IsoOptions::full()),
        ("without_orientation", IsoOptions::without_orientation()),
        ("without_exterior", IsoOptions::without_exterior()),
        ("labeled_graph_only", IsoOptions::labeled_graph_only()),
    ];
    let mut group = c.benchmark_group("ablation_invariant_components");
    for (label, opts) in configurations {
        group.bench_function(label, |bencher| {
            bencher.iter(|| black_box(find_isomorphism(&a, &b, opts).is_some()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = thm38_validation, prop62_satisfiability, ablation_invariant_components
}
criterion_main!(benches);
